"""Tests for repro.classify.naive_bayes and the pluggable final classifier."""

from __future__ import annotations

import numpy as np
import pytest

from repro.classify.naive_bayes import GaussianNB
from repro.core.config import IPSConfig
from repro.core.pipeline import IPSClassifier
from repro.datasets.generators import make_planted_dataset
from repro.exceptions import NotFittedError, ValidationError
from repro.ts.series import Dataset


def _blobs(rng, centers, n=25, spread=0.6):
    X = np.vstack([rng.normal(size=(n, len(centers[0]))) * spread + c for c in centers])
    y = np.repeat(np.arange(len(centers)), n)
    return X, y


class TestGaussianNB:
    def test_fits_blobs(self, rng):
        X, y = _blobs(rng, [[0, 0], [4, 4]])
        model = GaussianNB().fit(X, y)
        assert model.score(X, y) > 0.95

    def test_three_classes(self, rng):
        X, y = _blobs(rng, [[0, 0], [5, 0], [0, 5]])
        model = GaussianNB().fit(X, y)
        assert model.score(X, y) > 0.9

    def test_probabilities_sum_to_one(self, rng):
        X, y = _blobs(rng, [[0, 0], [4, 4]])
        model = GaussianNB().fit(X, y)
        assert np.allclose(model.predict_proba(X).sum(axis=1), 1.0)

    def test_priors_respected(self, rng):
        """Heavily imbalanced identical-feature data: majority class wins."""
        X = rng.normal(size=(100, 2))
        y = np.zeros(100, dtype=int)
        y[:5] = 1
        model = GaussianNB().fit(X, y)
        predictions = model.predict(rng.normal(size=(50, 2)))
        assert np.mean(predictions == 0) > 0.8

    def test_constant_feature_survives(self, rng):
        X = np.column_stack([rng.normal(size=20), np.full(20, 3.0)])
        y = np.repeat([0, 1], 10)
        model = GaussianNB().fit(X, y)
        assert model.predict(X).shape == (20,)

    def test_arbitrary_labels(self, rng):
        X, y01 = _blobs(rng, [[0, 0], [4, 4]])
        y = np.where(y01 == 0, -3, 12)
        model = GaussianNB().fit(X, y)
        assert set(np.unique(model.predict(X))) == {-3, 12}

    def test_unfitted_rejected(self, rng):
        with pytest.raises(NotFittedError):
            GaussianNB().predict(rng.normal(size=(2, 2)))

    def test_bad_smoothing_rejected(self):
        with pytest.raises(ValidationError):
            GaussianNB(var_smoothing=-1.0)


class TestPluggableFinalClassifier:
    @pytest.fixture(scope="class")
    def split(self):
        full = make_planted_dataset(n_classes=2, n_instances=36, length=60, seed=31)
        train = Dataset(X=full.X[:16], y=full.classes_[full.y[:16]])
        return train, full.X[16:], full.classes_[full.y[16:]]

    @pytest.mark.parametrize("kind", ["svm", "nb", "tree", "1nn"])
    def test_each_classifier_learns(self, split, kind):
        train, X_test, y_test = split
        config = IPSConfig(
            q_n=5, q_s=3, k=3, length_ratios=(0.2, 0.35),
            final_classifier=kind, seed=0,
        )
        clf = IPSClassifier(config).fit_dataset(train)
        assert clf.score(X_test, y_test) > 0.6, kind

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValidationError):
            IPSConfig(final_classifier="resnet")
