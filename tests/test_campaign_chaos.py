"""Chaos suite for ``repro.campaign``: campaigns killed at cell
boundaries and mid-cell, resumed repeatedly — with and without injected
crash/hang/slow faults — must converge to results bit-identical to an
uninterrupted run, with zero re-execution of finished cells.

These are the acceptance gates of the campaign subsystem; they carry the
``campaign`` marker (via conftest) and run under ``make verify-campaign``.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.campaign import (
    CampaignCell,
    CampaignRunner,
    CampaignSpec,
    build_frame,
    run_cell,
    write_report,
)
from repro.distributed.faults import FaultPlan

SPEC = CampaignSpec(
    datasets=("CBF", "GunPoint", "ItalyPowerDemand"),
    methods=("1NN-ED", "BOP", "TSF"),
    scenarios=("clean", "noise"),
    seed=3,
    name="chaos",
)
N_CELLS = len(SPEC.cells())


def fake_worker(cell: CampaignCell) -> dict:
    return {
        "accuracy": (cell.seed % 1000) / 1000.0,
        "completed": True,
        "discovery_seconds": 0.0,
        "fit_seconds": 0.0,
    }


def unstable_worker(cell: CampaignCell) -> dict:
    """Fake worker with one permanently-crashing baseline cell."""
    if cell.dataset == "CBF" and cell.method == "TSF":
        raise MemoryError("baseline blew the heap")
    return fake_worker(cell)


def reference_digest(worker, tmp_path, fault_plan=None, retries=3) -> str:
    """Frame digest of an uninterrupted run (the chaos oracle)."""
    d = tmp_path / "reference"
    CampaignRunner(
        SPEC, d, worker_fn=worker, fault_plan=fault_plan, retries=retries
    ).run()
    return build_frame(d, SPEC).digest()


class TestKillAtCellBoundary:
    def test_random_boundary_kills_then_resume_bitidentical(self, tmp_path):
        """SIGKILL at a cell boundary == stopping after N cells: resume
        repeatedly from random kill points; the final frame is
        bit-identical and no finished cell ever re-runs."""
        oracle = reference_digest(fake_worker, tmp_path)
        rng = np.random.default_rng(42)
        d = tmp_path / "killed"
        for _round in range(30):  # bounded; breaks when complete
            runner = CampaignRunner(SPEC, d, worker_fn=fake_worker)
            status = runner.run(max_cells=int(rng.integers(1, 4)))
            if status["complete"]:
                break
        assert status["complete"]
        assert all(n == 1 for n in status["cell_starts"].values())
        assert len(status["cell_starts"]) == N_CELLS
        assert build_frame(d, SPEC).digest() == oracle

    def test_failed_cells_survive_kill_resume_identically(self, tmp_path):
        """A permanently-crashing baseline yields the same typed ``failed``
        row whether or not the campaign was killed and resumed around it."""
        oracle = reference_digest(unstable_worker, tmp_path, retries=1)
        d = tmp_path / "killed"
        for _ in range(N_CELLS):
            status = CampaignRunner(
                SPEC, d, worker_fn=unstable_worker, retries=1
            ).run(max_cells=2)
            if status["complete"]:
                break
        assert status["complete"]
        assert status["n_failed"] == 2  # CBF x TSF x {clean, noise}
        assert status["failed_cells"] == [
            ("CBF__TSF__clean", "MemoryError"),
            ("CBF__TSF__noise", "MemoryError"),
        ]
        assert build_frame(d, SPEC).digest() == oracle


class TestKillMidCell:
    def test_sigkill_mid_cell_leaves_cell_pending(self, tmp_path):
        """A process death *inside* a cell (journaled ``cell_started``,
        no ``cell_finished``) re-runs exactly that cell on resume."""
        d = tmp_path / "killed"
        calls = {"n": 0}

        def dying_worker(cell: CampaignCell) -> dict:
            calls["n"] += 1
            if calls["n"] == 4:
                raise SystemExit("simulated SIGKILL mid-cell")
            return fake_worker(cell)

        with pytest.raises(SystemExit):
            CampaignRunner(SPEC, d, worker_fn=dying_worker).run()
        runner = CampaignRunner(SPEC, d, worker_fn=fake_worker)
        events = runner.journal.replay()
        started = [r["cell_id"] for r in events if r["type"] == "cell_started"]
        finished = [r["cell_id"] for r in events if r["type"] == "cell_finished"]
        assert len(started) == 4 and len(finished) == 3
        victim = started[-1]
        status = runner.run()
        assert status["complete"]
        assert status["cell_starts"][victim] == 2  # the one re-run
        others = [
            n for cell_id, n in status["cell_starts"].items() if cell_id != victim
        ]
        assert all(n == 1 for n in others)
        assert build_frame(d, SPEC).digest() == reference_digest(
            fake_worker, tmp_path
        )


@pytest.mark.timeout_guard(120)
class TestFaultInjection:
    PLAN = FaultPlan(crash_rate=0.25, hang_rate=0.15, slow_rate=0.2,
                     slow_seconds=0.002, seed=99)

    def test_faults_are_transient_under_retries(self, tmp_path):
        """crash/hang/slow faults at these rates are absorbed by the retry
        ladder: same frame as a fault-free campaign."""
        clean = reference_digest(fake_worker, tmp_path)
        d = tmp_path / "faulty"
        status = CampaignRunner(
            SPEC, d, worker_fn=fake_worker, fault_plan=self.PLAN, retries=7
        ).run()
        assert status["complete"] and status["n_failed"] == 0
        assert build_frame(d, SPEC).digest() == clean

    def test_kill_resume_under_faults_bitidentical(self, tmp_path):
        """The full gauntlet: campaign killed at random boundaries while
        the chaos engine injects crash/hang/slow faults; resumed runs
        converge to the uninterrupted-run frame, bit for bit."""
        oracle = reference_digest(fake_worker, tmp_path, fault_plan=self.PLAN,
                                  retries=7)
        rng = np.random.default_rng(7)
        d = tmp_path / "gauntlet"
        for _round in range(30):
            status = CampaignRunner(
                SPEC, d, worker_fn=fake_worker, fault_plan=self.PLAN, retries=7
            ).run(max_cells=int(rng.integers(1, 5)))
            if status["complete"]:
                break
        assert status["complete"]
        assert all(n == 1 for n in status["cell_starts"].values())
        assert build_frame(d, SPEC).digest() == oracle
        # Determinism is attempt-keyed: the faulty run's payloads equal
        # the fault-free run's payloads, not merely its own replay.
        assert oracle == reference_digest(fake_worker, tmp_path / "again")


@pytest.mark.slow
@pytest.mark.timeout_guard(600)
class TestRealMatrixGate:
    """The acceptance gate on real evaluations: >=3 datasets x >=3 methods
    through the genuine ``run_cell`` worker, killed and resumed under
    faults, must reproduce the uninterrupted frame bit-identically with a
    typed failure row for a crashing baseline."""

    GATE_SPEC = CampaignSpec(
        datasets=("CBF", "GunPoint", "ItalyPowerDemand"),
        methods=("1NN-ED", "BOP", "TSF"),
        scenarios=("clean",),
        seed=0,
        max_train=8,
        max_test=12,
        max_length=60,
        name="gate",
    )
    PLAN = FaultPlan(crash_rate=0.2, hang_rate=0.1, slow_rate=0.1,
                     slow_seconds=0.002, seed=5)

    @staticmethod
    def gate_worker(cell: CampaignCell) -> dict:
        # One genuinely crashing baseline inside the real matrix.
        if cell.dataset == "GunPoint" and cell.method == "TSF":
            raise RuntimeError("baseline segfault stand-in")
        return run_cell(cell)

    def test_kill_resume_real_methods_bitidentical(self, tmp_path):
        reference = tmp_path / "reference"
        CampaignRunner(
            self.GATE_SPEC, reference, worker_fn=self.gate_worker,
            fault_plan=self.PLAN, retries=4,
        ).run()
        oracle = build_frame(reference, self.GATE_SPEC)
        assert oracle.n_rows == 9

        d = tmp_path / "killed"
        rng = np.random.default_rng(11)
        for _round in range(20):
            status = CampaignRunner(
                self.GATE_SPEC, d, worker_fn=self.gate_worker,
                fault_plan=self.PLAN, retries=4,
            ).run(max_cells=int(rng.integers(1, 3)))
            if status["complete"]:
                break
        assert status["complete"]
        # Zero re-runs of finished cells across every kill/resume cycle.
        assert all(n == 1 for n in status["cell_starts"].values())
        # The crashing baseline is a typed row, not an aborted campaign.
        assert status["failed_cells"] == [("GunPoint__TSF__clean", "RuntimeError")]
        frame = build_frame(d, self.GATE_SPEC)
        assert frame.digest() == oracle.digest()
        # Real accuracies made it through (not just placeholders).
        ok_acc = [
            row["accuracy"] for row in frame.rows() if row["status"] == "ok"
        ]
        assert len(ok_acc) == 8 and all(0.0 <= a <= 1.0 for a in ok_acc)

        # Report bundle renders from the partial-failure frame.
        report_dir = write_report(d)
        report = (report_dir / "report.txt").read_text()
        assert "RuntimeError" in report
        assert "Critical-difference" in report
        manifest = json.loads((report_dir / "manifest.json").read_text())
        assert manifest["frame_sha256"] == oracle.digest()
        assert set(manifest["files"]) == {
            "frame.json", "results.csv", "report.txt"
        }
