"""Tests for repro.datasets.perturb."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.perturb import (
    add_baseline_drift,
    add_dropout,
    add_gaussian_noise,
    add_label_noise,
    add_spikes,
    mask_missing,
    time_warp,
)
from repro.exceptions import ValidationError


@pytest.fixture()
def X(rng):
    return rng.normal(size=(6, 80))


ALL_PERTURBATIONS = [
    lambda X: add_gaussian_noise(X, 0.5, seed=1),
    lambda X: add_spikes(X, rate=0.05, seed=1),
    lambda X: add_dropout(X, rate=0.1, seed=1),
    lambda X: add_baseline_drift(X, magnitude=0.5, seed=1),
    lambda X: time_warp(X, max_warp=0.1, seed=1),
    lambda X: mask_missing(X, rate=0.15, block=4, seed=1),
    lambda X: mask_missing(X, rate=0.15, block=4, fill="zero", seed=1),
]


@pytest.mark.parametrize("perturb", ALL_PERTURBATIONS)
class TestCommonContracts:
    def test_pure_and_shape_preserving(self, X, perturb):
        before = X.copy()
        out = perturb(X)
        assert out.shape == X.shape
        assert np.array_equal(X, before)  # input untouched
        assert np.all(np.isfinite(out))

    def test_deterministic(self, X, perturb):
        assert np.array_equal(perturb(X), perturb(X))


class TestGaussianNoise:
    def test_zero_scale_is_identity(self, X):
        assert np.array_equal(add_gaussian_noise(X, 0.0), X)

    def test_scale_controls_deviation(self, X):
        small = add_gaussian_noise(X, 0.1, seed=2) - X
        large = add_gaussian_noise(X, 2.0, seed=2) - X
        assert large.std() > 5 * small.std()

    def test_negative_scale_rejected(self, X):
        with pytest.raises(ValidationError):
            add_gaussian_noise(X, -1.0)


class TestSpikes:
    def test_spike_rate_approximate(self, X):
        out = add_spikes(X, rate=0.2, magnitude=10.0, seed=3)
        changed = np.mean(out != X)
        assert 0.1 < changed < 0.3

    def test_zero_rate_identity(self, X):
        assert np.array_equal(add_spikes(X, rate=0.0), X)

    def test_bad_rate_rejected(self, X):
        with pytest.raises(ValidationError):
            add_spikes(X, rate=1.5)


class TestDropout:
    def test_endpoints_anchored(self, X):
        out = add_dropout(X, rate=0.5, seed=4)
        assert np.array_equal(out[:, 0], X[:, 0])
        assert np.array_equal(out[:, -1], X[:, -1])

    def test_interpolation_smooths(self, rng):
        # A spiky series loses its spikes when they drop.
        X = np.zeros((1, 50))
        X[0, 25] = 100.0
        out = add_dropout(X, rate=0.99, seed=5)
        assert out[0, 25] < 100.0

    def test_bad_rate_rejected(self, X):
        with pytest.raises(ValidationError):
            add_dropout(X, rate=1.0)


class TestMaskMissing:
    def test_endpoints_anchored(self, X):
        out = mask_missing(X, rate=0.4, block=6, seed=3)
        assert np.array_equal(out[:, 0], X[:, 0])
        assert np.array_equal(out[:, -1], X[:, -1])

    def test_gaps_are_contiguous_blocks(self):
        # With nan fill the mask is directly visible: every masked run
        # away from the (kept) endpoints spans at least the block length.
        X = np.arange(200, dtype=float).reshape(1, 200)
        out = mask_missing(X, rate=0.2, block=8, fill="nan", seed=4)
        mask = np.isnan(out[0])
        assert mask.any()
        runs = np.flatnonzero(np.diff(np.concatenate(([0], mask.view(np.int8), [0]))))
        lengths = runs[1::2] - runs[0::2]
        starts = runs[0::2]
        interior = (starts > 0) & (starts + lengths < 200)
        assert np.all(lengths[interior] >= 8)

    def test_fill_modes(self):
        X = np.arange(1.0, 101.0).reshape(1, 100)  # no genuine zeros
        interpolated = mask_missing(X, rate=0.3, block=5, seed=5)
        # A linear ramp interpolates back to itself exactly.
        assert np.allclose(interpolated, X)
        zeroed = mask_missing(X, rate=0.3, block=5, fill="zero", seed=5)
        nan = mask_missing(X, rate=0.3, block=5, fill="nan", seed=5)
        assert (zeroed[0] == 0.0).sum() >= 1
        assert np.array_equal(zeroed[0] == 0.0, np.isnan(nan[0]))

    def test_zero_rate_identity(self, X):
        assert np.array_equal(mask_missing(X, rate=0.0), X)

    def test_bad_args_rejected(self, X):
        with pytest.raises(ValidationError):
            mask_missing(X, rate=1.0)
        with pytest.raises(ValidationError):
            mask_missing(X, block=0)
        with pytest.raises(ValidationError):
            mask_missing(X, fill="mean")


class TestLabelNoise:
    @pytest.fixture()
    def y(self, rng):
        return rng.integers(0, 3, size=200)

    def test_pure_seeded_deterministic(self, y):
        before = y.copy()
        first = add_label_noise(y, rate=0.2, seed=9)
        second = add_label_noise(y, rate=0.2, seed=9)
        assert np.array_equal(y, before)
        assert np.array_equal(first, second)
        assert not np.array_equal(add_label_noise(y, rate=0.2, seed=10), first)

    def test_flip_rate_approximate_and_always_changes(self, y):
        out = add_label_noise(y, rate=0.3, seed=11)
        changed = out != y
        assert 0.15 < changed.mean() < 0.45
        # Symmetric noise redraws from the *other* classes only.
        assert np.all(out[changed] != y[changed])
        assert set(np.unique(out)) <= set(np.unique(y))

    def test_string_labels_supported(self):
        y = np.array(["a", "b", "a", "b", "c", "c"] * 20)
        out = add_label_noise(y, rate=0.5, seed=12)
        assert set(np.unique(out)) <= {"a", "b", "c"}

    def test_zero_rate_identity(self, y):
        assert np.array_equal(add_label_noise(y, rate=0.0), y)

    def test_validation(self):
        with pytest.raises(ValidationError):
            add_label_noise(np.ones(10, dtype=int))  # single class
        with pytest.raises(ValidationError):
            add_label_noise(np.array([[0, 1]]))  # not 1-D
        with pytest.raises(ValidationError):
            add_label_noise(np.array([0, 1]), rate=1.5)


class TestComposition:
    """Perturbations compose: output of one is valid input to the next."""

    def test_composed_pipeline_deterministic(self, X):
        def corrupt(values):
            out = add_gaussian_noise(values, 0.2, seed=3)
            out = add_dropout(out, rate=0.1, seed=4)
            return add_spikes(out, rate=0.02, seed=5)

        first, second = corrupt(X), corrupt(X)
        assert np.array_equal(first, second)
        assert first.shape == X.shape
        assert np.all(np.isfinite(first))

    def test_composition_order_matters(self, X):
        a = add_dropout(add_gaussian_noise(X, 0.5, seed=1), rate=0.2, seed=2)
        b = add_gaussian_noise(add_dropout(X, rate=0.2, seed=2), 0.5, seed=1)
        assert not np.array_equal(a, b)


@pytest.mark.robustness
class TestTrainedCleanEvaluatedPerturbed:
    """End to end: discovery under injected worker faults, scoring on
    perturbed data — the full deployment-failure story in one scenario."""

    def test_fault_tolerant_training_matches_clean_on_perturbed_data(self):
        from repro.benchlib.runners import make_distributed_ips
        from repro.core.config import FaultToleranceConfig
        from repro.datasets.loader import load_dataset
        from repro.distributed.faults import FaultPlan

        data = load_dataset(
            "GunPoint", seed=0, max_train=16, max_test=24, max_length=100
        )
        y_test = data.test.classes_[data.test.y]

        def corrupt(values):
            return add_spikes(
                add_dropout(values, rate=0.1, seed=4), rate=0.02, seed=5
            )

        tolerance = FaultToleranceConfig(max_retries=5, base_delay=0.0)
        clean = make_distributed_ips(
            k=3, seed=0, q_n=4, q_s=3, fault_tolerance=tolerance
        ).fit_dataset(data.train)
        faulty = make_distributed_ips(
            k=3,
            seed=0,
            q_n=4,
            q_s=3,
            fault_plan=FaultPlan(crash_rate=0.2, nan_rate=0.1, seed=33),
            fault_tolerance=tolerance,
        ).fit_dataset(data.train)

        assert faulty.discovery_result_.extra["recovered_units"] > 0
        X_perturbed = corrupt(data.test.X)
        # Retries fully recover the injected faults, so the two models are
        # the same model — including on corrupted inputs.
        assert np.array_equal(
            clean.predict(X_perturbed), faulty.predict(X_perturbed)
        )
        assert faulty.score(X_perturbed, y_test) == clean.score(
            X_perturbed, y_test
        )


class TestDriftAndWarp:
    def test_drift_changes_mean_profile(self, X):
        out = add_baseline_drift(X, magnitude=2.0, seed=6)
        assert not np.allclose(out, X)
        # Drift is low-frequency: per-point diffs are smooth.
        delta = out[0] - X[0]
        assert np.abs(np.diff(delta)).max() < 1.0

    def test_warp_preserves_endpoints_roughly(self, X):
        out = time_warp(X, max_warp=0.1, seed=7)
        assert np.allclose(out[:, 0], X[:, 0], atol=1e-9)

    def test_zero_warp_identity(self, X):
        assert np.allclose(time_warp(X, max_warp=0.0, seed=8), X)

    def test_bad_warp_rejected(self, X):
        with pytest.raises(ValidationError):
            time_warp(X, max_warp=1.0)
