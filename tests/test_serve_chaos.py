"""Chaos suite for the serving path (PR acceptance).

Under every injected fault class — worker crash, hang, slow worker,
corrupt payload, corrupt artifact, overload — the service must:

1. never deadlock (every test runs under a ``timeout_guard``);
2. terminate every submitted request with either a prediction or a
   *typed* :class:`~repro.exceptions.ServeError`; and
3. keep every *successful* response bit-identical to offline
   ``IPSClassifier.predict`` — degradation may cost latency or
   availability, never correctness.

Faults are driven by the same deterministic
:class:`~repro.distributed.faults.FaultPlan` engine as the distributed
suite, keyed by request seed, so each campaign replays bit-for-bit.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.distributed.faults import FaultPlan
from repro.exceptions import (
    ArtifactIntegrityError,
    DeadlineExceededError,
    QueueFullError,
    RequestFailedError,
    RequestSheddedError,
    ServeError,
)
from repro.serve import (
    CORRUPT_LABEL,
    InferenceService,
    RequestFaultInjector,
    ServeConfig,
    load_artifact,
    save_artifact,
)

pytestmark = [pytest.mark.robustness, pytest.mark.timeout_guard(90)]


@pytest.fixture(scope="module")
def request_matrix(tiny_two_class):
    rng = np.random.default_rng(42)
    rows = rng.integers(0, tiny_two_class.n_series, size=40)
    return tiny_two_class.X[rows] + 0.05 * rng.normal(
        size=(40, tiny_two_class.series_length)
    )


@pytest.fixture(scope="module")
def offline(frozen_classifier, request_matrix):
    return frozen_classifier.predict(request_matrix)


def run_campaign(classifier, X, plan, config=None, metrics=None):
    config = config or ServeConfig(
        queue_depth=len(X), max_batch=8, breaker_reset_s=0.01
    )
    with InferenceService(
        classifier, config, fault_plan=plan, metrics=metrics
    ) as service:
        results = service.predict_many(X)
        stats = service.stats()
    return results, stats


def assert_all_terminated(results, offline, allowed_errors):
    """Invariants 2 and 3: typed termination, bit-identical successes."""
    assert len(results) == len(offline)
    for i, (label, error) in enumerate(results):
        if error is None:
            assert label == offline[i], f"request {i} answered wrongly"
        else:
            assert isinstance(error, ServeError)
            assert isinstance(error, allowed_errors), (
                f"request {i}: unexpected {type(error).__name__}"
            )


class TestFaultCampaigns:
    def test_worker_crashes_recovered_by_serial_retries(
        self, frozen_classifier, request_matrix, offline
    ):
        results, stats = run_campaign(
            frozen_classifier,
            request_matrix,
            FaultPlan(crash_rate=0.25, seed=101),
        )
        assert_all_terminated(results, offline, (RequestFailedError,))
        n_ok = sum(1 for _l, error in results if error is None)
        # Per-attempt crash odds of 0.25 across 1 batched + 3 serial
        # attempts: near-certain recovery for almost every request.
        assert n_ok >= len(results) - 2
        assert stats["serial_fallbacks"] > 0

    def test_hangs_surface_as_timeouts_and_recover(
        self, frozen_classifier, request_matrix, offline
    ):
        results, stats = run_campaign(
            frozen_classifier,
            request_matrix,
            FaultPlan(hang_rate=0.3, seed=13),
        )
        assert_all_terminated(results, offline, (RequestFailedError,))
        n_ok = sum(1 for _l, error in results if error is None)
        assert n_ok >= len(results) - 2
        assert stats["serial_fallbacks"] > 0

    def test_slow_workers_only_add_latency(
        self, frozen_classifier, request_matrix, offline
    ):
        """The satellite ``slow`` fault: jitter delays answers, never
        changes them — a zero-error, bit-identical campaign."""
        results, stats = run_campaign(
            frozen_classifier,
            request_matrix,
            FaultPlan(slow_rate=0.6, slow_seconds=0.002, seed=29),
        )
        assert all(error is None for _label, error in results)
        np.testing.assert_array_equal(
            np.array([label for label, _ in results]), offline
        )
        assert stats["failed"] == 0

    def test_corrupt_payloads_never_escape(
        self, frozen_classifier, request_matrix, offline
    ):
        results, _stats = run_campaign(
            frozen_classifier,
            request_matrix,
            FaultPlan(nan_rate=0.4, seed=7),
        )
        assert_all_terminated(results, offline, (RequestFailedError,))
        assert all(
            label != CORRUPT_LABEL for label, _e in results if label is not None
        )

    def test_total_failure_opens_breaker_but_stays_typed(
        self, frozen_classifier, request_matrix, offline
    ):
        """crash_rate=1.0: nothing can succeed, so every request must
        fail *typed*, the breaker must trip, and the service must keep
        accepting (and failing) work instead of wedging."""
        # max_batch=2: breaker failures are counted per *batch*, so the
        # threshold needs several distinct batch deaths to trip.
        results, stats = run_campaign(
            frozen_classifier,
            request_matrix[:12],
            FaultPlan(crash_rate=1.0, seed=3),
            config=ServeConfig(
                queue_depth=12, max_batch=2, breaker_reset_s=0.01
            ),
        )
        assert all(error is not None for _label, error in results)
        assert all(
            isinstance(error, RequestFailedError) for _l, error in results
        )
        assert stats["breaker"]["times_opened"] >= 1
        assert stats["failed"] == 12

    def test_breaker_recovers_after_fault_burst(
        self, frozen_classifier, request_matrix, offline
    ):
        """Open breaker degrades to serial; once faults stop, the
        half-open probe closes it again and batching resumes."""
        config = ServeConfig(
            queue_depth=64, max_batch=4, breaker_threshold=1,
            breaker_reset_s=0.01,
        )
        plan = FaultPlan(crash_rate=1.0, seed=3)
        with InferenceService(
            frozen_classifier, config, fault_plan=plan
        ) as service:
            for row in request_matrix[:3]:
                with pytest.raises(RequestFailedError):
                    service.predict(row)
            assert service.stats()["breaker"]["times_opened"] >= 1
            # Faults off: drop the injector, wait out the cool-down so
            # the next request becomes the half-open probe that heals.
            service._injector = None
            time.sleep(0.05)
            labels = [service.predict(row) for row in request_matrix[:6]]
            stats = service.stats()
        np.testing.assert_array_equal(np.array(labels), offline[:6])
        assert stats["breaker"]["state"] == "closed"

    def test_deadlines_enforced_while_workers_crawl(
        self, frozen_classifier, request_matrix, offline
    ):
        """Slow faults + a tight deadline: late requests expire with
        DeadlineExceededError at the batch boundary instead of queueing
        forever behind the crawl."""
        config = ServeConfig(queue_depth=64, max_batch=1)
        plan = FaultPlan(slow_rate=1.0, slow_seconds=0.1, seed=11)
        with InferenceService(
            frozen_classifier, config, fault_plan=plan
        ) as service:
            results = service.predict_many(request_matrix[:10], deadline_s=0.08)
        assert_all_terminated(
            results, offline[:10], (DeadlineExceededError, RequestFailedError)
        )
        expired = sum(
            1
            for _l, error in results
            if isinstance(error, DeadlineExceededError)
        )
        assert expired > 0

    def test_overload_sheds_oldest_but_accounts_for_everything(
        self, frozen_classifier, request_matrix, offline
    ):
        config = ServeConfig(
            queue_depth=4, shed_policy="shed-oldest", max_batch=2
        )
        plan = FaultPlan(slow_rate=1.0, slow_seconds=0.01, seed=5)
        with InferenceService(
            frozen_classifier, config, fault_plan=plan
        ) as service:
            results = service.predict_many(request_matrix)
            stats = service.stats()
        assert_all_terminated(results, offline, (RequestSheddedError,))
        shed = sum(
            1 for _l, e in results if isinstance(e, RequestSheddedError)
        )
        n_ok = sum(1 for _l, e in results if e is None)
        assert shed > 0 and shed == stats["shed"]
        assert n_ok + shed == len(results)  # nothing lost, nothing hung

    def test_overload_reject_newest_pushes_back(
        self, frozen_classifier, request_matrix, offline
    ):
        config = ServeConfig(
            queue_depth=4, shed_policy="reject-newest", max_batch=2
        )
        plan = FaultPlan(slow_rate=1.0, slow_seconds=0.01, seed=5)
        with InferenceService(
            frozen_classifier, config, fault_plan=plan
        ) as service:
            results = service.predict_many(request_matrix)
            stats = service.stats()
        assert_all_terminated(results, offline, (QueueFullError,))
        rejected = sum(
            1 for _l, e in results if isinstance(e, QueueFullError)
        )
        assert rejected > 0 and rejected == stats["rejected"]

    def test_mixed_campaign_all_faults_at_once(
        self, frozen_classifier, request_matrix, offline
    ):
        plan = FaultPlan(
            crash_rate=0.15,
            hang_rate=0.1,
            nan_rate=0.15,
            slow_rate=0.15,
            slow_seconds=0.002,
            seed=97,
        )
        results, stats = run_campaign(frozen_classifier, request_matrix, plan)
        assert_all_terminated(results, offline, (RequestFailedError,))
        assert stats["submitted"] == len(request_matrix)
        assert (
            stats["completed"] + stats["failed"] + stats["expired"]
            == len(request_matrix)
        )


class TestChaosTelemetry:
    """Chaos-path metric assertions: the live ``serve.*`` counters must
    reconcile exactly with the typed per-request outcomes — telemetry
    that drifts from the futures under faults is worse than none."""

    @staticmethod
    def _error_counts(results):
        counts: dict[type, int] = {}
        for _label, error in results:
            if error is not None:
                counts[type(error)] = counts.get(type(error), 0) + 1
        return counts

    def test_shed_counters_reconcile_under_overload(
        self, frozen_classifier, request_matrix, offline
    ):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        results, stats = run_campaign(
            frozen_classifier,
            request_matrix,
            FaultPlan(slow_rate=1.0, slow_seconds=0.01, seed=5),
            config=ServeConfig(
                queue_depth=4, shed_policy="shed-oldest", max_batch=2
            ),
            metrics=registry,
        )
        assert_all_terminated(results, offline, (RequestSheddedError,))
        counters = registry.snapshot()["counters"]
        shed_errors = self._error_counts(results).get(RequestSheddedError, 0)
        assert shed_errors > 0
        assert counters["serve.shed"] == stats["shed"] == shed_errors
        assert counters["serve.submitted"] == len(request_matrix)
        assert (
            counters["serve.completed"] + counters["serve.shed"]
            == len(request_matrix)
        )

    def test_reject_counters_reconcile_under_backpressure(
        self, frozen_classifier, request_matrix, offline
    ):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        results, stats = run_campaign(
            frozen_classifier,
            request_matrix,
            FaultPlan(slow_rate=1.0, slow_seconds=0.01, seed=5),
            config=ServeConfig(
                queue_depth=4, shed_policy="reject-newest", max_batch=2
            ),
            metrics=registry,
        )
        assert_all_terminated(results, offline, (QueueFullError,))
        counters = registry.snapshot()["counters"]
        rejected = self._error_counts(results).get(QueueFullError, 0)
        assert rejected > 0
        assert counters["serve.rejected"] == stats["rejected"] == rejected
        # Rejected requests never enter the queue, so submitted counts
        # only the admitted ones — and they all completed.
        assert counters["serve.submitted"] == len(request_matrix) - rejected
        assert counters["serve.completed"] == counters["serve.submitted"]

    def test_breaker_open_reaches_gauge_and_failed_counter(
        self, frozen_classifier, request_matrix, offline
    ):
        from repro.obs import MetricsRegistry
        from repro.serve.service import BREAKER_STATE_GAUGE

        registry = MetricsRegistry()
        results, stats = run_campaign(
            frozen_classifier,
            request_matrix[:12],
            FaultPlan(crash_rate=1.0, seed=3),
            config=ServeConfig(
                # reset_s far above the campaign length: the breaker
                # stays open once tripped, so the final gauge is stable.
                queue_depth=12, max_batch=2, breaker_reset_s=60.0
            ),
            metrics=registry,
        )
        assert all(error is not None for _label, error in results)
        assert stats["breaker"]["times_opened"] >= 1
        snap = registry.snapshot()
        failed = self._error_counts(results).get(RequestFailedError, 0)
        assert snap["counters"]["serve.failed"] == stats["failed"] == failed
        assert snap["counters"]["serve.serial_fallbacks"] > 0
        assert snap["gauges"]["serve.breaker_state"] == BREAKER_STATE_GAUGE["open"]

    def test_mixed_fault_totals_reconcile(
        self, frozen_classifier, request_matrix, offline
    ):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        results, _stats = run_campaign(
            frozen_classifier,
            request_matrix,
            FaultPlan(
                crash_rate=0.15,
                hang_rate=0.1,
                nan_rate=0.15,
                slow_rate=0.15,
                slow_seconds=0.002,
                seed=97,
            ),
            metrics=registry,
        )
        assert_all_terminated(results, offline, (RequestFailedError,))
        counters = registry.snapshot()["counters"]
        typed = self._error_counts(results)
        n_errors = sum(typed.values())
        # Counters appear on first increment; absent means zero.
        expired = counters.get("serve.expired", 0)
        assert (
            counters["serve.completed"] + counters["serve.failed"] + expired
            == counters["serve.submitted"]
            == len(request_matrix)
        )
        assert counters["serve.failed"] + expired == n_errors
        # Latency telemetry covered every terminated request.
        windows = registry.snapshot()["windows"]
        assert (
            windows["serve.request_latency_seconds"]["count"]
            == len(request_matrix)
        )


class TestCorruptArtifactChaos:
    def test_bit_flip_refused_before_serving(
        self, tmp_path, frozen_classifier
    ):
        artifact = tmp_path / "model"
        save_artifact(frozen_classifier, artifact)
        payload = bytearray((artifact / "model.bin").read_bytes())
        payload[len(payload) // 3] ^= 0x01  # single flipped bit
        (artifact / "model.bin").write_bytes(bytes(payload))
        with pytest.raises(ArtifactIntegrityError, match="checksum"):
            load_artifact(artifact)

    def test_truncated_payload_refused(self, tmp_path, frozen_classifier):
        artifact = tmp_path / "model"
        save_artifact(frozen_classifier, artifact)
        payload = (artifact / "model.bin").read_bytes()
        (artifact / "model.bin").write_bytes(payload[: len(payload) // 2])
        with pytest.raises(ArtifactIntegrityError, match="checksum"):
            load_artifact(artifact)

    def test_intact_artifact_serves_bit_identically(
        self, tmp_path, frozen_classifier, request_matrix, offline
    ):
        artifact = tmp_path / "model"
        save_artifact(frozen_classifier, artifact)
        loaded = load_artifact(artifact)
        with InferenceService(loaded) as service:
            results = service.predict_many(request_matrix)
        assert all(error is None for _l, error in results)
        np.testing.assert_array_equal(
            np.array([label for label, _ in results]), offline
        )


class TestDeterminismAndSurvival:
    def test_fault_decisions_replay_bit_for_bit(self):
        kwargs = dict(
            crash_rate=0.2, hang_rate=0.1, nan_rate=0.2, slow_rate=0.2, seed=77
        )
        a = RequestFaultInjector(FaultPlan(**kwargs))
        b = RequestFaultInjector(FaultPlan(**kwargs))
        decisions = [
            (s, t, a.decide(s, t)) for s in range(64) for t in range(3)
        ]
        assert decisions == [
            (s, t, b.decide(s, t)) for s in range(64) for t in range(3)
        ]
        kinds = {d for _s, _t, d in decisions if d is not None}
        assert {"crash", "nan", "slow"} <= kinds  # the campaign is real

    def test_worker_loop_survives_arbitrary_internal_errors(
        self, frozen_classifier, request_matrix, offline
    ):
        """Even a non-Serve exception inside the kernel path must fail
        requests typed and leave the workers alive for the next batch."""
        with InferenceService(frozen_classifier) as service:
            original = service._predict_matrix

            def explode(X):
                raise RuntimeError("boom: simulated kernel bug")

            service._predict_matrix = explode
            results = service.predict_many(request_matrix[:4])
            assert all(
                isinstance(error, RequestFailedError) for _l, error in results
            )
            service._predict_matrix = original  # "deploy the fix"
            assert service.predict(request_matrix[0]) == offline[0]
            assert service.running
