"""Tests for repro.instanceprofile.candidates (Algorithm 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.instanceprofile.candidates import CandidatePool, generate_candidates
from repro.types import Candidate, CandidateKind


def _cand(label=0, kind=CandidateKind.MOTIF, start=0) -> Candidate:
    return Candidate(values=np.arange(4.0) + start, label=label, kind=kind, start=start)


class TestCandidatePool:
    def test_add_and_retrieve_by_kind(self):
        pool = CandidatePool()
        pool.add(_cand(kind=CandidateKind.MOTIF))
        pool.add(_cand(kind=CandidateKind.DISCORD))
        assert len(pool.motifs(0)) == 1
        assert len(pool.discords(0)) == 1
        assert len(pool.all_of_class(0)) == 2

    def test_other_classes(self):
        pool = CandidatePool()
        pool.add(_cand(label=0))
        pool.add(_cand(label=1))
        pool.add(_cand(label=2))
        others = pool.other_classes(1)
        assert {c.label for c in others} == {0, 2}

    def test_remove(self):
        pool = CandidatePool()
        cand = _cand()
        pool.add(cand)
        assert pool.remove(cand)
        assert not pool.remove(cand)
        assert len(pool) == 0

    def test_counts(self):
        pool = CandidatePool()
        pool.add(_cand(label=0, kind=CandidateKind.MOTIF))
        pool.add(_cand(label=0, kind=CandidateKind.DISCORD, start=1))
        pool.add(_cand(label=0, kind=CandidateKind.DISCORD, start=2))
        assert pool.counts() == {0: (1, 2)}

    def test_copy_is_independent(self):
        pool = CandidatePool()
        cand = _cand()
        pool.add(cand)
        clone = pool.copy()
        clone.remove(cand)
        assert len(pool) == 1
        assert len(clone) == 0

    def test_iteration_covers_everything(self):
        pool = CandidatePool()
        for label in (0, 1):
            for start in (0, 1):
                pool.add(_cand(label=label, start=start))
        assert sum(1 for _ in pool) == 4


class TestGenerateCandidates:
    def test_pool_size_matches_algorithm1(self, tiny_two_class):
        """Q_N samples x |lengths| x (1 motif + 1 discord) per class."""
        pool = generate_candidates(
            tiny_two_class, q_n=5, q_s=3, lengths=[10, 20], seed=0
        )
        # 2 classes x 5 samples x 2 lengths x 2 kinds = 40.
        assert len(pool) == 40
        for label in (0, 1):
            assert len(pool.motifs(label)) == 10
            assert len(pool.discords(label)) == 10

    def test_candidate_lengths_match_grid(self, tiny_two_class):
        pool = generate_candidates(tiny_two_class, q_n=3, q_s=2, lengths=[8, 16], seed=0)
        assert {c.length for c in pool} == {8, 16}

    def test_provenance_round_trips(self, tiny_two_class):
        pool = generate_candidates(tiny_two_class, q_n=4, q_s=3, lengths=[12], seed=1)
        for cand in pool:
            row = tiny_two_class.X[cand.source_instance]
            assert np.allclose(
                row[cand.start : cand.start + cand.length], cand.values
            )
            assert tiny_two_class.y[cand.source_instance] == cand.label

    def test_deterministic_with_seed(self, tiny_two_class):
        a = generate_candidates(tiny_two_class, q_n=3, q_s=2, lengths=[10], seed=5)
        b = generate_candidates(tiny_two_class, q_n=3, q_s=2, lengths=[10], seed=5)
        assert list(a) == list(b)

    def test_multiple_harvest_per_profile(self, tiny_two_class):
        pool = generate_candidates(
            tiny_two_class, q_n=2, q_s=3, lengths=[10],
            motifs_per_profile=3, discords_per_profile=2, seed=0,
        )
        assert len(pool.motifs(0)) == 6  # 2 samples x 3 motifs
        assert len(pool.discords(0)) == 4

    def test_rejects_empty_lengths(self, tiny_two_class):
        with pytest.raises(ValidationError):
            generate_candidates(tiny_two_class, q_n=1, q_s=2, lengths=[])

    def test_rejects_oversized_length(self, tiny_two_class):
        with pytest.raises(ValidationError):
            generate_candidates(
                tiny_two_class, q_n=1, q_s=2,
                lengths=[tiny_two_class.series_length + 1],
            )

    def test_full_length_window_still_works(self):
        """Window == instance length: one window per instance, all valid."""
        from repro.ts.series import Dataset

        ds = Dataset(X=np.random.default_rng(0).normal(size=(4, 30)), y=[0, 0, 1, 1])
        pool = generate_candidates(ds, q_n=2, q_s=2, lengths=[30], seed=0)
        assert len(pool) > 0
        assert all(c.length == 30 and c.start == 0 for c in pool)
