"""Tests for repro.filters.distribution (Table III machinery)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.filters.distribution import (
    DistributionFit,
    fit_best_distribution,
    nmse,
)


class TestNMSE:
    def test_perfect_fit_zero(self):
        h = np.array([0.1, 0.4, 0.4, 0.1])
        assert nmse(h, h) == 0.0

    def test_positive_for_mismatch(self):
        assert nmse(np.array([1.0, 0.0]), np.array([0.0, 1.0])) > 0.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            nmse(np.ones(3), np.ones(4))

    def test_zero_histogram_gives_inf(self):
        assert nmse(np.zeros(4), np.ones(4)) == float("inf")


class TestFitBestDistribution:
    def test_gaussian_sample_fits_norm(self, rng):
        sample = rng.normal(size=4000)
        best, results = fit_best_distribution(sample, bins=20)
        assert best.name == "norm"
        assert best.nmse < 0.1
        assert len(results) >= 3

    def test_results_sorted_by_nmse(self, rng):
        _best, results = fit_best_distribution(rng.normal(size=1000))
        nmses = [r.nmse for r in results]
        assert nmses == sorted(nmses)

    def test_uniform_sample_prefers_uniform_over_norm(self, rng):
        sample = rng.uniform(-1, 1, size=4000)
        _best, results = fit_best_distribution(sample, bins=16)
        by_name = {r.name: r.nmse for r in results}
        assert by_name["uniform"] < by_name["norm"]

    def test_exponential_sample(self, rng):
        sample = rng.exponential(scale=2.0, size=4000)
        best, _results = fit_best_distribution(sample, bins=20)
        # Exponential data is fit well by expon or gamma (its superfamily).
        assert best.name in ("expon", "gamma", "lognorm")

    def test_constant_sample_degenerate_norm(self):
        best, results = fit_best_distribution(np.full(50, 3.0))
        assert best.name == "norm"
        assert best.params == (3.0, 0.0)
        assert best.nmse == 0.0

    def test_empty_sample_rejected(self):
        with pytest.raises(ValidationError):
            fit_best_distribution(np.array([]))

    def test_fit_pdf_and_moments(self, rng):
        best, _ = fit_best_distribution(rng.normal(loc=2.0, size=3000))
        mean, std = best.mean_std()
        assert mean == pytest.approx(2.0, abs=0.15)
        assert std == pytest.approx(1.0, abs=0.15)
        density = best.pdf(np.array([mean]))
        assert density[0] > 0.0

    def test_distribution_fit_is_frozen(self):
        fit = DistributionFit(name="norm", params=(0.0, 1.0), nmse=0.0)
        with pytest.raises(AttributeError):
            fit.nmse = 1.0  # type: ignore[misc]
