"""Tests for repro.core.analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.analysis import (
    ShapeletMatch,
    best_matches,
    coverage_matrix,
    coverage_summary,
    match_position_histogram,
    shapelet_quality,
)
from repro.core.config import IPSConfig
from repro.core.pipeline import IPS
from repro.datasets.generators import make_planted_dataset
from repro.exceptions import ValidationError
from repro.types import Shapelet


@pytest.fixture(scope="module")
def discovered():
    dataset = make_planted_dataset(n_classes=2, n_instances=16, length=70, seed=41)
    config = IPSConfig(q_n=6, q_s=3, k=3, length_ratios=(0.2, 0.3), seed=0)
    result = IPS(config).discover(dataset)
    return dataset, result.shapelets


class TestBestMatches:
    def test_exact_match_found(self, rng):
        X = rng.normal(size=(3, 50))
        shapelet = Shapelet(values=X[1, 12:22].copy(), label=0)
        matches = best_matches(shapelet, X)
        assert matches[1].position == 12
        assert matches[1].distance == pytest.approx(0.0, abs=1e-9)

    def test_one_match_per_series(self, discovered):
        dataset, shapelets = discovered
        matches = best_matches(shapelets[0], dataset.X)
        assert len(matches) == dataset.n_series
        assert all(isinstance(m, ShapeletMatch) for m in matches)

    def test_1d_input(self, rng):
        x = rng.normal(size=40)
        shapelet = Shapelet(values=x[5:15].copy(), label=0)
        matches = best_matches(shapelet, x)
        assert len(matches) == 1
        assert matches[0].position == 5

    def test_oversized_shapelet_rejected(self, rng):
        shapelet = Shapelet(values=rng.normal(size=100), label=0)
        with pytest.raises(ValidationError):
            best_matches(shapelet, rng.normal(size=(2, 50)))


class TestPositionHistogram:
    def test_sums_to_instances(self, discovered):
        dataset, shapelets = discovered
        histogram = match_position_histogram(shapelets[0], dataset.X)
        assert histogram.sum() == dataset.n_series

    def test_localized_pattern_concentrates(self, rng):
        """A pattern always planted at the same place gives a peaked histogram."""
        X = rng.normal(size=(20, 60)) * 0.1
        pattern = np.sin(np.linspace(0, 2 * np.pi, 12)) * 5
        X[:, 20:32] += pattern
        shapelet = Shapelet(values=pattern, label=0)
        histogram = match_position_histogram(shapelet, X, n_bins=10)
        assert histogram.max() == 20  # all matches in one bin


class TestShapeletQuality:
    def test_discovered_shapelets_have_positive_gain(self, discovered):
        dataset, shapelets = discovered
        gains = [shapelet_quality(s, dataset).information_gain for s in shapelets]
        assert max(gains) > 0.1

    def test_separation_sign_for_good_shapelet(self, discovered):
        dataset, shapelets = discovered
        best = max(
            (shapelet_quality(s, dataset) for s in shapelets),
            key=lambda q: q.information_gain,
        )
        assert best.separation > 0.0

    def test_bad_label_rejected(self, discovered, rng):
        dataset, _shapelets = discovered
        rogue = Shapelet(values=rng.normal(size=10), label=99)
        with pytest.raises(ValidationError):
            shapelet_quality(rogue, dataset)


class TestCoverage:
    def test_matrix_shape(self, discovered):
        dataset, shapelets = discovered
        matrix = coverage_matrix(shapelets, dataset)
        assert matrix.shape == (dataset.n_series, len(shapelets))
        assert matrix.dtype == bool

    def test_summary_fields_consistent(self, discovered):
        dataset, shapelets = discovered
        summary = coverage_summary(shapelets, dataset)
        assert 0.0 <= summary["covered_fraction"] <= 1.0
        assert summary["uncovered"] == dataset.n_series * (
            1.0 - summary["covered_fraction"]
        )

    def test_good_shapelet_set_covers_most(self, discovered):
        dataset, shapelets = discovered
        summary = coverage_summary(shapelets, dataset)
        assert summary["covered_fraction"] > 0.6

    def test_empty_set_rejected(self, discovered):
        dataset, _shapelets = discovered
        with pytest.raises(ValidationError):
            coverage_matrix([], dataset)
