"""Tests for repro.viz: terminal plots."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.viz import bar_chart, line_plot, scatter_plot, sparkline


class TestSparkline:
    def test_width(self, rng):
        assert len(sparkline(rng.normal(size=30), width=20)) == 20

    def test_monotone_ramp(self):
        out = sparkline(np.linspace(0, 1, 40), width=10)
        levels = [out.index(c) if False else c for c in out]
        # First char is the lowest level, last the highest.
        assert out[0] == " "
        assert out[-1] == "@"

    def test_flat_series(self):
        out = sparkline(np.full(10, 3.0), width=8)
        assert set(out) == {" "}

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            sparkline(np.array([]))


class TestLinePlot:
    def test_dimensions(self, rng):
        out = line_plot(rng.normal(size=50), width=30, height=8)
        lines = out.splitlines()
        assert len(lines) == 8
        assert all(len(line) >= 30 for line in lines)

    def test_extremes_labelled(self):
        # Extremes at the endpoints survive resampling exactly.
        out = line_plot(np.array([1.0, 3.0, 5.0]), width=10, height=4)
        assert "5" in out.splitlines()[0]
        assert "1" in out.splitlines()[-1]

    def test_marks_row(self):
        out = line_plot(np.arange(20.0), width=20, height=4, marks=[0, 19])
        marker_line = out.splitlines()[-1]
        assert marker_line.count("^") == 2

    def test_rejects_tiny_canvas(self, rng):
        with pytest.raises(ValidationError):
            line_plot(rng.normal(size=5), width=1, height=5)


class TestScatterPlot:
    def test_contains_points_and_diagonal(self, rng):
        x = rng.uniform(1, 10, size=15)
        out = scatter_plot(x, x * 2, width=30, height=10)
        assert "o" in out
        assert "." in out

    def test_log_mode(self, rng):
        x = rng.uniform(0.1, 100, size=10)
        out = scatter_plot(x, x * 3, log=True)
        assert "log10" in out

    def test_log_rejects_nonpositive(self):
        with pytest.raises(ValidationError):
            scatter_plot(np.array([1.0, -1.0]), np.array([1.0, 1.0]), log=True)

    def test_rejects_mismatched(self, rng):
        with pytest.raises(ValidationError):
            scatter_plot(rng.normal(size=3), rng.normal(size=4))


class TestBarChart:
    def test_bars_proportional(self):
        out = bar_chart(["a", "b"], np.array([1.0, 2.0]), width=10)
        lines = out.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_values_printed(self):
        out = bar_chart(["acc"], np.array([97.5]))
        assert "97.50" in out

    def test_rejects_mismatch(self):
        with pytest.raises(ValidationError):
            bar_chart(["a"], np.array([1.0, 2.0]))
