"""Serving-layer unit tests: artifacts, admission, breaker, service semantics.

The chaos campaigns live in ``test_serve_chaos.py``; this module pins
the deterministic per-component contracts:

* artifacts round-trip bit-identically, and every way an artifact can be
  wrong (missing, corrupt, truncated, version-drifted, not-a-model) is
  refused with the *right* typed error;
* the admission queue implements both overflow policies exactly;
* the circuit breaker walks closed -> open -> half-open -> closed under
  an injected clock, one probe at a time;
* the service validates requests per the configured data-contract mode,
  enforces deadlines at admission and batch boundaries, completes every
  accepted request on shutdown, and answers bit-identically to offline
  ``IPSClassifier.predict``.
"""

from __future__ import annotations

import json
import pickle
import shutil
import time

import numpy as np
import pytest

from repro.core.config import IPSConfig
from repro.core.pipeline import IPSClassifier
from repro.distributed.faults import FaultPlan
from repro.exceptions import (
    ArtifactError,
    ArtifactIntegrityError,
    ArtifactVersionError,
    DeadlineExceededError,
    InvalidRequestError,
    NotFittedError,
    QueueFullError,
    RequestSheddedError,
    ServiceClosedError,
    ValidationError,
)
from repro.serve import (
    ARTIFACT_FORMAT_VERSION,
    AdmissionQueue,
    CircuitBreaker,
    InferenceService,
    ServeConfig,
    ServeFuture,
    load_artifact,
    read_manifest,
    save_artifact,
)
from repro.serve.artifact import _sha256_file
from repro.serve.breaker import CLOSED, HALF_OPEN, OPEN

pytestmark = pytest.mark.robustness


@pytest.fixture(scope="module")
def artifact_dir(tmp_path_factory, frozen_classifier):
    path = tmp_path_factory.mktemp("artifact") / "model"
    save_artifact(frozen_classifier, path)
    return path


@pytest.fixture(scope="module")
def request_matrix(tiny_two_class):
    rng = np.random.default_rng(0)
    return tiny_two_class.X + 0.05 * rng.normal(size=tiny_two_class.X.shape)


def corrupted_copy(artifact_dir, dest):
    """A byte-flipped copy of an artifact (simulated bit rot)."""
    shutil.copytree(artifact_dir, dest)
    model = dest / "model.bin"
    payload = bytearray(model.read_bytes())
    payload[len(payload) // 2] ^= 0xFF
    model.write_bytes(bytes(payload))
    return dest


def rewrite_manifest(artifact_dir, dest, **updates):
    shutil.copytree(artifact_dir, dest)
    manifest = json.loads((dest / "manifest.json").read_text())
    manifest.update(updates)
    (dest / "manifest.json").write_text(json.dumps(manifest))
    return dest


class TestArtifacts:
    def test_round_trip_bit_identical(
        self, artifact_dir, frozen_classifier, request_matrix
    ):
        loaded = load_artifact(artifact_dir)
        np.testing.assert_array_equal(
            loaded.predict(request_matrix),
            frozen_classifier.predict(request_matrix),
        )

    def test_manifest_records_provenance(self, artifact_dir, tiny_two_class):
        manifest = read_manifest(artifact_dir)
        assert manifest["format_version"] == ARTIFACT_FORMAT_VERSION
        assert manifest["model"]["series_length"] == tiny_two_class.series_length
        assert manifest["model"]["n_classes"] == tiny_two_class.n_classes
        assert sorted(manifest["model"]["classes"]) == sorted(
            int(c) for c in tiny_two_class.classes_
        )
        assert "model.bin" in manifest["files"]
        assert isinstance(manifest["git_sha"], str)  # never None, never raises
        assert {"numpy", "python"} <= set(manifest["versions"])
        assert manifest["dataset"]["sha256"]

    def test_frozen_copy_leaves_original_fitted(
        self, artifact_dir, frozen_classifier, request_matrix
    ):
        # Saving must not mutate the live classifier (copy semantics).
        assert frozen_classifier.discovery_result_ is not None
        assert frozen_classifier.predict(request_matrix) is not None

    def test_save_unfitted_refused(self, tmp_path):
        with pytest.raises(NotFittedError):
            save_artifact(IPSClassifier(IPSConfig()), tmp_path / "nope")
        assert not (tmp_path / "nope" / "manifest.json").exists()

    def test_missing_directory_refused(self, tmp_path):
        with pytest.raises(ArtifactError, match="does not exist"):
            load_artifact(tmp_path / "never_written")

    def test_missing_manifest_refused(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(ArtifactError, match="manifest"):
            load_artifact(tmp_path / "empty")

    def test_bit_rot_fails_checksum(self, artifact_dir, tmp_path):
        bad = corrupted_copy(artifact_dir, tmp_path / "rotted")
        with pytest.raises(ArtifactIntegrityError, match="checksum"):
            load_artifact(bad)

    def test_unparseable_manifest_refused(self, artifact_dir, tmp_path):
        shutil.copytree(artifact_dir, tmp_path / "bad")
        (tmp_path / "bad" / "manifest.json").write_text("{truncated")
        with pytest.raises(ArtifactIntegrityError, match="unreadable"):
            load_artifact(tmp_path / "bad")

    def test_manifest_without_checksum_table_refused(
        self, artifact_dir, tmp_path
    ):
        shutil.copytree(artifact_dir, tmp_path / "bad")
        manifest = json.loads((tmp_path / "bad" / "manifest.json").read_text())
        del manifest["files"]
        (tmp_path / "bad" / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ArtifactIntegrityError, match="checksum table"):
            load_artifact(tmp_path / "bad")

    def test_future_format_version_refused(self, artifact_dir, tmp_path):
        bad = rewrite_manifest(artifact_dir, tmp_path / "v999", format_version=999)
        with pytest.raises(ArtifactVersionError, match="format_version"):
            load_artifact(bad)

    def test_version_drift_refused_only_when_strict(
        self, artifact_dir, tmp_path
    ):
        bad = rewrite_manifest(
            artifact_dir, tmp_path / "drift", versions={"numpy": "0.0.0"}
        )
        load_artifact(bad)  # tolerant by default
        with pytest.raises(ArtifactVersionError, match="drifted"):
            load_artifact(bad, strict_versions=True)

    def test_missing_payload_file_refused(self, artifact_dir, tmp_path):
        shutil.copytree(artifact_dir, tmp_path / "gone")
        (tmp_path / "gone" / "model.bin").unlink()
        with pytest.raises(ArtifactIntegrityError, match="missing"):
            load_artifact(tmp_path / "gone")

    def test_unpicklable_payload_refused(self, artifact_dir, tmp_path):
        # Valid checksum over garbage bytes: integrity passes, unpickling
        # must still be caught and typed.
        shutil.copytree(artifact_dir, tmp_path / "garbage")
        model = tmp_path / "garbage" / "model.bin"
        model.write_bytes(b"\x00not a pickle")
        rewrite_manifest(
            tmp_path / "garbage",
            tmp_path / "garbage2",
            files={"model.bin": _sha256_file(model)},
        )
        with pytest.raises(ArtifactIntegrityError, match="failed to load"):
            load_artifact(tmp_path / "garbage2")

    def test_wrong_payload_type_refused(self, artifact_dir, tmp_path):
        shutil.copytree(artifact_dir, tmp_path / "dict")
        model = tmp_path / "dict" / "model.bin"
        model.write_bytes(pickle.dumps({"not": "a classifier"}))
        rewrite_manifest(
            tmp_path / "dict",
            tmp_path / "dict2",
            files={"model.bin": _sha256_file(model)},
        )
        with pytest.raises(ArtifactIntegrityError, match="not an IPSClassifier"):
            load_artifact(tmp_path / "dict2")


class TestAdmissionQueue:
    def test_parameters_validated(self):
        with pytest.raises(ValidationError):
            AdmissionQueue(0)
        with pytest.raises(ValidationError):
            AdmissionQueue(4, policy="drop-everything")

    def test_reject_newest_backpressure(self):
        queue = AdmissionQueue(2, policy="reject-newest")
        assert queue.put("a") == []
        assert queue.put("b") == []
        with pytest.raises(QueueFullError, match="backpressure"):
            queue.put("c")
        stats = queue.stats()
        assert stats["rejected"] == 1 and stats["waiting"] == 2

    def test_shed_oldest_evicts_fifo(self):
        queue = AdmissionQueue(2, policy="shed-oldest")
        queue.put("a")
        queue.put("b")
        assert queue.put("c") == ["a"]  # oldest pays
        assert queue.get_batch(10, timeout=0.01) == ["b", "c"]
        assert queue.stats()["shed"] == 1

    def test_closed_queue_refuses_and_unblocks(self):
        queue = AdmissionQueue(2)
        queue.put("a")
        queue.close()
        with pytest.raises(ServiceClosedError):
            queue.put("b")
        # Closed queue still hands out what it holds, then empty batches.
        assert queue.get_batch(10, timeout=0.01) == ["a"]
        assert queue.get_batch(10, timeout=0.01) == []

    def test_drain_empties(self):
        queue = AdmissionQueue(4)
        queue.put("a")
        queue.put("b")
        assert queue.drain() == ["a", "b"]
        assert len(queue) == 0


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


class TestCircuitBreaker:
    def test_parameters_validated(self):
        with pytest.raises(ValidationError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValidationError):
            CircuitBreaker(reset_after=-1.0)

    def test_success_resets_the_streak(self):
        breaker = CircuitBreaker(failure_threshold=3, clock=FakeClock())
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED and breaker.allow()

    def test_trips_after_consecutive_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, reset_after=1.0, clock=clock)
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert breaker.stats()["times_opened"] == 1

    def test_half_open_admits_one_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_after=1.0, clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(1.0)
        assert breaker.state == HALF_OPEN
        assert breaker.allow()  # the probe
        assert not breaker.allow()  # everyone else waits on it
        breaker.record_success()
        assert breaker.state == CLOSED and breaker.allow()

    def test_probe_failure_reopens_immediately(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=5, reset_after=1.0, clock=clock)
        for _ in range(5):
            breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_failure()  # probe verdict: still broken
        assert breaker.state == OPEN
        assert not breaker.allow()
        clock.advance(1.0)
        assert breaker.allow()  # next probe window


class TestServeConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"queue_depth": 0},
            {"shed_policy": "coin-flip"},
            {"max_batch": 0},
            {"batch_wait_s": 0.0},
            {"default_deadline_s": -1.0},
            {"validation": "maybe"},
            {"n_workers": 0},
            {"serial_retries": -1},
            {"cache_max_entries": 0},
        ],
    )
    def test_bad_config_refused(self, kwargs):
        with pytest.raises(ValidationError):
            ServeConfig(**kwargs)


class TestServeFuture:
    def test_result_times_out_while_pending(self):
        future = ServeFuture(0)
        with pytest.raises(TimeoutError, match="still pending"):
            future.result(timeout=0.01)
        assert not future.done()


class TestInferenceService:
    def test_unfitted_classifier_refused(self):
        with pytest.raises(NotFittedError):
            InferenceService(IPSClassifier(IPSConfig()))

    def test_happy_path_bit_identical(self, frozen_classifier, request_matrix):
        offline = frozen_classifier.predict(request_matrix)
        with InferenceService(frozen_classifier) as service:
            results = service.predict_many(request_matrix)
            stats = service.stats()
        assert all(error is None for _label, error in results)
        np.testing.assert_array_equal(
            np.array([label for label, _ in results]), offline
        )
        assert stats["completed"] == len(request_matrix)
        assert stats["failed"] == 0 and stats["expired"] == 0

    def test_single_predict_matches_offline(
        self, frozen_classifier, request_matrix
    ):
        offline = frozen_classifier.predict(request_matrix[:1])[0]
        with InferenceService(frozen_classifier) as service:
            assert service.predict(request_matrix[0]) == offline

    def test_submit_before_start_refused(self, frozen_classifier):
        service = InferenceService(frozen_classifier)
        with pytest.raises(ServiceClosedError, match="not running"):
            service.submit(np.zeros(4))

    def test_nonpositive_deadline_expires_at_admission(
        self, frozen_classifier, request_matrix
    ):
        with InferenceService(frozen_classifier) as service:
            with pytest.raises(DeadlineExceededError, match="admission"):
                service.submit(request_matrix[0], deadline_s=0.0)

    def test_tiny_deadline_expires_at_batch_boundary(
        self, frozen_classifier, request_matrix
    ):
        with InferenceService(frozen_classifier) as service:
            future = service.submit(request_matrix[0], deadline_s=1e-9)
            with pytest.raises(DeadlineExceededError, match="deadline"):
                future.result(timeout=10.0)
        assert service.stats()["expired"] == 1

    @pytest.mark.parametrize(
        "series",
        [np.zeros((2, 8)), np.array([]), "not a series"],
        ids=["2d", "empty", "non-numeric"],
    )
    def test_malformed_requests_refused(self, frozen_classifier, series):
        with InferenceService(frozen_classifier) as service:
            with pytest.raises(InvalidRequestError):
                service.submit(series)
        assert service.stats()["invalid"] == 1

    def test_repair_mode_fixes_length_and_nans(
        self, frozen_classifier, tiny_two_class
    ):
        short = tiny_two_class.X[0][:-7].copy()
        short[3] = np.nan
        config = ServeConfig(validation="repair")
        with InferenceService(frozen_classifier, config) as service:
            label = service.predict(short)
        assert label in set(int(c) for c in tiny_two_class.classes_)

    def test_strict_mode_rejects_wrong_length_and_nans(
        self, frozen_classifier, tiny_two_class
    ):
        config = ServeConfig(validation="strict")
        with InferenceService(frozen_classifier, config) as service:
            with pytest.raises(InvalidRequestError, match="length"):
                service.submit(tiny_two_class.X[0][:-7])
            bad = tiny_two_class.X[0].copy()
            bad[0] = np.nan
            with pytest.raises(InvalidRequestError):
                service.submit(bad)

    def test_off_mode_requires_exact_finite_input(
        self, frozen_classifier, tiny_two_class, request_matrix
    ):
        offline = frozen_classifier.predict(request_matrix[:1])[0]
        config = ServeConfig(validation="off")
        with InferenceService(frozen_classifier, config) as service:
            assert service.predict(request_matrix[0]) == offline
            with pytest.raises(InvalidRequestError, match="length"):
                service.submit(tiny_two_class.X[0][:-7])
            bad = tiny_two_class.X[0].copy()
            bad[0] = np.inf
            with pytest.raises(InvalidRequestError, match="non-finite"):
                service.submit(bad)

    @pytest.mark.timeout_guard(30)
    def test_stop_completes_pending_with_typed_error(
        self, frozen_classifier, request_matrix
    ):
        """Shutdown never strands futures: queued work fails typed."""
        # Every attempt sleeps 0.3s, so the worker is busy with request 1
        # while 2 and 3 sit in the queue when stop() lands.
        plan = FaultPlan(hang_rate=1.0, hang_seconds=0.3, seed=0)
        config = ServeConfig(max_batch=1, serial_retries=0)
        service = InferenceService(frozen_classifier, config, fault_plan=plan)
        service.start()
        first = service.submit(request_matrix[0])
        time.sleep(0.05)  # let the worker take request 1
        queued = [service.submit(row) for row in request_matrix[1:3]]
        service.stop()
        for future in queued:
            with pytest.raises(ServiceClosedError, match="stopped"):
                future.result(timeout=5.0)
        assert first.done()  # the in-flight request still terminated

    @pytest.mark.timeout_guard(30)
    def test_shed_oldest_under_pressure(self, frozen_classifier, request_matrix):
        plan = FaultPlan(hang_rate=1.0, hang_seconds=0.25, seed=0)
        config = ServeConfig(
            queue_depth=1, shed_policy="shed-oldest", max_batch=1,
            serial_retries=0,
        )
        with InferenceService(frozen_classifier, config, fault_plan=plan) as service:
            service.submit(request_matrix[0])
            time.sleep(0.05)
            victim = service.submit(request_matrix[1])
            service.submit(request_matrix[2])  # queue full: sheds the victim
            with pytest.raises(RequestSheddedError, match="shed"):
                victim.result(timeout=5.0)
            assert service.stats()["shed"] == 1

    @pytest.mark.timeout_guard(30)
    def test_reject_newest_under_pressure(
        self, frozen_classifier, request_matrix
    ):
        plan = FaultPlan(hang_rate=1.0, hang_seconds=0.25, seed=0)
        config = ServeConfig(queue_depth=1, max_batch=1, serial_retries=0)
        with InferenceService(frozen_classifier, config, fault_plan=plan) as service:
            service.submit(request_matrix[0])
            time.sleep(0.05)
            service.submit(request_matrix[1])
            with pytest.raises(QueueFullError, match="full"):
                service.submit(request_matrix[2])
            assert service.stats()["rejected"] == 1

    def test_loadgen_regression_gate_semantics(self):
        from repro.benchlib.loadgen import apply_regression_gate

        def record(p99=0.01, rate=1000.0, n_requests=200):
            return {
                "workload": {
                    "n_requests": n_requests, "n_clients": 4,
                    "deadline_s": None, "validation": "repair",
                },
                "steady": {
                    "p99_latency_s": p99, "series_per_second": rate,
                    "mismatches": 0, "n_errors": 0,
                },
                "overload": {"mismatches": 0},
                "gate": {
                    "bit_identical": True,
                    "steady_error_free": True,
                    "overload_accounted": True,
                    "overload_shed_engaged": True,
                },
            }

        assert apply_regression_gate(record(), None)["gate"]["passed"]
        # Same workload, 4x slower: a real regression, gate fails.
        slow = apply_regression_gate(record(p99=0.05, rate=200.0), record())
        assert not slow["gate"]["no_regression"]
        assert not slow["gate"]["passed"]
        # Different workload: queue-wait scales with backlog, so the
        # comparison is skipped rather than misread as a regression.
        other = apply_regression_gate(
            record(p99=0.05, rate=200.0), record(n_requests=100)
        )
        assert other["gate"]["no_regression"]
        assert other["gate"]["passed"]

    def test_stats_surface_all_layers(self, frozen_classifier, request_matrix):
        with InferenceService(frozen_classifier) as service:
            service.predict(request_matrix[0])
            stats = service.stats()
        assert {"submitted", "completed", "batches", "serial_fallbacks"} <= set(
            stats
        )
        assert stats["queue"]["admitted"] == 1
        assert stats["breaker"]["state"] == CLOSED
        assert stats["cache_entries"] >= 0
