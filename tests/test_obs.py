"""The observability subsystem: spans, metrics, manifests, JSONL, modes.

Contracts pinned here:

* span trees are well-nested and closed even when the traced code raises
  or a budget truncates the run mid-phase;
* a JSONL round trip (``to_jsonl`` -> ``from_jsonl`` -> ``to_jsonl``) is
  bit-identical;
* ``IPS.discover`` under ``observability="trace+jsonl"`` yields a span
  tree covering every pipeline phase, a valid run manifest, and a file
  ``repro obs report`` can render;
* ``observability="off"`` is bit-identical to ``"counters"`` on outputs,
  allocates zero trace objects, and attaches neither ``"trace"`` nor
  ``"perf"`` to the result;
* baselines surface kernel perf counters at ``model.perf_``;
* distributed discovery leaves one ``"unit"`` event per work unit with
  retry/checkpoint provenance.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.fast_shapelets import FastShapelets
from repro.baselines.mp_base import MPBaseline
from repro.cli import main as cli_main
from repro.core.budget import Budget
from repro.core.config import IPSConfig
from repro.core.pipeline import IPS, IPSClassifier
from repro.datasets.generators import make_planted_dataset
from repro.distributed.discovery import DistributedIPS
from repro.distributed.faults import FaultPlan
from repro.exceptions import ValidationError
from repro.kernels import NULL_PERF_COUNTERS, NullPerfCounters, PerfCounters
from repro.obs import (
    NULL_TRACER,
    UNKNOWN_GIT_SHA,
    MetricsRegistry,
    Trace,
    dataset_fingerprint,
    load_trace,
    make_tracer,
    render_report,
    run_manifest,
)
from repro.obs.manifest import git_sha
from repro.obs.trace import NULL_SPAN, Span, jsonify


@pytest.fixture(scope="module")
def dataset():
    return make_planted_dataset(n_classes=2, n_instances=12, length=120, seed=3)


def _config(**overrides) -> IPSConfig:
    base = dict(k=3, q_n=8, q_s=3, seed=5)
    base.update(overrides)
    return IPSConfig(**base)


def _span_names(trace: Trace) -> set[str]:
    names: set[str] = set()

    def walk(span):
        names.add(span.name)
        for child in span.children:
            walk(child)

    for root in trace.roots:
        walk(root)
    return names


class TestSpanTree:
    def test_nesting_follows_call_structure(self):
        trace = Trace()
        with trace.span("outer", a=1) as outer:
            with trace.span("inner") as inner:
                trace.count("ticks", 2)
        assert trace.roots == [outer]
        assert outer.children == [inner]
        assert inner.counters == {"ticks": 2}
        assert trace.closed
        assert outer.end >= inner.end >= inner.start >= outer.start

    def test_closed_under_exceptions(self):
        trace = Trace()
        with pytest.raises(RuntimeError):
            with trace.span("outer"):
                with trace.span("inner"):
                    raise RuntimeError("boom")
        assert trace.closed
        # Still serializable after the failure.
        assert Trace.from_jsonl(trace.to_jsonl()).closed

    def test_unwinds_leaked_children(self):
        # An inner frame that opens a span without closing it (generator
        # abandoned mid-iteration, say) must not corrupt the tree.
        trace = Trace()
        with trace.span("outer"):
            cm = trace.span("leaked")
            cm.__enter__()  # never exited
        assert trace.roots[0].end is not None
        assert not trace._stack

    def test_events_and_attrs(self):
        trace = Trace()
        with trace.span("phase") as span:
            span.set(n=7)
            trace.event("checkpoint", reason="test")
        assert trace.roots[0].attrs["n"] == 7
        (event,) = trace.find("checkpoint")
        assert event.duration == 0.0
        assert event.attrs == {"reason": "test"}

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValidationError):
            Trace(mode="verbose")
        with pytest.raises(ValidationError):
            make_tracer("everything")


class TestJsonl:
    def test_round_trip_bit_identical(self):
        trace = Trace(mode="trace+jsonl")
        trace.manifest = {"seed": 3, "versions": {"repro": "0.1"}}
        with trace.span("discover", k=3):
            with trace.span("generation"):
                trace.count("candidates.generated", 12)
            trace.event("budget.exhausted", phase="generation")
        trace.metrics.gauge("kernels.cache_hit_rate", 0.5)
        trace.metrics.observe("phase_seconds.generation", 0.25)
        text = trace.to_jsonl()
        restored = Trace.from_jsonl(text)
        assert restored.to_jsonl() == text
        assert restored.mode == "trace+jsonl"
        assert restored.manifest["seed"] == 3
        assert _span_names(restored) == {
            "discover",
            "generation",
            "budget.exhausted",
        }

    def test_file_round_trip(self, tmp_path):
        trace = Trace()
        with trace.span("root"):
            pass
        path = tmp_path / "nested" / "trace.jsonl"
        text = trace.to_jsonl(path)
        assert path.read_text() == text
        assert Trace.from_jsonl(path).to_jsonl() == text

    def test_jsonify_handles_numpy_and_odd_types(self):
        assert jsonify(np.int64(3)) == 3
        assert jsonify(np.float64(0.5)) == 0.5
        assert jsonify((1, "a", None)) == [1, "a", None]
        assert jsonify({1: np.bool_(True)}) == {"1": True}
        assert isinstance(jsonify(object()), str)


class TestMetrics:
    def test_counters_gauges_histograms(self):
        registry = MetricsRegistry()
        registry.counter("a")
        registry.counter("a", 2)
        registry.gauge("g", 0.5)
        for value in (1.0, 3.0, 2.0):
            registry.observe("h", value)
        snap = registry.snapshot()
        assert snap["counters"]["a"] == 3
        assert snap["gauges"]["g"] == 0.5
        assert snap["histograms"]["h"] == {
            "count": 3,
            "sum": 6.0,
            "min": 1.0,
            "max": 3.0,
            "mean": 2.0,
        }
        restored = MetricsRegistry.from_snapshot(snap)
        assert restored.snapshot() == snap

    def test_absorb_perf_is_idempotent(self):
        registry = MetricsRegistry()
        registry.counter("candidates.generated", 10)
        perf = {"kernel_calls": 4, "cache_hits": 2, "cache_misses": 2,
                "cache_hit_rate": 0.5, "phase_seconds": {"generation": 0.1}}
        registry.absorb_perf(perf)
        registry.absorb_perf(perf)  # re-absorb after the transform phase
        snap = registry.snapshot()
        assert snap["counters"]["kernels.kernel_calls"] == 4
        assert snap["counters"]["candidates.generated"] == 10
        assert snap["gauges"]["phase_seconds.generation"] == 0.1

    def test_accumulate_perf_is_additive(self):
        registry = MetricsRegistry()
        perf = {"kernel_calls": 4, "phase_seconds": {"generation": 0.1}}
        registry.accumulate_perf(perf)
        registry.accumulate_perf(perf)
        snap = registry.snapshot()
        assert snap["counters"]["kernels.kernel_calls"] == 8
        assert snap["counters"]["runs"] == 2
        assert snap["histograms"]["phase_seconds.generation"]["count"] == 2


class TestDiscoveryTrace:
    def test_trace_covers_every_phase(self, dataset):
        ips = IPS(_config(observability="trace"))
        result = ips.discover(dataset)
        trace = result.extra["trace"]
        assert trace is ips.trace_
        assert trace.closed
        names = _span_names(trace)
        assert {
            "discover",
            "generation",
            "unit",
            "mp",
            "pruning",
            "dabf.build",
            "dabf.prune",
            "selection",
            "utility",
        } <= names
        # One unit span per (class, sample), carrying provenance attrs.
        units = trace.find("unit")
        assert len(units) == 2 * 8
        assert all("n_candidates" in u.attrs for u in units)
        counters = trace.metrics.snapshot()["counters"]
        assert counters["candidates.generated"] == result.n_candidates_generated
        assert counters["kernels.fft_count"] == result.extra["perf"]["fft_count"]

    def test_manifest_is_valid(self, dataset):
        ips = IPS(_config(observability="trace"))
        ips.discover(dataset)
        manifest = ips.trace_.manifest
        assert manifest["seed"] == 5
        assert manifest["config"]["k"] == 3
        assert manifest["config"]["observability"] == "trace"
        assert manifest["dataset"]["n_series"] == dataset.n_series
        assert manifest["dataset"]["sha256"] == dataset_fingerprint(dataset)[
            "sha256"
        ]
        assert "numpy" in manifest["versions"]
        assert "python" in manifest["versions"]
        # Stable fingerprint for identical data, different for different.
        assert dataset_fingerprint(dataset) == dataset_fingerprint(dataset)

    def test_budget_truncated_run_yields_closed_trace(self, dataset):
        config = _config(
            observability="trace", budget=Budget(max_candidates=1)
        )
        result = IPS(config).discover(dataset)
        assert not result.completed
        trace = result.extra["trace"]
        assert trace.closed
        assert trace.find("budget.exhausted")
        assert Trace.from_jsonl(trace.to_jsonl()).closed

    def test_jsonl_mode_writes_renderable_file(self, dataset, tmp_path):
        path = tmp_path / "run.jsonl"
        config = _config(
            observability="trace+jsonl", obs_jsonl_path=str(path)
        )
        IPS(config).discover(dataset)
        report = render_report(load_trace(path))
        assert "generation" in report
        assert "candidates.generated" in report
        assert "manifest" in report

    def test_classifier_shares_one_trace(self, dataset):
        clf = IPSClassifier(_config(observability="trace"))
        clf.fit_dataset(dataset)
        trace = clf.discovery_result_.extra["trace"]
        assert [root.name for root in trace.roots] == [
            "validation",
            "discover",
            "transform",
            "classify",
        ]
        assert trace.closed
        # Kernel counters include the transform phase work, once.
        counters = trace.metrics.snapshot()["counters"]
        assert counters["kernels.kernel_calls"] >= 0


class TestOffMode:
    def test_off_is_bit_identical_and_allocation_free(self, dataset):
        reference = IPS(_config(observability="counters")).discover(dataset)
        before = Span.allocated
        result = IPS(_config(observability="off")).discover(dataset)
        assert Span.allocated == before
        assert "trace" not in result.extra
        assert "perf" not in result.extra
        assert len(result.shapelets) == len(reference.shapelets)
        for mine, theirs in zip(result.shapelets, reference.shapelets):
            assert np.array_equal(mine.values, theirs.values)
            assert mine.score == theirs.score

    def test_counters_mode_attaches_perf(self, dataset):
        result = IPS(_config(observability="counters")).discover(dataset)
        assert "trace" not in result.extra
        assert result.extra["perf"]["fft_count"] > 0

    def test_null_perf_counters_swallow_everything(self):
        assert isinstance(NULL_PERF_COUNTERS, NullPerfCounters)
        assert not NULL_PERF_COUNTERS.enabled
        assert PerfCounters.enabled
        NULL_PERF_COUNTERS.cache_hits += 5
        assert NULL_PERF_COUNTERS.cache_hits == 0
        with NULL_PERF_COUNTERS.phase("generation"):
            pass
        assert NULL_PERF_COUNTERS.phase_seconds == {}
        assert NULL_PERF_COUNTERS.snapshot()["kernel_calls"] == 0
        assert NULL_PERF_COUNTERS.merge(PerfCounters()) is NULL_PERF_COUNTERS

    def test_null_tracer_is_reusable_and_inert(self):
        before = Span.allocated
        for _ in range(3):
            with NULL_TRACER.span("anything", a=1) as span:
                assert span is NULL_SPAN
                span.set(b=2)
            NULL_TRACER.event("e")
            NULL_TRACER.count("c")
        assert Span.allocated == before
        assert not NULL_TRACER.active
        assert make_tracer("off") is NULL_TRACER
        assert make_tracer("counters") is NULL_TRACER


class TestDistributedTrace:
    def test_unit_events_record_provenance(self, dataset):
        dips = DistributedIPS(_config(observability="trace"))
        result = dips.discover(dataset)
        trace = result.extra["trace"]
        assert trace.closed
        units = trace.find("unit")
        assert len(units) == 2 * 8
        for unit in units:
            assert unit.attrs["ok"] is True
            assert unit.attrs["attempts"] == 1
            assert unit.attrs["from_checkpoint"] is False
        assert result.extra["units_per_class"] == {
            0: {"ok": 8, "total": 8},
            1: {"ok": 8, "total": 8},
        }

    def test_retries_surface_in_unit_events(self, dataset):
        from repro.core.config import FaultToleranceConfig

        config = _config(
            observability="trace",
            fault_tolerance=FaultToleranceConfig(
                max_retries=4, base_delay=0.0, seed=0
            ),
        )
        dips = DistributedIPS(
            config, fault_plan=FaultPlan(crash_rate=0.3, seed=11)
        )
        result = dips.discover(dataset)
        trace = result.extra["trace"]
        attempts = [u.attrs["attempts"] for u in trace.find("unit")]
        assert max(attempts) > 1
        counters = trace.metrics.snapshot()["counters"]
        assert counters["units.recovered"] >= 1
        assert Trace.from_jsonl(trace.to_jsonl()).closed
        assert len(result.shapelets) > 0


class TestBaselinePerf:
    def test_mp_baseline_reports_kernel_work(self, dataset):
        model = MPBaseline(k=2, seed=0).fit_dataset(dataset)
        assert model.perf_ is not None
        assert model.perf_["cache_hits"] + model.perf_["cache_misses"] > 0
        assert "discovery" in model.perf_["phase_seconds"]
        assert "transform" in model.perf_["phase_seconds"]

    def test_fast_shapelets_reports_kernel_work(self, dataset):
        model = FastShapelets(k=2, seed=0).fit_dataset(dataset)
        assert model.perf_ is not None
        assert model.perf_["cache_misses"] > 0


class TestReportAndCli:
    def test_render_report_sections(self, dataset):
        ips = IPS(_config(observability="trace"))
        ips.discover(dataset)
        report = render_report(ips.trace_)
        for needle in ("span tree", "discover", "generation", "counters",
                       "gauges", "seed: 5"):
            assert needle in report

    def test_cli_obs_report(self, dataset, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        config = _config(
            observability="trace+jsonl", obs_jsonl_path=str(path)
        )
        IPS(config).discover(dataset)
        assert cli_main(["obs", "report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "span tree" in out
        assert "generation" in out

    def test_cli_obs_report_missing_file(self, tmp_path, capsys):
        missing = tmp_path / "nope.jsonl"
        assert cli_main(["obs", "report", str(missing)]) == 1
        assert "no trace file" in capsys.readouterr().err

    def test_config_rejects_unknown_observability(self):
        with pytest.raises(ValidationError):
            IPSConfig(observability="loud")


class TestGitSha:
    """The manifest's git SHA is best-effort: every odd checkout state
    degrades to ``"unknown"``, never to an exception (PR 6 satellite)."""

    SHA = "a" * 40

    def test_outside_any_checkout_degrades(self, tmp_path):
        assert git_sha(tmp_path / "plain") == UNKNOWN_GIT_SHA

    def test_loose_ref_resolved(self, tmp_path):
        refs = tmp_path / ".git" / "refs" / "heads"
        refs.mkdir(parents=True)
        (refs / "main").write_text(self.SHA + "\n")
        (tmp_path / ".git" / "HEAD").write_text("ref: refs/heads/main\n")
        assert git_sha(tmp_path) == self.SHA

    def test_packed_ref_resolved(self, tmp_path):
        git = tmp_path / ".git"
        git.mkdir()
        (git / "HEAD").write_text("ref: refs/heads/main\n")
        (git / "packed-refs").write_text(
            "# pack-refs with: peeled fully-peeled sorted\n"
            f"{self.SHA} refs/heads/main\n"
        )
        assert git_sha(tmp_path) == self.SHA

    def test_detached_head_is_the_sha_itself(self, tmp_path):
        git = tmp_path / ".git"
        git.mkdir()
        (git / "HEAD").write_text(self.SHA + "\n")
        assert git_sha(tmp_path) == self.SHA

    def test_worktree_pointer_file_followed(self, tmp_path):
        # In a linked worktree ".git" is a file: "gitdir: <real dir>".
        real = tmp_path / "real_git"
        real.mkdir()
        (real / "HEAD").write_text(self.SHA + "\n")
        worktree = tmp_path / "worktree"
        worktree.mkdir()
        (worktree / ".git").write_text("gitdir: ../real_git\n")
        assert git_sha(worktree) == self.SHA

    def test_bogus_pointer_file_degrades(self, tmp_path):
        (tmp_path / ".git").write_text("this is not a gitdir pointer\n")
        assert git_sha(tmp_path) == UNKNOWN_GIT_SHA

    def test_missing_head_degrades(self, tmp_path):
        (tmp_path / ".git").mkdir()
        assert git_sha(tmp_path) == UNKNOWN_GIT_SHA

    @pytest.mark.parametrize(
        "head", ["ref:\n", "ref: \n", "ref: refs/heads/ghost\n", ""]
    )
    def test_malformed_or_dangling_head_degrades(self, tmp_path, head):
        (tmp_path / ".git").mkdir()
        (tmp_path / ".git" / "HEAD").write_text(head)
        assert git_sha(tmp_path) == UNKNOWN_GIT_SHA

    def test_real_checkout_never_raises(self):
        sha = git_sha()
        assert isinstance(sha, str) and sha
