"""Tests for repro.instanceprofile.sampling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.instanceprofile.sampling import BaggingSampler, resolve_lengths


class TestResolveLengths:
    def test_paper_ratio_grid(self):
        lengths = resolve_lengths(100, (0.1, 0.2, 0.3, 0.4, 0.5))
        assert lengths == [10, 20, 30, 40, 50]

    def test_deduplication(self):
        lengths = resolve_lengths(10, (0.1, 0.2, 0.25))
        # 0.1 -> max(3, 1) = 3; 0.2 -> 3; 0.25 -> 3 (dedup to one entry).
        assert lengths == [3]

    def test_minimum_length_three(self):
        assert resolve_lengths(30, (0.01,)) == [3]

    def test_rejects_bad_ratio(self):
        with pytest.raises(ValidationError):
            resolve_lengths(100, (0.0,))
        with pytest.raises(ValidationError):
            resolve_lengths(100, (1.5,))

    def test_rejects_tiny_series(self):
        with pytest.raises(ValidationError):
            resolve_lengths(2, (0.5,))


class TestBaggingSampler:
    def test_sample_count_and_size(self):
        sampler = BaggingSampler(q_n=7, q_s=3, seed=0)
        samples = sampler.samples_for_class(np.arange(10))
        assert len(samples) == 7
        assert all(s.size == 3 for s in samples)

    def test_no_duplicates_within_sample(self):
        sampler = BaggingSampler(q_n=20, q_s=5, seed=0)
        for sample in sampler.samples_for_class(np.arange(8)):
            assert len(set(sample.tolist())) == sample.size

    def test_clamps_to_class_size(self):
        sampler = BaggingSampler(q_n=3, q_s=10, seed=0)
        samples = sampler.samples_for_class(np.arange(4))
        assert all(s.size == 4 for s in samples)

    def test_at_least_two_when_possible(self):
        sampler = BaggingSampler(q_n=3, q_s=1, seed=0)
        samples = sampler.samples_for_class(np.arange(5))
        assert all(s.size == 2 for s in samples)

    def test_single_instance_class(self):
        sampler = BaggingSampler(q_n=2, q_s=3, seed=0)
        samples = sampler.samples_for_class(np.array([42]))
        assert all(s.tolist() == [42] for s in samples)

    def test_deterministic_with_seed(self):
        a = BaggingSampler(q_n=5, q_s=3, seed=9).samples_for_class(np.arange(10))
        b = BaggingSampler(q_n=5, q_s=3, seed=9).samples_for_class(np.arange(10))
        assert all(np.array_equal(x, y) for x, y in zip(a, b))

    def test_rejects_empty_class(self):
        with pytest.raises(ValidationError):
            BaggingSampler(q_n=1, q_s=1).samples_for_class(np.array([], dtype=int))

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValidationError):
            BaggingSampler(q_n=0, q_s=1)
        with pytest.raises(ValidationError):
            BaggingSampler(q_n=1, q_s=0)
