"""The deprecated distance entry points: warn exactly once, still work.

The old import paths (``repro.ts.distance.*`` and
``repro.matrixprofile.mass.mass``) remain functional shims over
``repro.kernels``; each must emit exactly one ``DeprecationWarning`` per
process no matter how often it is called, and must return exactly what
the kernel engine returns.
"""

from __future__ import annotations

import importlib
import warnings

import numpy as np
import pytest

from repro import kernels
from repro.kernels import reset_deprecation_warnings
from repro.ts import distance as distance_module

# The package re-exports the ``mass`` *function*, shadowing the module
# attribute — import the module explicitly.
mass_module = importlib.import_module("repro.matrixprofile.mass")

_RNG = np.random.default_rng(9)
_SERIES = _RNG.normal(size=60)
_QUERY = _RNG.normal(size=7)
_X = _RNG.normal(size=(4, 30))

#: (shim callable, replacement callable, args) for every deprecated path.
SHIMS = [
    (
        distance_module.squared_euclidean,
        kernels.squared_euclidean,
        (_QUERY, _QUERY[::-1].copy()),
    ),
    (
        distance_module.euclidean_distance,
        kernels.euclidean_distance,
        (_QUERY, _QUERY[::-1].copy()),
    ),
    (
        distance_module.sliding_dot_product,
        kernels.sliding_dot_product,
        (_QUERY, _SERIES),
    ),
    (
        distance_module.sliding_mean_std,
        kernels.sliding_mean_std,
        (_SERIES, 7),
    ),
    (
        distance_module.distance_profile,
        kernels.distance_profile,
        (_QUERY, _SERIES),
    ),
    (
        distance_module.subsequence_distance,
        kernels.subsequence_distance,
        (_QUERY, _SERIES),
    ),
    (
        distance_module.pairwise_subsequence_distance,
        kernels.batch_min_distance,
        ([_QUERY, _QUERY * 2.0], _X),
    ),
    (mass_module.mass, kernels.mass, (_QUERY, _SERIES)),
]

_IDS = [shim.__name__ for shim, _, _ in SHIMS]


@pytest.fixture(autouse=True)
def _fresh_warning_state():
    """Each test observes the shims as a fresh process would."""
    reset_deprecation_warnings()
    yield
    reset_deprecation_warnings()


@pytest.mark.parametrize(("shim", "replacement", "args"), SHIMS, ids=_IDS)
def test_warns_exactly_once(shim, replacement, args):
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        shim(*args)
        shim(*args)
        shim(*args)
    deprecations = [
        w for w in caught if issubclass(w.category, DeprecationWarning)
    ]
    assert len(deprecations) == 1, (
        f"{shim.__name__} must warn exactly once per process, "
        f"got {len(deprecations)}"
    )
    message = str(deprecations[0].message)
    assert "deprecated" in message
    assert "repro.kernels" in message


@pytest.mark.parametrize(("shim", "replacement", "args"), SHIMS, ids=_IDS)
def test_shim_matches_kernel(shim, replacement, args):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        old = shim(*args)
    new = replacement(*args)
    np.testing.assert_array_equal(np.asarray(old), np.asarray(new))


def test_serve_1d_predict_shim(frozen_classifier):
    """``InferenceService.predict(series)`` with a 1-D series: warn once,
    still answer, and match the ``predict_one`` replacement exactly."""
    from repro.serve import InferenceService

    series = np.asarray(frozen_classifier._dataset.X[0])
    with InferenceService(frozen_classifier) as service:
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            old_a = service.predict(series)
            old_b = service.predict(series)
        new = service.predict_one(series)
    deprecations = [
        w for w in caught if issubclass(w.category, DeprecationWarning)
    ]
    assert len(deprecations) == 1, "must warn exactly once per process"
    message = str(deprecations[0].message)
    assert "deprecated" in message
    assert "predict_one" in message
    assert old_a == old_b == new


def test_reset_reenables_the_warning():
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        distance_module.distance_profile(_QUERY, _SERIES)
        reset_deprecation_warnings()
        distance_module.distance_profile(_QUERY, _SERIES)
    deprecations = [
        w for w in caught if issubclass(w.category, DeprecationWarning)
    ]
    assert len(deprecations) == 2
