"""Tests for repro.matrixprofile.streaming (STAMPI)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import LengthError, ValidationError
from repro.matrixprofile.streaming import StreamingMatrixProfile
from repro.matrixprofile.stomp import stomp_self_join


class TestStreamingMatrixProfile:
    def test_matches_batch_exactly(self, rng):
        stream = StreamingMatrixProfile(window=12)
        data = rng.normal(size=120)
        stream.extend(data)
        assert stream.check_against_batch()
        batch = stomp_self_join(data, 12)
        snapshot = stream.profile()
        finite = np.isfinite(batch.values)
        assert np.allclose(snapshot.values[finite], batch.values[finite], atol=1e-6)

    def test_matches_batch_at_every_prefix(self, rng):
        stream = StreamingMatrixProfile(window=8)
        data = rng.normal(size=60)
        for value in data:
            stream.append(float(value))
            if stream.n_windows >= 2:
                assert stream.check_against_batch()

    def test_raw_mode(self, rng):
        stream = StreamingMatrixProfile(window=10, normalized=False)
        stream.extend(rng.normal(size=80))
        assert stream.check_against_batch()

    def test_profile_values_never_increase(self, rng):
        stream = StreamingMatrixProfile(window=10)
        stream.extend(rng.normal(size=40))
        before = stream.profile().values.copy()
        stream.extend(rng.normal(size=20))
        after = stream.profile().values[: before.size]
        finite = np.isfinite(before)
        assert np.all(after[finite] <= before[finite] + 1e-9)

    def test_planted_motif_found_online(self, rng):
        pattern = np.sin(np.linspace(0, 2 * np.pi, 20)) * 5
        data = rng.normal(size=200)
        data[30:50] += pattern
        data[140:160] += pattern
        stream = StreamingMatrixProfile(window=20)
        stream.extend(data)
        pos, _val = stream.profile().motif()
        assert min(abs(pos - 30), abs(pos - 140)) <= 3

    def test_too_few_points_rejected(self):
        stream = StreamingMatrixProfile(window=10)
        stream.extend(np.arange(5.0))
        with pytest.raises(LengthError):
            stream.profile()

    def test_counts(self, rng):
        stream = StreamingMatrixProfile(window=10)
        stream.extend(rng.normal(size=25))
        assert stream.n_points == 25
        assert stream.n_windows == 16

    def test_rejects_nan(self):
        stream = StreamingMatrixProfile(window=4)
        with pytest.raises(ValidationError):
            stream.append(float("nan"))

    def test_rejects_tiny_window(self):
        with pytest.raises(ValidationError):
            StreamingMatrixProfile(window=1)
