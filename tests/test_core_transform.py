"""Tests for repro.core.transform (Def. 7)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.transform import ShapeletTransform
from repro.exceptions import NotFittedError, ValidationError
from repro.ts.distance import subsequence_distance
from repro.types import Shapelet


def _shapelets(rng, lengths=(6, 10)):
    return [
        Shapelet(values=rng.normal(size=length), label=i % 2)
        for i, length in enumerate(lengths)
    ]


class TestShapeletTransform:
    def test_shape(self, rng):
        st = ShapeletTransform(_shapelets(rng))
        X = rng.normal(size=(5, 40))
        features = st.transform(X)
        assert features.shape == (5, 2)

    def test_values_match_def4(self, rng):
        shapelets = _shapelets(rng)
        st = ShapeletTransform(shapelets)
        X = rng.normal(size=(3, 40))
        features = st.transform(X)
        for j in range(3):
            for i, shp in enumerate(shapelets):
                assert features[j, i] == pytest.approx(
                    subsequence_distance(shp.values, X[j])
                )

    def test_1d_input_promoted(self, rng):
        st = ShapeletTransform(_shapelets(rng))
        features = st.transform(rng.normal(size=40))
        assert features.shape == (1, 2)

    def test_contained_shapelet_zero_feature(self, rng):
        X = rng.normal(size=(1, 40))
        shp = Shapelet(values=X[0, 10:20].copy(), label=0)
        features = ShapeletTransform([shp]).transform(X)
        assert features[0, 0] == pytest.approx(0.0, abs=1e-9)

    def test_unfitted_rejected(self, rng):
        st = ShapeletTransform()
        with pytest.raises(NotFittedError):
            st.transform(rng.normal(size=(2, 20)))
        with pytest.raises(NotFittedError):
            _ = st.n_features

    def test_empty_shapelets_rejected(self):
        with pytest.raises(ValidationError):
            ShapeletTransform([])

    def test_n_features(self, rng):
        assert ShapeletTransform(_shapelets(rng)).n_features == 2
