"""Hypothesis property tests for the classifier substrate."""

from __future__ import annotations

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.classify.metrics import accuracy_score, confusion_matrix
from repro.classify.naive_bayes import GaussianNB
from repro.classify.scaler import StandardScaler
from repro.classify.svm import LinearSVM, OneVsRestSVM
from repro.classify.tree import DecisionTree


def _blob_problem(data: st.DataObject):
    """Two separated Gaussian blobs with a random seed/size/gap."""
    seed = data.draw(st.integers(0, 10_000))
    n = data.draw(st.integers(6, 30))
    d = data.draw(st.integers(2, 6))
    gap = data.draw(st.floats(3.0, 10.0))
    rng = np.random.default_rng(seed)
    X = np.vstack([rng.normal(size=(n, d)), rng.normal(size=(n, d)) + gap])
    y = np.repeat([0, 1], n)
    return X, y


@settings(max_examples=20, deadline=None)
@given(data=st.data())
def test_svm_separates_separated_blobs(data):
    X, y = _blob_problem(data)
    # Small blobs at the minimum gap occasionally overlap (the draw
    # controls the blob *means*, not the samples); only actually
    # separated samples state the property.
    direction = X[y == 1].mean(axis=0) - X[y == 0].mean(axis=0)
    projected = X @ direction
    assume(projected[y == 1].min() > projected[y == 0].max())
    model = OneVsRestSVM(C=10.0, seed=0).fit(X, y)
    assert model.score(X, y) >= 0.95


@settings(max_examples=20, deadline=None)
@given(data=st.data())
def test_svm_prediction_invariant_to_duplicate_features(data):
    X, y = _blob_problem(data)
    pm1 = np.where(y == 1, 1.0, -1.0)
    base = LinearSVM(C=1.0, seed=0).fit(X, pm1).predict(X)
    doubled = LinearSVM(C=1.0, seed=0).fit(np.hstack([X, X]), pm1).predict(
        np.hstack([X, X])
    )
    # Duplicating features rescales the geometry but must not break
    # separability of cleanly separated blobs.
    assert np.mean(base == doubled) >= 0.9


@settings(max_examples=20, deadline=None)
@given(data=st.data())
def test_tree_perfectly_memorizes_distinct_points(data):
    seed = data.draw(st.integers(0, 10_000))
    n = data.draw(st.integers(4, 25))
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 3))
    y = rng.integers(0, 3, size=n)
    tree = DecisionTree(seed=0).fit(X, y)
    # Distinct continuous points: an unpruned CART reaches purity.
    assert accuracy_score(y, tree.predict(X)) == 1.0


@settings(max_examples=20, deadline=None)
@given(data=st.data())
def test_nb_probabilities_valid(data):
    X, y = _blob_problem(data)
    model = GaussianNB().fit(X, y)
    probs = model.predict_proba(X)
    assert np.all(probs >= 0.0)
    assert np.allclose(probs.sum(axis=1), 1.0, atol=1e-9)


@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_scaler_round_trip_statistics(data):
    seed = data.draw(st.integers(0, 10_000))
    n = data.draw(st.integers(3, 40))
    d = data.draw(st.integers(1, 6))
    rng = np.random.default_rng(seed)
    X = rng.normal(loc=rng.uniform(-5, 5), scale=rng.uniform(0.5, 3), size=(n, d))
    Z = StandardScaler().fit_transform(X)
    assert np.allclose(Z.mean(axis=0), 0.0, atol=1e-9)
    stds = Z.std(axis=0)
    assert np.all((np.isclose(stds, 1.0, atol=1e-9)) | (stds == 0.0))


@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_confusion_matrix_row_sums(data):
    n = data.draw(st.integers(1, 50))
    k = data.draw(st.integers(1, 5))
    rng = np.random.default_rng(data.draw(st.integers(0, 10_000)))
    y_true = rng.integers(0, k, size=n)
    y_pred = rng.integers(0, k, size=n)
    M = confusion_matrix(y_true, y_pred, n_classes=k)
    assert M.sum() == n
    row_sums = M.sum(axis=1)
    for cls in range(k):
        assert row_sums[cls] == np.sum(y_true == cls)
    assert accuracy_score(y_true, y_pred) == np.trace(M) / n
