"""Tests for repro.filters.dabf: Algorithms 2-3 + the naive pruner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.filters.dabf import DABF, ClassDABF, NaivePruner
from repro.instanceprofile.candidates import CandidatePool, generate_candidates
from repro.types import Candidate, CandidateKind


def _pool_from_arrays(per_class: dict[int, list[np.ndarray]]) -> CandidatePool:
    pool = CandidatePool()
    for label, arrays in per_class.items():
        for i, arr in enumerate(arrays):
            pool.add(
                Candidate(values=arr, label=label, kind=CandidateKind.MOTIF, start=i)
            )
    return pool


@pytest.fixture(scope="module")
def planted_pool():
    from repro.datasets.generators import make_planted_dataset

    dataset = make_planted_dataset(n_classes=2, n_instances=16, length=80, seed=3)
    pool = generate_candidates(dataset, q_n=8, q_s=3, lengths=[12, 20], seed=0)
    return dataset, pool


class TestClassDABF:
    def test_build_fits_distribution(self, planted_pool):
        _dataset, pool = planted_pool
        cdabf = ClassDABF(label=0, seed=0)
        cdabf.build(pool.all_of_class(0))
        assert cdabf.distribution is not None
        assert cdabf.lengths == [12, 20]
        assert cdabf.n_items() == len(pool.all_of_class(0))

    def test_member_query_is_close_to_most(self, planted_pool):
        """An element of the set should land inside its own distribution."""
        _dataset, pool = planted_pool
        cdabf = ClassDABF(label=0, seed=0)
        members = pool.all_of_class(0)
        cdabf.build(members)
        inside = sum(cdabf.is_close_to_most(m.values, theta=3.0) for m in members)
        assert inside / len(members) > 0.85  # 3-sigma covers ~89%+

    def test_far_query_is_not_close(self, planted_pool):
        _dataset, pool = planted_pool
        cdabf = ClassDABF(label=0, seed=0)
        cdabf.build(pool.all_of_class(0))
        absurd = np.full(12, 1e6)
        assert not cdabf.is_close_to_most(absurd)

    def test_unseen_length_routed_to_nearest(self, planted_pool):
        _dataset, pool = planted_pool
        cdabf = ClassDABF(label=0, seed=0)
        cdabf.build(pool.all_of_class(0))
        z = cdabf.query_zscore(np.random.default_rng(0).normal(size=15))
        assert np.isfinite(z) or z == float("inf")

    def test_bucket_rank_in_range(self, planted_pool):
        _dataset, pool = planted_pool
        cdabf = ClassDABF(label=0, seed=0)
        cdabf.build(pool.all_of_class(0))
        for cand in pool.motifs(0)[:5]:
            rank = cdabf.bucket_rank(cand.values)
            assert rank >= 0

    def test_empty_class_rejected(self):
        with pytest.raises(ValidationError):
            ClassDABF(label=0).build([])


class TestDABF:
    def test_build_covers_all_classes(self, planted_pool):
        _dataset, pool = planted_pool
        dabf = DABF.build(pool, seed=0)
        assert dabf.classes == [0, 1]
        assert set(dabf.fits()) == {0, 1}

    def test_prune_removes_nondiscriminative(self, planted_pool):
        _dataset, pool = planted_pool
        dabf = DABF.build(pool, seed=0)
        pruned, report = dabf.prune(pool)
        assert len(pruned) == len(pool) - report.n_removed
        assert report.n_removed + report.n_kept == len(pool)
        assert report.elapsed_seconds >= 0.0

    def test_prune_does_not_mutate_input(self, planted_pool):
        _dataset, pool = planted_pool
        size_before = len(pool)
        dabf = DABF.build(pool, seed=0)
        dabf.prune(pool)
        assert len(pool) == size_before

    def test_theta_monotonicity(self, planted_pool):
        """A larger theta prunes at least as many candidates."""
        _dataset, pool = planted_pool
        dabf = DABF.build(pool, seed=0)
        _p1, strict = dabf.prune(pool, theta=1.0)
        _p2, loose = dabf.prune(pool, theta=6.0)
        assert loose.n_removed >= strict.n_removed

    def test_bucket_rank_unknown_class_rejected(self, planted_pool):
        _dataset, pool = planted_pool
        dabf = DABF.build(pool, seed=0)
        with pytest.raises(ValidationError):
            dabf.bucket_rank(99, np.zeros(12))

    def test_empty_dabf_rejected(self):
        with pytest.raises(ValidationError):
            DABF({})

    @pytest.mark.parametrize("scheme", ["l2", "cosine", "hamming"])
    def test_all_lsh_schemes_build(self, planted_pool, scheme):
        _dataset, pool = planted_pool
        dabf = DABF.build(pool, scheme=scheme, seed=0)
        _pruned, report = dabf.prune(pool)
        assert report.n_removed >= 0


class TestNaivePruner:
    def test_identical_classes_fully_pruned(self, rng):
        """Two classes with identical candidates: everything is close."""
        shared = [rng.normal(size=10) for _ in range(8)]
        pool = _pool_from_arrays({0: shared, 1: [s.copy() for s in shared]})
        pruner = NaivePruner(pool, seed=0)
        _pruned, report = pruner.prune(pool)
        assert report.n_removed == len(pool)

    def test_disjoint_classes_kept(self, rng):
        a = [rng.normal(size=10) for _ in range(8)]
        b = [rng.normal(size=10) + 100.0 for _ in range(8)]
        pool = _pool_from_arrays({0: a, 1: b})
        pruner = NaivePruner(pool, seed=0)
        _pruned, report = pruner.prune(pool)
        assert report.n_removed == 0

    def test_agreement_with_dabf_on_extremes(self, rng):
        """DABF and the naive method agree on clearly-far candidates."""
        a = [rng.normal(size=10) for _ in range(10)]
        b = [rng.normal(size=10) + 50.0 for _ in range(10)]
        pool = _pool_from_arrays({0: a, 1: b})
        dabf = DABF.build(pool, seed=0)
        naive = NaivePruner(pool, seed=0)
        for cand in pool:
            assert dabf.should_prune(cand) == naive.should_prune(cand) == False  # noqa: E712
