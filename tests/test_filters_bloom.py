"""Tests for repro.filters.bloom and distance_sensitive."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.filters.bloom import BloomFilter
from repro.filters.distance_sensitive import DistanceSensitiveBloomFilter
from repro.lsh import make_lsh


class TestBloomFilter:
    def test_no_false_negatives(self):
        bloom = BloomFilter.with_capacity(100, fp_rate=0.01)
        keys = [f"key-{i}" for i in range(100)]
        for key in keys:
            bloom.add(key)
        assert all(key in bloom for key in keys)

    def test_false_positive_rate_reasonable(self):
        bloom = BloomFilter.with_capacity(500, fp_rate=0.01)
        for i in range(500):
            bloom.add(f"member-{i}")
        false_positives = sum(f"absent-{i}" in bloom for i in range(2000))
        assert false_positives / 2000 < 0.05

    def test_empty_filter_contains_nothing(self):
        bloom = BloomFilter(n_bits=64, n_hashes=3)
        assert "anything" not in bloom

    def test_supports_tuples_ints_arrays(self):
        bloom = BloomFilter(n_bits=256, n_hashes=3)
        bloom.add((1, 2, 3))
        bloom.add(42)
        bloom.add(np.arange(4.0))
        assert (1, 2, 3) in bloom
        assert 42 in bloom
        assert np.arange(4.0) in bloom

    def test_deterministic_across_instances(self):
        a = BloomFilter(n_bits=128, n_hashes=4)
        b = BloomFilter(n_bits=128, n_hashes=4)
        a.add("hello")
        b.add("hello")
        assert np.array_equal(a._bits, b._bits)  # noqa: SLF001

    def test_fill_ratio_and_fp_estimate(self):
        bloom = BloomFilter(n_bits=100, n_hashes=2)
        assert bloom.fill_ratio == 0.0
        assert bloom.estimated_fp_rate() == 0.0
        bloom.add("x")
        assert bloom.fill_ratio > 0.0

    def test_len_counts_insertions(self):
        bloom = BloomFilter(n_bits=64, n_hashes=2)
        bloom.add("a")
        bloom.add("a")
        assert len(bloom) == 2

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValidationError):
            BloomFilter(n_bits=0)
        with pytest.raises(ValidationError):
            BloomFilter.with_capacity(0)
        with pytest.raises(ValidationError):
            BloomFilter.with_capacity(10, fp_rate=1.5)

    def test_rejects_unsupported_key_type(self):
        bloom = BloomFilter(n_bits=64)
        with pytest.raises(ValidationError):
            bloom.add(object())


class TestDistanceSensitiveBloomFilter:
    def _filter(self, n_families=3, seed=0):
        rng = np.random.default_rng(seed)
        families = [
            make_lsh("l2", dim=16, seed=int(rng.integers(2**31)), n_projections=4)
            for _ in range(n_families)
        ]
        return DistanceSensitiveBloomFilter(families, expected_items=64)

    def test_near_queries_positive(self, rng):
        dsbf = self._filter()
        x = rng.normal(size=16) * 3
        dsbf.add(x)
        assert dsbf.query(x + rng.normal(size=16) * 0.01)

    def test_far_queries_mostly_negative(self, rng):
        dsbf = self._filter()
        for _ in range(10):
            dsbf.add(rng.normal(size=16))
        hits = sum(dsbf.query(rng.normal(size=16) * 50 + 100) for _ in range(50))
        assert hits / 50 < 0.3

    def test_exact_member_always_positive(self, rng):
        dsbf = self._filter()
        x = rng.normal(size=16)
        dsbf.add(x)
        assert dsbf.query(x)

    def test_len(self, rng):
        dsbf = self._filter()
        dsbf.add(rng.normal(size=16))
        assert len(dsbf) == 1

    def test_rejects_mismatched_dims(self):
        families = [make_lsh("l2", dim=8, seed=0), make_lsh("l2", dim=9, seed=1)]
        with pytest.raises(ValidationError):
            DistanceSensitiveBloomFilter(families)

    def test_rejects_empty_families(self):
        with pytest.raises(ValidationError):
            DistanceSensitiveBloomFilter([])
