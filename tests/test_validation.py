"""Tests for repro.validation: data contracts and repair policies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.validation import (
    Severity,
    ValidationReport,
    interpolate_gaps,
    pad_or_truncate,
    validate_dataset,
    validate_series,
)

pytestmark = pytest.mark.robustness


def _codes(report: ValidationReport) -> set[str]:
    return {f.code for f in report.findings}


class TestRepairPrimitives:
    def test_interpolate_gaps_linear(self):
        series = np.array([0.0, np.nan, 2.0, np.nan, np.nan, 5.0])
        repaired, n = interpolate_gaps(series)
        assert n == 3
        assert np.allclose(repaired, [0.0, 1.0, 2.0, 3.0, 4.0, 5.0])

    def test_interpolate_gaps_edge_fill(self):
        series = np.array([np.nan, 1.0, np.nan])
        repaired, _ = interpolate_gaps(series)
        assert np.allclose(repaired, [1.0, 1.0, 1.0])

    def test_interpolate_gaps_all_nan_raises(self):
        with pytest.raises(ValidationError):
            interpolate_gaps(np.array([np.nan, np.nan]))

    def test_pad_replicates_edge(self):
        out = pad_or_truncate(np.array([1.0, 2.0]), 5)
        assert np.allclose(out, [1.0, 2.0, 2.0, 2.0, 2.0])

    def test_truncate(self):
        out = pad_or_truncate(np.arange(6.0), 4)
        assert np.allclose(out, [0.0, 1.0, 2.0, 3.0])


class TestValidateSeries:
    def test_clean_series_empty_report(self):
        arr, report = validate_series(np.sin(np.arange(20.0)))
        assert not report.findings
        assert report.ok

    def test_nan_gap_strict_raises(self):
        series = np.array([1.0, np.nan, 3.0, 4.0])
        with pytest.raises(ValidationError):
            validate_series(series, mode="strict")

    def test_nan_gap_repaired(self):
        series = np.array([1.0, np.nan, 3.0, 4.0])
        arr, report = validate_series(series, mode="repair")
        assert np.isfinite(arr).all()
        assert np.allclose(arr, [1.0, 2.0, 3.0, 4.0])
        assert report.ok
        assert report.repairs[0].policy == "interpolate_gaps"

    def test_short_series_padded(self):
        arr, report = validate_series(np.array([1.0, 2.0]), mode="repair")
        assert arr.size == 3
        assert "short-series" in _codes(report)

    def test_constant_series_warns_only(self):
        arr, report = validate_series(np.full(10, 3.0), mode="strict")
        assert "constant-series" in _codes(report)
        assert not report.errors

    def test_off_mode_passthrough(self):
        series = np.array([1.0, np.nan, 3.0])
        arr, report = validate_series(series, mode="off")
        assert np.isnan(arr[1])
        assert not report.findings


class TestValidateDataset:
    def test_clean_data_is_noop(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(6, 20))
        validated = validate_dataset(X, [0, 0, 0, 1, 1, 1])
        assert not validated.report.findings
        assert np.allclose(validated.dataset.X, X)

    def test_ragged_rows_padded_to_majority(self):
        rows = [np.arange(10.0), np.arange(10.0), np.arange(7.0)]
        validated = validate_dataset(rows, [0, 1, 1], mode="repair")
        assert validated.dataset.series_length == 10
        assert "ragged-lengths" in _codes(validated.report)
        finding = next(
            f for f in validated.report.findings if f.code == "ragged-lengths"
        )
        assert finding.rows == (2,)

    def test_ragged_strict_raises_with_row_index(self):
        rows = [np.arange(10.0), np.arange(7.0)]
        with pytest.raises(ValidationError, match="ragged"):
            validate_dataset(rows, [0, 1], mode="strict")

    def test_nan_gaps_interpolated(self):
        X = np.tile(np.arange(8.0), (4, 1))
        X[1, 3] = np.nan
        validated = validate_dataset(X, [0, 0, 1, 1], mode="repair")
        assert np.isfinite(validated.dataset.X).all()
        assert validated.report.repairs[0].policy == "interpolate_gaps"

    def test_hopeless_row_dropped(self):
        X = np.vstack([np.arange(6.0), np.full(6, np.nan), np.arange(6.0) * 2])
        validated = validate_dataset(X, [0, 0, 1], mode="repair")
        assert validated.dataset.n_series == 2
        assert "unrepairable-row" in _codes(validated.report)
        assert validated.report.n_series_in == 3
        assert validated.report.n_series_out == 2

    def test_constant_series_flagged(self):
        X = np.vstack([np.full(12, 2.0), np.sin(np.arange(12.0))])
        validated = validate_dataset(X, [0, 1], min_class_size=1)
        finding = next(
            f for f in validated.report.findings if f.code == "constant-series"
        )
        assert finding.rows == (0,)
        assert finding.severity is Severity.WARNING

    def test_all_identical_flagged(self):
        X = np.tile(np.arange(10.0), (4, 1))
        validated = validate_dataset(X, [0, 0, 1, 1])
        assert "all-identical" in _codes(validated.report)

    def test_duplicates_kept_by_default(self):
        base = np.sin(np.arange(10.0))
        X = np.vstack([base, base, base * 2, base * 3])
        validated = validate_dataset(X, [0, 0, 1, 1])
        assert "duplicate-rows" in _codes(validated.report)
        assert validated.dataset.n_series == 4

    def test_duplicates_dropped_on_request(self):
        base = np.sin(np.arange(10.0))
        X = np.vstack([base, base, base * 2, base * 3])
        validated = validate_dataset(
            X, [0, 0, 1, 1], drop_duplicates=True, min_class_size=1
        )
        assert validated.dataset.n_series == 3

    def test_conflicting_duplicate_flagged(self):
        base = np.sin(np.arange(10.0))
        X = np.vstack([base, base, base * 2])
        validated = validate_dataset(X, [0, 1, 1])
        assert "conflicting-dup" in _codes(validated.report)

    def test_small_class_flagged(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(5, 15))
        validated = validate_dataset(X, [0, 0, 0, 0, 1])
        finding = next(
            f for f in validated.report.findings if f.code == "small-class"
        )
        assert finding.rows == (4,)

    def test_dataset_input_round_trips_labels(self):
        from repro.ts.series import Dataset

        ds = Dataset(X=np.random.default_rng(2).normal(size=(4, 10)), y=[-1, -1, 7, 7])
        validated = validate_dataset(ds)
        assert validated.dataset.classes_.tolist() == [-1, 7]

    def test_repair_is_deterministic(self):
        X = np.tile(np.arange(10.0), (4, 1))
        X[0, 2] = np.nan
        X[3, 7] = np.inf
        a = validate_dataset(X, [0, 0, 1, 1], mode="repair")
        b = validate_dataset(X, [0, 0, 1, 1], mode="repair")
        assert np.array_equal(a.dataset.X, b.dataset.X)
        assert [str(f) for f in a.report.findings] == [
            str(f) for f in b.report.findings
        ]

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValidationError):
            validate_dataset(np.ones((2, 5)), [0, 1], mode="lenient")

    def test_summary_mentions_repairs(self):
        X = np.tile(np.arange(8.0), (2, 1))
        X[0, 1] = np.nan
        validated = validate_dataset(X, [0, 1], mode="repair", name="demo")
        text = validated.report.summary()
        assert "demo" in text
        assert "interpolate_gaps" in text


class TestPipelineIntegration:
    def test_fit_repairs_nan_and_records_report(self):
        from repro.core.config import IPSConfig
        from repro.core.pipeline import IPSClassifier
        from repro.datasets.generators import make_planted_dataset

        ds = make_planted_dataset(n_classes=2, n_instances=10, length=40, seed=3)
        X = ds.X.copy()
        X[0, 5] = np.nan
        X[3] = 1.5  # one flat instance
        clf = IPSClassifier(IPSConfig(q_n=3, q_s=2, k=2, seed=0))
        clf.fit(X, ds.classes_[ds.y])
        report = clf.discovery_result_.extra["validation_report"]
        assert "non-finite" in {f.code for f in report.findings}
        assert "constant-series" in {f.code for f in report.findings}
        assert report.ok
        preds = clf.predict(X)
        assert preds.shape == (X.shape[0],)

    def test_fit_strict_raises_on_nan(self):
        from repro.core.config import IPSConfig
        from repro.core.pipeline import IPSClassifier

        X = np.random.default_rng(0).normal(size=(8, 30))
        X[2, 4] = np.nan
        y = [0, 0, 0, 0, 1, 1, 1, 1]
        clf = IPSClassifier(IPSConfig(validation_mode="strict"))
        with pytest.raises(ValidationError):
            clf.fit(X, y)

    def test_read_ucr_file_reports_ragged_row(self, tmp_path):
        from repro.datasets.io import read_ucr_file

        path = tmp_path / "ragged.tsv"
        path.write_text("1\t0.5\t0.6\t0.7\n1\t1.5\t1.6\t1.7\n2\t2.5\n")
        with pytest.raises(ValidationError, match=r"rows \[2\]"):
            read_ucr_file(path)

    def test_read_ucr_file_repair_mode(self, tmp_path):
        from repro.datasets.io import read_ucr_file

        path = tmp_path / "dirty.tsv"
        path.write_text("1\t0.5\tnan\t0.7\n1\t1.5\t1.6\t1.7\n2\t2.5\t2.6\n")
        ds = read_ucr_file(path, repair=True)
        assert ds.n_series == 3
        assert ds.series_length == 3
        assert np.isfinite(ds.X).all()

    def test_load_dataset_attaches_report(self):
        from repro.datasets.loader import load_dataset

        data = load_dataset("ItalyPowerDemand", max_train=8, max_test=8)
        assert data.validation is not None
        assert data.validation.mode == "repair"
