"""Registry-driven conformance tests for the Estimator protocol.

Every entry of :func:`repro.estimators.estimator_registry` is held to the
behavioural contract stated in :mod:`repro.types`: predicting (or
transforming) before ``fit`` raises ``NotFittedError``, ``fit`` returns
``self``, ``predict`` emits one integer label per row drawn from the
training labels, and ``get_params`` reflects the constructor arguments
faithfully enough to rebuild the estimator. A completeness test scans the
package namespaces so new public estimators cannot dodge the registry.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import numpy as np
import pytest

from repro.datasets.generators import make_planted_dataset
from repro.estimators import EstimatorSpec, estimator_registry, registry_names
from repro.exceptions import NotFittedError
from repro.types import Estimator, Shapelet, Transformer

SPECS = estimator_registry()

#: One tiny problem per fit style, built once for the whole module.
_SERIES = make_planted_dataset(
    n_classes=2, n_instances=12, length=40, seed=3, name="conformance"
)
_RNG = np.random.default_rng(5)
_X_FEAT = np.vstack(
    [_RNG.normal(size=(6, 5)), _RNG.normal(loc=2.0, size=(6, 5))]
)
_Y_FEAT = np.array([0] * 6 + [1] * 6, dtype=np.int64)
_SHAPELETS = [
    Shapelet(values=_SERIES.X[0, 4:12].copy(), label=0),
    Shapelet(values=_SERIES.X[1, 10:20].copy(), label=1),
]

#: Fitted instances, one per registry entry (fitting IPS and the
#: baselines repeatedly would dominate the suite's runtime).
_FITTED_CACHE: dict[str, object] = {}


def _fit_args(spec: EstimatorSpec):
    """(args for fit, X for predict/transform) per fit style."""
    if spec.fit_style == "features":
        return (_X_FEAT, _Y_FEAT), _X_FEAT
    if spec.fit_style == "binary_pm1":
        return (_X_FEAT, 2 * _Y_FEAT - 1), _X_FEAT
    if spec.fit_style == "series":
        return (_SERIES.X, _SERIES.y), _SERIES.X
    if spec.fit_style == "unsupervised":
        return (_X_FEAT,), _X_FEAT
    if spec.fit_style == "transform":
        return (_X_FEAT,), _X_FEAT
    return (_SHAPELETS,), _SERIES.X  # "shapelets"


def _fitted(spec: EstimatorSpec):
    if spec.name not in _FITTED_CACHE:
        model = spec.make()
        fit_args, _ = _fit_args(spec)
        returned = model.fit(*fit_args)
        assert returned is model, f"{spec.name}.fit must return self"
        _FITTED_CACHE[spec.name] = model
    return _FITTED_CACHE[spec.name]


@pytest.mark.parametrize("spec", SPECS, ids=registry_names())
class TestConformance:
    def test_protocol_membership(self, spec):
        model = spec.make()
        if spec.fit_style in ("features", "binary_pm1", "series"):
            assert isinstance(model, Estimator), (
                f"{spec.name} must provide fit/predict/score/get_params"
            )
        elif spec.fit_style in ("transform", "shapelets"):
            assert isinstance(model, Transformer), (
                f"{spec.name} must provide transform/get_params"
            )
        else:  # unsupervised: predict without score
            assert hasattr(model, "fit") and hasattr(model, "predict")
            assert callable(model.get_params)

    def test_unfitted_raises(self, spec):
        model = spec.make()
        _, X = _fit_args(spec)
        probe = (
            model.transform
            if spec.fit_style in ("transform", "shapelets")
            else model.predict
        )
        with pytest.raises(NotFittedError):
            probe(X)

    def test_fit_returns_self_and_output_contract(self, spec):
        model = _fitted(spec)
        fit_args, X = _fit_args(spec)
        if spec.fit_style in ("transform", "shapelets"):
            out = model.transform(X)
            assert out.ndim == 2 and out.shape[0] == X.shape[0]
            assert np.issubdtype(out.dtype, np.floating)
            assert np.isfinite(out).all()
            return
        pred = model.predict(X)
        assert pred.shape == (X.shape[0],)
        assert np.issubdtype(pred.dtype, np.integer)
        if spec.fit_style == "unsupervised":
            assert np.all((0 <= pred) & (pred < model.n_clusters))
        else:
            y_train = fit_args[1]
            assert np.all(np.isin(pred, np.unique(y_train)))

    def test_score_is_a_fraction(self, spec):
        if spec.fit_style in ("transform", "shapelets", "unsupervised"):
            pytest.skip("no score in the transformer/clustering contract")
        model = _fitted(spec)
        fit_args, X = _fit_args(spec)
        score = model.score(X, fit_args[1])
        assert 0.0 <= score <= 1.0

    def test_get_params_rebuilds(self, spec):
        model = spec.make()
        params = model.get_params()
        assert isinstance(params, dict)
        signature = inspect.signature(type(model).__init__)
        expected = {
            name
            for name, p in signature.parameters.items()
            if name != "self"
            and p.kind
            not in (inspect.Parameter.VAR_POSITIONAL, inspect.Parameter.VAR_KEYWORD)
        }
        assert set(params) == expected
        rebuilt = type(model)(**params)
        assert type(rebuilt) is type(model)
        assert rebuilt.get_params().keys() == params.keys()


def _predictor_specs():
    """Registry entries whose fitted model exposes the Predictor surface."""
    selected = []
    for spec in SPECS:
        if spec.fit_style not in ("features", "binary_pm1", "series"):
            continue
        model = spec.make()
        if all(
            callable(getattr(model, name, None))
            for name in ("predict", "predict_proba", "decision_function")
        ):
            selected.append(spec)
    return selected


_PREDICTOR_SPECS = _predictor_specs()


@pytest.mark.parametrize(
    "spec", _PREDICTOR_SPECS, ids=[s.name for s in _PREDICTOR_SPECS]
)
class TestPredictorConformance:
    """The repro.types.Predictor contract: shapes, dtypes, consistency."""

    def test_protocol_membership(self, spec):
        from repro.types import Predictor

        assert isinstance(_fitted(spec), Predictor)

    def test_classes_sorted_int64(self, spec):
        model = _fitted(spec)
        classes = np.asarray(model.classes_)
        assert classes.ndim == 1 and classes.size >= 1
        assert np.issubdtype(classes.dtype, np.integer)
        assert np.all(np.diff(classes) > 0), "classes_ must be sorted unique"

    def test_proba_rows_are_distributions(self, spec):
        model = _fitted(spec)
        _, X = _fit_args(spec)
        proba = model.predict_proba(X)
        classes = np.asarray(model.classes_)
        assert proba.shape == (X.shape[0], classes.size)
        assert proba.dtype == np.float64
        assert np.all(proba >= 0.0)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)

    def test_decision_function_always_2d(self, spec):
        """Binary models included: no flat (M,) shape in the contract."""
        model = _fitted(spec)
        _, X = _fit_args(spec)
        scores = model.decision_function(X)
        classes = np.asarray(model.classes_)
        assert scores.shape == (X.shape[0], classes.size)
        assert np.issubdtype(scores.dtype, np.floating)
        assert np.isfinite(scores).all()

    def test_argmax_consistency(self, spec):
        """Column c scores class classes_[c]: argmax recovers predict."""
        model = _fitted(spec)
        _, X = _fit_args(spec)
        classes = np.asarray(model.classes_)
        scores = model.decision_function(X)
        np.testing.assert_array_equal(
            classes[np.argmax(scores, axis=1)], model.predict(X)
        )

    def test_decision_margin_shape(self, spec):
        from repro.types import decision_margin

        model = _fitted(spec)
        _, X = _fit_args(spec)
        margins = decision_margin(model.decision_function(X))
        assert margins.shape == (X.shape[0],)
        assert np.all(margins >= 0.0)


def test_package_exports_importable():
    """Every name in repro.__all__ must resolve (the curated facade)."""
    import repro

    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, (
            f"repro.__all__ exports {name!r} but it does not resolve"
        )
    assert len(set(repro.__all__)) == len(repro.__all__), (
        "repro.__all__ has duplicates"
    )


def test_streaming_package_exports_importable():
    import repro.streaming as streaming

    for name in streaming.__all__:
        assert getattr(streaming, name, None) is not None, name


def _public_estimator_classes():
    """Every public class with fit+predict under repro.classify/baselines."""
    import repro.baselines
    import repro.classify

    found = {}
    for package in (repro.classify, repro.baselines):
        for info in pkgutil.iter_modules(package.__path__):
            module = importlib.import_module(f"{package.__name__}.{info.name}")
            for name, obj in vars(module).items():
                if (
                    inspect.isclass(obj)
                    and not name.startswith("_")
                    and obj.__module__ == module.__name__
                    and not inspect.isabstract(obj)
                    and callable(getattr(obj, "fit", None))
                    and callable(getattr(obj, "predict", None))
                ):
                    found[name] = obj
    return found


def test_registry_is_complete():
    """No public fit+predict class may be missing from the registry."""
    registered = set(registry_names())
    missing = set(_public_estimator_classes()) - registered
    assert not missing, (
        f"public estimators missing from repro.estimators registry: "
        f"{sorted(missing)}"
    )


def test_ips_classifier_registered():
    assert "IPSClassifier" in registry_names()
