"""Tests for repro.core.tuning and the DTW transform option."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import IPSConfig
from repro.core.transform import ShapeletTransform
from repro.core.tuning import PAPER_QN_GRID, PAPER_QS_GRID, TuningResult, tune_ips
from repro.datasets.generators import make_planted_dataset
from repro.exceptions import ValidationError
from repro.ts.series import Dataset
from repro.types import Shapelet


@pytest.fixture(scope="module")
def train():
    full = make_planted_dataset(n_classes=2, n_instances=18, length=60, seed=47)
    return Dataset(X=full.X, y=full.classes_[full.y], name="tune-me")


class TestTuneIPS:
    @pytest.fixture(scope="class")
    def result(self, train) -> TuningResult:
        base = IPSConfig(length_ratios=(0.2, 0.35), seed=0)
        return tune_ips(
            train, base_config=base,
            qn_grid=(3, 6), qs_grid=(2, 3), k_grid=(2,), n_splits=2,
        )

    def test_scores_cover_grid(self, result):
        assert set(result.scores) == {
            (3, 2, 2), (3, 3, 2), (6, 2, 2), (6, 3, 2),
        }
        assert all(0.0 <= s <= 1.0 for s in result.scores.values())

    def test_best_config_from_grid(self, result):
        cfg = result.best_config
        assert (cfg.q_n, cfg.q_s, cfg.k) in result.scores
        assert result.best_score == result.scores[(cfg.q_n, cfg.q_s, cfg.k)]

    def test_ties_prefer_cheaper_config(self, train):
        """With a constant scoring problem, the smallest Q_N*Q_S wins."""
        base = IPSConfig(length_ratios=(0.25,), seed=0)
        result = tune_ips(
            train, base_config=base,
            qn_grid=(3, 6), qs_grid=(2,), k_grid=(1,), n_splits=2,
        )
        if result.scores[(3, 2, 1)] == result.scores[(6, 2, 1)]:
            assert result.best_config.q_n == 3

    def test_top_sorted_descending(self, result):
        top = result.top(3)
        values = [v for _p, v in top]
        assert values == sorted(values, reverse=True)

    def test_base_config_fields_preserved(self, train):
        base = IPSConfig(length_ratios=(0.25,), lsh_scheme="cosine", seed=7)
        result = tune_ips(
            train, base_config=base, qn_grid=(3,), qs_grid=(2,), k_grid=(1,),
            n_splits=2,
        )
        assert result.best_config.lsh_scheme == "cosine"
        assert result.best_config.seed == 7

    def test_paper_grids_exposed(self):
        assert PAPER_QN_GRID == (10, 20, 50, 100)
        assert PAPER_QS_GRID == (2, 3, 4, 5, 10)

    def test_empty_grid_rejected(self, train):
        with pytest.raises(ValidationError):
            tune_ips(train, qn_grid=())

    def test_single_instance_class_rejected(self):
        ds = Dataset(X=np.random.default_rng(0).normal(size=(3, 40)), y=[0, 0, 1])
        with pytest.raises(ValidationError):
            tune_ips(ds, qn_grid=(2,), qs_grid=(2,), k_grid=(1,))


class TestDTWTransform:
    def test_dtw_features_shape(self, rng):
        shapelets = [Shapelet(values=rng.normal(size=8), label=0)]
        st = ShapeletTransform(shapelets, metric="dtw", dtw_band=3)
        features = st.transform(rng.normal(size=(4, 40)))
        assert features.shape == (4, 1)
        assert np.all(features >= 0.0)

    def test_contained_shapelet_near_zero(self, rng):
        X = rng.normal(size=(1, 40))
        shp = Shapelet(values=X[0, 16:24].copy(), label=0)
        # Stride hits position 16 (multiple of length//2 = 4).
        features = ShapeletTransform([shp], metric="dtw", dtw_band=3).transform(X)
        assert features[0, 0] == pytest.approx(0.0, abs=1e-9)

    def test_dtw_leq_euclidean_at_same_alignment(self, rng):
        """DTW's elasticity can only reduce the best-window distance when
        the stride covers the euclidean argmin."""
        X = rng.normal(size=(2, 30))
        shp = Shapelet(values=X[0, 0:8].copy(), label=0)
        euclid = ShapeletTransform([shp]).transform(X)
        dtw = ShapeletTransform([shp], metric="dtw", dtw_band=8).transform(X)
        # Position 0 is always in the strided window set.
        assert dtw[0, 0] <= euclid[0, 0] + 1e-9

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValidationError):
            ShapeletTransform(metric="mahalanobis")
