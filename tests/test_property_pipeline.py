"""Hypothesis property tests for the end-to-end pipeline (small budget).

The pipeline is expensive, so example counts are small and sizes tiny; the
point is invariants across the *configuration space*, not data volume.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import IPSConfig
from repro.core.pipeline import IPS
from repro.core.transform import ShapeletTransform
from repro.datasets.generators import make_planted_dataset


@settings(max_examples=8, deadline=None)
@given(
    n_classes=st.integers(2, 3),
    q_n=st.integers(2, 5),
    q_s=st.integers(2, 4),
    k=st.integers(1, 4),
    seed=st.integers(0, 100),
    use_dabf=st.booleans(),
    use_dt_cr=st.booleans(),
)
def test_pipeline_invariants(n_classes, q_n, q_s, k, seed, use_dabf, use_dt_cr):
    dataset = make_planted_dataset(
        n_classes=n_classes,
        n_instances=4 * n_classes,
        length=48,
        seed=seed,
    )
    config = IPSConfig(
        q_n=q_n,
        q_s=q_s,
        k=k,
        length_ratios=(0.2, 0.35),
        use_dabf=use_dabf,
        use_dt_cr=use_dt_cr,
        seed=seed,
    )
    result = IPS(config).discover(dataset)

    # 1. Shapelets exist and carry valid labels.
    assert result.shapelets
    assert {s.label for s in result.shapelets} <= set(range(n_classes))

    # 2. At most k per class; lengths within the requested grid.
    per_class: dict[int, int] = {}
    valid_lengths = {max(3, round(r * 48)) for r in (0.2, 0.35)}
    for shapelet in result.shapelets:
        per_class[shapelet.label] = per_class.get(shapelet.label, 0) + 1
        assert shapelet.length in valid_lengths
    assert all(count <= k for count in per_class.values())

    # 3. Pruning never grows the pool; counters are consistent.
    assert 0 < result.n_candidates_after_pruning <= result.n_candidates_generated

    # 4. Provenance round-trips to the training data.
    for shapelet in result.shapelets:
        row = dataset.X[shapelet.source_instance]
        assert np.allclose(
            row[shapelet.start : shapelet.start + shapelet.length], shapelet.values
        )

    # 5. Transform features are finite and non-negative.
    features = ShapeletTransform(result.shapelets).transform(dataset.X)
    assert np.all(np.isfinite(features))
    assert np.all(features >= 0.0)


@settings(max_examples=5, deadline=None)
@given(seed=st.integers(0, 50))
def test_pipeline_deterministic_for_any_seed(seed):
    dataset = make_planted_dataset(n_classes=2, n_instances=8, length=40, seed=3)
    config = IPSConfig(q_n=3, q_s=2, k=2, length_ratios=(0.25,), seed=seed)
    a = IPS(config).discover(dataset)
    b = IPS(config).discover(dataset)
    assert len(a.shapelets) == len(b.shapelets)
    for s1, s2 in zip(a.shapelets, b.shapelets):
        assert np.array_equal(s1.values, s2.values)
        assert s1.score == s2.score
