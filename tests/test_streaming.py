"""Unit tests for the streaming early-classification subsystem.

Covers the three layers of :mod:`repro.streaming` — matcher, transform,
early classifier — plus the chunked-replay drivers in
:mod:`repro.datasets.replay`. The bit-identity *property* (arbitrary
chunkings vs the batch ``direct`` engine) lives in
``tests/test_streaming_property.py``; this module pins the API contract:
readiness, latching, reasons, budgets, metrics, and input validation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.budget import Budget
from repro.core.transform import ShapeletTransform
from repro.datasets.replay import iter_chunks, replay_dataset
from repro.exceptions import NotFittedError, ValidationError
from repro.obs.metrics import MetricsRegistry
from repro.streaming import (
    REASONS,
    EarlyClassifier,
    MarginDriftDetector,
    StreamingDecision,
    StreamingMatcher,
    StreamingTransform,
)
from repro.types import Shapelet


@pytest.fixture()
def shapelets(rng):
    return [
        Shapelet(values=rng.normal(size=8), label=0),
        Shapelet(values=rng.normal(size=12), label=1),
    ]


class TestStreamingMatcher:
    def test_matches_batch_direct_engine(self, shapelets, random_series):
        matcher = StreamingMatcher(shapelets)
        for chunk in iter_chunks(random_series, 16):
            matcher.append(chunk)
        batch = ShapeletTransform(shapelets, engine="direct").transform(
            random_series
        )
        np.testing.assert_array_equal(matcher.distances(), batch[0])

    def test_accepts_raw_arrays_and_scalars(self, rng):
        query = rng.normal(size=4)
        matcher = StreamingMatcher([query])
        for value in rng.normal(size=10):
            matcher.append(value)  # scalar appends
        assert matcher.n == 10
        assert np.isfinite(matcher.distances()).all()

    def test_not_ready_until_longest_shapelet_fits(self, shapelets, rng):
        matcher = StreamingMatcher(shapelets)
        matcher.append(rng.normal(size=9))
        assert not matcher.ready  # longest shapelet is 12 samples
        distances = matcher.distances()
        assert np.isfinite(distances[0]) and np.isinf(distances[1])
        matcher.append(rng.normal(size=3))
        assert matcher.ready
        assert np.isfinite(matcher.distances()).all()

    def test_empty_chunk_is_a_noop(self, shapelets, rng):
        matcher = StreamingMatcher(shapelets)
        matcher.append(rng.normal(size=20))
        before = matcher.distances().copy()
        matcher.append(np.empty(0))
        np.testing.assert_array_equal(matcher.distances(), before)

    def test_snapshot_shape(self, shapelets, rng):
        matcher = StreamingMatcher(shapelets)
        matcher.append(rng.normal(size=20))
        snap = matcher.snapshot()
        assert snap["n_samples"] == 20
        assert snap["n_shapelets"] == 2
        assert snap["ready"] is True
        assert snap["windows_scored"] == [13, 9]

    @pytest.mark.parametrize(
        "bad", [[], [np.empty(0)], [np.zeros((2, 3))]], ids=["none", "empty", "2d"]
    )
    def test_rejects_bad_shapelets(self, bad):
        with pytest.raises(ValidationError):
            StreamingMatcher(bad)

    def test_rejects_matrix_chunk(self, shapelets):
        matcher = StreamingMatcher(shapelets)
        with pytest.raises(ValidationError):
            matcher.append(np.zeros((2, 5)))


class TestStreamingTransform:
    def test_matches_batch_direct_engine(self, shapelets, random_series):
        stream = StreamingTransform(shapelets)
        for chunk in iter_chunks(random_series, 7):
            features = stream.append(chunk)
        batch = ShapeletTransform(shapelets, engine="direct").transform(
            random_series
        )
        np.testing.assert_array_equal(features, batch[0])
        np.testing.assert_array_equal(stream.features, batch[0])

    def test_from_transform(self, shapelets, random_series):
        batch = ShapeletTransform(shapelets, engine="direct")
        stream = StreamingTransform.from_transform(batch)
        for chunk in iter_chunks(random_series, 32):
            stream.append(chunk)
        np.testing.assert_array_equal(
            stream.features, batch.transform(random_series)[0]
        )

    def test_from_transform_rejects_unfitted(self):
        with pytest.raises(ValidationError):
            StreamingTransform.from_transform(ShapeletTransform())

    def test_from_transform_rejects_dtw(self, shapelets):
        batch = ShapeletTransform(shapelets, metric="dtw")
        with pytest.raises(ValidationError, match="euclidean"):
            StreamingTransform.from_transform(batch)

    def test_n_features(self, shapelets):
        assert StreamingTransform(shapelets).n_features == 2


class TestMarginDriftDetector:
    def test_latches_on_margin_collapse(self):
        detector = MarginDriftDetector(window=8, ratio=0.5)
        for _ in range(4):
            detector.update(10.0)
        for _ in range(4):
            detector.update(1.0)
        assert detector.drifted
        # Latched: recovering margins do not clear the flag.
        for _ in range(8):
            detector.update(10.0)
        assert detector.drifted

    def test_stable_margins_do_not_drift(self):
        detector = MarginDriftDetector(window=8)
        for _ in range(32):
            assert not detector.update(5.0)

    def test_ignores_non_finite_margins(self):
        detector = MarginDriftDetector(window=4)
        detector.update(float("inf"))
        detector.update(float("nan"))
        assert len(detector._margins) == 0

    @pytest.mark.parametrize("window", [2, 7])
    def test_rejects_bad_window(self, window):
        with pytest.raises(ValidationError):
            MarginDriftDetector(window=window)

    def test_rejects_bad_ratio(self):
        with pytest.raises(ValidationError):
            MarginDriftDetector(ratio=1.5)


class TestEarlyClassifier:
    def test_from_classifier_end_of_stream_equals_batch(
        self, frozen_classifier, tiny_two_class
    ):
        for row in tiny_two_class.X[:6]:
            early = EarlyClassifier.from_classifier(
                frozen_classifier, margin_threshold=float("inf")
            )
            for chunk in iter_chunks(row, 16):
                decision = early.append(chunk)
            assert not decision.final  # inf threshold: never early
            decision = early.finalize()
            assert decision.final and decision.reason == "end_of_stream"
            assert not decision.early
            batch = int(frozen_classifier.predict(row.reshape(1, -1))[0])
            assert decision.label == batch

    def test_early_emission_latches(self, frozen_classifier, tiny_two_class):
        early = EarlyClassifier.from_classifier(
            frozen_classifier, margin_threshold=0.0
        )
        row = tiny_two_class.X[0]
        decision = early.append(row[:40])
        assert decision.final and decision.reason == "margin"
        assert decision.early and decision.t_emitted == 40
        # Later appends return the latched decision unchanged.
        assert early.append(row[40:]) is decision
        assert early.finalize() is decision

    def test_min_samples_blocks_early_emission(
        self, frozen_classifier, tiny_two_class
    ):
        row = tiny_two_class.X[0]
        early = EarlyClassifier.from_classifier(
            frozen_classifier, margin_threshold=0.0, min_samples=row.size
        )
        decision = early.append(row[:-1])
        assert not decision.final
        decision = early.append(row[-1:])
        assert decision.final and decision.reason == "margin"

    def test_budget_forces_anytime_decision(
        self, frozen_classifier, tiny_two_class
    ):
        row = tiny_two_class.X[0]
        early = EarlyClassifier.from_classifier(
            frozen_classifier,
            margin_threshold=float("inf"),
            budget=Budget(max_candidates=41),
        )
        decision = early.append(row[:40])
        assert not decision.final
        decision = early.append(row[40:44])
        assert decision.final and decision.reason == "budget"
        assert not decision.completed and not decision.early
        assert decision.label is not None

    def test_metrics_recorded(self, frozen_classifier, tiny_two_class):
        metrics = MetricsRegistry()
        early = EarlyClassifier.from_classifier(
            frozen_classifier, margin_threshold=0.0, metrics=metrics
        )
        early.append(tiny_two_class.X[0])
        snapshot = metrics.snapshot()
        assert snapshot["counters"]["streaming.appends"] == 1
        assert snapshot["counters"]["streaming.early_emits"] == 1
        assert snapshot["gauges"]["streaming.emit_t"] == tiny_two_class.X.shape[1]

    def test_finalize_before_ready_raises(self, frozen_classifier):
        early = EarlyClassifier.from_classifier(frozen_classifier)
        early.append(np.zeros(2))
        with pytest.raises(ValidationError, match="shorter"):
            early.finalize()

    def test_rejects_non_predictor(self, shapelets):
        with pytest.raises(ValidationError, match="Predictor"):
            EarlyClassifier(object(), shapelets)

    def test_rejects_negative_threshold(self, frozen_classifier):
        with pytest.raises(ValidationError):
            EarlyClassifier.from_classifier(
                frozen_classifier, margin_threshold=-1.0
            )

    def test_from_classifier_rejects_unfitted(self):
        from repro.core.config import IPSConfig
        from repro.core.pipeline import IPSClassifier

        with pytest.raises(NotFittedError):
            EarlyClassifier.from_classifier(IPSClassifier(IPSConfig()))

    def test_labels_are_original_class_values(self, rng):
        """A predictor trained on internal 0..C-1 labels emits originals."""
        from repro.core.config import IPSConfig
        from repro.core.pipeline import IPSClassifier
        from repro.datasets.generators import make_planted_dataset
        from repro.ts.series import Dataset

        dataset = make_planted_dataset(2, 10, 60, seed=3, name="relabel")
        shifted = Dataset(
            X=dataset.X,
            y=np.where(dataset.classes_[dataset.y] == 0, 5, 9),
            name="relabel",
        )
        classifier = IPSClassifier(
            IPSConfig(k=2, q_n=6, q_s=3, seed=3)
        ).fit_dataset(shifted)
        early = EarlyClassifier.from_classifier(
            classifier, margin_threshold=float("inf")
        )
        early.append(shifted.X[0])
        decision = early.finalize()
        assert decision.label in (5, 9)

    def test_reasons_constant(self):
        assert REASONS == ("pending", "margin", "budget", "end_of_stream")

    def test_decision_is_frozen(self):
        decision = StreamingDecision(
            label=1,
            confidence=0.9,
            margin=2.0,
            t_emitted=10,
            final=True,
            reason="margin",
        )
        with pytest.raises(AttributeError):
            decision.label = 2


class TestReplay:
    def test_chunks_cover_series_exactly(self, random_series):
        chunks = list(iter_chunks(random_series, 17))
        np.testing.assert_array_equal(np.concatenate(chunks), random_series)
        assert all(c.size <= 17 for c in chunks)

    def test_jitter_is_deterministic_per_seed(self, random_series):
        sizes_a = [c.size for c in iter_chunks(random_series, 9, jitter_seed=4)]
        sizes_b = [c.size for c in iter_chunks(random_series, 9, jitter_seed=4)]
        sizes_c = [c.size for c in iter_chunks(random_series, 9, jitter_seed=5)]
        assert sizes_a == sizes_b
        assert sizes_a != sizes_c
        assert all(1 <= s <= 9 for s in sizes_a)

    def test_jittered_chunks_still_cover_series(self, random_series):
        chunks = list(iter_chunks(random_series, 9, jitter_seed=4))
        np.testing.assert_array_equal(np.concatenate(chunks), random_series)

    def test_rejects_bad_inputs(self, random_series):
        with pytest.raises(ValidationError):
            list(iter_chunks(np.zeros((2, 4))))
        with pytest.raises(ValidationError):
            list(iter_chunks(random_series, 0))

    def test_replay_dataset_row_order_and_seeds(self, rng):
        X = rng.normal(size=(3, 50))
        seen = []

        def consume(i, chunks):
            sizes = [c.size for c in chunks]
            seen.append((i, sizes))
            return i * 10

        results = replay_dataset(X, consume, 8, jitter_seed=100)
        assert results == [0, 10, 20]
        assert [i for i, _ in seen] == [0, 1, 2]
        # Row i streams under seed jitter_seed + i: rows differ...
        assert seen[0][1] != seen[1][1] or seen[1][1] != seen[2][1]
        # ...but the whole replay is reproducible.
        seen_again = []
        replay_dataset(
            X, lambda i, ch: seen_again.append([c.size for c in ch]), 8,
            jitter_seed=100,
        )
        assert [sizes for _, sizes in seen] == seen_again

    def test_replay_dataset_rejects_1d(self, random_series):
        with pytest.raises(ValidationError):
            replay_dataset(random_series, lambda i, ch: None)
