"""Tests for repro.distributed: executors + distributed discovery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import IPSConfig
from repro.core.pipeline import IPS
from repro.datasets.generators import make_planted_dataset
from repro.distributed import (
    DistributedIPS,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
)
from repro.distributed.discovery import generate_unit_candidates
from repro.exceptions import ValidationError


@pytest.fixture(scope="module")
def planted():
    return make_planted_dataset(n_classes=2, n_instances=16, length=80, seed=7)


@pytest.fixture(scope="module")
def config():
    return IPSConfig(q_n=6, q_s=3, k=3, length_ratios=(0.15, 0.3), seed=0)


class TestWorkUnits:
    def test_one_unit_per_class_sample(self, planted, config):
        units = DistributedIPS(config).build_work_units(planted)
        assert len(units) == planted.n_classes * config.q_n
        labels = {u.label for u in units}
        assert labels == {0, 1}

    def test_units_are_self_contained(self, planted, config):
        units = DistributedIPS(config).build_work_units(planted)
        unit = units[0]
        assert unit.X_rows.shape[0] == len(unit.rows)
        for local, row in enumerate(unit.rows):
            assert np.array_equal(unit.X_rows[local], planted.X[row])

    def test_unit_seeds_distinct(self, planted, config):
        units = DistributedIPS(config).build_work_units(planted)
        seeds = [u.seed for u in units]
        assert len(set(seeds)) == len(seeds)

    def test_worker_generates_candidates(self, planted, config):
        units = DistributedIPS(config).build_work_units(planted)
        candidates = generate_unit_candidates(units[0])
        assert candidates
        for cand in candidates:
            assert cand.label == units[0].label
            assert cand.sample_id == units[0].sample_id
            row = planted.X[cand.source_instance]
            assert np.allclose(
                row[cand.start : cand.start + cand.length], cand.values
            )


class TestExecutors:
    def test_serial_preserves_order(self):
        executor = SerialExecutor()
        out = executor.map(lambda u: u, [1, 2, 3])  # type: ignore[arg-type]
        assert out == [1, 2, 3]

    def test_thread_matches_serial(self, planted, config):
        dist = DistributedIPS(config)
        units = dist.build_work_units(planted)
        serial = SerialExecutor().map(generate_unit_candidates, units)
        threaded = ThreadExecutor(max_workers=4).map(generate_unit_candidates, units)
        assert serial == threaded

    def test_bad_worker_counts_rejected(self):
        with pytest.raises(ValidationError):
            ThreadExecutor(max_workers=0)
        with pytest.raises(ValidationError):
            ProcessExecutor(max_workers=0)


class TestDistributedDiscovery:
    def test_matches_across_executors(self, planted, config):
        r_serial = DistributedIPS(config, SerialExecutor()).discover(planted)
        r_thread = DistributedIPS(config, ThreadExecutor(max_workers=3)).discover(
            planted
        )
        assert r_serial.n_candidates_generated == r_thread.n_candidates_generated
        for a, b in zip(r_serial.shapelets, r_thread.shapelets):
            assert np.array_equal(a.values, b.values)

    def test_result_structure(self, planted, config):
        result = DistributedIPS(config).discover(planted)
        assert result.shapelets
        assert result.extra["n_work_units"] == planted.n_classes * config.q_n
        assert result.n_candidates_after_pruning <= result.n_candidates_generated

    def test_comparable_quality_to_serial_pipeline(self, planted, config):
        """Distributed discovery should find shapelets of similar quality
        (same algorithm, different but equally-valid random samples)."""
        dist_result = DistributedIPS(config).discover(planted)
        serial_result = IPS(config).discover(planted)
        dist_labels = {s.label for s in dist_result.shapelets}
        serial_labels = {s.label for s in serial_result.shapelets}
        assert dist_labels == serial_labels == {0, 1}

    def test_deterministic_given_seed(self, planted, config):
        a = DistributedIPS(config).discover(planted)
        b = DistributedIPS(config).discover(planted)
        for s1, s2 in zip(a.shapelets, b.shapelets):
            assert np.array_equal(s1.values, s2.values)
