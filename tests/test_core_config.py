"""Tests for repro.core.config."""

from __future__ import annotations

import pytest

from repro.core.config import DEFAULT_LENGTH_RATIOS, IPSConfig
from repro.exceptions import ValidationError


class TestIPSConfig:
    def test_defaults_follow_paper(self):
        config = IPSConfig()
        assert config.k == 5  # Section IV-A: shapelet number 5
        assert config.length_ratios == DEFAULT_LENGTH_RATIOS
        assert config.lsh_scheme == "l2"
        assert config.theta == 3.0
        assert config.use_dabf and config.use_dt_cr

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"k": 0},
            {"q_n": 0},
            {"q_s": 0},
            {"length_ratios": ()},
            {"length_ratios": (0.0,)},
            {"length_ratios": (1.2,)},
            {"lsh_scheme": "bogus"},
            {"theta": 0.0},
            {"n_projections": 0},
            {"bins": 1},
            {"motifs_per_profile": 0},
            {"svm_c": 0.0},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValidationError):
            IPSConfig(**kwargs)

    def test_extra_dict_usable(self):
        config = IPSConfig(extra={"note": "ablation"})
        assert config.extra["note"] == "ablation"
