"""Tests for repro.core.config."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.config import DEFAULT_LENGTH_RATIOS, IPSConfig
from repro.exceptions import ConfigError, ValidationError


class TestIPSConfig:
    def test_defaults_follow_paper(self):
        config = IPSConfig()
        assert config.k == 5  # Section IV-A: shapelet number 5
        assert config.length_ratios == DEFAULT_LENGTH_RATIOS
        assert config.lsh_scheme == "l2"
        assert config.theta == 3.0
        assert config.use_dabf and config.use_dt_cr

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"k": 0},
            {"q_n": 0},
            {"q_s": 0},
            {"length_ratios": ()},
            {"length_ratios": (0.0,)},
            {"length_ratios": (1.2,)},
            {"lsh_scheme": "bogus"},
            {"theta": 0.0},
            {"n_projections": 0},
            {"bins": 1},
            {"motifs_per_profile": 0},
            {"svm_c": 0.0},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValidationError):
            IPSConfig(**kwargs)

    def test_extra_dict_usable(self):
        config = IPSConfig(extra={"note": "ablation"})
        assert config.extra["note"] == "ablation"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"streaming_margin_threshold": -0.5},
            {"streaming_min_fraction": 1.5},
            {"streaming_min_fraction": -0.1},
            {"streaming_chunk_size": 0},
        ],
    )
    def test_invalid_streaming_parameters_rejected(self, kwargs):
        with pytest.raises(ValidationError):
            IPSConfig(**kwargs)

    def test_streaming_defaults(self):
        config = IPSConfig()
        assert config.streaming_margin_threshold == 1.0
        assert config.streaming_min_fraction == 0.3
        assert config.streaming_chunk_size == 32


class TestStrictConstruction:
    """Unknown fields are typed errors, not silently ignored."""

    def test_unknown_field_raises_config_error(self):
        with pytest.raises(ConfigError, match="unknown IPSConfig field"):
            IPSConfig(totally_bogus=1)

    def test_config_error_is_a_validation_error(self):
        assert issubclass(ConfigError, ValidationError)

    def test_did_you_mean_suggestion(self):
        with pytest.raises(ConfigError, match="streaming_margin_threshold"):
            IPSConfig(streaming_margin_treshold=2.0)  # typo'd field

    def test_positional_construction_still_works(self):
        config = IPSConfig(7)  # k is the first field
        assert config.k == 7

    def test_signature_preserved(self):
        import inspect

        assert "k" in inspect.signature(IPSConfig.__init__).parameters


class TestFromDict:
    def test_round_trips_through_asdict(self):
        from repro.core.budget import Budget
        from repro.core.config import FaultToleranceConfig

        config = IPSConfig(
            k=3,
            seed=9,
            streaming_margin_threshold=2.5,
            streaming_min_fraction=0.7,
            streaming_chunk_size=16,
            budget=Budget(max_seconds=1.0, max_candidates=100),
            fault_tolerance=FaultToleranceConfig(max_retries=4),
        )
        rebuilt = IPSConfig.from_dict(dataclasses.asdict(config))
        assert rebuilt == config

    def test_from_dict_rejects_unknown_fields(self):
        data = dataclasses.asdict(IPSConfig())
        data["not_a_field"] = True
        with pytest.raises(ConfigError):
            IPSConfig.from_dict(data)

    def test_streaming_fields_survive_manifest_round_trip(self, tmp_path):
        """The run-manifest path: asdict -> JSON -> from_dict."""
        import json

        config = IPSConfig(
            streaming_margin_threshold=3.0, streaming_min_fraction=0.5
        )
        path = tmp_path / "manifest.json"
        path.write_text(json.dumps(dataclasses.asdict(config)))
        rebuilt = IPSConfig.from_dict(json.loads(path.read_text()))
        assert rebuilt.streaming_margin_threshold == 3.0
        assert rebuilt.streaming_min_fraction == 0.5
        assert rebuilt == config
