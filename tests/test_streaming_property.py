"""Hypothesis property tests pinning the streaming subsystem's anchors.

Two properties hold the whole design together:

1. **Bit-identity** — a series fed to :class:`repro.streaming.
   StreamingTransform` in chunks of *any* sizes (including one sample at
   a time) yields exactly the bits of the batch
   ``ShapeletTransform(engine="direct")`` row. Not approximately: the
   streaming path reuses the batch kernels on identical slices, so
   ``np.array_equal`` must hold.
2. **Early = final** — at the calibrated operating point
   (margin threshold 2.5, min fraction 0.7 of the series), every early
   emission carries the same label the batch classifier assigns to the
   full series.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.transform import ShapeletTransform
from repro.datasets.replay import iter_chunks
from repro.streaming import EarlyClassifier, StreamingTransform
from repro.types import Shapelet

#: Calibrated operating point (see repro.benchlib.streambench).
MARGIN_THRESHOLD = 2.5
MIN_FRACTION = 0.7


def _random_problem(seed: int, n_shapelets: int, length: int):
    rng = np.random.default_rng(seed)
    shapelets = [
        Shapelet(values=rng.normal(size=int(rng.integers(3, 20))), label=0)
        for _ in range(n_shapelets)
    ]
    series = rng.normal(size=length)
    return shapelets, series


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n_shapelets=st.integers(1, 5),
    length=st.integers(40, 200),
    chunk_size=st.integers(1, 50),
)
def test_fixed_chunking_bit_identical_to_batch(
    seed, n_shapelets, length, chunk_size
):
    shapelets, series = _random_problem(seed, n_shapelets, length)
    stream = StreamingTransform(shapelets)
    for chunk in iter_chunks(series, chunk_size):
        stream.append(chunk)
    batch = ShapeletTransform(shapelets, engine="direct").transform(series)
    assert np.array_equal(stream.features, batch[0])


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    jitter_seed=st.integers(0, 10_000),
    max_chunk=st.integers(1, 40),
)
def test_ragged_chunking_bit_identical_to_batch(seed, jitter_seed, max_chunk):
    shapelets, series = _random_problem(seed, n_shapelets=3, length=150)
    stream = StreamingTransform(shapelets)
    for chunk in iter_chunks(series, max_chunk, jitter_seed=jitter_seed):
        stream.append(chunk)
    batch = ShapeletTransform(shapelets, engine="direct").transform(series)
    assert np.array_equal(stream.features, batch[0])


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    split=st.floats(0.1, 0.9),
)
def test_chunking_is_associative(seed, split):
    """One big append equals any two-way split of the same samples."""
    shapelets, series = _random_problem(seed, n_shapelets=2, length=120)
    one = StreamingTransform(shapelets)
    one.append(series)
    two = StreamingTransform(shapelets)
    cut = max(1, min(series.size - 1, int(split * series.size)))
    two.append(series[:cut])
    two.append(series[cut:])
    assert np.array_equal(one.features, two.features)


@pytest.fixture(scope="module")
def calibrated_problem():
    from repro.core.config import IPSConfig
    from repro.core.pipeline import IPSClassifier
    from repro.datasets.generators import make_planted_dataset

    train = make_planted_dataset(2, 16, 120, seed=1, name="calibrated")
    test = make_planted_dataset(2, 30, 120, seed=101, name="calibrated")
    classifier = IPSClassifier(
        IPSConfig(k=3, q_n=6, q_s=3, seed=1)
    ).fit_dataset(train)
    batch_labels = classifier.predict(test.X)
    return classifier, test, batch_labels


@settings(max_examples=20, deadline=None)
@given(
    row=st.integers(0, 29),
    chunk_size=st.integers(1, 64),
)
def test_early_label_equals_batch_label(calibrated_problem, row, chunk_size):
    classifier, test, batch_labels = calibrated_problem
    series = test.X[row]
    early = EarlyClassifier.from_classifier(
        classifier,
        margin_threshold=MARGIN_THRESHOLD,
        min_samples=math.ceil(MIN_FRACTION * series.size),
    )
    for chunk in iter_chunks(series, chunk_size):
        decision = early.append(chunk)
        if decision.final:
            break
    if not decision.final:
        decision = early.finalize()
    assert decision.label == int(batch_labels[row])


def test_some_streams_emit_early(calibrated_problem):
    """The calibrated threshold must actually buy earliness (gate > 0)."""
    classifier, test, batch_labels = calibrated_problem
    n_early = 0
    for row in range(test.n_series):
        series = test.X[row]
        early = EarlyClassifier.from_classifier(
            classifier,
            margin_threshold=MARGIN_THRESHOLD,
            min_samples=math.ceil(MIN_FRACTION * series.size),
        )
        for chunk in iter_chunks(series, 16):
            decision = early.append(chunk)
            if decision.final:
                break
        if decision.final and decision.early:
            n_early += 1
            assert decision.t_emitted < series.size
            assert decision.label == int(batch_labels[row])
    assert n_early > 0
