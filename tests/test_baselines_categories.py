"""Tests for the intervals-based (TSF) and dictionary-based (BOP) baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.bag_of_patterns import BagOfPatterns
from repro.baselines.interval_forest import TimeSeriesForest, interval_features
from repro.datasets.generators import make_planted_dataset
from repro.exceptions import NotFittedError, ValidationError
from repro.ts.series import Dataset


@pytest.fixture(scope="module")
def planted():
    full = make_planted_dataset(n_classes=2, n_instances=44, length=72, seed=29)
    train = Dataset(X=full.X[:20], y=full.classes_[full.y[:20]], name="train")
    test = Dataset(X=full.X[20:], y=full.classes_[full.y[20:]], name="test")
    return train, test


class TestIntervalFeatures:
    def test_shape(self, rng):
        X = rng.normal(size=(5, 40))
        intervals = np.array([[0, 10], [10, 40]])
        features = interval_features(X, intervals)
        assert features.shape == (5, 6)

    def test_values_correct(self, rng):
        X = rng.normal(size=(2, 30))
        features = interval_features(X, np.array([[5, 15]]))
        assert features[0, 0] == pytest.approx(X[0, 5:15].mean())
        assert features[0, 1] == pytest.approx(X[0, 5:15].std())

    def test_slope_of_linear_segment(self):
        X = np.arange(20.0).reshape(1, -1) * 2.0
        features = interval_features(X, np.array([[0, 20]]))
        assert features[0, 2] == pytest.approx(2.0)

    def test_rejects_1d(self, rng):
        with pytest.raises(ValidationError):
            interval_features(rng.normal(size=10), np.array([[0, 5]]))


class TestTimeSeriesForest:
    def test_learns_planted_data(self, planted):
        train, test = planted
        model = TimeSeriesForest(n_estimators=15, seed=0).fit_dataset(train)
        accuracy = model.score(test.X, test.classes_[test.y])
        assert accuracy > 0.6

    def test_deterministic(self, planted):
        train, _test = planted
        a = TimeSeriesForest(n_estimators=5, seed=3).fit(train.X, train.y)
        b = TimeSeriesForest(n_estimators=5, seed=3).fit(train.X, train.y)
        assert np.array_equal(a.predict(train.X), b.predict(train.X))

    def test_unfitted_rejected(self, rng):
        with pytest.raises(NotFittedError):
            TimeSeriesForest().predict(rng.normal(size=(2, 30)))

    def test_bad_params_rejected(self):
        with pytest.raises(ValidationError):
            TimeSeriesForest(n_estimators=0)
        with pytest.raises(ValidationError):
            TimeSeriesForest(min_interval=1)


class TestBagOfPatterns:
    def test_learns_planted_data(self, planted):
        train, test = planted
        model = BagOfPatterns(seed=0).fit_dataset(train)
        accuracy = model.score(test.X, test.classes_[test.y])
        assert accuracy > 0.6

    def test_1nn_variant(self, planted):
        train, test = planted
        model = BagOfPatterns(classifier="1nn", seed=0).fit_dataset(train)
        accuracy = model.score(test.X, test.classes_[test.y])
        assert accuracy > 0.55

    def test_histograms_normalized(self, planted):
        train, _test = planted
        model = BagOfPatterns(seed=0).fit_dataset(train)
        sums = model._train_histograms.sum(axis=1)  # noqa: SLF001
        assert np.allclose(sums[sums > 0], 1.0)

    def test_numerosity_reduction_shrinks_counts(self, planted):
        train, _test = planted
        with_nr = BagOfPatterns(numerosity_reduction=True, seed=0).fit_dataset(train)
        without_nr = BagOfPatterns(numerosity_reduction=False, seed=0).fit_dataset(train)
        words_with = sum(len(with_nr._words_of(row)) for row in train.X)  # noqa: SLF001
        words_without = sum(
            len(without_nr._words_of(row)) for row in train.X  # noqa: SLF001
        )
        assert words_with < words_without

    def test_unseen_words_ignored_at_predict(self, planted, rng):
        train, _test = planted
        model = BagOfPatterns(seed=0).fit_dataset(train)
        # Wild data full of unseen words must still predict something.
        predictions = model.predict(rng.normal(size=(3, train.series_length)) * 100)
        assert predictions.shape == (3,)

    def test_unfitted_rejected(self, rng):
        with pytest.raises(NotFittedError):
            BagOfPatterns().predict(rng.normal(size=(1, 30)))

    def test_bad_params_rejected(self):
        with pytest.raises(ValidationError):
            BagOfPatterns(window_ratio=0.0)
        with pytest.raises(ValidationError):
            BagOfPatterns(classifier="resnet")
