"""Streaming-session tests for :class:`repro.serve.StreamingInferenceService`.

The session table must honor the serving disciplines: admission (session
cap + TTL eviction), deadlines, the shared circuit breaker, per-mode
chunk validation — and the batch Predictor surface (``predict`` /
``predict_proba`` / ``decision_function``) must keep working next to the
sessions, including the warn-once 1-D ``predict`` deprecation shim.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.exceptions import (
    CircuitOpenError,
    DeadlineExceededError,
    InvalidRequestError,
    RequestFailedError,
    ServiceClosedError,
    SessionLimitError,
    UnknownSessionError,
    ValidationError,
)
from repro.kernels import reset_deprecation_warnings
from repro.serve import ServeConfig, StreamConfig, StreamingInferenceService
from repro.serve.breaker import OPEN


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


@pytest.fixture()
def service(frozen_classifier):
    with StreamingInferenceService(frozen_classifier) as svc:
        yield svc


@pytest.fixture()
def clocked(frozen_classifier):
    clock = FakeClock()
    svc = StreamingInferenceService(
        frozen_classifier,
        stream_config=StreamConfig(max_sessions=2, session_ttl_s=10.0),
        clock=clock,
    )
    svc.start()
    yield svc, clock
    svc.stop()


class TestStreamConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_sessions": 0},
            {"session_ttl_s": 0.0},
            {"margin_threshold": -1.0},
            {"min_fraction": 1.5},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValidationError):
            StreamConfig(**kwargs)


class TestSessions:
    def test_stream_series_matches_batch_at_inf_threshold(
        self, service, tiny_two_class
    ):
        rows = tiny_two_class.X[:4]
        batch = service.classifier.predict(rows)
        for i, row in enumerate(rows):
            decision = service.stream_series(
                row, margin_threshold=float("inf")
            )
            assert decision.final and decision.reason == "end_of_stream"
            assert decision.label == int(batch[i])

    def test_chunked_session_lifecycle(self, service, tiny_two_class):
        row = tiny_two_class.X[0]
        session_id = service.open_stream(margin_threshold=float("inf"))
        decision = service.submit_chunk(session_id, row[:50])
        assert not decision.final
        service.submit_chunk(session_id, row[50:])
        decision = service.close_stream(session_id)
        assert decision.final
        # Closed: the id is gone.
        with pytest.raises(UnknownSessionError):
            service.submit_chunk(session_id, row[:5])
        stats = service.stats()["streaming"]
        assert stats["sessions_opened"] == 1
        assert stats["sessions_closed"] == 1
        assert stats["chunks"] == 2
        assert stats["open_sessions"] == 0

    def test_early_emission_counted_once(self, service, tiny_two_class):
        row = tiny_two_class.X[0]
        session_id = service.open_stream(margin_threshold=0.0, min_samples=0)
        decision = service.submit_chunk(session_id, row)
        assert decision.early
        # Feeding a latched session returns the same decision and must
        # not double-count the emission.
        again = service.submit_chunk(session_id, row[:5])
        assert again is decision
        assert service.stats()["streaming"]["early_emits"] == 1

    def test_session_cap(self, clocked):
        svc, _clock = clocked
        svc.open_stream()
        svc.open_stream()
        with pytest.raises(SessionLimitError):
            svc.open_stream()

    def test_ttl_eviction(self, clocked, tiny_two_class):
        svc, clock = clocked
        stale = svc.open_stream()
        clock.advance(11.0)
        fresh = svc.open_stream()  # triggers eviction of the stale one
        with pytest.raises(UnknownSessionError):
            svc.submit_chunk(stale, tiny_two_class.X[0][:8])
        svc.submit_chunk(fresh, tiny_two_class.X[0][:8])
        assert svc.stats()["streaming"]["sessions_expired"] == 1

    def test_deadline_drops_session(self, clocked, tiny_two_class):
        svc, clock = clocked
        session_id = svc.open_stream(deadline_s=5.0)
        svc.submit_chunk(session_id, tiny_two_class.X[0][:8])
        clock.advance(6.0)
        with pytest.raises(DeadlineExceededError):
            svc.submit_chunk(session_id, tiny_two_class.X[0][8:16])
        with pytest.raises(UnknownSessionError):
            svc.submit_chunk(session_id, tiny_two_class.X[0][:4])

    def test_open_breaker_refuses_chunks(self, service, tiny_two_class):
        session_id = service.open_stream()
        for _ in range(service.config.breaker_threshold):
            service.breaker.record_failure()
        assert service.breaker.state == OPEN
        with pytest.raises(CircuitOpenError):
            service.submit_chunk(session_id, tiny_two_class.X[0][:8])

    def test_failing_append_trips_breaker(
        self, service, tiny_two_class, monkeypatch
    ):
        session_id = service.open_stream()
        session = service._get_session(session_id)

        def boom(chunk):
            raise RuntimeError("kernel exploded")

        monkeypatch.setattr(session.early, "append", boom)
        before = service.breaker.stats()["consecutive_failures"]
        with pytest.raises(RequestFailedError, match="kernel exploded"):
            service.submit_chunk(session_id, tiny_two_class.X[0][:8])
        assert service.breaker.stats()["consecutive_failures"] == before + 1

    def test_chunk_validation_repairs_non_finite(self, service):
        session_id = service.open_stream()
        chunk = np.array([1.0, np.nan, np.inf, 2.0])
        service.submit_chunk(session_id, chunk)  # repaired, not refused
        assert service._get_session(session_id).early.transform.n == 4

    def test_strict_validation_refuses_non_finite(self, frozen_classifier):
        with StreamingInferenceService(
            frozen_classifier, ServeConfig(validation="strict")
        ) as svc:
            session_id = svc.open_stream()
            with pytest.raises(InvalidRequestError, match="non-finite"):
                svc.submit_chunk(session_id, np.array([1.0, np.nan]))

    def test_rejects_matrix_chunk(self, service):
        session_id = service.open_stream()
        with pytest.raises(InvalidRequestError):
            service.submit_chunk(session_id, np.zeros((2, 4)))

    def test_stopped_service_refuses_sessions(self, frozen_classifier):
        svc = StreamingInferenceService(frozen_classifier)
        with pytest.raises(ServiceClosedError):
            svc.open_stream()
        svc.start()
        session_id = svc.open_stream()
        svc.stop()
        with pytest.raises(ServiceClosedError):
            svc.submit_chunk(session_id, np.zeros(4))


class TestBatchSurface:
    """The Predictor protocol over the service, sessions or not."""

    def test_predict_matrix(self, service, tiny_two_class):
        X = tiny_two_class.X[:5]
        labels = service.predict(X)
        assert labels.shape == (5,) and labels.dtype == np.int64
        np.testing.assert_array_equal(labels, service.classifier.predict(X))

    def test_predict_proba(self, service, tiny_two_class):
        X = tiny_two_class.X[:4]
        proba = service.predict_proba(X)
        assert proba.shape == (4, service.classes_.size)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)

    def test_decision_function_margin_consistent(self, service, tiny_two_class):
        X = tiny_two_class.X[:4]
        scores = service.decision_function(X)
        assert scores.shape == (4, service.classes_.size)
        np.testing.assert_array_equal(
            service.classes_[np.argmax(scores, axis=1)], service.predict(X)
        )

    def test_1d_predict_shim_warns_once(self, service, tiny_two_class):
        reset_deprecation_warnings()
        try:
            row = tiny_two_class.X[0]
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                a = service.predict(row)
                b = service.predict(row)
            deprecations = [
                w for w in caught if issubclass(w.category, DeprecationWarning)
            ]
            assert len(deprecations) == 1
            message = str(deprecations[0].message)
            assert "deprecated" in message and "predict_one" in message
            assert a == b == service.predict_one(row)
        finally:
            reset_deprecation_warnings()
