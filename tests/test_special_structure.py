"""Deeper structural tests of the exact synthetic-UCR generators.

These verify the *generative definitions*, not just shapes: step polarity
in TwoPatterns, support flatness/ramps in CBF, periodicity in
SyntheticControl's cyclic class, and the ECG wave layout.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.special import (
    make_cbf,
    make_ecg,
    make_synthetic_control,
    make_two_patterns,
)


def _step_signs(series: np.ndarray, threshold: float = 2.0) -> list[int]:
    """Signs of the large steps in a TwoPatterns instance, in time order."""
    diffs = np.diff(series)
    signs: list[int] = []
    i = 0
    while i < diffs.size:
        if diffs[i] > threshold:
            signs.append(+1)
            i += 5
        elif diffs[i] < -threshold:
            signs.append(-1)
            i += 5
        else:
            i += 1
    return signs


class TestTwoPatternsStructure:
    def test_class_step_polarity(self):
        """Class encodes the (first, second) event types: UU/UD/DU/DD.

        An 'up' event is a down-step followed by an up-step (the -1 then
        +1 plateau); detect each event by its characteristic first edge.
        """
        ds = make_two_patterns(80, length=128, seed=3)
        # Class 0 = up,up: first big edge of each event is negative
        # (drop to -1) followed by a positive recovery edge.
        for label, (first_up, second_up) in enumerate(
            [(True, True), (True, False), (False, True), (False, False)]
        ):
            rows = ds.series_of_class(label)
            agreement = 0
            total = 0
            for row in rows:
                signs = _step_signs(row)
                if len(signs) < 2:
                    continue
                # An up event starts with a -edge; a down event with +edge.
                first_is_up = signs[0] == -1
                last_is_up = signs[-1] == +1  # up events end on a +edge
                total += 1
                agreement += first_is_up == first_up
            assert total > 0
            assert agreement / total > 0.7, (label, agreement, total)


class TestCBFStructure:
    def test_cylinder_flat_on_support(self):
        ds = make_cbf(90, length=128, seed=4)
        cylinders = ds.series_of_class(0)
        # On its support the cylinder sits near 6; measure the middle third.
        mid = cylinders[:, 45:85]
        assert np.median(mid) > 3.0
        # Outside the support (the very start) it is near zero-mean noise.
        head = cylinders[:, :10]
        assert abs(np.median(head)) < 1.5

    def test_bell_starts_low_funnel_starts_high(self):
        ds = make_cbf(90, length=128, seed=5)
        bell = ds.series_of_class(1)
        funnel = ds.series_of_class(2)
        # Within the common support region, the bell is rising so its
        # early-support values are below its late-support values; the
        # funnel is the mirror image.
        assert np.median(bell[:, 80:95]) > np.median(bell[:, 35:50])
        assert np.median(funnel[:, 35:50]) > np.median(funnel[:, 80:95])


class TestSyntheticControlStructure:
    def test_cyclic_class_is_periodic(self):
        ds = make_synthetic_control(60, length=60, seed=6)
        cyclic = ds.series_of_class(1)
        normal = ds.series_of_class(0)

        def peak_autocorr(row: np.ndarray) -> float:
            centered = row - row.mean()
            full = np.correlate(centered, centered, mode="full")
            acf = full[full.size // 2 :]
            acf = acf / acf[0]
            # Strongest autocorrelation at a lag in the period range 8..20.
            return float(acf[8:20].max())

        cyclic_score = np.mean([peak_autocorr(row) for row in cyclic])
        normal_score = np.mean([peak_autocorr(row) for row in normal])
        assert cyclic_score > normal_score + 0.2

    def test_shift_classes_have_level_break(self):
        ds = make_synthetic_control(60, length=60, seed=7)
        up_shift = ds.series_of_class(4)
        diff_of_halves = up_shift[:, 40:].mean(axis=1) - up_shift[:, :20].mean(axis=1)
        assert np.median(diff_of_halves) > 5.0

    def test_normal_class_is_stationary(self):
        ds = make_synthetic_control(60, length=60, seed=8)
        normal = ds.series_of_class(0)
        slopes = [np.polyfit(np.arange(60), row, 1)[0] for row in normal]
        assert abs(float(np.median(slopes))) < 0.1


class TestECGStructure:
    def test_r_peak_dominates(self):
        ds = make_ecg(30, length=96, n_classes=2, seed=9)
        mean_beat = ds.X.mean(axis=0)
        r_position = int(np.argmax(mean_beat))
        # The R peak sits at ~40% of the beat.
        assert 0.3 * 96 < r_position < 0.5 * 96

    def test_five_class_variant_distinct(self):
        ds = make_ecg(50, length=96, n_classes=5, seed=10)
        assert ds.n_classes == 5
        means = np.vstack([ds.series_of_class(c).mean(axis=0) for c in range(5)])
        # Every pair of class means differs somewhere meaningfully.
        for a in range(5):
            for b in range(a + 1, 5):
                assert np.abs(means[a] - means[b]).max() > 0.05
