"""Tests for repro.core.selection (Algorithm 4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.selection import select_top_k, select_top_k_per_class
from repro.core.utility import UtilityScores
from repro.exceptions import ValidationError
from repro.types import Candidate, CandidateKind


def _scores(values_list, combined):
    candidates = [
        Candidate(values=np.asarray(v, dtype=float), label=0, kind=CandidateKind.MOTIF)
        for v in values_list
    ]
    n = len(candidates)
    combined = np.asarray(combined, dtype=float)
    # Decompose arbitrarily: intra = combined, inter = 0, instance = 0.
    return UtilityScores(
        candidates=candidates,
        intra=combined,
        inter=np.zeros(n),
        instance=np.zeros(n),
    )


class TestSelectTopK:
    def test_lowest_scores_win(self):
        scores = _scores([[1, 2], [3, 4], [5, 6]], [0.5, 0.1, 0.9])
        picked = select_top_k(scores, 2)
        assert [s.score for s in picked] == sorted(s.score for s in picked)
        assert np.array_equal(picked[0].values, [3, 4])

    def test_k_larger_than_pool(self):
        scores = _scores([[1, 2]], [0.3])
        assert len(select_top_k(scores, 10)) == 1

    def test_duplicate_values_skipped(self):
        scores = _scores([[1, 2], [1, 2], [3, 4]], [0.1, 0.2, 0.3])
        picked = select_top_k(scores, 3)
        assert len(picked) == 2

    def test_k_must_be_positive(self):
        with pytest.raises(ValidationError):
            select_top_k(_scores([[1]], [0.1]), 0)

    def test_shapelet_carries_score(self):
        picked = select_top_k(_scores([[1, 2]], [0.42]), 1)
        assert picked[0].score == pytest.approx(0.42)


class TestSelectPerClass:
    def test_concatenates_classes_in_order(self):
        by_class = {
            1: _scores([[9, 9]], [0.1]),
            0: _scores([[1, 1]], [0.2]),
        }
        picked = select_top_k_per_class(by_class, 1)
        assert len(picked) == 2
        assert np.array_equal(picked[0].values, [1, 1])  # class 0 first

    def test_all_empty_raises(self):
        empty = UtilityScores(
            candidates=[], intra=np.empty(0), inter=np.empty(0), instance=np.empty(0)
        )
        with pytest.raises(ValidationError):
            select_top_k_per_class({0: empty}, 3)
