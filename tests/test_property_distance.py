"""Hypothesis property tests for the distance / profile substrate."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.matrixprofile.mass import mass
from repro.ts.distance import (
    distance_profile,
    sliding_mean_std,
    squared_euclidean,
    subsequence_distance,
)
from repro.ts.dtw import dtw_distance
from repro.ts.preprocessing import linear_interpolate_resample, znormalize

_FINITE = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)


def _series(min_size: int, max_size: int):
    return arrays(np.float64, st.integers(min_size, max_size), elements=_FINITE)


@settings(max_examples=40, deadline=None)
@given(_series(2, 40))
def test_znormalize_idempotent_on_scale(x):
    """z-normalization is invariant to affine input transforms."""
    z1 = znormalize(x)
    z2 = znormalize(3.0 * x + 7.0)
    assert np.allclose(z1, z2, atol=1e-8)


@settings(max_examples=40, deadline=None)
@given(_series(2, 40))
def test_squared_euclidean_identity(x):
    assert squared_euclidean(x, x) == 0.0


@settings(max_examples=40, deadline=None)
@given(_series(2, 30), _series(2, 30))
def test_squared_euclidean_symmetry(x, y):
    n = min(x.size, y.size)
    a, b = x[:n], y[:n]
    assert squared_euclidean(a, b) == squared_euclidean(b, a)


@settings(max_examples=30, deadline=None)
@given(st.data())
def test_distance_profile_matches_brute(data):
    t = data.draw(_series(10, 60))
    L = data.draw(st.integers(2, min(8, t.size)))
    q = data.draw(arrays(np.float64, L, elements=_FINITE))
    profile = distance_profile(q, t)
    brute = np.array([np.sum((t[i : i + L] - q) ** 2) for i in range(t.size - L + 1)])
    scale = max(1.0, np.abs(brute).max())
    assert np.allclose(profile, brute, atol=1e-6 * scale)


@settings(max_examples=30, deadline=None)
@given(st.data())
def test_subsequence_distance_of_contained_window_is_zero(data):
    t = data.draw(_series(10, 60))
    L = data.draw(st.integers(2, min(8, t.size)))
    start = data.draw(st.integers(0, t.size - L))
    assert subsequence_distance(t[start : start + L], t) <= 1e-7


@settings(max_examples=30, deadline=None)
@given(st.data())
def test_sliding_mean_std_nonnegative_std(data):
    t = data.draw(_series(5, 60))
    L = data.draw(st.integers(1, t.size))
    _means, stds = sliding_mean_std(t, L)
    assert np.all(stds >= 0.0)


@settings(max_examples=20, deadline=None)
@given(st.data())
def test_mass_profile_bounded(data):
    """z-normalized distances lie in [0, 2*sqrt(L)]."""
    t = data.draw(_series(12, 60))
    L = data.draw(st.integers(3, min(10, t.size)))
    q = data.draw(arrays(np.float64, L, elements=_FINITE))
    profile = mass(q, t)
    assert np.all(profile >= 0.0)
    assert np.all(profile <= 2.0 * np.sqrt(L) + 1e-6)


@settings(max_examples=20, deadline=None)
@given(_series(3, 25), _series(3, 25))
def test_dtw_symmetry_and_identity(x, y):
    assert dtw_distance(x, x) == 0.0
    assert abs(dtw_distance(x, y) - dtw_distance(y, x)) < 1e-9


@settings(max_examples=20, deadline=None)
@given(_series(3, 25), _series(3, 25))
def test_dtw_lower_bounds_euclidean_for_equal_lengths(x, y):
    n = min(x.size, y.size)
    a, b = x[:n], y[:n]
    euclidean = float(np.sqrt(np.sum((a - b) ** 2)))
    assert dtw_distance(a, b) <= euclidean + 1e-9


@settings(max_examples=30, deadline=None)
@given(st.data())
def test_resample_preserves_endpoints_and_range(data):
    x = data.draw(_series(2, 40))
    new_len = data.draw(st.integers(2, 80))
    out = linear_interpolate_resample(x, new_len)
    assert out.size == new_len
    assert out[0] == x[0]
    assert out[-1] == x[-1]
    assert out.min() >= x.min() - 1e-12
    assert out.max() <= x.max() + 1e-12
