"""Tests for repro.ts.distance: FFT sliding distances vs brute force."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import LengthError, ValidationError
from repro.ts.distance import (
    distance_profile,
    euclidean_distance,
    pairwise_subsequence_distance,
    sliding_dot_product,
    sliding_mean_std,
    squared_euclidean,
    subsequence_distance,
)


class TestBasicDistances:
    def test_squared_euclidean(self):
        assert squared_euclidean([0, 0], [3, 4]) == pytest.approx(25.0)

    def test_euclidean(self):
        assert euclidean_distance([0, 0], [3, 4]) == pytest.approx(5.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValidationError):
            squared_euclidean([1, 2], [1, 2, 3])


class TestSlidingDotProduct:
    def test_matches_direct(self, rng):
        t = rng.normal(size=120)
        q = rng.normal(size=17)
        out = sliding_dot_product(q, t)
        direct = np.array([t[i : i + 17] @ q for i in range(104)])
        assert np.allclose(out, direct, atol=1e-8)

    def test_tiny_output_uses_direct_path(self, rng):
        t = rng.normal(size=20)
        q = rng.normal(size=18)
        out = sliding_dot_product(q, t)
        assert out.shape == (3,)
        assert out[1] == pytest.approx(t[1:19] @ q)


class TestSlidingMeanStd:
    def test_matches_naive(self, rng):
        t = rng.normal(size=60)
        means, stds = sliding_mean_std(t, 9)
        for i in range(52):
            assert means[i] == pytest.approx(t[i : i + 9].mean())
            assert stds[i] == pytest.approx(t[i : i + 9].std(), abs=1e-9)

    def test_constant_window_std_zero(self):
        t = np.concatenate([np.zeros(10), np.ones(10)])
        _means, stds = sliding_mean_std(t, 5)
        assert stds[0] == 0.0
        assert stds[-1] == 0.0


class TestDistanceProfile:
    def test_exact_match_is_zero(self, random_series):
        q = random_series[40:70].copy()
        profile = distance_profile(q, random_series)
        assert profile[40] == pytest.approx(0.0, abs=1e-7)

    def test_matches_brute_force(self, rng):
        t = rng.normal(size=150)
        q = rng.normal(size=20)
        profile = distance_profile(q, t)
        brute = np.array([np.sum((t[i : i + 20] - q) ** 2) for i in range(131)])
        assert np.allclose(profile, brute, atol=1e-6)

    def test_non_negative(self, rng):
        t = rng.normal(size=300)
        q = rng.normal(size=30)
        assert np.all(distance_profile(q, t) >= 0.0)

    def test_rejects_2d(self):
        with pytest.raises(ValidationError):
            distance_profile(np.zeros((2, 2)), np.zeros(10))


class TestSubsequenceDistance:
    def test_def4_normalization(self, rng):
        """Def. 4: distance is the min mean squared difference."""
        t = rng.normal(size=100)
        q = rng.normal(size=10)
        expected = min(
            np.mean((t[i : i + 10] - q) ** 2) for i in range(91)
        )
        assert subsequence_distance(q, t) == pytest.approx(expected)

    def test_argument_order_irrelevant(self, rng):
        t = rng.normal(size=80)
        q = rng.normal(size=12)
        assert subsequence_distance(q, t) == pytest.approx(subsequence_distance(t, q))

    def test_identical_series_zero(self, rng):
        t = rng.normal(size=50)
        assert subsequence_distance(t, t) == pytest.approx(0.0, abs=1e-9)

    def test_contained_subsequence_zero(self, random_series):
        q = random_series[10:30]
        assert subsequence_distance(q, random_series) == pytest.approx(0.0, abs=1e-9)


class TestPairwiseSubsequenceDistance:
    def test_shape_and_values(self, rng):
        X = rng.normal(size=(4, 60))
        queries = [rng.normal(size=8), rng.normal(size=15)]
        D = pairwise_subsequence_distance(queries, X)
        assert D.shape == (4, 2)
        for j in range(4):
            for i, q in enumerate(queries):
                assert D[j, i] == pytest.approx(subsequence_distance(q, X[j]))

    def test_query_longer_than_series_rejected(self, rng):
        with pytest.raises(LengthError):
            pairwise_subsequence_distance([rng.normal(size=100)], rng.normal(size=(2, 50)))

    def test_rejects_1d_matrix(self, rng):
        with pytest.raises(ValidationError):
            pairwise_subsequence_distance([np.zeros(3)], np.zeros(10))
