"""Tests for repro.matrixprofile.mass."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.matrixprofile.mass import mass, raw_distance_profile
from repro.ts.preprocessing import znormalize


def _brute_znorm_profile(q: np.ndarray, t: np.ndarray) -> np.ndarray:
    L = q.size
    zq = znormalize(q)
    return np.array(
        [
            np.sqrt(np.sum((znormalize(t[i : i + L]) - zq) ** 2))
            for i in range(t.size - L + 1)
        ]
    )


class TestMass:
    def test_matches_brute_force(self, rng):
        t = rng.normal(size=200)
        q = rng.normal(size=25)
        assert np.allclose(mass(q, t), _brute_znorm_profile(q, t), atol=1e-6)

    def test_self_match_zero(self, random_series):
        q = random_series[30:60].copy()
        profile = mass(q, random_series)
        assert profile[30] == pytest.approx(0.0, abs=1e-6)

    def test_scale_invariance(self, rng):
        """z-normalized distance ignores affine transforms of the query."""
        t = rng.normal(size=150)
        q = t[20:50].copy()
        scaled = 5.0 * q + 3.0
        assert np.allclose(mass(q, t), mass(scaled, t), atol=1e-6)

    def test_flat_window_convention(self):
        t = np.concatenate([np.zeros(20), np.sin(np.arange(30))])
        q = np.ones(10)  # flat query
        profile = mass(q, t)
        # Flat query vs flat window -> 0; vs non-flat -> sqrt(L).
        assert profile[0] == pytest.approx(0.0)
        assert profile[-1] == pytest.approx(np.sqrt(10.0))

    def test_non_normalized_delegates_to_raw(self, rng):
        t = rng.normal(size=100)
        q = rng.normal(size=10)
        assert np.allclose(mass(q, t, normalized=False), raw_distance_profile(q, t))

    def test_rejects_2d(self):
        with pytest.raises(ValidationError):
            mass(np.zeros((2, 3)), np.zeros(10))


class TestNonFiniteGuards:
    """NaN/inf inputs fail loudly instead of propagating NaN distances."""

    def test_nan_query_rejected(self, rng):
        query = rng.normal(size=8)
        query[3] = np.nan
        with pytest.raises(ValidationError, match="query contains NaN or inf"):
            mass(query, rng.normal(size=50))

    def test_inf_series_rejected(self, rng):
        series = rng.normal(size=50)
        series[10] = np.inf
        with pytest.raises(ValidationError, match="series contains NaN or inf"):
            mass(rng.normal(size=8), series)

    def test_raw_flavour_also_guarded(self, rng):
        series = rng.normal(size=50)
        series[0] = np.nan
        with pytest.raises(ValidationError):
            mass(rng.normal(size=8), series, normalized=False)

    def test_constant_windows_stay_finite_and_silent(self, rng):
        """Zero-variance windows follow the flat convention — no divide
        warnings, no NaNs."""
        series = rng.normal(size=60)
        series[20:35] = 4.2  # a flat stretch
        flat_query = np.full(10, 7.0)
        with np.errstate(divide="raise", invalid="raise"):
            from_flat = mass(flat_query, series)
            from_normal = mass(rng.normal(size=10), series)
        assert np.all(np.isfinite(from_flat))
        assert np.all(np.isfinite(from_normal))


class TestRawDistanceProfile:
    def test_is_sqrt_of_squared_profile(self, rng):
        t = rng.normal(size=80)
        q = rng.normal(size=12)
        profile = raw_distance_profile(q, t)
        brute = np.array(
            [np.sqrt(np.sum((t[i : i + 12] - q) ** 2)) for i in range(69)]
        )
        assert np.allclose(profile, brute, atol=1e-6)
