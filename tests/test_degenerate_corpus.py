"""Degenerate-input corpus: every method must survive hostile datasets.

Each corpus entry is a dataset a production user will eventually feed in:
constant series, a class with a single example, an all-identical dataset,
series too short for the shapelet-length grid, and NaN/inf gaps. The
contract: after the repair policies run, IPS and the baselines fit,
predict, and score without raising and without RuntimeWarnings (promoted
to errors by pyproject).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.fast_shapelets import FastShapelets
from repro.baselines.mp_base import MPBaseline
from repro.core.config import IPSConfig
from repro.core.pipeline import IPSClassifier
from repro.datasets.generators import make_planted_dataset
from repro.validation import validate_dataset

pytestmark = pytest.mark.robustness


@pytest.fixture(scope="module")
def planted():
    return make_planted_dataset(n_classes=2, n_instances=10, length=40, seed=1)


def _corpus(planted):
    X, y = planted.X, planted.classes_[planted.y]
    constant = X.copy()
    constant[0] = 5.0
    constant[7] = -1.0
    single = np.vstack([X, np.sin(np.arange(40.0))[None, :]])
    single_y = np.concatenate([y, [9]])
    identical = np.tile(np.sin(np.arange(40.0)), (8, 1))
    identical_y = np.array([0, 0, 0, 0, 1, 1, 1, 1])
    short = np.random.default_rng(0).normal(size=(8, 2))
    gaps = X.copy()
    gaps[1, 5:9] = np.nan
    gaps[4, 0] = np.inf
    return {
        "constant-series": (constant, y),
        "single-instance-class": (single, single_y),
        "all-identical": (identical, identical_y),
        "too-short": (short, identical_y),
        "nan-gaps": (gaps, y),
    }


CASES = [
    "constant-series",
    "single-instance-class",
    "all-identical",
    "too-short",
    "nan-gaps",
]

METHODS = ["IPS", "MP", "FS"]


def _build(method):
    if method == "IPS":
        return IPSClassifier(IPSConfig(q_n=3, q_s=2, k=2, seed=0))
    if method == "MP":
        return MPBaseline(seed=0, k=2)
    return FastShapelets(seed=0, k=2, n_masking_rounds=3)


@pytest.mark.parametrize("method", METHODS)
@pytest.mark.parametrize("case", CASES)
def test_repaired_corpus_fits_and_scores(planted, case, method):
    X, y = _corpus(planted)[case]
    validated = validate_dataset(X, y, mode="repair", min_class_size=1)
    ds = validated.dataset
    model = _build(method)
    if method == "IPS":
        model.fit_dataset(ds)
    else:
        model.fit(ds.X, ds.classes_[ds.y])
    labels = ds.classes_[ds.y]
    accuracy = model.score(ds.X, labels)
    assert 0.0 <= accuracy <= 1.0
    assert model.predict(ds.X).shape == (ds.n_series,)


@pytest.mark.parametrize("case", CASES)
def test_corpus_repair_matches_report(planted, case):
    """Acceptance: the repaired matrix is exactly what the report records."""
    X, y = _corpus(planted)[case]
    validated = validate_dataset(X, y, mode="repair", min_class_size=1)
    report = validated.report
    # Every ERROR finding carries a matching repair record.
    assert report.ok
    # Repairs replayed on the raw input reproduce the output bit-for-bit.
    again = validate_dataset(X, y, mode="repair", min_class_size=1)
    assert np.array_equal(validated.dataset.X, again.dataset.X)
    assert [str(r) for r in report.repairs] == [
        str(r) for r in again.report.repairs
    ]
    assert np.isfinite(validated.dataset.X).all()


def test_nan_gap_report_names_rows(planted):
    X, y = _corpus(planted)["nan-gaps"]
    report = validate_dataset(X, y, mode="repair").report
    finding = next(f for f in report.findings if f.code == "non-finite")
    assert set(finding.rows) == {1, 4}


class TestDegenerateKernels:
    def test_dtw_on_length_one_series(self):
        from repro.ts.dtw import dtw_distance

        assert dtw_distance(np.array([2.0]), np.array([5.0])) == pytest.approx(3.0)
        assert dtw_distance(np.array([2.0]), np.array([2.0])) == 0.0

    def test_dtw_length_one_against_longer(self):
        from repro.ts.dtw import dtw_distance

        d = dtw_distance(np.array([1.0]), np.array([1.0, 1.0, 1.0]))
        assert np.isfinite(d)

    def test_mass_flat_query_flat_series(self):
        from repro.matrixprofile.mass import mass

        profile = mass(np.full(5, 2.0), np.full(20, 7.0))
        assert np.allclose(profile, 0.0)  # flat vs flat: distance 0

    def test_scaler_non_finite_columns_zeroed(self):
        from repro.classify.scaler import StandardScaler

        X = np.array([[1.0, np.nan, 5.0], [2.0, np.nan, np.inf], [3.0, np.nan, 7.0]])
        out = StandardScaler().fit_transform(X)
        assert np.isfinite(out).all()
        assert np.allclose(out[:, 1], 0.0)  # no finite entries -> zeros

    def test_pca_rank_deficient(self):
        from repro.classify.pca import PCA

        X = np.outer(np.arange(6.0), np.ones(4))  # rank 1
        pca = PCA().fit(X)
        assert np.isfinite(pca.components_).all()
        assert np.isfinite(pca.transform(X)).all()

    def test_pca_rejects_non_finite(self):
        from repro.classify.pca import PCA
        from repro.exceptions import ValidationError

        X = np.ones((4, 3))
        X[0, 0] = np.nan
        with pytest.raises(ValidationError):
            PCA().fit(X)

    def test_svm_rejects_non_finite(self):
        from repro.classify.svm import OneVsRestSVM
        from repro.exceptions import ValidationError

        X = np.ones((4, 3))
        X[1, 2] = np.inf
        with pytest.raises(ValidationError):
            OneVsRestSVM().fit(X, np.array([0, 0, 1, 1]))

    def test_logistic_survives_extreme_scales(self):
        from repro.classify.logistic import LogisticRegression

        rng = np.random.default_rng(0)
        X = rng.normal(size=(20, 3)) * 1e150  # guaranteed overflow territory
        y = np.array([0] * 10 + [1] * 10)
        model = LogisticRegression(lr=10.0, max_epochs=50).fit(X, y)
        assert np.isfinite(model.coef_).all()
        assert np.isfinite(model.intercept_).all()
        assert model.predict(X).shape == (20,)


def test_ips_fit_routes_raw_corpus(planted):
    """IPSClassifier.fit on raw NaN data repairs internally (repair mode)."""
    X, y = _corpus(planted)["nan-gaps"]
    clf = IPSClassifier(IPSConfig(q_n=3, q_s=2, k=2, seed=0))
    clf.fit(X, y)
    report = clf.discovery_result_.extra["validation_report"]
    assert any(f.code == "non-finite" for f in report.findings)
    assert clf.predict(X[:3]).shape == (3,)
