"""Hypothesis property tests for filters and stats invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.baselines.quality import best_information_gain, entropy
from repro.filters.bloom import BloomFilter
from repro.stats.ranking import rank_rows
from repro.stats.wilcoxon import holm_correction

_FINITE = st.floats(
    min_value=-50.0, max_value=50.0, allow_nan=False, allow_infinity=False
)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.text(min_size=1, max_size=12), min_size=1, max_size=40))
def test_bloom_no_false_negatives(keys):
    bloom = BloomFilter.with_capacity(max(len(keys), 1), fp_rate=0.01)
    for key in keys:
        bloom.add(key)
    assert all(key in bloom for key in keys)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.integers(0, 4), min_size=1, max_size=50),
)
def test_entropy_bounds(labels):
    value = entropy(np.asarray(labels))
    n_classes = len(set(labels))
    assert 0.0 <= value <= np.log2(max(n_classes, 1)) + 1e-12


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_information_gain_bounds(data):
    n = data.draw(st.integers(2, 40))
    distances = data.draw(arrays(np.float64, n, elements=_FINITE))
    labels = np.asarray(data.draw(st.lists(st.integers(0, 2), min_size=n, max_size=n)))
    gain, _threshold = best_information_gain(distances, labels)
    assert 0.0 <= gain <= entropy(labels) + 1e-9


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_rank_rows_are_permutation_invariant_sums(data):
    n_rows = data.draw(st.integers(1, 8))
    n_cols = data.draw(st.integers(2, 8))
    matrix = data.draw(
        arrays(np.float64, (n_rows, n_cols), elements=_FINITE)
    )
    ranks = rank_rows(matrix)
    expected_sum = n_cols * (n_cols + 1) / 2
    assert np.allclose(ranks.sum(axis=1), expected_sum)
    assert np.all((ranks >= 1.0) & (ranks <= n_cols))


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        min_size=1,
        max_size=20,
    ),
    st.floats(min_value=0.01, max_value=0.2),
)
def test_holm_monotone_in_p(p_values, alpha):
    """If p_i is rejected, any p_j <= p_i is also rejected."""
    ps = np.asarray(p_values)
    reject = holm_correction(ps, alpha=alpha)
    if reject.any():
        max_rejected = ps[reject].max()
        assert np.all(reject[ps < max_rejected] | (ps[ps < max_rejected] > max_rejected))
        # Every p strictly below a rejected p must itself be rejected.
        assert reject[ps <= max_rejected].all() or np.isclose(ps, max_rejected).any()


@settings(max_examples=25, deadline=None)
@given(st.data())
def test_lsh_table_rank_bounds(data):
    from repro.lsh import LSHTable, make_lsh

    dim = data.draw(st.integers(2, 12))
    n_items = data.draw(st.integers(1, 20))
    seed = data.draw(st.integers(0, 1000))
    rng = np.random.default_rng(seed)
    table = LSHTable(make_lsh("l2", dim=dim, seed=seed))
    for _ in range(n_items):
        table.add(rng.normal(size=dim))
    query = rng.normal(size=dim) * data.draw(st.floats(0.1, 10.0))
    rank = table.bucket_rank_of(query)
    assert 0 <= rank <= table.n_buckets
