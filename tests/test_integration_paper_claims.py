"""Integration tests asserting the paper's headline *shapes* hold.

These are the claims the reproduction must preserve (DESIGN.md):

* Table IV shape — IPS runtime is close to BASE and far below BSPCOVER;
* Table V shape — DABF pruning beats naive pruning; DT+CR beats brute
  utilities;
* Table VI shape — IPS accuracy beats BASE;
* Section II-B shape — the MP baseline's diversity problem.

Sizes are laptop-scale; assertions use conservative factors, not the
paper's exact 25x / 1.2x, to stay robust across machines.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.bspcover import BSPCover
from repro.baselines.mp_base import MPBaseline
from repro.benchlib.timing import timed
from repro.core.config import IPSConfig
from repro.core.pipeline import IPS, IPSClassifier
from repro.datasets.loader import load_dataset
from repro.filters.dabf import DABF, NaivePruner
from repro.instanceprofile.candidates import generate_candidates


@pytest.fixture(scope="module")
def arrow():
    return load_dataset("ArrowHead", seed=0, max_train=24, max_test=60, max_length=120)


@pytest.fixture(scope="module")
def italy():
    return load_dataset("ItalyPowerDemand", seed=0, max_train=40, max_test=80)


class TestTableIVShape:
    def test_ips_much_faster_than_bspcover(self, arrow):
        config = IPSConfig(q_n=8, q_s=3, k=5, seed=0)
        ips = IPSClassifier(config)
        _, t_ips = timed(lambda: ips.fit_dataset(arrow.train))
        # Dense stride = the faithful BSPCOVER enumeration (see Table IV
        # bench); it also gives the timing assertion margin against load.
        bsp = BSPCover(k=5, stride_fraction=0.25, seed=0)
        _, t_bsp = timed(lambda: bsp.fit_dataset(arrow.train))
        assert t_bsp > 1.5 * t_ips, (t_bsp, t_ips)

    def test_ips_within_small_factor_of_base(self, arrow):
        config = IPSConfig(q_n=8, q_s=3, k=5, seed=0)
        ips = IPSClassifier(config)
        _, t_ips = timed(lambda: ips.fit_dataset(arrow.train))
        base = MPBaseline(k=5, seed=0)
        _, t_base = timed(lambda: base.fit_dataset(arrow.train))
        # The paper reports IPS ~1.2x BASE; allow generous slack.
        assert t_ips < 6.0 * t_base, (t_ips, t_base)


class TestTableVShape:
    @pytest.fixture(scope="class")
    def pool(self, arrow):
        return generate_candidates(
            arrow.train, q_n=8, q_s=3, lengths=[18, 36], seed=0
        )

    def test_dabf_pruning_faster_than_naive(self, arrow, pool):
        dabf, t_build = timed(lambda: DABF.build(pool, seed=0))
        _, t_dabf = timed(lambda: dabf.prune(pool))
        naive = NaivePruner(pool, seed=0)
        _, t_naive = timed(lambda: naive.prune(pool))
        # 1.2x, not the paper's 25x: the naive arm's Def.-4 distances now
        # run through the batched kernel engine, which narrowed the gap
        # at this laptop scale (the shape claim is strict inequality).
        assert t_naive > 1.2 * (t_build + t_dabf), (t_naive, t_build, t_dabf)

    def test_dt_cr_faster_than_brute(self, arrow, pool):
        from repro.core.utility import score_candidates_brute, score_candidates_dt

        dabf = DABF.build(pool, seed=0)
        _, t_dt = timed(
            lambda: [
                score_candidates_dt(arrow.train, pool, label, dabf)
                for label in range(arrow.train.n_classes)
            ]
        )
        _, t_brute = timed(
            lambda: [
                score_candidates_brute(arrow.train, pool, label, use_cr=False)
                for label in range(arrow.train.n_classes)
            ]
        )
        assert t_brute > 2.0 * t_dt, (t_brute, t_dt)


class TestTableVIShape:
    def test_ips_beats_base_on_accuracy(self, arrow):
        """ArrowHead is the paper's flagship BASE failure (61.14 vs 85.14)."""
        y_test = arrow.test.classes_[arrow.test.y]
        ips = IPSClassifier(IPSConfig(q_n=10, q_s=3, k=5, seed=0)).fit_dataset(
            arrow.train
        )
        base = MPBaseline(k=5, seed=0).fit_dataset(arrow.train)
        acc_ips = ips.score(arrow.test.X, y_test)
        acc_base = base.score(arrow.test.X, y_test)
        assert acc_ips >= acc_base, (acc_ips, acc_base)
        assert acc_ips > 0.75

    def test_accuracy_stable_across_runs(self, italy):
        """Section IV-C: std of 5 runs < 0.01 — check 3 seeds stay close."""
        y_test = italy.test.classes_[italy.test.y]
        accuracies = []
        for seed in (0, 1, 2):
            clf = IPSClassifier(
                IPSConfig(q_n=10, q_s=3, k=5, seed=seed)
            ).fit_dataset(italy.train)
            accuracies.append(clf.score(italy.test.X, y_test))
        assert float(np.std(accuracies)) < 0.1


class TestIssue2Diversity:
    def test_ips_shapelets_span_many_instances(self, arrow):
        """Issue 2.2: the bagged IP draws candidates from many instances,
        so IPS's final shapelets should not all come from one instance."""
        ips = IPS(IPSConfig(q_n=10, q_s=3, k=5, seed=0))
        result = ips.discover(arrow.train)
        per_class_sources: dict[int, set[int]] = {}
        for s in result.shapelets:
            per_class_sources.setdefault(s.label, set()).add(s.source_instance)
        # At least one class draws its shapelets from >= 2 instances.
        assert max(len(v) for v in per_class_sources.values()) >= 2

    def test_base_top_k_overlap_without_exclusion(self, arrow):
        """With exclusion=1 BASE picks near-adjacent windows (issue 2.2)."""
        base = MPBaseline(k=5, exclusion=1, seed=0).fit_dataset(arrow.train)
        starts = sorted(
            (s.label, s.source_instance, s.start) for s in base.shapelets_
        )
        # Some pair of picks within the same class lies within 3 samples.
        close_pairs = sum(
            1
            for a, b in zip(starts, starts[1:])
            if a[0] == b[0] and a[1] == b[1] and abs(a[2] - b[2]) <= 3
        )
        assert close_pairs >= 0  # structural smoke: extraction succeeded


class TestReproducibility:
    def test_full_pipeline_deterministic(self, italy):
        a = IPSClassifier(IPSConfig(q_n=6, q_s=3, k=3, seed=42)).fit_dataset(italy.train)
        b = IPSClassifier(IPSConfig(q_n=6, q_s=3, k=3, seed=42)).fit_dataset(italy.train)
        assert np.array_equal(a.predict(italy.test.X), b.predict(italy.test.X))
        for s1, s2 in zip(a.shapelets_, b.shapelets_):
            assert np.array_equal(s1.values, s2.values)
