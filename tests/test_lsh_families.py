"""Tests for repro.lsh: the three hashing families (Def. 10)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.lsh import CosineLSH, HammingLSH, PStableL2LSH, make_lsh


ALL_SCHEMES = ("l2", "cosine", "hamming")


class TestFactory:
    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_builds_each_scheme(self, scheme):
        fam = make_lsh(scheme, dim=16, seed=0)
        assert fam.dim == 16

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValidationError):
            make_lsh("simhash-3000", dim=4)

    def test_case_insensitive(self):
        fam = make_lsh("L2", dim=8, seed=0)
        assert isinstance(fam, PStableL2LSH)


@pytest.mark.parametrize("scheme", ALL_SCHEMES)
class TestFamilyContracts:
    def test_signature_hashable_and_deterministic(self, scheme, rng):
        fam = make_lsh(scheme, dim=12, seed=3)
        x = rng.normal(size=12)
        sig = fam.signature(x)
        assert sig == fam.signature(x)
        assert hash(sig) is not None

    def test_project_deterministic(self, scheme, rng):
        fam = make_lsh(scheme, dim=12, seed=3)
        x = rng.normal(size=12)
        assert np.array_equal(fam.project(x), fam.project(x))

    def test_project_batch_matches_single(self, scheme, rng):
        fam = make_lsh(scheme, dim=10, seed=1)
        X = rng.normal(size=(5, 10))
        batch = fam.project_batch(X)
        for i in range(5):
            assert np.allclose(batch[i], fam.project(X[i]))

    def test_wrong_dim_rejected(self, scheme, rng):
        fam = make_lsh(scheme, dim=10, seed=0)
        with pytest.raises(ValidationError):
            fam.signature(rng.normal(size=11))

    def test_identical_inputs_collide(self, scheme, rng):
        fam = make_lsh(scheme, dim=10, seed=0)
        x = rng.normal(size=10)
        assert fam.signature(x) == fam.signature(x.copy())

    def test_locality(self, scheme, rng):
        """Def. 10: near pairs collide more often than far pairs."""
        fam_seed = np.random.default_rng(0)
        near_collisions = far_collisions = 0
        trials = 60
        for t in range(trials):
            fam = make_lsh(scheme, dim=16, seed=int(fam_seed.integers(2**31)), n_projections=4)
            x = rng.normal(size=16) * 3
            near = x + rng.normal(size=16) * 0.05
            far = rng.normal(size=16) * 3
            near_collisions += fam.signature(x) == fam.signature(near)
            far_collisions += fam.signature(x) == fam.signature(far)
        assert near_collisions > far_collisions


class TestPStable:
    def test_projection_approximately_preserves_norm(self, rng):
        fam = PStableL2LSH(dim=64, n_projections=48, seed=0)
        ratios = []
        for _ in range(50):
            x = rng.normal(size=64)
            ratios.append(np.linalg.norm(fam.project(x)) / np.linalg.norm(x))
        assert 0.7 < float(np.mean(ratios)) < 1.3

    def test_width_controls_granularity(self, rng):
        x = rng.normal(size=16)
        y = x + rng.normal(size=16) * 0.3
        coarse = PStableL2LSH(dim=16, width=100.0, seed=0)
        assert coarse.signature(x) == coarse.signature(y)

    def test_rejects_bad_width(self):
        with pytest.raises(ValidationError):
            PStableL2LSH(dim=4, width=0.0)


class TestCosine:
    def test_sign_bits(self, rng):
        fam = CosineLSH(dim=8, n_projections=6, seed=0)
        sig = fam.signature(rng.normal(size=8))
        assert all(bit in (0, 1) for bit in sig)

    def test_antipodal_points_differ_everywhere(self, rng):
        fam = CosineLSH(dim=8, n_projections=6, seed=0)
        x = rng.normal(size=8)
        sig_x = np.array(fam.signature(x))
        sig_neg = np.array(fam.signature(-x))
        assert np.all(sig_x != sig_neg)


class TestHamming:
    def test_quantization_levels_in_range(self, rng):
        fam = HammingLSH(dim=10, n_projections=5, n_levels=4, seed=0)
        sig = fam.signature(rng.normal(size=10) * 10)
        assert all(0 <= s < 4 for s in sig)

    def test_more_projections_than_dim(self, rng):
        fam = HammingLSH(dim=3, n_projections=8, seed=0)
        assert len(fam.signature(rng.normal(size=3))) == 8

    def test_rejects_bad_range(self):
        with pytest.raises(ValidationError):
            HammingLSH(dim=4, value_range=(1.0, 1.0))
