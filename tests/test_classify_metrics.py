"""Tests for repro.classify.metrics, scaler, model_selection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.classify.metrics import accuracy_score, confusion_matrix
from repro.classify.model_selection import StratifiedKFold, train_test_split
from repro.classify.scaler import StandardScaler
from repro.exceptions import NotFittedError, ValidationError


class TestAccuracy:
    def test_perfect(self):
        assert accuracy_score([1, 2, 3], [1, 2, 3]) == 1.0

    def test_half(self):
        assert accuracy_score([1, 1, 2, 2], [1, 2, 2, 1]) == 0.5

    def test_shape_mismatch(self):
        with pytest.raises(ValidationError):
            accuracy_score([1], [1, 2])

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            accuracy_score([], [])


class TestConfusionMatrix:
    def test_diagonal_for_perfect(self):
        M = confusion_matrix([0, 1, 1], [0, 1, 1])
        assert np.array_equal(M, [[1, 0], [0, 2]])

    def test_off_diagonal(self):
        M = confusion_matrix([0, 0, 1], [1, 0, 1])
        assert M[0, 1] == 1
        assert M.sum() == 3

    def test_explicit_n_classes(self):
        M = confusion_matrix([0], [0], n_classes=4)
        assert M.shape == (4, 4)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValidationError):
            confusion_matrix([0, 5], [0, 1], n_classes=2)


class TestStandardScaler:
    def test_zero_mean_unit_variance(self, rng):
        X = rng.normal(5.0, 3.0, size=(100, 4))
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z.mean(axis=0), 0.0, atol=1e-12)
        assert np.allclose(Z.std(axis=0), 1.0, atol=1e-12)

    def test_constant_column_not_divided(self, rng):
        X = np.column_stack([rng.normal(size=20), np.full(20, 7.0)])
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z[:, 1], 0.0)

    def test_transform_before_fit_rejected(self, rng):
        with pytest.raises(NotFittedError):
            StandardScaler().transform(rng.normal(size=(3, 2)))

    def test_train_statistics_applied_to_test(self, rng):
        scaler = StandardScaler().fit(rng.normal(10.0, 2.0, size=(50, 3)))
        Z = scaler.transform(np.full((1, 3), 10.0))
        assert np.all(np.abs(Z) < 1.0)


class TestTrainTestSplit:
    def test_sizes(self, rng):
        X = rng.normal(size=(100, 5))
        y = np.repeat([0, 1], 50)
        X_tr, y_tr, X_te, y_te = train_test_split(X, y, test_fraction=0.3, seed=0)
        assert X_te.shape[0] == 30
        assert X_tr.shape[0] == 70

    def test_stratified_keeps_all_classes(self, rng):
        X = rng.normal(size=(12, 3))
        y = np.repeat([0, 1, 2], 4)
        _X_tr, y_tr, _X_te, y_te = train_test_split(X, y, test_fraction=0.25, seed=1)
        assert set(y_tr) == {0, 1, 2}
        assert set(y_te) == {0, 1, 2}

    def test_no_leakage(self, rng):
        X = np.arange(40.0).reshape(20, 2)
        y = np.repeat([0, 1], 10)
        X_tr, _y_tr, X_te, _y_te = train_test_split(X, y, seed=0)
        train_rows = {tuple(r) for r in X_tr}
        test_rows = {tuple(r) for r in X_te}
        assert not train_rows & test_rows
        assert len(train_rows) + len(test_rows) == 20

    def test_bad_fraction_rejected(self, rng):
        with pytest.raises(ValidationError):
            train_test_split(rng.normal(size=(4, 2)), [0, 0, 1, 1], test_fraction=1.5)


class TestStratifiedKFold:
    def test_partitions_everything(self):
        y = np.repeat([0, 1], 10)
        folds = list(StratifiedKFold(n_splits=5, seed=0).split(y))
        assert len(folds) == 5
        all_test = np.concatenate([test for _tr, test in folds])
        assert sorted(all_test.tolist()) == list(range(20))

    def test_balanced_folds(self):
        y = np.repeat([0, 1], 25)
        for train, test in StratifiedKFold(n_splits=5, seed=0).split(y):
            assert np.sum(y[test] == 0) == 5
            assert np.sum(y[test] == 1) == 5

    def test_train_test_disjoint(self):
        y = np.repeat([0, 1, 2], 6)
        for train, test in StratifiedKFold(n_splits=3, seed=0).split(y):
            assert not set(train) & set(test)

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValidationError):
            list(StratifiedKFold(n_splits=5).split(np.array([0, 1])))
