"""Tests for repro.classify: DecisionTree, PCA, RotationForest, KMeans, LogisticRegression."""

from __future__ import annotations

import numpy as np
import pytest

from repro.classify.kmeans import KMeans
from repro.classify.logistic import LogisticRegression, sigmoid
from repro.classify.pca import PCA
from repro.classify.rotation_forest import RotationForest
from repro.classify.tree import DecisionTree
from repro.exceptions import NotFittedError, ValidationError


def _blobs(rng, centers, n=20, spread=0.5):
    X = np.vstack([rng.normal(size=(n, len(centers[0]))) * spread + c for c in centers])
    y = np.repeat(np.arange(len(centers)), n)
    return X, y


class TestDecisionTree:
    def test_fits_blobs(self, rng):
        X, y = _blobs(rng, [[0, 0], [5, 5]])
        tree = DecisionTree(seed=0).fit(X, y)
        assert np.all(tree.predict(X) == y)

    def test_max_depth_respected(self, rng):
        X, y = _blobs(rng, [[0, 0], [1, 1], [2, 2], [3, 3]], spread=0.8)
        tree = DecisionTree(max_depth=2, seed=0).fit(X, y)
        assert tree.depth() <= 2

    def test_xor_needs_depth_two(self, rng):
        X = np.array([[0, 0], [0, 1], [1, 0], [1, 1]] * 10, dtype=float)
        X += rng.normal(size=X.shape) * 0.05
        y = (X[:, 0].round() != X[:, 1].round()).astype(int)
        tree = DecisionTree(seed=0).fit(X, y)
        assert np.mean(tree.predict(X) == y) > 0.95

    def test_arbitrary_labels_round_trip(self, rng):
        X, y01 = _blobs(rng, [[0, 0], [5, 5]])
        y = np.where(y01 == 0, -7, 13)
        tree = DecisionTree(seed=0).fit(X, y)
        assert set(np.unique(tree.predict(X))) == {-7, 13}

    def test_constant_features_give_leaf(self, rng):
        X = np.ones((10, 3))
        y = np.repeat([0, 1], 5)
        tree = DecisionTree(seed=0).fit(X, y)
        assert tree.depth() == 0  # no valid split

    def test_max_features_sqrt(self, rng):
        X, y = _blobs(rng, [[0] * 9, [3] * 9])
        tree = DecisionTree(max_features="sqrt", seed=0).fit(X, y)
        assert np.mean(tree.predict(X) == y) > 0.9

    def test_unfitted_rejected(self, rng):
        with pytest.raises(NotFittedError):
            DecisionTree().predict(rng.normal(size=(2, 2)))

    def test_bad_min_samples_rejected(self):
        with pytest.raises(ValidationError):
            DecisionTree(min_samples_split=1)


class TestPCA:
    def test_recovers_dominant_direction(self, rng):
        direction = np.array([3.0, 4.0]) / 5.0
        X = np.outer(rng.normal(size=200), direction) + rng.normal(size=(200, 2)) * 0.05
        pca = PCA(n_components=1).fit(X)
        alignment = abs(pca.components_[0] @ direction)
        assert alignment > 0.99

    def test_full_rotation_preserves_distances(self, rng):
        X = rng.normal(size=(30, 5))
        Z = PCA().fit_transform(X)
        d_orig = np.linalg.norm(X[0] - X[1])
        d_proj = np.linalg.norm(Z[0] - Z[1])
        assert d_proj == pytest.approx(d_orig, rel=1e-9)

    def test_explained_variance_descending(self, rng):
        X = rng.normal(size=(50, 6)) * np.array([5, 4, 3, 2, 1, 0.5])
        pca = PCA().fit(X)
        ev = pca.explained_variance_
        assert np.all(np.diff(ev) <= 1e-9)

    def test_unfitted_rejected(self, rng):
        with pytest.raises(NotFittedError):
            PCA().transform(rng.normal(size=(2, 3)))


class TestRotationForest:
    def test_fits_blobs(self, rng):
        X, y = _blobs(rng, [[0, 0, 0, 0], [4, 4, 4, 4]], n=25)
        model = RotationForest(n_estimators=5, seed=0).fit(X, y)
        assert model.score(X, y) > 0.95

    def test_three_classes(self, rng):
        X, y = _blobs(rng, [[0, 0, 0], [5, 0, 0], [0, 5, 0]], n=20)
        model = RotationForest(n_estimators=5, seed=0).fit(X, y)
        assert model.score(X, y) > 0.9

    def test_deterministic(self, rng):
        X, y = _blobs(rng, [[0, 0], [4, 4]])
        p1 = RotationForest(n_estimators=3, seed=5).fit(X, y).predict(X)
        p2 = RotationForest(n_estimators=3, seed=5).fit(X, y).predict(X)
        assert np.array_equal(p1, p2)

    def test_unfitted_rejected(self, rng):
        with pytest.raises(NotFittedError):
            RotationForest().predict(rng.normal(size=(2, 4)))

    def test_bad_params_rejected(self):
        with pytest.raises(ValidationError):
            RotationForest(n_estimators=0)
        with pytest.raises(ValidationError):
            RotationForest(sample_fraction=0.0)


class TestKMeans:
    def test_recovers_blob_centers(self, rng):
        X, _y = _blobs(rng, [[0, 0], [10, 10]], n=40, spread=0.3)
        km = KMeans(n_clusters=2, seed=0).fit(X)
        centers = km.centers_[np.argsort(km.centers_[:, 0])]
        assert np.allclose(centers[0], [0, 0], atol=0.5)
        assert np.allclose(centers[1], [10, 10], atol=0.5)

    def test_labels_partition_points(self, rng):
        X, _y = _blobs(rng, [[0, 0], [8, 8]], n=15)
        km = KMeans(n_clusters=2, seed=0).fit(X)
        assert km.labels_.shape == (30,)
        assert set(km.labels_.tolist()) == {0, 1}

    def test_predict_consistent_with_fit_labels(self, rng):
        X, _y = _blobs(rng, [[0, 0], [8, 8]], n=15)
        km = KMeans(n_clusters=2, seed=0).fit(X)
        assert np.array_equal(km.predict(X), km.labels_)

    def test_clamps_k_to_sample_count(self, rng):
        X = rng.normal(size=(3, 2))
        km = KMeans(n_clusters=10, seed=0).fit(X)
        assert km.centers_.shape[0] == 3

    def test_inertia_decreases_with_more_clusters(self, rng):
        X, _y = _blobs(rng, [[0, 0], [5, 5], [10, 0]], n=20)
        i2 = KMeans(n_clusters=2, seed=0).fit(X).inertia_
        i3 = KMeans(n_clusters=3, seed=0).fit(X).inertia_
        assert i3 < i2

    def test_unfitted_rejected(self, rng):
        with pytest.raises(NotFittedError):
            KMeans(n_clusters=2).predict(rng.normal(size=(2, 2)))


class TestLogisticRegression:
    def test_sigmoid_stable(self):
        assert sigmoid(np.array([1000.0]))[0] == pytest.approx(1.0)
        assert sigmoid(np.array([-1000.0]))[0] == pytest.approx(0.0)
        assert sigmoid(np.array([0.0]))[0] == pytest.approx(0.5)

    def test_binary_blobs(self, rng):
        X, y = _blobs(rng, [[0, 0], [4, 4]])
        model = LogisticRegression().fit(X, y)
        assert np.mean(model.predict(X) == y) > 0.95

    def test_probabilities_sum_to_one(self, rng):
        X, y = _blobs(rng, [[0, 0], [4, 0], [0, 4]], n=15)
        model = LogisticRegression().fit(X, y)
        probs = model.predict_proba(X)
        assert np.allclose(probs.sum(axis=1), 1.0, atol=1e-9)

    def test_multiclass(self, rng):
        X, y = _blobs(rng, [[0, 0], [6, 0], [0, 6]], n=20)
        model = LogisticRegression().fit(X, y)
        assert np.mean(model.predict(X) == y) > 0.9

    def test_unfitted_rejected(self, rng):
        with pytest.raises(NotFittedError):
            LogisticRegression().predict(rng.normal(size=(2, 2)))
