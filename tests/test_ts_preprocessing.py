"""Tests for repro.ts.preprocessing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.ts.preprocessing import linear_interpolate_resample, moving_average, znormalize


class TestZnormalize:
    def test_mean_zero_std_one(self, rng):
        z = znormalize(rng.normal(3.0, 5.0, size=500))
        assert abs(z.mean()) < 1e-12
        assert abs(z.std() - 1.0) < 1e-12

    def test_constant_maps_to_zeros(self):
        z = znormalize(np.full(10, 7.0))
        assert np.all(z == 0.0)

    def test_axis_handling_on_matrix(self, rng):
        X = rng.normal(size=(4, 50))
        Z = znormalize(X, axis=-1)
        assert np.allclose(Z.mean(axis=1), 0.0, atol=1e-12)
        assert np.allclose(Z.std(axis=1), 1.0, atol=1e-12)

    def test_mixed_constant_rows(self):
        X = np.vstack([np.full(8, 3.0), np.arange(8.0)])
        Z = znormalize(X)
        assert np.all(Z[0] == 0.0)
        assert abs(Z[1].std() - 1.0) < 1e-12


class TestMovingAverage:
    def test_window_one_is_identity(self):
        x = np.arange(5.0)
        assert np.array_equal(moving_average(x, 1), x)

    def test_matches_naive_center(self):
        x = np.arange(10.0)
        out = moving_average(x, 3)
        # Interior points: exact centered mean.
        for i in range(1, 9):
            assert out[i] == pytest.approx(x[i - 1 : i + 2].mean())

    def test_edges_shrink_window(self):
        x = np.arange(10.0)
        out = moving_average(x, 3)
        assert out[0] == pytest.approx(x[:2].mean())

    def test_length_preserved(self, rng):
        x = rng.normal(size=33)
        assert moving_average(x, 7).shape == x.shape

    def test_rejects_bad_window(self):
        with pytest.raises(ValidationError):
            moving_average(np.arange(5.0), 0)

    def test_rejects_2d(self):
        with pytest.raises(ValidationError):
            moving_average(np.zeros((2, 3)), 2)


class TestResample:
    def test_identity_when_same_length(self):
        x = np.arange(10.0)
        assert np.array_equal(linear_interpolate_resample(x, 10), x)

    def test_endpoints_preserved(self, rng):
        x = rng.normal(size=17)
        out = linear_interpolate_resample(x, 40)
        assert out[0] == pytest.approx(x[0])
        assert out[-1] == pytest.approx(x[-1])

    def test_upsample_linear_exact_on_lines(self):
        x = np.linspace(0.0, 1.0, 5)
        out = linear_interpolate_resample(x, 9)
        assert np.allclose(out, np.linspace(0.0, 1.0, 9))

    def test_single_point_input(self):
        out = linear_interpolate_resample(np.array([2.5]), 4)
        assert np.all(out == 2.5)

    def test_rejects_bad_length(self):
        with pytest.raises(ValidationError):
            linear_interpolate_resample(np.arange(5.0), 0)
