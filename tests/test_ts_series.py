"""Tests for repro.ts.series: containers and validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.ts.series import Dataset, validate_labels, validate_series, validate_series_matrix


class TestValidateSeries:
    def test_accepts_lists(self):
        out = validate_series([1, 2, 3])
        assert out.dtype == np.float64
        assert out.shape == (3,)

    def test_rejects_2d(self):
        with pytest.raises(ValidationError):
            validate_series(np.zeros((2, 3)))

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            validate_series([])

    def test_rejects_nan(self):
        with pytest.raises(ValidationError):
            validate_series([1.0, np.nan, 2.0])

    def test_rejects_inf(self):
        with pytest.raises(ValidationError):
            validate_series([1.0, np.inf])


class TestValidateSeriesMatrix:
    def test_promotes_1d_to_single_row(self):
        out = validate_series_matrix(np.arange(5.0))
        assert out.shape == (1, 5)

    def test_rejects_3d(self):
        with pytest.raises(ValidationError):
            validate_series_matrix(np.zeros((2, 2, 2)))

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            validate_series_matrix(np.zeros((0, 5)))


class TestValidateLabels:
    def test_integer_float_labels_accepted(self):
        out = validate_labels(np.array([1.0, 2.0]), 2)
        assert out.dtype == np.int64

    def test_fractional_labels_rejected(self):
        with pytest.raises(ValidationError):
            validate_labels(np.array([1.5, 2.0]), 2)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            validate_labels(np.array([1, 2, 3]), 2)


class TestDataset:
    def _dataset(self) -> Dataset:
        X = np.arange(20.0).reshape(4, 5)
        return Dataset(X=X, y=np.array([5, 7, 5, 7]), name="toy")

    def test_labels_remapped_contiguously(self):
        ds = self._dataset()
        assert ds.n_classes == 2
        assert set(ds.y.tolist()) == {0, 1}
        assert ds.original_label(0) == 5
        assert ds.original_label(1) == 7

    def test_class_indices(self):
        ds = self._dataset()
        assert ds.class_indices(0).tolist() == [0, 2]
        assert ds.class_indices(1).tolist() == [1, 3]

    def test_series_of_class(self):
        ds = self._dataset()
        assert ds.series_of_class(0).shape == (2, 5)

    def test_class_indices_out_of_range(self):
        with pytest.raises(ValidationError):
            self._dataset().class_indices(5)

    def test_subset_preserves_original_labels(self):
        ds = self._dataset()
        sub = ds.subset(np.array([0, 2]))
        assert sub.n_classes == 1
        assert sub.original_label(0) == 5

    def test_len_and_iter(self):
        ds = self._dataset()
        assert len(ds) == 4
        assert sum(1 for _ in ds) == 4

    def test_describe_mentions_name_and_counts(self):
        text = self._dataset().describe()
        assert "toy" in text
        assert "M=4" in text

    def test_properties(self):
        ds = self._dataset()
        assert ds.n_series == 4
        assert ds.series_length == 5
        assert np.array_equal(ds.labels, ds.y)
