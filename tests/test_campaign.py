"""Unit tests for ``repro.campaign``: spec, journal, store, scenarios,
runner, and results collection. The kill/resume chaos suite lives in
``test_campaign_chaos.py``; both files carry the ``campaign`` marker
automatically (see ``conftest.py``)."""

from __future__ import annotations

import json
import signal
import warnings

import numpy as np
import pytest

from repro.campaign import (
    CampaignCell,
    CampaignRunner,
    CampaignSpec,
    CellStore,
    Journal,
    ResultsFrame,
    apply_scenario,
    build_frame,
    derive_cell_seed,
    register_scenario,
    scenario_names,
    validate_cell_result,
    write_report,
)
from repro.benchlib.tables import collect_cell_rows
from repro.exceptions import CampaignError, JournalError, ValidationError

SPEC = CampaignSpec(
    datasets=("CBF", "GunPoint"),
    methods=("1NN-ED", "BOP"),
    scenarios=("clean", "noise"),
    seed=7,
    name="unit",
)


def fake_worker(cell: CampaignCell) -> dict:
    """Deterministic stand-in for :func:`repro.campaign.run_cell`."""
    return {
        "accuracy": (cell.seed % 1000) / 1000.0,
        "completed": True,
        "discovery_seconds": float("nan"),
        "fit_seconds": 0.01,
    }


def crashing_worker(cell: CampaignCell) -> dict:
    if cell.method == "BOP" and cell.dataset == "CBF":
        raise ValueError("synthetic baseline crash")
    return fake_worker(cell)


class TestSpec:
    def test_cells_deterministic_order_and_count(self):
        cells = SPEC.cells()
        assert len(cells) == 8
        assert [c.cell_id for c in cells] == [c.cell_id for c in SPEC.cells()]
        assert cells[0].cell_id == "CBF__1NN-ED__clean"

    def test_cell_seed_stable_under_spec_growth(self):
        # Hash-derived, not positional: adding a dataset/method must not
        # change any pre-existing cell's seed (or its result).
        grown = CampaignSpec(
            datasets=("CBF", "GunPoint", "ArrowHead"),
            methods=("1NN-ED", "BOP", "TSF"),
            scenarios=("clean", "noise"),
            seed=7,
        )
        old = {c.cell_id: c.seed for c in SPEC.cells()}
        new = {c.cell_id: c.seed for c in grown.cells()}
        for cell_id, seed in old.items():
            assert new[cell_id] == seed
        assert derive_cell_seed(7, "CBF", "BOP", "clean") == old["CBF__BOP__clean"]
        assert derive_cell_seed(8, "CBF", "BOP", "clean") != old["CBF__BOP__clean"]

    def test_roundtrip_and_fingerprint(self):
        again = CampaignSpec.from_dict(SPEC.to_dict())
        assert again == SPEC
        assert "name" in SPEC.to_dict()
        assert "name" not in SPEC.fingerprint_fields()

    def test_rejects_bad_specs(self):
        with pytest.raises(CampaignError):
            CampaignSpec(datasets=(), methods=("BOP",))
        with pytest.raises(CampaignError):
            CampaignSpec(datasets=("CBF", "CBF"), methods=("BOP",))
        with pytest.raises(CampaignError):
            CampaignSpec(datasets=("CBF",), methods=("BOP",), validation="maybe")
        with pytest.raises(CampaignError):
            CampaignSpec.from_dict({**SPEC.to_dict(), "surprise": 1})

    def test_validate_names_catches_unknowns(self):
        bad_method = CampaignSpec(datasets=("CBF",), methods=("NOPE",))
        with pytest.raises(CampaignError, match="unknown method"):
            bad_method.validate_names()
        bad_scenario = CampaignSpec(
            datasets=("CBF",), methods=("BOP",), scenarios=("gamma-rays",)
        )
        with pytest.raises(CampaignError, match="unknown scenario"):
            bad_scenario.validate_names()


class TestJournal:
    def test_append_replay_roundtrip(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        events = [{"type": "a", "n": 1}, {"type": "b", "n": 2}]
        for event in events:
            journal.append(event)
        assert journal.replay() == events

    def test_missing_journal_is_empty(self, tmp_path):
        assert Journal(tmp_path / "absent.jsonl").replay() == []

    def test_append_requires_typed_dict(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        with pytest.raises(JournalError):
            journal.append({"no_type": True})

    def test_torn_tail_quarantined_and_recovered(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        journal.append({"type": "a", "n": 1})
        journal.append({"type": "b", "n": 2})
        with open(journal.path, "ab") as fh:  # simulate a SIGKILL mid-append
            fh.write(b'{"type": "c", "n"')
        with pytest.warns(RuntimeWarning, match="unparseable"):
            records = journal.replay()
        assert [r["type"] for r in records] == ["a", "b"]
        assert b'{"type": "c"' in journal.quarantine_path.read_bytes()
        # The journal was rewritten clean: a second replay is silent.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert journal.replay() == records

    def test_corrupt_middle_line_quarantined(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        journal.append({"type": "a"})
        with open(journal.path, "ab") as fh:
            fh.write(b"\x00\xffgarbage\n")
        journal.append({"type": "b"})
        with pytest.warns(RuntimeWarning):
            records = journal.replay()
        assert [r["type"] for r in records] == ["a", "b"]

    def test_truncation_property(self, tmp_path):
        """Journal replay after truncation at *any* byte offset recovers
        exactly the complete-line prefix (hypothesis when available)."""
        try:
            from hypothesis import given, settings
            from hypothesis import strategies as st
        except ImportError:  # pragma: no cover - env without hypothesis
            pytest.skip("hypothesis not installed")

        events = [{"type": "ev", "n": i, "blob": "x" * (i % 7)} for i in range(8)]

        @settings(max_examples=40, deadline=None)
        @given(cut=st.integers(min_value=0, max_value=400))
        def check(cut: int):
            path = tmp_path / "prop.jsonl"
            for leftover in (path, path.with_name("prop.jsonl.quarantine")):
                if leftover.exists():
                    leftover.unlink()
            journal = Journal(path)
            for event in events:
                journal.append(event)
            raw = path.read_bytes()
            cut_at = min(cut, len(raw))
            path.write_bytes(raw[:cut_at])
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                records = journal.replay()
            # Every complete line survives; the torn tail survives only
            # in the lucky case where the cut fell exactly after the
            # closing brace (the record is whole, just missing its \n).
            n_complete = raw[:cut_at].count(b"\n")
            assert len(records) in (n_complete, n_complete + 1)
            assert records == events[: len(records)]
            # Recovery is idempotent and now warning-free.
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                assert journal.replay() == records

        check()


class TestCellStore:
    def test_save_load_roundtrip_with_checksum(self, tmp_path):
        store = CellStore(tmp_path)
        record = {"payload": {"status": "ok"}, "cell": {"cell_id": "a__b__c"}}
        sha = store.save_cell("a__b__c", record)
        assert store.load_cell("a__b__c", expected_sha=sha) == record
        assert store.load_cell("a__b__c") == record
        assert store.cell_ids() == {"a__b__c"}

    def test_checksum_mismatch_quarantines(self, tmp_path):
        store = CellStore(tmp_path)
        sha = store.save_cell("a__b__c", {"payload": {}})
        path = store.cell_path("a__b__c")
        path.write_text(path.read_text().replace("payload", "pay1oad"))
        with pytest.warns(RuntimeWarning, match="unusable"):
            assert store.load_cell("a__b__c", expected_sha=sha) is None
        assert not path.exists()  # moved aside
        assert path.with_name(path.name + ".quarantine").exists()

    def test_unparseable_cell_quarantines(self, tmp_path):
        store = CellStore(tmp_path)
        store.cell_path("x__y__z").write_bytes(b"{nope")
        with pytest.warns(RuntimeWarning):
            assert store.load_cell("x__y__z") is None

    def test_manifest_guard(self, tmp_path):
        store = CellStore(tmp_path)
        store.check_manifest({"spec": 1})
        store.check_manifest({"spec": 1})  # idempotent
        with pytest.raises(CampaignError, match="different campaign"):
            store.check_manifest({"spec": 2})
        assert store.read_manifest() == {"spec": 1}

    def test_read_manifest_missing(self, tmp_path):
        with pytest.raises(CampaignError, match="no campaign manifest"):
            CellStore(tmp_path / "fresh").read_manifest()


class TestScenarios:
    @pytest.fixture(scope="class")
    def data(self):
        from repro.datasets.loader import load_dataset

        return load_dataset(
            "CBF", seed=0, max_train=9, max_test=12, max_length=60
        )

    def test_builtins_registered(self):
        names = scenario_names()
        for expected in (
            "clean", "noise", "spikes", "dropout", "drift", "warp",
            "missing", "label_noise",
        ):
            assert expected in names

    @pytest.mark.parametrize(
        "name",
        ["clean", "noise", "spikes", "dropout", "drift", "warp",
         "missing", "label_noise"],
    )
    def test_pure_deterministic_finite(self, data, name):
        train_X = data.train.X.copy()
        test_X = data.test.X.copy()
        first = apply_scenario(data, name, seed=123)
        second = apply_scenario(data, name, seed=123)
        assert np.array_equal(data.train.X, train_X)  # input untouched
        assert np.array_equal(data.test.X, test_X)
        assert np.array_equal(first.test.X, second.test.X)
        assert np.array_equal(first.train.y, second.train.y)
        assert np.all(np.isfinite(first.test.X))
        assert first.test.X.shape == test_X.shape

    def test_perturbing_scenarios_change_test_only(self, data):
        out = apply_scenario(data, "missing", seed=5)
        assert not np.array_equal(out.test.X, data.test.X)
        assert np.array_equal(out.train.X, data.train.X)
        assert np.array_equal(out.train.y, data.train.y)

    def test_label_noise_changes_train_labels_only(self, data):
        out = apply_scenario(data, "label_noise", seed=5)
        assert np.array_equal(out.test.X, data.test.X)
        assert np.array_equal(out.train.X, data.train.X)
        before = data.train.classes_[data.train.y]
        after = out.train.classes_[out.train.y]
        assert not np.array_equal(before, after)
        assert set(np.unique(after)) <= set(np.unique(before))

    def test_unknown_scenario_typed_error(self, data):
        with pytest.raises(CampaignError, match="unknown scenario"):
            apply_scenario(data, "solar-flare", seed=0)

    def test_register_rejects_duplicates_unless_overwrite(self):
        with pytest.raises(CampaignError, match="already registered"):
            register_scenario("clean", lambda d, s: d)
        register_scenario(
            "clean", lambda d, s: d, "unmodified train/test splits",
            overwrite=True,
        )


class TestValidateCellResult:
    def test_accepts_healthy_payload(self):
        assert validate_cell_result({"accuracy": 0.5}) is None

    def test_rejects_bad_payloads(self):
        from repro.distributed.faults import DroppedResult

        assert "dropped" in validate_cell_result(DroppedResult())
        assert "dict" in validate_cell_result([0.5])
        assert "non-finite" in validate_cell_result({"accuracy": float("nan")})
        assert "outside" in validate_cell_result({"accuracy": 1.5})


class TestRunner:
    def test_full_run_and_status(self, tmp_path):
        runner = CampaignRunner(SPEC, tmp_path / "c", worker_fn=fake_worker)
        status = runner.run()
        assert status["complete"] and status["n_ok"] == 8
        assert status["n_failed"] == 0 and status["n_pending"] == 0
        assert all(n == 1 for n in status["cell_starts"].values())

    def test_failed_cell_has_typed_provenance_and_campaign_continues(
        self, tmp_path
    ):
        runner = CampaignRunner(
            SPEC, tmp_path / "c", worker_fn=crashing_worker, retries=1
        )
        status = runner.run()
        assert status["complete"]
        assert status["n_failed"] == 2  # CBF x BOP x {clean, noise}
        assert status["failed_cells"] == [
            ("CBF__BOP__clean", "ValueError"),
            ("CBF__BOP__noise", "ValueError"),
        ]
        record = json.loads(
            (tmp_path / "c" / "cells" / "CBF__BOP__clean.json").read_text()
        )
        assert record["payload"]["status"] == "failed"
        assert record["payload"]["error_type"] == "ValueError"
        assert "synthetic baseline crash" in record["payload"]["error"]
        assert record["payload"]["attempts"] == 2  # initial + 1 retry

    def test_resume_skips_completed_cells(self, tmp_path):
        d = tmp_path / "c"
        first = CampaignRunner(SPEC, d, worker_fn=fake_worker)
        first.run(max_cells=3)
        assert first.status()["n_pending"] == 5
        second = CampaignRunner(SPEC, d, worker_fn=fake_worker)
        status = second.run()
        assert status["complete"]
        # Zero re-runs: every cell was started exactly once overall.
        assert all(n == 1 for n in status["cell_starts"].values())

    def test_fingerprint_guard_blocks_policy_drift(self, tmp_path):
        d = tmp_path / "c"
        CampaignRunner(SPEC, d, worker_fn=fake_worker, retries=2).run(max_cells=1)
        with pytest.raises(CampaignError, match="different campaign"):
            CampaignRunner(SPEC, d, worker_fn=fake_worker, retries=5).run()

    def test_from_dir_restores_spec_and_policy(self, tmp_path):
        d = tmp_path / "c"
        CampaignRunner(
            SPEC, d, worker_fn=fake_worker, retries=4, max_cell_seconds=9.5
        ).run(max_cells=2)
        resumed = CampaignRunner.from_dir(d, worker_fn=fake_worker)
        assert resumed.spec.fingerprint_fields() == SPEC.fingerprint_fields()
        assert resumed.spec.name == "c"  # directory names the campaign
        assert resumed.retries == 4
        assert resumed.max_cell_seconds == 9.5
        assert resumed.run()["complete"]

    def test_corrupt_cell_file_is_recomputed_on_resume(self, tmp_path):
        d = tmp_path / "c"
        runner = CampaignRunner(SPEC, d, worker_fn=fake_worker)
        runner.run()
        target = d / "cells" / "CBF__BOP__clean.json"
        target.write_text('{"payload": {"status": "ok", "accuracy"')
        again = CampaignRunner(SPEC, d, worker_fn=fake_worker)
        with pytest.warns(RuntimeWarning, match="unusable"):
            status = again.run()
        assert status["complete"] and status["n_ok"] == 8
        # The damaged cell ran a second time; the other seven did not.
        assert status["cell_starts"]["CBF__BOP__clean"] == 2
        others = [
            n for cell_id, n in status["cell_starts"].items()
            if cell_id != "CBF__BOP__clean"
        ]
        assert all(n == 1 for n in others)

    def test_rejects_bad_policy(self, tmp_path):
        with pytest.raises(CampaignError):
            CampaignRunner(SPEC, tmp_path, retries=-1)
        with pytest.raises(CampaignError):
            CampaignRunner(SPEC, tmp_path, max_cell_seconds=0.0)


class TestGracefulInterrupt:
    def test_first_signal_latches_second_raises(self):
        from repro.distributed.interrupt import GracefulInterrupt

        with GracefulInterrupt() as interrupt:
            assert not interrupt.triggered
            signal.raise_signal(signal.SIGINT)
            assert interrupt.triggered
            assert interrupt.signal_name == "SIGINT"
            with pytest.raises(KeyboardInterrupt):
                signal.raise_signal(signal.SIGINT)
        # Handlers restored: a SIGINT now raises KeyboardInterrupt normally.
        with pytest.raises(KeyboardInterrupt):
            signal.raise_signal(signal.SIGINT)

    def test_campaign_interrupt_finishes_inflight_cell_then_stops(
        self, tmp_path
    ):
        d = tmp_path / "c"
        hit: list[str] = []

        def interrupting_worker(cell: CampaignCell) -> dict:
            hit.append(cell.cell_id)
            if len(hit) == 2:
                signal.raise_signal(signal.SIGINT)  # operator presses Ctrl-C
            return fake_worker(cell)

        runner = CampaignRunner(SPEC, d, worker_fn=interrupting_worker)
        status = runner.run()
        # The in-flight (second) cell was finished and journaled before
        # the loop wound down; nothing after it started.
        assert len(hit) == 2
        assert status["n_ok"] == 2 and status["n_pending"] == 6
        assert status["interrupted"]
        events = [r["type"] for r in runner.journal.replay()]
        assert events[-1] == "campaign_interrupted"
        assert events.count("cell_finished") == 2
        # A plain resume completes the matrix with zero re-runs.
        final = CampaignRunner(SPEC, d, worker_fn=fake_worker).run()
        assert final["complete"] and not final["interrupted"]
        assert all(n == 1 for n in final["cell_starts"].values())

    def test_distributed_ips_first_signal_stops_after_round(self):
        """Satellite: DistributedIPS winds down cleanly on first SIGINT —
        the interrupted round still yields a usable (truncated) model."""
        from repro.benchlib.runners import make_distributed_ips
        from repro.datasets.loader import load_dataset

        data = load_dataset(
            "GunPoint", seed=0, max_train=12, max_test=10, max_length=80
        )
        fired = {"done": False}

        class SignalingExecutor:
            """Serial executor that raises SIGINT during the first round."""

            def map(self, fn, units):
                out = [fn(u) for u in units]
                if not fired["done"]:
                    fired["done"] = True
                    signal.raise_signal(signal.SIGINT)
                return out

        model = make_distributed_ips(
            k=3, seed=0, q_n=4, q_s=3, executor=SignalingExecutor()
        )
        model.fit_dataset(data.train)
        result = model.discovery_result_
        assert result.extra["interrupted"]
        assert not result.completed
        assert len(result.shapelets) > 0  # flushed, not lost
