"""Tests for repro.matrixprofile.profile and discovery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.matrixprofile.discovery import top_k_discords, top_k_motifs
from repro.matrixprofile.profile import MatrixProfile, profile_diff
from repro.matrixprofile.stomp import stomp_self_join


def _profile(values, indices=None, window=4, exclusion=1) -> MatrixProfile:
    values = np.asarray(values, dtype=np.float64)
    if indices is None:
        indices = np.zeros(values.size, dtype=np.int64)
    return MatrixProfile(
        values=values, indices=indices, window=window, exclusion=exclusion
    )


class TestMatrixProfile:
    def test_motif_discord(self):
        mp = _profile([3.0, 1.0, 2.0, 9.0])
        assert mp.motif() == (1, 1.0)
        assert mp.discord() == (3, 9.0)

    def test_masked_values_ignored(self):
        mp = _profile([np.inf, 1.0, 2.0, np.inf])
        assert mp.motif()[0] == 1
        assert mp.discord()[0] == 2

    def test_all_masked_raises(self):
        mp = _profile([np.inf, np.inf])
        with pytest.raises(ValidationError):
            mp.motif()

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            MatrixProfile(
                values=np.zeros(3), indices=np.zeros(4, dtype=np.int64),
                window=2, exclusion=1,
            )


class TestProfileDiff:
    def test_absolute_difference(self):
        a = _profile([1.0, 5.0, 2.0])
        b = _profile([2.0, 1.0, 2.0])
        diff = profile_diff(a, b)
        assert np.allclose(diff, [1.0, 4.0, 0.0])

    def test_signed_difference(self):
        a = _profile([1.0, 5.0])
        b = _profile([2.0, 1.0])
        diff = profile_diff(a, b, absolute=False)
        assert np.allclose(diff, [-1.0, 4.0])

    def test_masked_positions_lose_argmax(self):
        a = _profile([np.inf, 5.0])
        b = _profile([1.0, 1.0])
        diff = profile_diff(a, b)
        assert diff[0] == -np.inf
        assert int(np.argmax(diff)) == 1

    def test_window_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            profile_diff(_profile([1.0], window=3), _profile([1.0], window=4))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            profile_diff(_profile([1.0, 2.0]), _profile([1.0]))


class TestTopK:
    def test_motifs_ascending_and_separated(self, rng):
        t = rng.normal(size=200)
        mp = stomp_self_join(t, 20)
        picks = top_k_motifs(mp, 4)
        values = [v for _p, v in picks]
        assert values == sorted(values)
        positions = [p for p, _v in picks]
        for i in range(len(positions)):
            for j in range(i + 1, len(positions)):
                assert abs(positions[i] - positions[j]) > mp.exclusion

    def test_discords_descending(self, rng):
        t = rng.normal(size=200)
        mp = stomp_self_join(t, 20)
        picks = top_k_discords(mp, 4)
        values = [v for _p, v in picks]
        assert values == sorted(values, reverse=True)

    def test_fewer_than_k_when_exhausted(self):
        mp = _profile([1.0, 2.0, 3.0], exclusion=5)
        assert len(top_k_motifs(mp, 3)) == 1  # exclusion kills the rest

    def test_k_must_be_positive(self):
        with pytest.raises(ValidationError):
            top_k_motifs(_profile([1.0]), 0)
