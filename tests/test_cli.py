"""Tests for the ``python -m repro`` CLI."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "GunPoint"])
        assert args.method == "IPS"
        assert args.k == 5

    def test_unknown_method_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "GunPoint", "--method", "COTE"])

    def test_serve_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])

    def test_serve_save_defaults(self):
        args = build_parser().parse_args(
            ["serve", "save", "GunPoint", "--out", "artifacts/gp"]
        )
        assert args.out == "artifacts/gp"
        assert args.validation == "repair"

    def test_serve_run_flags(self):
        args = build_parser().parse_args(
            [
                "serve", "run", "--artifact", "artifacts/gp",
                "--deadline-ms", "100", "--queue-depth", "8",
                "--validation", "strict",
            ]
        )
        assert args.artifact == "artifacts/gp"
        assert args.deadline_ms == 100.0
        assert args.queue_depth == 8
        assert args.validation == "strict"

    def test_serve_bench_defaults(self):
        args = build_parser().parse_args(["serve", "bench"])
        assert args.requests == 200
        assert args.deadline_ms is None
        assert args.queue_depth is None

    def test_campaign_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign"])

    def test_campaign_run_flags(self):
        args = build_parser().parse_args(
            [
                "campaign", "run", "--out", "camp", "--datasets", "CBF,GunPoint",
                "--methods", "1NN-ED,BOP", "--scenarios", "clean,missing",
                "--retries", "4", "--max-cell-seconds", "30",
                "--fault-rate", "0.2", "--max-cells", "5",
            ]
        )
        assert args.out == "camp"
        assert args.datasets == "CBF,GunPoint"
        assert args.retries == 4
        assert args.max_cell_seconds == 30.0
        assert args.fault_rate == 0.2
        assert args.max_cells == 5

    def test_campaign_report_flags(self):
        args = build_parser().parse_args(
            ["campaign", "report", "--dir", "camp", "--cd-method", "nemenyi"]
        )
        assert args.dir == "camp"
        assert args.cd_method == "nemenyi"


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "ArrowHead" in out
        assert "ItalyPowerDemand" in out
        assert "47 registered datasets" in out

    def test_run_ips(self, capsys):
        code = main(
            [
                "run", "ItalyPowerDemand", "--method", "IPS",
                "--max-train", "16", "--max-test", "20", "--k", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "IPS on ItalyPowerDemand" in out
        assert "accuracy" in out

    def test_compare_subset(self, capsys):
        code = main(
            [
                "compare", "ItalyPowerDemand", "--methods", "1NN-ED,BASE",
                "--max-train", "16", "--max-test", "20", "--k", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "1NN-ED" in out
        assert "BASE" in out

    def test_shapelets(self, capsys):
        code = main(
            [
                "shapelets", "ItalyPowerDemand",
                "--max-train", "16", "--max-test", "10", "--k", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "shapelets" in out
        assert "utility" in out

    def test_unknown_dataset_errors(self):
        with pytest.raises(KeyError):
            main(["run", "NotADataset", "--max-train", "8"])

    def test_campaign_run_resume_status_report(self, tmp_path, capsys):
        out_dir = str(tmp_path / "camp")
        base = [
            "campaign", "run", "--out", out_dir,
            "--datasets", "CBF,ItalyPowerDemand", "--methods", "1NN-ED,BOP",
            "--max-train", "8", "--max-test", "12", "--max-length", "60",
        ]
        assert main(base + ["--max-cells", "2"]) == 0
        assert "2 pending" in capsys.readouterr().out
        assert main(["campaign", "resume", "--dir", out_dir]) == 0
        assert "0 pending" in capsys.readouterr().out
        assert main(["campaign", "status", "--dir", out_dir]) == 0
        assert "4 ok" in capsys.readouterr().out
        assert main(["campaign", "report", "--dir", out_dir]) == 0
        out = capsys.readouterr().out
        assert "Critical-difference" in out
        assert "report bundle written" in out
        assert (tmp_path / "camp" / "report" / "frame.json").exists()

    def test_campaign_status_on_missing_dir_fails_cleanly(self, tmp_path, capsys):
        assert main(["campaign", "status", "--dir", str(tmp_path / "no")]) == 1
        assert "no campaign manifest" in capsys.readouterr().err
