"""Tests for the ``python -m repro`` CLI."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "GunPoint"])
        assert args.method == "IPS"
        assert args.k == 5

    def test_unknown_method_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "GunPoint", "--method", "COTE"])

    def test_serve_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])

    def test_serve_save_defaults(self):
        args = build_parser().parse_args(
            ["serve", "save", "GunPoint", "--out", "artifacts/gp"]
        )
        assert args.out == "artifacts/gp"
        assert args.validation == "repair"

    def test_serve_run_flags(self):
        args = build_parser().parse_args(
            [
                "serve", "run", "--artifact", "artifacts/gp",
                "--deadline-ms", "100", "--queue-depth", "8",
                "--validation", "strict",
            ]
        )
        assert args.artifact == "artifacts/gp"
        assert args.deadline_ms == 100.0
        assert args.queue_depth == 8
        assert args.validation == "strict"

    def test_serve_bench_defaults(self):
        args = build_parser().parse_args(["serve", "bench"])
        assert args.requests == 200
        assert args.deadline_ms is None
        assert args.queue_depth is None


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "ArrowHead" in out
        assert "ItalyPowerDemand" in out
        assert "47 registered datasets" in out

    def test_run_ips(self, capsys):
        code = main(
            [
                "run", "ItalyPowerDemand", "--method", "IPS",
                "--max-train", "16", "--max-test", "20", "--k", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "IPS on ItalyPowerDemand" in out
        assert "accuracy" in out

    def test_compare_subset(self, capsys):
        code = main(
            [
                "compare", "ItalyPowerDemand", "--methods", "1NN-ED,BASE",
                "--max-train", "16", "--max-test", "20", "--k", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "1NN-ED" in out
        assert "BASE" in out

    def test_shapelets(self, capsys):
        code = main(
            [
                "shapelets", "ItalyPowerDemand",
                "--max-train", "16", "--max-test", "10", "--k", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "shapelets" in out
        assert "utility" in out

    def test_unknown_dataset_errors(self):
        with pytest.raises(KeyError):
            main(["run", "NotADataset", "--max-train", "8"])
