"""The kernel engine: batched-vs-scalar equivalence, caching, counters.

Four contracts from the kernels redesign:

* the batched kernels agree with their scalar counterparts to 1e-8 on
  arbitrary inputs (property-based), including constant and near-zero-std
  windows — and in fact bit-identically, which the scalar-reference
  regression tests pin down;
* a :class:`SeriesCache` never changes results, only reuse —
  ``IPS.discover`` yields an identical shapelet pool with caching on or
  off for a fixed seed;
* :class:`ShapeletTransform` output is bit-identical to the historical
  per-(row, shapelet) scalar loop it replaced;
* discovery attaches kernel perf counters at
  ``DiscoveryResult.extra["perf"]``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro import kernels
from repro.core.config import IPSConfig
from repro.core.pipeline import IPS, IPSClassifier
from repro.core.transform import ShapeletTransform
from repro.datasets.generators import make_planted_dataset
from repro.exceptions import LengthError, ValidationError
from repro.kernels import (
    PerfCounters,
    SeriesCache,
    batch_mass,
    batch_min_distance,
    batch_sliding_dot,
    distance_profile,
    mass,
    sliding_dot_product,
    subsequence_distance,
)
from repro.types import Shapelet

_FINITE = st.floats(
    min_value=-50.0, max_value=50.0, allow_nan=False, allow_infinity=False
)


def _series(min_size: int, max_size: int):
    return arrays(np.float64, st.integers(min_size, max_size), elements=_FINITE)


class TestBatchedMatchesScalar:
    """Property-based 1e-8 equivalence of batch kernels vs scalar loops."""

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_batch_sliding_dot_1d(self, data):
        series = data.draw(_series(8, 60))
        n_queries = data.draw(st.integers(1, 4))
        length = data.draw(st.integers(2, min(10, series.size)))
        queries = np.vstack(
            [data.draw(_series(length, length)) for _ in range(n_queries)]
        )
        batched = batch_sliding_dot(queries, series)
        for i in range(n_queries):
            scalar = sliding_dot_product(queries[i], series)
            np.testing.assert_allclose(batched[i], scalar, atol=1e-8)

    @settings(max_examples=30, deadline=None)
    @given(st.data())
    def test_batch_mass_matches_mass(self, data):
        series = data.draw(_series(10, 60))
        length = data.draw(st.integers(3, min(12, series.size)))
        n_queries = data.draw(st.integers(1, 3))
        queries = np.vstack(
            [data.draw(_series(length, length)) for _ in range(n_queries)]
        )
        normalized = data.draw(st.booleans())
        batched = batch_mass(queries, series, normalized=normalized)
        for i in range(n_queries):
            scalar = mass(queries[i], series, normalized=normalized)
            np.testing.assert_allclose(batched[i], scalar, atol=1e-8)

    @settings(max_examples=30, deadline=None)
    @given(st.data())
    def test_batch_min_distance_matches_subsequence_distance(self, data):
        n_rows = data.draw(st.integers(1, 4))
        length_x = data.draw(st.integers(10, 40))
        X = np.vstack(
            [data.draw(_series(length_x, length_x)) for _ in range(n_rows)]
        )
        n_queries = data.draw(st.integers(1, 3))
        queries = [
            data.draw(_series(2, length_x)) for _ in range(n_queries)
        ]
        batched = batch_min_distance(queries, X)
        assert batched.shape == (n_rows, n_queries)
        for j in range(n_rows):
            for i in range(n_queries):
                scalar = subsequence_distance(queries[i], X[j])
                np.testing.assert_allclose(batched[j, i], scalar, atol=1e-8)

    def test_constant_windows(self):
        """Flat queries and flat series windows hit the FLAT_STD rules."""
        series = np.concatenate([np.full(12, 3.0), np.sin(np.arange(20))])
        flat_query = np.full(5, -1.0)
        wavy_query = np.sin(np.arange(5).astype(np.float64))
        batched = batch_mass(np.vstack([flat_query, wavy_query]), series)
        for i, q in enumerate((flat_query, wavy_query)):
            np.testing.assert_array_equal(batched[i], mass(q, series))

    def test_near_zero_std_windows(self):
        """Windows with tiny-but-nonzero variance stay within 1e-8."""
        rng = np.random.default_rng(0)
        series = np.full(40, 2.0) + 1e-13 * rng.normal(size=40)
        queries = np.vstack([rng.normal(size=6) for _ in range(3)])
        batched = batch_mass(queries, series)
        for i in range(3):
            np.testing.assert_allclose(
                batched[i], mass(queries[i], series), atol=1e-8
            )

    def test_mixed_length_queries(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(5, 30))
        queries = [rng.normal(size=n) for n in (4, 9, 4, 15)]
        batched = batch_min_distance(queries, X)
        for j in range(5):
            for i, q in enumerate(queries):
                assert batched[j, i] == subsequence_distance(q, X[j])

    def test_validation_messages_preserved(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(3, 12))
        with pytest.raises(ValidationError, match=r"2-D \(M, N\) matrix"):
            batch_min_distance([np.ones(3)], np.ones(5))
        with pytest.raises(LengthError, match="query 1 of length 20"):
            batch_min_distance([np.ones(3), np.ones(20)], X)


class TestSeriesCache:
    def test_counts_hits_and_misses(self):
        counters = PerfCounters()
        cache = SeriesCache(counters=counters)
        series = np.sin(np.arange(64).astype(np.float64))
        first = distance_profile(np.ones(8), series, cache=cache)
        hits_after_first = counters.cache_hits
        second = distance_profile(np.ones(8), series, cache=cache)
        np.testing.assert_array_equal(first, second)
        assert counters.cache_misses > 0
        assert counters.cache_hits > hits_after_first

    def test_cache_never_changes_results(self):
        rng = np.random.default_rng(3)
        series = rng.normal(size=100)
        queries = rng.normal(size=(4, 9))
        cache = SeriesCache()
        without = batch_mass(queries, series)
        with_cache = batch_mass(queries, series, cache=cache)
        again = batch_mass(queries, series, cache=cache)  # warm hits
        np.testing.assert_array_equal(without, with_cache)
        np.testing.assert_array_equal(without, again)

    def test_clear_empties_the_cache(self):
        cache = SeriesCache()
        series = np.arange(32, dtype=np.float64)
        distance_profile(np.ones(4), series, cache=cache)
        assert len(cache) > 0
        cache.clear()
        assert len(cache) == 0


class TestDiscoveryIdentity:
    """Caching shares work across phases but never changes discovery."""

    @pytest.fixture(scope="class")
    def dataset(self):
        return make_planted_dataset(
            n_classes=2, n_instances=10, length=60, seed=17, name="kernels"
        )

    def test_cached_and_uncached_pools_identical(self, dataset):
        base = dict(k=3, q_n=4, q_s=3, seed=0)
        cached = IPS(IPSConfig(kernel_cache=True, **base)).discover(dataset)
        uncached = IPS(IPSConfig(kernel_cache=False, **base)).discover(dataset)
        assert len(cached.shapelets) == len(uncached.shapelets)
        for a, b in zip(cached.shapelets, uncached.shapelets):
            assert a.label == b.label
            assert a.score == b.score  # bitwise, not approx
            assert a.source_instance == b.source_instance
            assert a.start == b.start
            np.testing.assert_array_equal(a.values, b.values)

    def test_perf_counters_attached(self, dataset):
        result = IPS(IPSConfig(k=2, q_n=3, q_s=2, seed=0)).discover(dataset)
        perf = result.extra["perf"]
        assert perf["kernel_calls"] > 0
        assert perf["fft_count"] > 0
        assert perf["cache_misses"] > 0
        assert 0.0 <= perf["cache_hit_rate"] <= 1.0
        assert set(perf["phase_seconds"]) >= {
            "generation",
            "pruning",
            "selection",
        }

    def test_classifier_adds_transform_phase(self, dataset):
        clf = IPSClassifier(IPSConfig(k=2, q_n=3, q_s=2, seed=0))
        clf.fit_dataset(dataset)
        perf = clf.discovery_result_.extra["perf"]
        assert "transform" in perf["phase_seconds"]


class TestShapeletTransformRegression:
    """Def.-7 output is bit-identical to the historical scalar loop."""

    def test_bit_identical_to_scalar_reference(self):
        rng = np.random.default_rng(11)
        X = rng.normal(size=(7, 50))
        shapelets = [
            Shapelet(values=rng.normal(size=n), label=i % 2)
            for i, n in enumerate((5, 12, 5, 21))
        ]
        out = ShapeletTransform(shapelets).transform(X)
        # The pre-kernels implementation: an independent scalar
        # subsequence_distance per (row, shapelet) cell.
        reference = np.empty((X.shape[0], len(shapelets)))
        for j in range(X.shape[0]):
            for i, s in enumerate(shapelets):
                profile = distance_profile(s.values, X[j])
                reference[j, i] = float(profile.min() / s.values.size)
        np.testing.assert_array_equal(out, reference)

    def test_shared_cache_changes_nothing(self):
        rng = np.random.default_rng(12)
        X = rng.normal(size=(5, 40))
        shapelets = [Shapelet(values=rng.normal(size=8), label=0)]
        cache = SeriesCache()
        private = ShapeletTransform(shapelets).transform(X)
        shared = ShapeletTransform(shapelets, cache=cache).transform(X)
        warm = ShapeletTransform(shapelets, cache=cache).transform(X)
        np.testing.assert_array_equal(private, shared)
        np.testing.assert_array_equal(private, warm)


def test_facade_exports():
    """The kernels facade is the single public entry point."""
    for name in (
        "mass",
        "batch_mass",
        "batch_min_distance",
        "batch_sliding_dot",
        "distance_profile",
        "subsequence_distance",
        "sliding_mean_std",
        "SeriesCache",
        "PerfCounters",
        "BackendSpec",
        "SpectraStore",
        "backend_names",
        "choose_backend",
        "get_backend",
        "register_backend",
    ):
        assert callable(getattr(kernels, name))
