"""Tests for the runnable baseline methods (BASE, BSPCOVER, FS, LTS, ST, SD)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.bspcover import BSPCover
from repro.baselines.fast_shapelets import FastShapelets
from repro.baselines.learning_shapelets import LearningShapelets
from repro.baselines.mp_base import MPBaseline
from repro.baselines.scalable_discovery import ScalableDiscovery
from repro.baselines.shapelet_transform_st import ShapeletTransformST
from repro.datasets.generators import make_planted_dataset
from repro.exceptions import NotFittedError, ValidationError
from repro.ts.series import Dataset


@pytest.fixture(scope="module")
def planted():
    full = make_planted_dataset(n_classes=2, n_instances=44, length=70, seed=13)
    train = Dataset(X=full.X[:16], y=full.classes_[full.y[:16]], name="train")
    test = Dataset(X=full.X[16:], y=full.classes_[full.y[16:]], name="test")
    return train, test


FAST_METHODS = [
    ("BASE", lambda: MPBaseline(k=3, length_ratios=(0.2, 0.4), seed=0)),
    ("BSPCOVER", lambda: BSPCover(k=3, length_ratios=(0.2, 0.4), seed=0)),
    ("FS", lambda: FastShapelets(k=3, length_ratios=(0.2, 0.4), refine_top=6, seed=0)),
    ("ST", lambda: ShapeletTransformST(k=3, max_candidates=120, length_ratios=(0.2, 0.4), seed=0)),
    ("SD", lambda: ScalableDiscovery(k=3, samples_per_class=40, seed=0)),
]


@pytest.mark.parametrize("name,builder", FAST_METHODS)
class TestTransformBaselinesCommon:
    def test_fit_discovers_shapelets(self, planted, name, builder):
        train, _test = planted
        model = builder().fit_dataset(train)
        assert model.shapelets_
        assert model.discovery_seconds_ > 0.0

    def test_accuracy_above_chance(self, planted, name, builder):
        train, test = planted
        model = builder().fit_dataset(train)
        accuracy = model.score(test.X, test.classes_[test.y])
        assert accuracy > 0.6, f"{name} accuracy {accuracy}"

    def test_shapelet_lengths_within_grid(self, planted, name, builder):
        train, _test = planted
        model = builder().fit_dataset(train)
        max_allowed = train.series_length
        assert all(1 <= s.length <= max_allowed for s in model.shapelets_)

    def test_unfitted_predict_rejected(self, rng, name, builder):
        with pytest.raises(NotFittedError):
            builder().predict(rng.normal(size=(2, 70)))


class TestMPBaselineSpecifics:
    def test_per_class_shapelets(self, planted):
        train, _test = planted
        model = MPBaseline(k=2, seed=0).fit_dataset(train)
        labels = {s.label for s in model.shapelets_}
        assert labels == {0, 1}

    def test_provenance_round_trips(self, planted):
        train, _test = planted
        model = MPBaseline(k=2, seed=0).fit_dataset(train)
        for shp in model.shapelets_:
            row = train.X[shp.source_instance]
            assert np.allclose(row[shp.start : shp.start + shp.length], shp.values)

    def test_small_exclusion_yields_similar_picks(self, planted):
        """Issue 2.2: with exclusion=1 the top-k cluster at few positions."""
        train, _test = planted
        tight = MPBaseline(k=5, exclusion=1, seed=0).fit_dataset(train)
        spread = MPBaseline(k=5, exclusion=15, seed=0).fit_dataset(train)

        def mean_pairwise_start_gap(model):
            gaps = []
            by_class: dict[int, list[int]] = {}
            for s in model.shapelets_:
                by_class.setdefault(s.label, []).append(s.start)
            for starts in by_class.values():
                for i in range(len(starts)):
                    for j in range(i + 1, len(starts)):
                        gaps.append(abs(starts[i] - starts[j]))
            return np.mean(gaps) if gaps else 0.0

        assert mean_pairwise_start_gap(tight) <= mean_pairwise_start_gap(spread) + 20

    def test_single_class_rejected(self):
        ds = make_planted_dataset(n_classes=1, n_instances=4, length=60, seed=0)
        with pytest.raises(ValidationError):
            MPBaseline().discover(ds)

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValidationError):
            MPBaseline(k=0)
        with pytest.raises(ValidationError):
            MPBaseline(exclusion=0)


class TestBSPCoverSpecifics:
    def test_bloom_dedup_reduces_candidates(self, planted):
        train, _test = planted
        model = BSPCover(k=3, stride_fraction=0.25, seed=0)
        candidates = model._generate(train)  # noqa: SLF001
        # An exhaustive enumeration at stride 0.25 would be much larger
        # than the deduplicated pool.
        from repro.instanceprofile.sampling import resolve_lengths

        lengths = resolve_lengths(train.series_length, model.length_ratios)
        exhaustive = sum(
            len(range(0, train.series_length - L + 1, max(1, int(0.25 * L))))
            for L in lengths
        ) * train.n_series
        assert 0 < len(candidates) < exhaustive

    def test_p_cover_quotas(self, planted):
        train, _test = planted
        model = BSPCover(k=2, seed=0).fit_dataset(train)
        per_class: dict[int, int] = {}
        for s in model.shapelets_:
            per_class[s.label] = per_class.get(s.label, 0) + 1
        assert all(count <= 2 for count in per_class.values())

    def test_bad_params_rejected(self):
        with pytest.raises(ValidationError):
            BSPCover(k=0)
        with pytest.raises(ValidationError):
            BSPCover(stride_fraction=0.0)


class TestFastShapeletsSpecifics:
    def test_mask_params_validated(self):
        with pytest.raises(ValidationError):
            FastShapelets(mask_size=8, sax_segments=8)

    def test_k_shapelets_per_class(self, planted):
        train, _test = planted
        model = FastShapelets(k=2, refine_top=4, seed=0).fit_dataset(train)
        per_class: dict[int, int] = {}
        for s in model.shapelets_:
            per_class[s.label] = per_class.get(s.label, 0) + 1
        assert all(count <= 2 for count in per_class.values())
        assert set(per_class) == {0, 1}


class TestLearningShapeletsSpecifics:
    def test_learns_planted_patterns(self, planted):
        train, test = planted
        model = LearningShapelets(
            k_per_class=3, epochs=250, lr=0.2, seed=0
        ).fit_dataset(train)
        accuracy = model.score(test.X, test.classes_[test.y])
        assert accuracy > 0.6

    def test_shapelets_exposed(self, planted):
        train, _test = planted
        model = LearningShapelets(k_per_class=2, epochs=20, seed=0).fit_dataset(train)
        assert len(model.shapelets_) == 4  # 2 per class x 2 classes

    def test_unfitted_rejected(self, rng):
        with pytest.raises(NotFittedError):
            LearningShapelets().predict(rng.normal(size=(2, 50)))

    def test_bad_params_rejected(self):
        with pytest.raises(ValidationError):
            LearningShapelets(k_per_class=0)
        with pytest.raises(ValidationError):
            LearningShapelets(length_ratio=0.0)
        with pytest.raises(ValidationError):
            LearningShapelets(alpha=-1.0)


class TestSTSpecifics:
    def test_candidate_cap_recorded(self, planted):
        train, _test = planted
        model = ShapeletTransformST(k=2, max_candidates=60, seed=0).fit_dataset(train)
        assert model.n_candidates_searched_ == 60

    def test_duplicate_rejection(self, planted):
        train, _test = planted
        model = ShapeletTransformST(k=5, max_candidates=150, seed=0).fit_dataset(train)
        # No two selected shapelets of equal length may be near-identical.
        from repro.ts.distance import subsequence_distance

        shapelets = model.shapelets_
        for i in range(len(shapelets)):
            for j in range(i + 1, len(shapelets)):
                if shapelets[i].length == shapelets[j].length:
                    d = subsequence_distance(shapelets[i].values, shapelets[j].values)
                    assert d >= model.similarity_reject
