"""Tests for repro.ts.dtw."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.ts.dtw import dtw_distance, lb_keogh


def _dtw_reference(a: np.ndarray, b: np.ndarray) -> float:
    """Unconstrained O(nm) reference implementation."""
    n, m = a.size, b.size
    acc = np.full((n + 1, m + 1), np.inf)
    acc[0, 0] = 0.0
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            cost = (a[i - 1] - b[j - 1]) ** 2
            acc[i, j] = cost + min(acc[i - 1, j], acc[i, j - 1], acc[i - 1, j - 1])
    return float(np.sqrt(acc[n, m]))


class TestDTW:
    def test_identical_series_zero(self, rng):
        x = rng.normal(size=40)
        assert dtw_distance(x, x) == pytest.approx(0.0)

    def test_matches_reference(self, rng):
        a = rng.normal(size=25)
        b = rng.normal(size=31)
        assert dtw_distance(a, b) == pytest.approx(_dtw_reference(a, b))

    def test_symmetric(self, rng):
        a = rng.normal(size=20)
        b = rng.normal(size=20)
        assert dtw_distance(a, b) == pytest.approx(dtw_distance(b, a))

    def test_shift_invariance_vs_euclidean(self):
        """DTW absorbs a small shift that Euclidean distance cannot."""
        t = np.linspace(0, 4 * np.pi, 80)
        a = np.sin(t)
        b = np.sin(t + 0.4)
        euclidean = float(np.sqrt(np.sum((a - b) ** 2)))
        assert dtw_distance(a, b) < euclidean

    def test_band_zero_close_to_diagonal_alignment(self, rng):
        a = rng.normal(size=30)
        b = rng.normal(size=30)
        banded = dtw_distance(a, b, band=0)
        # band=0 still allows the |i-j|<=~1 corridor from ceil/floor, so
        # it upper-bounds the unconstrained distance.
        assert banded >= dtw_distance(a, b) - 1e-9

    def test_wider_band_never_increases_distance(self, rng):
        a = rng.normal(size=30)
        b = rng.normal(size=30)
        d_narrow = dtw_distance(a, b, band=2)
        d_wide = dtw_distance(a, b, band=10)
        assert d_wide <= d_narrow + 1e-9

    def test_unequal_lengths(self, rng):
        a = rng.normal(size=15)
        b = rng.normal(size=45)
        assert dtw_distance(a, b) == pytest.approx(_dtw_reference(a, b))

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            dtw_distance(np.array([]), np.arange(3.0))

    def test_rejects_negative_band(self, rng):
        with pytest.raises(ValidationError):
            dtw_distance(rng.normal(size=5), rng.normal(size=5), band=-1)


class TestLBKeogh:
    def test_lower_bounds_dtw(self, rng):
        for _ in range(10):
            a = rng.normal(size=40)
            b = rng.normal(size=40)
            band = 5
            assert lb_keogh(a, b, band) <= dtw_distance(a, b, band=band) + 1e-9

    def test_zero_for_identical(self, rng):
        x = rng.normal(size=30)
        assert lb_keogh(x, x, 3) == pytest.approx(0.0)

    def test_rejects_unequal_lengths(self, rng):
        with pytest.raises(ValidationError):
            lb_keogh(rng.normal(size=10), rng.normal(size=12), 2)
