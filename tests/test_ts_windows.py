"""Tests for repro.ts.windows."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import LengthError
from repro.ts.windows import num_windows, sliding_window_view, subsequences_of


class TestNumWindows:
    def test_paper_formula(self):
        assert num_windows(100, 10) == 91

    def test_window_equals_length(self):
        assert num_windows(5, 5) == 1

    def test_rejects_oversized_window(self):
        with pytest.raises(LengthError):
            num_windows(5, 6)

    def test_rejects_zero_window(self):
        with pytest.raises(LengthError):
            num_windows(5, 0)


class TestSlidingWindowView:
    def test_shape_and_content(self):
        view = sliding_window_view(np.arange(6.0), 3)
        assert view.shape == (4, 3)
        assert np.array_equal(view[0], [0, 1, 2])
        assert np.array_equal(view[-1], [3, 4, 5])

    def test_view_is_readonly(self):
        view = sliding_window_view(np.arange(6.0), 3)
        with pytest.raises(ValueError):
            view[0, 0] = 99.0

    def test_rejects_2d(self):
        with pytest.raises(LengthError):
            sliding_window_view(np.zeros((2, 3)), 2)


class TestSubsequencesOf:
    def test_step_strides(self):
        out = subsequences_of(np.arange(10.0), 4, step=3)
        assert out.shape == (3, 4)
        assert np.array_equal(out[1], [3, 4, 5, 6])

    def test_returns_owning_copy(self):
        x = np.arange(6.0)
        out = subsequences_of(x, 3)
        out[0, 0] = 42.0
        assert x[0] == 0.0

    def test_rejects_bad_step(self):
        with pytest.raises(LengthError):
            subsequences_of(np.arange(5.0), 2, step=0)
