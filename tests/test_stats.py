"""Tests for repro.stats: ranking, Friedman, Wilcoxon-Holm, CD diagram."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import stats as sps

from repro.exceptions import ValidationError
from repro.stats.cd_diagram import cd_groups, critical_difference, render_cd
from repro.stats.friedman import friedman_test
from repro.stats.ranking import average_ranks, best_counts, rank_rows, wins_draws_losses
from repro.stats.wilcoxon import (
    holm_correction,
    pairwise_wilcoxon_matrix,
    wilcoxon_signed_rank,
)


class TestRankRows:
    def test_best_gets_rank_one(self):
        ranks = rank_rows(np.array([[90.0, 70.0, 80.0]]))
        assert ranks[0].tolist() == [1.0, 3.0, 2.0]

    def test_ties_average(self):
        ranks = rank_rows(np.array([[90.0, 90.0, 80.0]]))
        assert ranks[0].tolist() == [1.5, 1.5, 3.0]

    def test_nan_gets_worst_rank(self):
        ranks = rank_rows(np.array([[90.0, np.nan, 80.0]]))
        assert ranks[0, 1] == 3.0

    def test_rank_sum_invariant(self, rng):
        A = rng.normal(size=(10, 6))
        ranks = rank_rows(A)
        expected = 6 * 7 / 2
        assert np.allclose(ranks.sum(axis=1), expected)

    def test_rejects_single_method(self):
        with pytest.raises(ValidationError):
            rank_rows(np.ones((3, 1)))


class TestSummaries:
    def test_average_ranks(self):
        A = np.array([[3.0, 2.0, 1.0], [3.0, 2.0, 1.0]])
        assert average_ranks(A).tolist() == [1.0, 2.0, 3.0]

    def test_best_counts_with_ties(self):
        A = np.array([[5.0, 5.0, 1.0], [9.0, 2.0, 3.0]])
        assert best_counts(A).tolist() == [2, 1, 0]

    def test_wins_draws_losses(self):
        A = np.array([[2.0, 1.0], [2.0, 3.0], [2.0, 2.0]])
        wdl = wins_draws_losses(A, reference=0)
        assert wdl[1] == (1, 1, 1)
        assert wdl[0] == (0, 0, 0)

    def test_wdl_skips_nan_pairs(self):
        A = np.array([[2.0, np.nan], [2.0, 1.0]])
        wdl = wins_draws_losses(A, reference=0)
        assert wdl[1] == (1, 0, 0)

    def test_reference_out_of_range(self):
        with pytest.raises(ValidationError):
            wins_draws_losses(np.ones((2, 2)), reference=5)


class TestFriedman:
    def test_matches_scipy_without_ties(self, rng):
        A = rng.normal(size=(15, 4)) + np.arange(4) * 0.3
        mine = friedman_test(A)
        ref = sps.friedmanchisquare(*[A[:, j] for j in range(4)])
        assert mine.statistic == pytest.approx(ref.statistic)
        assert mine.p_value == pytest.approx(ref.pvalue)

    def test_identical_methods_not_rejected(self, rng):
        base = rng.normal(size=(10, 1))
        A = np.repeat(base, 4, axis=1) + rng.normal(size=(10, 4)) * 1e-9
        result = friedman_test(A)
        assert not result.reject_at(0.05)

    def test_clearly_different_methods_rejected(self, rng):
        A = rng.normal(size=(25, 4)) * 0.1 + np.array([0.0, 1.0, 2.0, 3.0])
        assert friedman_test(A).reject_at(0.01)

    def test_average_ranks_exposed(self, rng):
        A = rng.normal(size=(8, 5))
        result = friedman_test(A)
        assert result.average_ranks.shape == (5,)
        assert result.n_datasets == 8
        assert result.n_methods == 5

    def test_rejects_too_small(self):
        with pytest.raises(ValidationError):
            friedman_test(np.ones((1, 3)))
        with pytest.raises(ValidationError):
            friedman_test(np.ones((5, 2)))


class TestWilcoxon:
    def test_matches_scipy_approx(self, rng):
        x = rng.normal(size=30)
        y = x + rng.normal(size=30) * 0.5 + 0.3
        mine = wilcoxon_signed_rank(x, y)
        ref = sps.wilcoxon(x, y, correction=False, mode="approx")
        assert mine.p_value == pytest.approx(ref.pvalue, rel=1e-6)

    def test_identical_samples_p_one(self, rng):
        x = rng.normal(size=20)
        result = wilcoxon_signed_rank(x, x.copy())
        assert result.p_value == 1.0
        assert result.n_effective == 0

    def test_clear_difference_small_p(self, rng):
        x = rng.normal(size=40)
        result = wilcoxon_signed_rank(x, x + 2.0)
        assert result.p_value < 1e-4

    def test_rejects_mismatched(self, rng):
        with pytest.raises(ValidationError):
            wilcoxon_signed_rank(rng.normal(size=5), rng.normal(size=6))


class TestPairwiseMatrix:
    def test_symmetric_unit_diagonal(self, rng):
        A = rng.normal(size=(15, 4))
        P = pairwise_wilcoxon_matrix(A)
        assert P.shape == (4, 4)
        assert np.allclose(P, P.T)
        assert np.allclose(np.diag(P), 1.0)

    def test_detects_clear_difference(self, rng):
        base = rng.normal(size=(25, 1))
        A = np.hstack([base, base + 3.0])
        P = pairwise_wilcoxon_matrix(A)
        assert P[0, 1] < 1e-3

    def test_nan_rows_skipped_per_pair(self, rng):
        A = rng.normal(size=(12, 3))
        A[0, 2] = np.nan
        P = pairwise_wilcoxon_matrix(A)
        assert np.all(np.isfinite(P))

    def test_rejects_single_method(self):
        with pytest.raises(ValidationError):
            pairwise_wilcoxon_matrix(np.ones((5, 1)))


class TestHolm:
    def test_all_tiny_ps_rejected(self):
        reject = holm_correction(np.array([1e-6, 1e-7, 1e-8]))
        assert reject.all()

    def test_step_down_stops_at_first_failure(self):
        # Sorted ps: 0.001 vs 0.05/3 ok; 0.04 vs 0.05/2=0.025 fails; stop.
        reject = holm_correction(np.array([0.04, 0.001, 0.9]))
        assert reject.tolist() == [False, True, False]

    def test_stricter_than_unadjusted(self):
        ps = np.array([0.03, 0.04, 0.045])
        reject = holm_correction(ps, alpha=0.05)
        assert not reject.any()  # 0.03 > 0.05/3

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValidationError):
            holm_correction(np.array([0.1]), alpha=1.5)


class TestCDDiagram:
    def _matrix(self, rng):
        # Three tiers: two good methods (similar), one bad.
        n = 30
        good_a = rng.normal(90, 1.0, size=n)
        good_b = good_a + rng.normal(0, 0.5, size=n)
        bad = rng.normal(60, 1.0, size=n)
        return np.column_stack([good_a, good_b, bad])

    def test_nemenyi_cd_value(self):
        # Demsar's example regime: k methods, N datasets.
        cd = critical_difference(5, 30)
        assert cd == pytest.approx(2.728 * np.sqrt(5 * 6 / (6 * 30)), rel=1e-6)

    def test_groups_connect_similar_methods(self, rng):
        ranks, groups = cd_groups(self._matrix(rng), method="wilcoxon-holm")
        order = np.argsort(ranks)
        # The two good methods are adjacent and grouped; bad is alone.
        assert any(hi - lo == 1 for lo, hi in groups)
        for lo, hi in groups:
            members = {int(order[i]) for i in range(lo, hi + 1)}
            assert 2 not in members  # the bad method never joins a group

    def test_nemenyi_mode(self, rng):
        _ranks, groups = cd_groups(self._matrix(rng), method="nemenyi")
        assert isinstance(groups, list)

    def test_render_contains_methods_and_ranks(self, rng):
        text = render_cd(["alpha", "beta", "gamma"], self._matrix(rng))
        assert "alpha" in text
        assert "avg rank" in text
        assert "groups not significantly different" in text or "significant" in text

    def test_render_nemenyi_shows_cd_value(self, rng):
        text = render_cd(["a", "b", "c"], self._matrix(rng), method="nemenyi")
        assert "CD = " in text

    def test_render_name_mismatch_rejected(self, rng):
        with pytest.raises(ValidationError):
            render_cd(["only-one"], self._matrix(rng))

    def test_unknown_mode_rejected(self, rng):
        with pytest.raises(ValidationError):
            cd_groups(self._matrix(rng), method="bonferroni-dunn-3000")

    def test_untabulated_k_rejected(self):
        with pytest.raises(ValidationError):
            critical_difference(25, 10)
