"""Tests for repro.classify.neighbors: 1NN-ED / 1NN-DTW."""

from __future__ import annotations

import numpy as np
import pytest

from repro.classify.neighbors import OneNearestNeighbor
from repro.exceptions import NotFittedError, ValidationError


def _shifted_sine_data(rng, n_per_class=8, length=60):
    """Two classes: sine vs sawtooth, with random phase shifts."""
    t = np.linspace(0, 2 * np.pi, length)
    X, y = [], []
    for _ in range(n_per_class):
        phase = rng.uniform(0, 1.0)
        X.append(np.sin(t + phase) + 0.05 * rng.normal(size=length))
        y.append(0)
        X.append(((t + phase) % (2 * np.pi)) / np.pi - 1 + 0.05 * rng.normal(size=length))
        y.append(1)
    return np.vstack(X), np.array(y)


class TestOneNearestNeighborED:
    def test_memorizes_training_set(self, rng):
        X, y = _shifted_sine_data(rng)
        model = OneNearestNeighbor("euclidean").fit(X, y)
        assert np.all(model.predict(X) == y)

    def test_generalizes(self, rng):
        X, y = _shifted_sine_data(rng)
        X2, y2 = _shifted_sine_data(rng)
        model = OneNearestNeighbor("euclidean").fit(X, y)
        assert model.score(X2, y2) > 0.8

    def test_single_query_1d(self, rng):
        X, y = _shifted_sine_data(rng)
        model = OneNearestNeighbor("euclidean").fit(X, y)
        pred = model.predict(X[0])
        assert pred.shape == (1,)
        assert pred[0] == y[0]

    def test_unfitted_rejected(self, rng):
        with pytest.raises(NotFittedError):
            OneNearestNeighbor("euclidean").predict(rng.normal(size=(1, 4)))

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValidationError):
            OneNearestNeighbor("manhattan")

    def test_mismatched_shapes_rejected(self, rng):
        with pytest.raises(ValidationError):
            OneNearestNeighbor().fit(rng.normal(size=(3, 4)), np.array([0, 1]))


class TestOneNearestNeighborDTW:
    def test_memorizes_training_set(self, rng):
        X, y = _shifted_sine_data(rng, n_per_class=4)
        model = OneNearestNeighbor("dtw", band=5).fit(X, y)
        assert np.all(model.predict(X) == y)

    def test_dtw_beats_ed_on_warped_data(self, rng):
        """Phase-shifted patterns: DTW should not be worse than ED."""
        X, y = _shifted_sine_data(rng, n_per_class=6)
        X2, y2 = _shifted_sine_data(rng, n_per_class=6)
        ed = OneNearestNeighbor("euclidean").fit(X, y).score(X2, y2)
        dtw = OneNearestNeighbor("dtw", band=8).fit(X, y).score(X2, y2)
        assert dtw >= ed - 0.15

    def test_lb_keogh_pruning_consistent(self, rng):
        """Band search with pruning gives the same answer as brute DTW."""
        from repro.ts.dtw import dtw_distance

        X, y = _shifted_sine_data(rng, n_per_class=4)
        model = OneNearestNeighbor("dtw", band=5).fit(X, y)
        query = X[3] + 0.01 * rng.normal(size=X.shape[1])
        pred = model.predict(query)[0]
        brute_dists = [dtw_distance(query, row, band=5) for row in X]
        assert pred == y[int(np.argmin(brute_dists))]
