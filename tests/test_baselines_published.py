"""Tests for repro.baselines.published: Table VI / Table IV constants."""

from __future__ import annotations

import numpy as np

from repro.baselines.published import (
    METHOD_ORDER,
    PUBLISHED_ACCURACY,
    PUBLISHED_RUNTIME_SECONDS,
    PUBLISHED_TABLE2,
    accuracy_matrix,
    published_methods,
)
from repro.datasets.registry import TABLE_DATASETS
from repro.stats.ranking import average_ranks, best_counts, wins_draws_losses


class TestTableVIData:
    def test_46_datasets_13_methods(self):
        assert len(PUBLISHED_ACCURACY) == 46
        assert all(len(row) == 13 for row in PUBLISHED_ACCURACY.values())
        assert len(METHOD_ORDER) == 13

    def test_matches_registry_table_datasets(self):
        assert set(PUBLISHED_ACCURACY) == set(TABLE_DATASETS)

    def test_single_nan_for_elis_noninvasive(self):
        values, _d, _m = accuracy_matrix()
        assert int(np.isnan(values).sum()) == 1
        row = PUBLISHED_ACCURACY["NonInvasiveFatalECGThorax1"]
        assert np.isnan(row[METHOD_ORDER.index("ELIS")])

    def test_values_are_percentages(self):
        values, _d, _m = accuracy_matrix()
        finite = values[np.isfinite(values)]
        assert finite.min() > 0.0
        assert finite.max() <= 100.0

    def test_paper_footer_best_counts(self):
        """Reproduce the 'Total best acc' row within +-1.

        The paper's footer is derived from its bolding, which disagrees
        with a strict max recomputation on a couple of near-tie rows
        (e.g. Meat: ResNet 96.8 vs RotF 96.67); allow one count of slack.
        """
        values, _d, methods = accuracy_matrix()
        counts = best_counts(values, tol=1e-9)
        by = dict(zip(methods, counts))
        paper = {"COTE": 14, "COTE-IPS": 11, "IPS": 9, "ST": 9, "ResNet": 9,
                 "RotF": 5, "LTS": 5, "BSPCOVER": 8, "FS": 2, "ELIS": 2,
                 "DTW_Rn_1NN": 1, "BASE": 1, "SD": 0}
        for method, expected in paper.items():
            assert abs(int(by[method]) - expected) <= 1, method
        # The ordering story holds exactly: COTE first, COTE-IPS second.
        assert by["COTE"] == max(by.values())

    def test_paper_footer_ips_1to1(self):
        """Spot-check the IPS 1-to-1 W/D/L footer row (+-2 per entry)."""
        values, _d, methods = accuracy_matrix()
        ips = methods.index("IPS")
        wdl = wins_draws_losses(values, reference=ips)
        by = dict(zip(methods, wdl))
        paper = {"FS": (42, 0, 4), "SD": (42, 0, 4), "BASE": (41, 2, 3),
                 "DTW_Rn_1NN": (34, 3, 9), "COTE-IPS": (10, 8, 28)}
        for method, expected in paper.items():
            measured = by[method]
            for got, want in zip(measured, expected):
                assert abs(got - want) <= 2, (method, measured, expected)
        # The shape: IPS dominates the weak methods, loses to ensembles.
        assert by["FS"][0] > 35 and by["COTE-IPS"][2] > 20

    def test_ips_ranks_fourth(self):
        """Section IV-C: 'IPS is ranked 4th' among the 13 methods."""
        values, _d, methods = accuracy_matrix()
        ranks = average_ranks(values)
        order = [methods[i] for i in np.argsort(ranks)]
        assert order.index("IPS") == 3
        assert order[0] == "COTE-IPS"

    def test_accuracy_matrix_subsets(self):
        values, datasets, methods = accuracy_matrix(
            datasets=["Coffee", "GunPoint"], methods=["IPS", "BASE"]
        )
        assert values.shape == (2, 2)
        assert values[0, 0] == 100.0  # IPS on Coffee
        assert values[1, 1] == 82.67  # BASE on GunPoint


class TestTableIVData:
    def test_coverage(self):
        assert set(PUBLISHED_RUNTIME_SECONDS) == set(TABLE_DATASETS)

    def test_paper_average_speedups(self):
        """Table IV: BASE vs IPS ~1.2x, IPS vs BSPCOVER ~25x on average."""
        ratios_base = []
        ratios_bsp = []
        for base, bsp, ips in PUBLISHED_RUNTIME_SECONDS.values():
            ratios_base.append(ips / base)
            ratios_bsp.append(bsp / ips)
        assert 1.1 < float(np.mean(ratios_base)) < 1.3
        assert 20.0 < float(np.mean(ratios_bsp)) < 30.0

    def test_bspcover_always_slowest(self):
        for base, bsp, ips in PUBLISHED_RUNTIME_SECONDS.values():
            assert bsp > base
            assert bsp > ips


class TestTable7Data:
    def test_ten_datasets_three_schemes(self):
        from repro.baselines.published import PUBLISHED_TABLE7

        assert len(PUBLISHED_TABLE7) == 10
        for row in PUBLISHED_TABLE7.values():
            assert set(row) == {"hamming", "cosine", "l2"}

    def test_l2_never_worse(self):
        """The paper's claim: L2 matches or beats the other two schemes."""
        from repro.baselines.published import PUBLISHED_TABLE7

        for name, row in PUBLISHED_TABLE7.items():
            assert row["l2"] >= row["cosine"] - 1e-9, name
            assert row["l2"] >= row["hamming"] - 1e-9, name


class TestTable2Data:
    def test_four_datasets(self):
        assert set(PUBLISHED_TABLE2) == {
            "ArrowHead", "MoteStrain", "ShapeletSim", "ToeSegmentation1",
        }

    def test_ed_beats_all_topk_on_arrowhead(self):
        """The motivation: BASE top-k loses to plain 1NN-ED (issue 2.1)."""
        row = PUBLISHED_TABLE2["ArrowHead"]
        topk = [v for key, v in row.items() if key.startswith("k")]
        assert max(topk) < row["ED"]

    def test_methods_helper(self):
        assert published_methods() == list(METHOD_ORDER)
