"""Tests for repro.core.utility: Defs. 11-13 + DT & CR."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.utility import (
    UtilityScores,
    _PairDistanceCache,
    score_candidates_brute,
    score_candidates_dt,
    sigmoid_utility,
)
from repro.datasets.generators import make_planted_dataset
from repro.exceptions import ValidationError
from repro.filters.dabf import DABF
from repro.instanceprofile.candidates import generate_candidates
from repro.types import Candidate, CandidateKind


@pytest.fixture(scope="module")
def scored_setup():
    dataset = make_planted_dataset(n_classes=2, n_instances=14, length=70, seed=5)
    pool = generate_candidates(dataset, q_n=6, q_s=3, lengths=[10, 18], seed=0)
    dabf = DABF.build(pool, seed=0)
    return dataset, pool, dabf


class TestSigmoidUtility:
    def test_range(self):
        assert sigmoid_utility(0.0) == pytest.approx(0.5)
        assert 0.0 < sigmoid_utility(-5.0) < 0.5 < sigmoid_utility(5.0) < 1.0

    def test_saturation_motivates_normalization(self):
        """The paper's raw-sum sigmoid saturates: documented deviation."""
        assert sigmoid_utility(100.0) == 1.0
        assert sigmoid_utility(150.0) == 1.0

    def test_no_overflow_on_large_negative(self):
        assert sigmoid_utility(-1000.0) == pytest.approx(0.0)


class TestUtilityScores:
    def test_combined_formula(self):
        cand = Candidate(values=np.ones(4), label=0, kind=CandidateKind.MOTIF)
        scores = UtilityScores(
            candidates=[cand],
            intra=np.array([0.3]),
            inter=np.array([0.8]),
            instance=np.array([0.2]),
        )
        assert scores.combined[0] == pytest.approx(0.3 - 0.8 + 0.2)

    def test_shape_validation(self):
        cand = Candidate(values=np.ones(4), label=0, kind=CandidateKind.MOTIF)
        with pytest.raises(ValidationError):
            UtilityScores(
                candidates=[cand],
                intra=np.array([0.1, 0.2]),
                inter=np.array([0.1]),
                instance=np.array([0.1]),
            )


class TestBruteForce:
    def test_scores_for_all_motifs(self, scored_setup):
        dataset, pool, _dabf = scored_setup
        scores = score_candidates_brute(dataset, pool, 0)
        assert len(scores.candidates) == len(pool.motifs(0))
        assert scores.combined.shape == (len(scores.candidates),)

    def test_utilities_in_unit_interval(self, scored_setup):
        dataset, pool, _dabf = scored_setup
        scores = score_candidates_brute(dataset, pool, 0)
        for arr in (scores.intra, scores.inter, scores.instance):
            assert np.all((arr >= 0.0) & (arr <= 1.0))

    def test_cr_matches_no_cr(self, scored_setup):
        """CR is a pure optimization: identical utilities."""
        dataset, pool, _dabf = scored_setup
        with_cr = score_candidates_brute(dataset, pool, 0, use_cr=True)
        without_cr = score_candidates_brute(dataset, pool, 0, use_cr=False)
        assert np.allclose(with_cr.combined, without_cr.combined, atol=1e-9)

    def test_shared_cache_reused_across_classes(self, scored_setup):
        dataset, pool, _dabf = scored_setup
        cache = _PairDistanceCache()
        score_candidates_brute(dataset, pool, 0, cache=cache)
        misses_after_first = cache.misses
        score_candidates_brute(dataset, pool, 1, cache=cache)
        assert cache.hits > 0
        assert cache.misses > misses_after_first  # new intra pairs of class 1

    def test_unnormalized_sums_saturate(self, scored_setup):
        """Reproduces the paper's literal formula: sums saturate to 1."""
        dataset, pool, _dabf = scored_setup
        scores = score_candidates_brute(dataset, pool, 0, normalize=False)
        # With ~dozens of candidates the sigmoid saturates for intra/inter.
        assert np.allclose(scores.inter, 1.0)

    def test_empty_class_gives_empty_scores(self, scored_setup):
        dataset, pool, _dabf = scored_setup
        scores = score_candidates_brute(dataset, pool, 99)
        assert len(scores.candidates) == 0


class TestDT:
    def test_scores_align_with_candidates(self, scored_setup):
        dataset, pool, dabf = scored_setup
        scores = score_candidates_dt(dataset, pool, 0, dabf)
        assert len(scores.candidates) == len(pool.motifs(0))
        assert np.all(np.isfinite(scores.combined))

    def test_dt_flags_same_outlier_as_brute(self, rng):
        """A far outlier gets the worst intra utility in both spaces."""
        from repro.instanceprofile.candidates import CandidatePool
        from repro.ts.series import Dataset

        base = rng.normal(size=12)
        pool = CandidatePool()
        for i in range(9):
            pool.add(
                Candidate(
                    values=base + 0.05 * rng.normal(size=12),
                    label=0,
                    kind=CandidateKind.MOTIF,
                    start=i,
                )
            )
        outlier = Candidate(
            values=base * 3.0 + 4.0, label=0, kind=CandidateKind.MOTIF, start=99
        )
        pool.add(outlier)
        for i in range(4):
            pool.add(
                Candidate(
                    values=rng.normal(size=12) + 5.0,
                    label=1,
                    kind=CandidateKind.MOTIF,
                    start=i,
                )
            )
        dataset = Dataset(X=rng.normal(size=(6, 40)), y=[0, 0, 0, 1, 1, 1])
        dabf = DABF.build(pool, seed=0)
        brute = score_candidates_brute(dataset, pool, 0)
        dt = score_candidates_dt(dataset, pool, 0, dabf)
        outlier_idx = brute.candidates.index(outlier)
        assert int(np.argmax(brute.intra)) == outlier_idx
        # DT's rank space is coarse (few buckets), so allow ties at the max.
        assert dt.intra[outlier_idx] >= dt.intra.max() - 1e-12

    def test_dt_utilities_in_unit_interval(self, scored_setup):
        dataset, pool, dabf = scored_setup
        scores = score_candidates_dt(dataset, pool, 0, dabf)
        for arr in (scores.intra, scores.inter, scores.instance):
            assert np.all((arr >= 0.0) & (arr <= 1.0))

    def test_empty_class(self, scored_setup):
        dataset, pool, dabf = scored_setup
        scores = score_candidates_dt(dataset, pool, 99, dabf)
        assert len(scores.candidates) == 0


class TestPairDistanceCache:
    def test_symmetric_key(self, rng):
        cache = _PairDistanceCache()
        a = Candidate(values=rng.normal(size=8), label=0, kind=CandidateKind.MOTIF)
        b = Candidate(values=rng.normal(size=8), label=0, kind=CandidateKind.MOTIF)
        d1 = cache.distance(a, b)
        d2 = cache.distance(b, a)
        assert d1 == d2
        assert cache.hits == 1
        assert cache.misses == 1
