"""Tests for repro.core.budget: anytime discovery under resource budgets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.budget import Budget, BudgetTracker, null_tracker
from repro.core.config import IPSConfig
from repro.core.pipeline import IPS, IPSClassifier
from repro.datasets.generators import make_planted_dataset
from repro.exceptions import ValidationError

pytestmark = pytest.mark.robustness


def _sig(shapelets):
    return [(s.label, s.source_instance, s.start, len(s.values)) for s in shapelets]


class TestBudgetObject:
    def test_unbounded_by_default(self):
        assert Budget().unbounded
        assert not Budget(max_seconds=1.0).unbounded

    def test_negative_values_rejected(self):
        with pytest.raises(ValidationError):
            Budget(max_seconds=-1.0)
        with pytest.raises(ValidationError):
            Budget(max_candidates=0)
        with pytest.raises(ValidationError):
            Budget(max_memory_mb=-0.5)

    def test_candidate_budget_latches(self):
        tracker = Budget(max_candidates=10).start()
        tracker.charge(5)
        assert not tracker.exhausted
        tracker.charge(5)
        assert tracker.exhausted
        assert "candidate" in tracker.exhausted_reason

    def test_memory_budget(self):
        tracker = Budget(max_memory_mb=1.0).start()
        tracker.charge(1, n_values=200_000)  # 1.6 MB at 8 bytes/value
        assert tracker.exhausted
        assert "memory" in tracker.exhausted_reason

    def test_deadline_budget(self):
        tracker = Budget(max_seconds=0.0).start()
        assert tracker.exhausted
        assert "deadline" in tracker.exhausted_reason

    def test_null_tracker_never_exhausts(self):
        tracker = null_tracker()
        tracker.charge(10**9, n_values=10**9)
        assert not tracker.exhausted

    def test_snapshot_round_trip(self):
        tracker = Budget(max_candidates=100).start()
        tracker.charge(7, n_values=3)
        tracker.record_phase("generation", rounds_completed=2)
        snap = tracker.snapshot()
        assert snap["candidates"] == 7
        assert snap["progress"]["generation"]["rounds_completed"] == 2
        assert snap["exhausted"] is None

    def test_exhausted_reason_is_stable(self):
        tracker = Budget(max_candidates=1, max_seconds=0.0).start()
        tracker.charge(5)
        first = tracker.exhausted_reason
        tracker.charge(5)
        assert tracker.exhausted_reason == first

    def test_tracker_type(self):
        assert isinstance(Budget().start(), BudgetTracker)


@pytest.fixture(scope="module")
def planted():
    return make_planted_dataset(n_classes=2, n_instances=12, length=60, seed=0)


class TestAnytimeIPS:
    def test_zero_deadline_truncates_reproducibly(self, planted):
        config = IPSConfig(q_n=6, q_s=2, k=3, seed=0, budget=Budget(max_seconds=0.0))
        a = IPS(config).discover(planted)
        b = IPS(config).discover(planted)
        assert not a.completed and not b.completed
        assert _sig(a.shapelets) == _sig(b.shapelets)
        progress = a.extra["budget"]["progress"]["generation"]
        assert progress["rounds_completed"] == 1  # first round always runs
        assert progress["truncated"]

    def test_huge_budget_matches_unbudgeted(self, planted):
        base = IPS(IPSConfig(q_n=4, q_s=2, k=3, seed=0)).discover(planted)
        budgeted = IPS(
            IPSConfig(q_n=4, q_s=2, k=3, seed=0, budget=Budget(max_seconds=1e9))
        ).discover(planted)
        assert budgeted.completed
        assert _sig(base.shapelets) == _sig(budgeted.shapelets)

    def test_candidate_budget_truncates_deterministically(self, planted):
        config = IPSConfig(
            q_n=8, q_s=2, k=3, seed=0, budget=Budget(max_candidates=25)
        )
        a = IPS(config).discover(planted)
        b = IPS(config).discover(planted)
        assert not a.completed
        assert _sig(a.shapelets) == _sig(b.shapelets)
        assert a.n_candidates_generated == b.n_candidates_generated

    def test_budgeted_classifier_still_usable(self, planted):
        """Acceptance: tight budget -> no exception, above-chance accuracy."""
        config = IPSConfig(q_n=6, q_s=2, k=3, seed=0, budget=Budget(max_seconds=0.0))
        clf = IPSClassifier(config).fit_dataset(planted)
        assert clf.discovery_result_ is not None
        assert not clf.discovery_result_.completed
        y = planted.classes_[planted.y]
        assert clf.score(planted.X, y) > 0.5  # above chance for 2 classes
        assert clf.discovery_result_.extra["budget"]["exhausted"]

    def test_unbudgeted_result_has_no_budget_extra(self, planted):
        result = IPS(IPSConfig(q_n=3, q_s=2, k=2, seed=0)).discover(planted)
        assert result.completed
        assert "budget" not in result.extra


class TestAnytimeDistributed:
    def test_zero_deadline_reproducible(self, planted):
        from repro.distributed.discovery import DistributedIPS

        config = IPSConfig(q_n=4, q_s=2, k=3, seed=0, budget=Budget(max_seconds=0.0))
        a = DistributedIPS(config).discover(planted)
        b = DistributedIPS(config).discover(planted)
        assert not a.completed and not b.completed
        assert _sig(a.shapelets) == _sig(b.shapelets)

    def test_fault_tolerant_path_respects_budget(self, planted):
        from repro.core.config import FaultToleranceConfig
        from repro.distributed.discovery import DistributedIPS

        config = IPSConfig(
            q_n=4,
            q_s=2,
            k=3,
            seed=0,
            budget=Budget(max_seconds=0.0),
            fault_tolerance=FaultToleranceConfig(base_delay=0.0),
        )
        a = DistributedIPS(config).discover(planted)
        b = DistributedIPS(config).discover(planted)
        assert not a.completed
        assert _sig(a.shapelets) == _sig(b.shapelets)


class TestAnytimeBaselines:
    def test_mp_baseline_budget(self, planted):
        from repro.baselines.mp_base import MPBaseline

        X, y = planted.X, planted.classes_[planted.y]
        a = MPBaseline(seed=0, budget=Budget(max_seconds=0.0)).fit(X, y)
        b = MPBaseline(seed=0, budget=Budget(max_seconds=0.0)).fit(X, y)
        assert not a.completed_ and not b.completed_
        assert _sig(a.shapelets_) == _sig(b.shapelets_)
        assert a.score(X, y) > 0.5

    def test_mp_baseline_unbudgeted_unchanged(self, planted):
        from repro.baselines.mp_base import MPBaseline

        X, y = planted.X, planted.classes_[planted.y]
        plain = MPBaseline(seed=0).fit(X, y)
        big = MPBaseline(seed=0, budget=Budget(max_seconds=1e9)).fit(X, y)
        assert plain.completed_ and big.completed_
        assert _sig(plain.shapelets_) == _sig(big.shapelets_)

    def test_fast_shapelets_budget(self, planted):
        from repro.baselines.fast_shapelets import FastShapelets

        X, y = planted.X, planted.classes_[planted.y]
        a = FastShapelets(seed=0, n_masking_rounds=4, budget=Budget(max_seconds=0.0)).fit(X, y)
        b = FastShapelets(seed=0, n_masking_rounds=4, budget=Budget(max_seconds=0.0)).fit(X, y)
        assert not a.completed_ and not b.completed_
        assert _sig(a.shapelets_) == _sig(b.shapelets_)
        assert len(a.shapelets_) >= 1
        preds = a.predict(X)
        assert preds.shape == (X.shape[0],)


class TestBenchlibBudget:
    def test_evaluate_method_reports_truncation(self, planted):
        from repro.benchlib.runners import evaluate_method
        from repro.datasets.loader import TrainTestData
        from repro.datasets.registry import DatasetProfile

        profile = DatasetProfile(
            name="planted",
            n_classes=2,
            n_train=planted.n_series,
            n_test=planted.n_series,
            length=planted.series_length,
            category="Simulated",
            generator="planted",
        )
        data = TrainTestData(train=planted, test=planted, profile=profile)
        result = evaluate_method(
            "IPS",
            data,
            k=3,
            seed=0,
            q_n=4,
            q_s=2,
            budget=Budget(max_seconds=0.0),
        )
        assert not result.completed
        assert result.accuracy > 0.5
