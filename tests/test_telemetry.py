"""Runtime-telemetry suite: windowed histograms, Prometheus exposition,
the SLO tracker, typed health, the exposition server, and the CLI faces
(``repro obs top`` / ``repro obs bench-diff``).

The integration tests exercise the acceptance path end to end: a live
``/metrics`` + ``/healthz`` fetch against an instrumented
:class:`InferenceService` while it is serving, bit-identity of the
instrumented-vs-bare predictions, and a synthetically injected
regression driving ``bench-diff`` to a non-zero exit.
"""

from __future__ import annotations

import json
import math
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.obs import (
    BUCKET_BOUNDS,
    HealthReason,
    HealthReport,
    MetricsRegistry,
    SLOTracker,
    TelemetryServer,
    WindowedHistogram,
    prometheus_name,
    render_prometheus,
)

pytestmark = pytest.mark.timeout_guard(60)


def _fetch(url: str) -> tuple[int, str]:
    """GET a URL, returning (status, body) — 4xx/5xx included."""
    try:
        with urllib.request.urlopen(url, timeout=5) as response:
            return response.status, response.read().decode("utf-8")
    except urllib.error.HTTPError as err:
        return err.code, err.read().decode("utf-8")


# -- the histogram primitive ----------------------------------------------


class TestWindowedHistogram:
    def test_empty_window(self):
        hist = WindowedHistogram(capacity=4)
        assert len(hist) == 0
        assert hist.values() == []
        assert hist.window_mean == 0.0
        assert math.isnan(hist.quantile(0.5))
        assert hist.over_threshold_fraction(1.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            WindowedHistogram(capacity=0)
        hist = WindowedHistogram()
        hist.append(1.0)
        with pytest.raises(ValueError):
            hist.quantile(1.5)
        with pytest.raises(ValueError):
            hist.quantile(-0.1)

    def test_eviction_is_exact(self):
        hist = WindowedHistogram(capacity=8)
        samples = [0.001 * (i + 1) for i in range(20)]
        for value in samples:
            hist.append(value)
        # Window holds exactly the last 8 samples, oldest first.
        assert hist.values() == samples[-8:]
        assert len(hist) == 8
        assert hist.window_sum == pytest.approx(sum(samples[-8:]))
        assert hist.window_mean == pytest.approx(sum(samples[-8:]) / 8)
        # Lifetime tallies never evict.
        assert hist.total_count == 20
        assert hist.total_sum == pytest.approx(sum(samples))
        # Bucket counts stayed consistent through every eviction: the
        # quantile sweep sees exactly the 8 windowed samples.
        assert hist.quantile(1.0) >= max(samples[-8:])

    def test_over_threshold_fraction_is_exact(self):
        hist = WindowedHistogram(capacity=10)
        for value in (0.01, 0.02, 0.5, 0.6, 0.7):
            hist.append(value)
        assert hist.over_threshold_fraction(0.1) == pytest.approx(3 / 5)
        # Strictly above: the boundary value itself does not count.
        assert hist.over_threshold_fraction(0.7) == pytest.approx(0.0)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_quantiles_within_bucket_error_bounds(self, seed):
        """Property: bucket quantiles land within one factor-2 bucket of
        the exact rank statistic, for log-uniform positive samples."""
        rng = np.random.default_rng(seed)
        samples = np.exp(rng.uniform(np.log(1e-5), np.log(10.0), size=300))
        hist = WindowedHistogram(capacity=256)
        for value in samples:
            hist.append(float(value))
        window = sorted(hist.values())
        for q in (0.1, 0.5, 0.9, 0.99, 1.0):
            exact = window[max(1, math.ceil(q * len(window))) - 1]
            estimate = hist.quantile(q)
            # The estimate is the upper bound of the exact sample's
            # bucket: never below the true value, at most 2x above.
            assert exact <= estimate <= 2.0 * exact

    def test_top_bucket_returns_window_max(self):
        hist = WindowedHistogram(capacity=4)
        huge = BUCKET_BOUNDS[-2] * 10  # beyond the last finite bound
        hist.append(huge)
        assert hist.quantile(0.99) == huge
        assert math.isfinite(hist.quantile(0.99))

    def test_snapshot_round_trip(self):
        hist = WindowedHistogram(capacity=6)
        for value in (0.002, 0.004, 0.1, 0.25, 3.0, 0.5, 0.007):
            hist.append(value)
        snap = hist.snapshot()
        restored = WindowedHistogram.from_snapshot(snap)
        assert restored.snapshot() == snap
        assert restored.values() == hist.values()
        assert restored.total_count == hist.total_count

    def test_registry_windows_snapshot_gated(self):
        registry = MetricsRegistry()
        registry.counter("x")
        # No windows -> no "windows" key (pre-telemetry JSONL stability).
        assert "windows" not in registry.snapshot()
        registry.observe_window("lat", 0.01)
        snap = registry.snapshot()
        assert snap["windows"]["lat"]["count"] == 1
        restored = MetricsRegistry.from_snapshot(snap)
        assert restored.snapshot() == snap

    def test_registry_merge_folds_windows(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.observe_window("lat", 0.01)
        b.observe_window("lat", 0.02)
        b.observe_window("other", 1.0)
        a.merge(b)
        snap = a.snapshot()["windows"]
        assert snap["lat"]["count"] == 2
        assert snap["other"]["count"] == 1


# -- Prometheus exposition -------------------------------------------------


class TestPrometheusRendering:
    def test_name_sanitization(self):
        assert prometheus_name("serve.shed") == "repro_serve_shed"
        assert prometheus_name("a-b c/d") == "repro_a_b_c_d"
        assert prometheus_name("9lives").startswith("repro_")

    def test_render_counters_gauges_windows(self):
        registry = MetricsRegistry()
        registry.counter("serve.shed", 3)
        registry.gauge("serve.queue_depth", 7.5)
        registry.observe("phase_seconds.fit", 1.25)
        for value in (0.01, 0.02, 0.04):
            registry.observe_window("serve.request_latency_seconds", value)
        text = render_prometheus(registry)
        assert text.endswith("\n")
        assert "# TYPE repro_serve_shed counter" in text
        assert "repro_serve_shed 3" in text
        assert "repro_serve_queue_depth 7.5" in text
        assert "repro_phase_seconds_fit_count 1" in text
        assert "# TYPE repro_serve_request_latency_seconds summary" in text
        assert 'repro_serve_request_latency_seconds{quantile="0.99"}' in text
        assert "repro_serve_request_latency_seconds_count 3" in text

    def test_render_is_deterministic_and_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b")
        registry.counter("a")
        text = render_prometheus(registry)
        assert text == render_prometheus(registry)
        assert text.index("repro_a") < text.index("repro_b")

    def test_empty_window_renders_nan_quantiles(self):
        registry = MetricsRegistry()
        registry.window("lat")  # created, never observed
        text = render_prometheus(registry)
        assert 'repro_lat{quantile="0.5"} NaN' in text
        assert "repro_lat_count 0" in text


# -- SLO tracking ----------------------------------------------------------


class TestSLOTracker:
    def test_validation(self):
        with pytest.raises(ValidationError):
            SLOTracker(latency_target_s=0.0)
        with pytest.raises(ValidationError):
            SLOTracker(latency_fraction=1.0)
        with pytest.raises(ValidationError):
            SLOTracker(error_rate_target=0.0)
        with pytest.raises(ValidationError):
            SLOTracker(unhealthy_burn=1.0)

    def test_latency_burn_math(self):
        slo = SLOTracker(
            latency_target_s=0.1, latency_fraction=0.9, error_rate_target=0.01
        )
        for _ in range(8):
            slo.record(0.01)
        for _ in range(2):
            slo.record(0.5)
        # 20% over target / 10% allowed = burn 2.0.
        assert slo.latency_burn == pytest.approx(2.0)
        snap = slo.snapshot()
        assert snap["over_target_fraction"] == pytest.approx(0.2)
        assert snap["latency_burn"] == pytest.approx(2.0)
        assert snap["window_requests"] == 10

    def test_error_burn_math(self):
        slo = SLOTracker(error_rate_target=0.1)
        for i in range(10):
            slo.record(0.001, error=i < 3)
        assert slo.error_burn == pytest.approx(3.0)
        assert slo.snapshot()["rolling_error_rate"] == pytest.approx(0.3)

    def test_reasons_ladder(self):
        slo = SLOTracker(
            latency_target_s=0.1,
            latency_fraction=0.9,
            error_rate_target=0.1,
            unhealthy_burn=5.0,
        )
        assert slo.reasons() == []
        # All requests over target: latency burn 1/0.1 = 10 >= 5.
        for _ in range(10):
            slo.record(0.5, error=True)
        codes = {r.code: r.severity for r in slo.reasons()}
        assert codes["slo_latency_burn"] == "unhealthy"
        assert codes["slo_error_burn"] == "unhealthy"

    def test_empty_tracker_snapshot(self):
        snap = SLOTracker().snapshot()
        assert snap["rolling_p99_s"] is None
        assert snap["latency_burn"] == 0.0
        assert snap["error_burn"] == 0.0


# -- typed health ----------------------------------------------------------


class TestHealthReport:
    def test_reason_severity_validated(self):
        with pytest.raises(ValidationError):
            HealthReason(code="x", severity="on-fire", detail="nope")

    def test_worst_severity_wins(self):
        degraded = HealthReason("a", "degraded", "d")
        unhealthy = HealthReason("b", "unhealthy", "u")
        assert HealthReport.from_reasons([]).status == "healthy"
        assert HealthReport.from_reasons([degraded]).status == "degraded"
        report = HealthReport.from_reasons([degraded, unhealthy])
        assert report.status == "unhealthy"
        assert not report.ok
        assert HealthReport.from_reasons([degraded]).ok

    def test_to_dict_is_json_friendly(self):
        report = HealthReport.from_reasons(
            [HealthReason("queue_saturation", "degraded", "80% full")]
        )
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["status"] == "degraded"
        assert payload["reasons"][0]["code"] == "queue_saturation"


# -- the exposition server -------------------------------------------------


class TestTelemetryServer:
    def test_port_zero_binds_unique_ports(self):
        registry = MetricsRegistry()
        with TelemetryServer(registry) as a, TelemetryServer(registry) as b:
            assert a.port != 0 and b.port != 0
            assert a.port != b.port

    def test_endpoints(self):
        registry = MetricsRegistry()
        registry.counter("serve.completed", 5)
        registry.observe_window("serve.request_latency_seconds", 0.02)
        with TelemetryServer(registry) as server:
            status, text = _fetch(f"{server.url}/metrics")
            assert status == 200
            assert "repro_serve_completed 5" in text
            status, body = _fetch(f"{server.url}/metrics.json")
            assert status == 200
            assert json.loads(body) == json.loads(
                json.dumps(registry.snapshot())
            )
            status, body = _fetch(f"{server.url}/healthz")
            assert status == 200
            assert json.loads(body) == {"status": "healthy", "reasons": []}
            status, _body = _fetch(f"{server.url}/nope")
            assert status == 404

    def test_healthz_503_when_unhealthy(self):
        report = HealthReport.from_reasons(
            [HealthReason("breaker_open", "unhealthy", "open")]
        )
        with TelemetryServer(MetricsRegistry(), health_fn=lambda: report) as s:
            status, body = _fetch(f"{s.url}/healthz")
            assert status == 503
            assert json.loads(body)["status"] == "unhealthy"

    def test_health_fn_exception_yields_500(self):
        def broken():
            raise RuntimeError("boom")

        with TelemetryServer(MetricsRegistry(), health_fn=broken) as server:
            status, body = _fetch(f"{server.url}/healthz")
            assert status == 500
            assert "RuntimeError" in body

    def test_close_is_deterministic_and_idempotent(self):
        server = TelemetryServer(MetricsRegistry()).start()
        url = server.url
        server.close()
        server.close()  # idempotent
        with pytest.raises(urllib.error.URLError):
            urllib.request.urlopen(f"{url}/metrics", timeout=1)
        with pytest.raises(ValidationError):
            server.start()


# -- live service integration (the acceptance path) ------------------------


class TestLiveServiceTelemetry:
    def _requests(self, classifier, n=48, seed=21):
        rng = np.random.default_rng(seed)
        dataset = classifier._dataset
        rows = rng.integers(0, dataset.n_series, size=n)
        return dataset.X[rows] + 0.05 * rng.normal(
            size=(n, dataset.series_length)
        )

    def test_live_metrics_and_healthz_during_load(self, frozen_classifier):
        from repro.serve import InferenceService, ServeConfig

        registry = MetricsRegistry()
        slo = SLOTracker(latency_target_s=5.0, error_rate_target=0.5)
        X = self._requests(frozen_classifier)
        config = ServeConfig(queue_depth=len(X), max_batch=8)
        with InferenceService(
            frozen_classifier, config, metrics=registry, slo=slo
        ) as service:
            with TelemetryServer(
                registry, health_fn=service.health
            ) as server:
                # Enqueue the whole load, then poll the live endpoints
                # while the worker drains it — the acceptance fetch.
                futures = [service.submit(row) for row in X]
                status, mid_text = _fetch(f"{server.url}/metrics")
                assert status == 200
                assert "repro_serve_submitted" in mid_text
                for future in futures:
                    future.result(timeout=30)
                status, text = _fetch(f"{server.url}/metrics")
                assert status == 200
                assert f"repro_serve_completed {len(X)}" in text
                assert "repro_serve_request_latency_seconds_count" in text
                status, body = _fetch(f"{server.url}/healthz")
                assert status == 200
                assert json.loads(body)["status"] in ("healthy", "degraded")
            stats = service.stats()
        snap = registry.snapshot()
        assert snap["counters"]["serve.completed"] == stats["completed"]
        assert snap["windows"]["serve.request_latency_seconds"]["count"] == len(X)
        assert snap["windows"]["serve.batch_size"]["count"] >= 1
        assert snap["windows"]["serve.admission_wait_seconds"]["count"] == len(X)
        assert "serve.breaker_state" in snap["gauges"]
        assert stats["slo"]["window_requests"] == len(X)

    def test_uninstrumented_path_is_bit_identical(self, frozen_classifier):
        from repro.serve import InferenceService, ServeConfig

        X = self._requests(frozen_classifier, n=24, seed=5)
        config = ServeConfig(queue_depth=len(X), max_batch=8)
        with InferenceService(frozen_classifier, config) as bare:
            plain = [label for label, _err in bare.predict_many(X)]
        registry = MetricsRegistry()
        with InferenceService(
            frozen_classifier, config, metrics=registry, slo=SLOTracker()
        ) as instrumented:
            measured = [label for label, _err in instrumented.predict_many(X)]
        assert plain == measured
        assert registry.snapshot()["counters"]["serve.completed"] == len(X)

    def test_service_health_reflects_breaker(self, frozen_classifier):
        from repro.distributed.faults import FaultPlan
        from repro.serve import InferenceService, ServeConfig

        config = ServeConfig(
            queue_depth=12, max_batch=2, breaker_reset_s=60.0
        )
        X = self._requests(frozen_classifier, n=12, seed=9)
        with InferenceService(
            frozen_classifier,
            config,
            fault_plan=FaultPlan(crash_rate=1.0, seed=3),
            metrics=MetricsRegistry(),
        ) as service:
            service.predict_many(X)
            report = service.health()
        codes = {r.code for r in report.reasons}
        assert report.status == "unhealthy"
        assert "breaker_open" in codes or "service_stopped" in codes


# -- campaign instrumentation ---------------------------------------------


class TestCampaignTelemetry:
    SPEC = None  # built lazily: campaign imports are heavier

    @staticmethod
    def _spec():
        from repro.campaign import CampaignSpec

        return CampaignSpec(
            datasets=("CBF",),
            methods=("1NN-ED", "BOP"),
            scenarios=("clean",),
            seed=7,
            name="telemetry",
        )

    @staticmethod
    def _worker(cell):
        return {
            "accuracy": 0.5,
            "completed": True,
            "discovery_seconds": 0.0,
            "fit_seconds": 0.01,
        }

    def test_cells_done_counters_and_window(self, tmp_path):
        from repro.campaign import CampaignRunner

        registry = MetricsRegistry()
        runner = CampaignRunner(
            self._spec(), tmp_path / "c", worker_fn=self._worker,
            metrics=registry,
        )
        runner.run()
        snap = registry.snapshot()
        assert snap["counters"]["campaign.cells_done"] == 2
        assert "campaign.cells_failed" not in snap["counters"]
        assert snap["windows"]["campaign.cell_seconds"]["count"] == 2

    def test_failed_and_retried_counters(self, tmp_path):
        from repro.campaign import CampaignRunner

        def flaky(cell):
            raise ValueError("synthetic cell crash")

        registry = MetricsRegistry()
        runner = CampaignRunner(
            self._spec(), tmp_path / "c", worker_fn=flaky,
            retries=1, metrics=registry,
        )
        runner.run()
        counters = registry.snapshot()["counters"]
        assert counters["campaign.cells_failed"] == 2
        assert counters["campaign.cells_retried"] == 2
        assert counters["campaign.retries"] == 2
        assert "campaign.cells_done" not in counters


# -- the CLI faces ---------------------------------------------------------


class TestObsTopCLI:
    def test_render_frame_sections(self):
        from repro.cli import _render_top_frame

        registry = MetricsRegistry()
        registry.counter("serve.completed", 4)
        registry.gauge("serve.queue_depth", 2)
        registry.observe_window("serve.request_latency_seconds", 0.02)
        health = HealthReport.from_reasons(
            [HealthReason("queue_saturation", "degraded", "80% full")]
        ).to_dict()
        frame = _render_top_frame(registry.snapshot(), health)
        assert "health: degraded" in frame
        assert "queue_saturation" in frame
        assert "latency windows" in frame
        assert "serve.completed" in frame
        assert "serve.queue_depth" in frame

    def test_render_frame_empty(self):
        from repro.cli import _render_top_frame

        assert "no metrics recorded yet" in _render_top_frame({}, None)

    def test_top_against_live_server(self, capsys):
        from repro.cli import main

        registry = MetricsRegistry()
        registry.counter("serve.completed", 9)
        with TelemetryServer(registry) as server:
            code = main(
                ["obs", "top", "--url", server.url, "--iterations", "1"]
            )
        assert code == 0
        out = capsys.readouterr().out
        assert "health: healthy" in out
        assert "serve.completed" in out

    def test_top_needs_exactly_one_source(self, capsys):
        from repro.cli import main

        assert main(["obs", "top"]) == 1
        assert (
            main(["obs", "top", "--url", "http://x", "--path", "y"]) == 1
        )

    def test_top_unreachable_server_fails_cleanly(self, capsys):
        from repro.cli import main

        registry = MetricsRegistry()
        server = TelemetryServer(registry).start()
        url = server.url
        server.close()
        assert main(["obs", "top", "--url", url]) == 1


class TestBenchDiffCLI:
    @staticmethod
    def _write_history(path, entries):
        with path.open("w", encoding="utf-8") as fh:
            for entry in entries:
                fh.write(json.dumps(entry) + "\n")

    @staticmethod
    def _entry(p99, throughput, ts):
        return {
            "kind": "serve",
            "machine": "m1",
            "git_sha": "deadbeef",
            "timestamp": ts,
            "metrics": {
                "steady.p99_latency_s": p99,
                "steady.series_per_second": throughput,
            },
        }

    def test_injected_regression_exits_nonzero(self, tmp_path, capsys):
        from repro.cli import main

        history = tmp_path / "BENCH_history.jsonl"
        # p99 doubled between runs: a latency regression.
        self._write_history(
            history, [self._entry(0.01, 100.0, 1.0), self._entry(0.02, 100.0, 2.0)]
        )
        code = main(
            [
                "obs", "bench-diff",
                "--history", str(history),
                "--machine", "m1",
                "--bench-dir", str(tmp_path),
                "--threshold", "0.25",
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "steady.p99_latency_s" in out

    def test_clean_history_exits_zero(self, tmp_path, capsys):
        from repro.cli import main

        history = tmp_path / "BENCH_history.jsonl"
        self._write_history(
            history, [self._entry(0.01, 100.0, 1.0), self._entry(0.011, 99.0, 2.0)]
        )
        code = main(
            [
                "obs", "bench-diff",
                "--history", str(history),
                "--machine", "m1",
                "--bench-dir", str(tmp_path),
            ]
        )
        assert code == 0
        assert "no regressions" in capsys.readouterr().out

    def test_throughput_drop_is_a_regression(self, tmp_path, capsys):
        from repro.cli import main

        history = tmp_path / "BENCH_history.jsonl"
        # Higher-is-better metric halves; latency flat.
        self._write_history(
            history, [self._entry(0.01, 100.0, 1.0), self._entry(0.01, 40.0, 2.0)]
        )
        code = main(
            [
                "obs", "bench-diff",
                "--history", str(history),
                "--machine", "m1",
                "--bench-dir", str(tmp_path),
            ]
        )
        assert code == 1
        assert "steady.series_per_second" in capsys.readouterr().out

    def test_invalid_threshold_exits_two(self, tmp_path, capsys):
        from repro.cli import main

        history = tmp_path / "BENCH_history.jsonl"
        self._write_history(history, [self._entry(0.01, 100.0, 1.0)])
        code = main(
            [
                "obs", "bench-diff",
                "--history", str(history),
                "--machine", "m1",
                "--threshold", "-1",
            ]
        )
        assert code == 2

    def test_bench_file_fallback_baseline(self, tmp_path, capsys):
        from repro.cli import main

        history = tmp_path / "BENCH_history.jsonl"
        self._write_history(history, [self._entry(0.03, 100.0, 2.0)])
        bench = tmp_path / "BENCH_serve.json"
        bench.write_text(
            json.dumps(
                {
                    "m1": {
                        "steady": {
                            "p99_latency_s": 0.01,
                            "series_per_second": 100.0,
                        }
                    }
                }
            ),
            encoding="utf-8",
        )
        code = main(
            [
                "obs", "bench-diff",
                "--history", str(history),
                "--machine", "m1",
                "--bench-dir", str(tmp_path),
            ]
        )
        assert code == 1  # 3x the committed p99 baseline
        assert "bench-diff" in capsys.readouterr().out


class TestHistoryLedger:
    def test_append_and_load_round_trip(self, tmp_path):
        from repro.benchlib.history import append_history, load_history

        path = tmp_path / "BENCH_history.jsonl"
        record = {"steady": {"p99_latency_s": 0.02, "series_per_second": 50.0}}
        entry = append_history("serve", "m1", record, path, timestamp=123.0)
        assert entry["metrics"]["steady.p99_latency_s"] == 0.02
        assert entry["timestamp"] == 123.0
        assert entry["git_sha"]
        loaded = load_history(path)
        assert loaded == [entry]

    def test_load_skips_malformed_lines(self, tmp_path):
        from repro.benchlib.history import append_history, load_history

        path = tmp_path / "BENCH_history.jsonl"
        append_history("serve", "m1", {"steady": {"p99_latency_s": 0.02}}, path)
        with path.open("a", encoding="utf-8") as fh:
            fh.write('{"kind": "serve", "machi\n')  # interrupted append
        assert len(load_history(path)) == 1

    def test_unknown_kind_rejected(self, tmp_path):
        from repro.benchlib.history import headline_metrics

        with pytest.raises(ValidationError):
            headline_metrics("nope", {})

    def test_direction_heuristic(self):
        from repro.benchlib.history import lower_is_better

        assert lower_is_better("steady.p99_latency_s")
        assert lower_is_better("obs.overhead.counters")
        assert not lower_is_better("steady.series_per_second")
        assert not lower_is_better("spectra.cross_run_hit_rate")
