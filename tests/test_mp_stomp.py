"""Tests for repro.matrixprofile.stomp: STOMP joins vs brute-force MASS."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.matrixprofile.mass import mass
from repro.matrixprofile.stomp import ab_join, default_exclusion, stomp_self_join


def _brute_self_join(t: np.ndarray, window: int, exclusion: int) -> np.ndarray:
    n_out = t.size - window + 1
    values = np.empty(n_out)
    for i in range(n_out):
        row = mass(t[i : i + window], t).copy()
        lo, hi = max(0, i - exclusion), min(n_out, i + exclusion + 1)
        row[lo:hi] = np.inf
        values[i] = row.min()
    return values


class TestDefaultExclusion:
    def test_quarter_window(self):
        assert default_exclusion(16) == 4
        assert default_exclusion(17) == 5

    def test_minimum_one(self):
        assert default_exclusion(1) == 1


class TestSelfJoin:
    def test_matches_brute_force(self, rng):
        t = rng.normal(size=150)
        mp = stomp_self_join(t, 20)
        brute = _brute_self_join(t, 20, default_exclusion(20))
        assert np.allclose(mp.values, brute, atol=1e-5)

    def test_planted_motif_found(self, rng):
        t = rng.normal(size=300)
        pattern = np.sin(np.linspace(0, 2 * np.pi, 30)) * 4
        t[40:70] += pattern
        t[200:230] += pattern
        mp = stomp_self_join(t, 30)
        pos, _val = mp.motif()
        assert min(abs(pos - 40), abs(pos - 200)) <= 3

    def test_raw_distances(self, rng):
        t = rng.normal(size=100)
        mp = stomp_self_join(t, 10, normalized=False)
        i = 5
        row = np.array(
            [np.sqrt(np.sum((t[i : i + 10] - t[j : j + 10]) ** 2)) for j in range(91)]
        )
        excl = default_exclusion(10)
        row[max(0, i - excl) : i + excl + 1] = np.inf
        assert mp.values[5] == pytest.approx(row.min(), abs=1e-6)

    def test_valid_mask_excludes_windows(self, rng):
        t = rng.normal(size=80)
        mask = np.ones(71, dtype=bool)
        mask[10:20] = False
        mp = stomp_self_join(t, 10, valid_mask=mask)
        assert np.all(np.isinf(mp.values[10:20]))
        assert not np.any(np.isin(mp.indices[np.isfinite(mp.values)], np.arange(10, 20)))

    def test_groups_restrict_to_other_groups(self, rng):
        t = rng.normal(size=60)
        groups = np.repeat([0, 1], [26, 25])
        mp = stomp_self_join(t, 10, groups=groups, exclusion=1)
        finite = np.isfinite(mp.values)
        for i in np.flatnonzero(finite):
            assert groups[mp.indices[i]] != groups[i]

    def test_wrong_mask_shape_rejected(self, rng):
        with pytest.raises(ValidationError):
            stomp_self_join(rng.normal(size=50), 10, valid_mask=np.ones(5, dtype=bool))

    def test_wrong_groups_shape_rejected(self, rng):
        with pytest.raises(ValidationError):
            stomp_self_join(rng.normal(size=50), 10, groups=np.zeros(5, dtype=int))


class TestABJoin:
    def test_matches_brute_force(self, rng):
        a = rng.normal(size=90)
        b = rng.normal(size=120)
        profile = ab_join(a, b, 15)
        for i in (0, 5, 40, 75):
            assert profile.values[i] == pytest.approx(
                mass(a[i : i + 15], b).min(), abs=1e-5
            )

    def test_no_exclusion_zone(self, rng):
        a = rng.normal(size=50)
        profile = ab_join(a, a, 10)
        # Every window matches itself exactly in the other series.
        assert np.allclose(profile.values, 0.0, atol=1e-5)

    def test_shared_pattern_detected(self, rng):
        a = rng.normal(size=100)
        b = rng.normal(size=100)
        pattern = np.sin(np.linspace(0, 2 * np.pi, 20)) * 5
        a[30:50] += pattern
        b[60:80] += pattern
        profile = ab_join(a, b, 20)
        assert profile.values[30] < np.median(profile.values[np.isfinite(profile.values)])

    def test_masks_respected(self, rng):
        a = rng.normal(size=60)
        b = rng.normal(size=60)
        mask_a = np.ones(41, dtype=bool)
        mask_a[:10] = False
        profile = ab_join(a, b, 20, valid_mask_a=mask_a)
        assert np.all(np.isinf(profile.values[:10]))

    def test_raw_mode_matches_brute(self, rng):
        a = rng.normal(size=40)
        b = rng.normal(size=50)
        profile = ab_join(a, b, 8, normalized=False)
        brute = min(np.sqrt(np.sum((a[3:11] - b[j : j + 8]) ** 2)) for j in range(43))
        assert profile.values[3] == pytest.approx(brute, abs=1e-6)
