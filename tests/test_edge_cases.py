"""Edge-case and failure-injection tests across module boundaries.

Each test targets a boundary condition a production user will eventually
hit: NaN inputs, single-instance classes, extreme window sizes, degenerate
candidate pools, constant series.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import IPSConfig
from repro.core.pipeline import IPS, IPSClassifier
from repro.datasets.generators import make_planted_dataset
from repro.exceptions import LengthError, ValidationError
from repro.filters.dabf import DABF
from repro.instanceprofile.candidates import CandidatePool, generate_candidates
from repro.matrixprofile.stomp import stomp_self_join
from repro.ts.concat import concatenate_series
from repro.ts.distance import distance_profile
from repro.ts.series import Dataset
from repro.types import Candidate, CandidateKind


class TestNaNInjection:
    def test_dataset_rejects_nan(self):
        X = np.zeros((2, 10))
        X[0, 3] = np.nan
        with pytest.raises(ValidationError):
            Dataset(X=X, y=[0, 1])

    def test_dataset_rejects_inf(self):
        X = np.zeros((2, 10))
        X[1, 0] = np.inf
        with pytest.raises(ValidationError):
            Dataset(X=X, y=[0, 1])


class TestConstantSeries:
    def test_profile_of_constant_series(self):
        """All-flat series: z-normalized windows are all zero vectors."""
        mp = stomp_self_join(np.full(60, 5.0), 10)
        finite = mp.values[np.isfinite(mp.values)]
        assert np.allclose(finite, 0.0)

    def test_pipeline_survives_one_constant_instance(self):
        ds = make_planted_dataset(n_classes=2, n_instances=12, length=60, seed=0)
        X = ds.X.copy()
        X[0] = 3.0  # one flat instance
        flat = Dataset(X=X, y=ds.classes_[ds.y])
        result = IPS(
            IPSConfig(q_n=4, q_s=3, k=2, length_ratios=(0.2,), seed=0)
        ).discover(flat)
        assert result.shapelets

    def test_constant_dataset_classification_degenerates_gracefully(self):
        X = np.ones((8, 40))
        ds = Dataset(X=X, y=[0, 0, 0, 0, 1, 1, 1, 1])
        clf = IPSClassifier(IPSConfig(q_n=3, q_s=2, k=1, length_ratios=(0.25,), seed=0))
        clf.fit_dataset(ds)  # must not crash
        predictions = clf.predict(X)
        assert predictions.shape == (8,)


class TestSmallClasses:
    def test_single_instance_per_class(self):
        rng = np.random.default_rng(0)
        ds = Dataset(X=rng.normal(size=(2, 50)), y=[0, 1])
        result = IPS(
            IPSConfig(q_n=3, q_s=2, k=1, length_ratios=(0.2,), seed=0)
        ).discover(ds)
        assert {s.label for s in result.shapelets} == {0, 1}

    def test_imbalanced_classes(self):
        full = make_planted_dataset(n_classes=2, n_instances=20, length=60, seed=2)
        rows = np.concatenate(
            [full.class_indices(0)[:9], full.class_indices(1)[:2]]
        )
        imbalanced = full.subset(rows)
        clf = IPSClassifier(IPSConfig(q_n=4, q_s=3, k=2, length_ratios=(0.2,), seed=0))
        clf.fit_dataset(imbalanced)
        assert len(clf.shapelets_) >= 2


class TestExtremeWindows:
    def test_window_equals_series_length(self):
        rng = np.random.default_rng(0)
        t = rng.normal(size=30)
        mp = stomp_self_join(t, 30)
        # Single window, excluded against itself: no finite value.
        assert not np.any(np.isfinite(mp.values))

    def test_window_one(self):
        rng = np.random.default_rng(0)
        profile = distance_profile(np.array([0.5]), rng.normal(size=20))
        assert profile.shape == (20,)

    def test_concat_window_larger_than_instance(self):
        cs = concatenate_series([np.ones(5), np.ones(5)])
        mask = cs.valid_window_mask(6)
        assert not mask.any()

    def test_locate_rejects_oversized_window(self):
        cs = concatenate_series([np.ones(5)])
        with pytest.raises(LengthError):
            cs.locate(0, 6)


class TestDegeneratePools:
    def test_dabf_single_candidate_per_class(self, rng):
        pool = CandidatePool()
        for label in (0, 1):
            pool.add(
                Candidate(
                    values=rng.normal(size=10) + label * 50,
                    label=label,
                    kind=CandidateKind.MOTIF,
                )
            )
        dabf = DABF.build(pool, seed=0)
        pruned, report = dabf.prune(pool)
        # Degenerate sigma: only exact matches count as close; far classes
        # keep their candidates.
        assert report.n_removed == 0

    def test_k_exceeds_pool_size(self):
        ds = make_planted_dataset(n_classes=2, n_instances=8, length=50, seed=3)
        config = IPSConfig(q_n=2, q_s=2, k=50, length_ratios=(0.2,), seed=0)
        result = IPS(config).discover(ds)
        # Fewer shapelets than k, but at least one per class.
        assert {s.label for s in result.shapelets} == {0, 1}
        assert len(result.shapelets) <= 2 * 50

    def test_generate_candidates_q_s_one_uses_pairs(self):
        """Q_S=1 is bumped to 2 so the cross-instance IP is defined."""
        ds = make_planted_dataset(n_classes=2, n_instances=8, length=50, seed=4)
        pool = generate_candidates(ds, q_n=2, q_s=1, lengths=[10], seed=0)
        assert len(pool) > 0


class TestLabelHandling:
    def test_negative_labels(self):
        full = make_planted_dataset(n_classes=2, n_instances=16, length=50, seed=5)
        y = np.where(full.y == 0, -5, 5)
        clf = IPSClassifier(IPSConfig(q_n=4, q_s=3, k=2, length_ratios=(0.2,), seed=0))
        clf.fit(full.X, y)
        assert set(np.unique(clf.predict(full.X))).issubset({-5, 5})

    def test_noncontiguous_labels(self):
        full = make_planted_dataset(n_classes=3, n_instances=18, length=50, seed=6)
        y = np.array([100, 205, 310])[full.y]
        clf = IPSClassifier(IPSConfig(q_n=4, q_s=3, k=1, length_ratios=(0.2,), seed=0))
        clf.fit(full.X, y)
        assert set(np.unique(clf.predict(full.X))).issubset({100, 205, 310})
