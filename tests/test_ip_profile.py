"""Tests for repro.instanceprofile.profile: Def. 8/9 semantics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.instanceprofile.profile import instance_profile
from repro.matrixprofile.mass import mass
from repro.ts.concat import concatenate_series


class TestInstanceProfile:
    def test_junction_windows_masked(self, rng):
        sample = concatenate_series([rng.normal(size=40), rng.normal(size=40)])
        ip = instance_profile(sample, 10)
        mask = sample.valid_window_mask(10)
        assert np.all(np.isinf(ip.values[~mask]))

    def test_nearest_neighbour_is_cross_instance(self, rng):
        """Def. 9: the neighbour must come from a different instance."""
        sample = concatenate_series([rng.normal(size=50), rng.normal(size=50)])
        ip = instance_profile(sample, 12)
        finite = np.flatnonzero(np.isfinite(ip.values))
        for pos in finite:
            own = sample.instance_of_position(pos)
            neighbour = sample.instance_of_position(int(ip.profile.indices[pos]))
            assert neighbour != own

    def test_repeated_pattern_across_instances_is_motif(self, rng):
        a = rng.normal(size=60)
        b = rng.normal(size=60)
        pattern = np.sin(np.linspace(0, 2 * np.pi, 15)) * 4
        a[10:25] += pattern
        b[30:45] += pattern
        sample = concatenate_series([a, b])
        ip = instance_profile(sample, 15)
        pos, _val = ip.profile.motif()
        instance, offset = ip.locate(pos)
        # The motif window must overlap the planted pattern's region.
        planted_start = 10 if instance == 0 else 30
        assert instance in (0, 1)
        assert planted_start - 14 < offset < planted_start + 15

    def test_matches_brute_force_cross_instance(self, rng):
        a = rng.normal(size=30)
        b = rng.normal(size=30)
        sample = concatenate_series([a, b])
        window = 8
        ip = instance_profile(sample, window)
        # Brute force: window in instance A vs all windows of B.
        for start in (0, 5, 15):
            query = a[start : start + window]
            expected = mass(query, b).min()
            assert ip.values[start] == pytest.approx(expected, abs=1e-5)

    def test_subsequence_accessor(self, rng):
        sample = concatenate_series([rng.normal(size=30), rng.normal(size=30)])
        ip = instance_profile(sample, 6)
        sub = ip.subsequence(3)
        assert np.array_equal(sub, sample.values[3:9])

    def test_len(self, rng):
        sample = concatenate_series([rng.normal(size=20), rng.normal(size=20)])
        ip = instance_profile(sample, 5)
        assert len(ip) == 36
