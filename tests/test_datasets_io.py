"""Tests for repro.datasets.io: UCR file round-tripping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.generators import make_planted_dataset
from repro.datasets.io import load_ucr_directory, read_ucr_file, write_ucr_file
from repro.exceptions import ValidationError


class TestRoundTrip:
    def test_write_then_read(self, tmp_path):
        ds = make_planted_dataset(n_classes=3, n_instances=9, length=40, seed=0)
        path = tmp_path / "Toy_TRAIN.tsv"
        write_ucr_file(ds, path)
        loaded = read_ucr_file(path)
        assert loaded.n_series == 9
        assert loaded.series_length == 40
        assert np.allclose(loaded.X, ds.X, atol=1e-8)
        assert np.array_equal(loaded.y, ds.y)

    def test_original_labels_preserved(self, tmp_path):
        from repro.ts.series import Dataset

        ds = Dataset(X=np.random.default_rng(0).normal(size=(4, 8)), y=[-1, -1, 7, 7])
        path = tmp_path / "labels.tsv"
        write_ucr_file(ds, path)
        loaded = read_ucr_file(path)
        assert loaded.classes_.tolist() == [-1, 7]


class TestReadFormats:
    def test_comma_separated_accepted(self, tmp_path):
        path = tmp_path / "old.csv"
        path.write_text("1,0.5,0.6,0.7\n2,1.5,1.6,1.7\n")
        ds = read_ucr_file(path)
        assert ds.n_series == 2
        assert ds.series_length == 3

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "gaps.tsv"
        path.write_text("1\t0.5\t0.6\n\n2\t1.5\t1.6\n")
        assert read_ucr_file(path).n_series == 2

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ValidationError):
            read_ucr_file(tmp_path / "nope.tsv")

    def test_unequal_lengths_rejected(self, tmp_path):
        path = tmp_path / "ragged.tsv"
        path.write_text("1\t0.5\t0.6\n2\t1.5\n")
        with pytest.raises(ValidationError):
            read_ucr_file(path)

    def test_non_numeric_rejected(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("1\tx\ty\n")
        with pytest.raises(ValidationError):
            read_ucr_file(path)

    def test_fractional_label_rejected(self, tmp_path):
        path = tmp_path / "frac.tsv"
        path.write_text("1.5\t0.1\t0.2\n")
        with pytest.raises(ValidationError):
            read_ucr_file(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.tsv"
        path.write_text("")
        with pytest.raises(ValidationError):
            read_ucr_file(path)


class TestDirectoryLayout:
    def test_archive_layout(self, tmp_path):
        ds = make_planted_dataset(n_classes=2, n_instances=8, length=30, seed=1)
        write_ucr_file(ds, tmp_path / "Planted" / "Planted_TRAIN.tsv")
        write_ucr_file(ds, tmp_path / "Planted" / "Planted_TEST.tsv")
        data = load_ucr_directory(tmp_path, "Planted")
        assert data.train.n_series == 8
        assert data.profile.generator == "file"

    def test_known_name_attaches_registry_profile(self, tmp_path):
        ds = make_planted_dataset(n_classes=2, n_instances=6, length=24, seed=2)
        write_ucr_file(ds, tmp_path / "ItalyPowerDemand" / "ItalyPowerDemand_TRAIN.tsv")
        write_ucr_file(ds, tmp_path / "ItalyPowerDemand" / "ItalyPowerDemand_TEST.tsv")
        data = load_ucr_directory(tmp_path, "ItalyPowerDemand")
        assert data.profile.category == "Sensor"

    def test_length_mismatch_rejected(self, tmp_path):
        a = make_planted_dataset(n_classes=2, n_instances=4, length=24, seed=0)
        b = make_planted_dataset(n_classes=2, n_instances=4, length=30, seed=0)
        write_ucr_file(a, tmp_path / "Bad" / "Bad_TRAIN.tsv")
        write_ucr_file(b, tmp_path / "Bad" / "Bad_TEST.tsv")
        with pytest.raises(ValidationError):
            load_ucr_directory(tmp_path, "Bad")
