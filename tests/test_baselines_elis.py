"""Tests for repro.baselines.elis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.elis import ELIS
from repro.baselines.learning_shapelets import LearningShapelets
from repro.datasets.generators import make_planted_dataset
from repro.exceptions import ValidationError
from repro.ts.series import Dataset


@pytest.fixture(scope="module")
def planted():
    full = make_planted_dataset(n_classes=2, n_instances=40, length=70, seed=23)
    train = Dataset(X=full.X[:16], y=full.classes_[full.y[:16]], name="train")
    test = Dataset(X=full.X[16:], y=full.classes_[full.y[16:]], name="test")
    return train, test


class TestELIS:
    def test_learns_planted_patterns(self, planted):
        train, test = planted
        model = ELIS(k_per_class=3, epochs=200, seed=0).fit_dataset(train)
        assert model.score(test.X, test.classes_[test.y]) > 0.6

    def test_seeding_produces_class_blocks(self, planted):
        train, _test = planted
        model = ELIS(k_per_class=2, epochs=5, seed=0)
        rng = np.random.default_rng(0)
        length = max(4, int(round(model.length_ratio * train.series_length)))
        seeds = model._init_shapelets(train, length, rng)  # noqa: SLF001
        assert seeds.shape == (2 * train.n_classes, length)

    def test_seeds_come_from_training_windows(self, planted):
        """Before learning, every seed is an actual training subsequence
        (unlike LTS's k-means centroids)."""
        train, _test = planted
        model = ELIS(k_per_class=2, epochs=5, seed=0)
        rng = np.random.default_rng(0)
        length = max(4, int(round(model.length_ratio * train.series_length)))
        seeds = model._init_shapelets(train, length, rng)  # noqa: SLF001
        windows = np.lib.stride_tricks.sliding_window_view(train.X, length, axis=1)
        flat = windows.reshape(-1, length)
        for seed_values in seeds:
            gaps = np.abs(flat - seed_values).max(axis=1)
            assert gaps.min() < 1e-12

    def test_interface_matches_lts(self, planted):
        train, _test = planted
        model = ELIS(k_per_class=2, epochs=10, seed=0).fit_dataset(train)
        assert isinstance(model, LearningShapelets)
        assert len(model.shapelets_) == 4
        assert model.discovery_seconds_ > 0.0

    def test_bad_params_rejected(self):
        with pytest.raises(ValidationError):
            ELIS(sax_segments=1)
        with pytest.raises(ValidationError):
            ELIS(stride_fraction=0.0)

    def test_runner_integration(self, planted):
        from repro.benchlib.runners import make_method

        model = make_method("ELIS", k=2, seed=0, epochs=20)
        train, test = planted
        model.fit_dataset(train)
        accuracy = model.score(test.X, test.classes_[test.y])
        assert 0.0 <= accuracy <= 1.0
