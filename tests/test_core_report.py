"""Tests for repro.core.report."""

from __future__ import annotations

import pytest

from repro.core.config import IPSConfig
from repro.core.pipeline import IPS
from repro.core.report import describe_discovery
from repro.datasets.generators import make_planted_dataset
from repro.exceptions import ValidationError
from repro.types import DiscoveryResult


@pytest.fixture(scope="module")
def result():
    dataset = make_planted_dataset(n_classes=2, n_instances=12, length=60, seed=5)
    config = IPSConfig(q_n=4, q_s=3, k=2, length_ratios=(0.2, 0.3), seed=0)
    return IPS(config).discover(dataset)


class TestDescribeDiscovery:
    def test_contains_all_sections(self, result):
        text = describe_discovery(result)
        assert "discovery summary" in text
        assert "generated" in text
        assert "selected shapelets" in text
        assert "utility range" in text

    def test_per_class_pruning_table(self, result):
        text = describe_discovery(result)
        assert "DABF pruning per class" in text

    def test_one_row_per_shapelet(self, result):
        text = describe_discovery(result)
        # Each shapelet contributes a sparkline row with its utility.
        table_start = text.index("selected shapelets")
        table = text[table_start:]
        data_lines = [
            line for line in table.splitlines()
            if line and line[0].isdigit()
        ]
        assert len(data_lines) == len(result.shapelets)

    def test_spark_width_respected(self, result):
        narrow = describe_discovery(result, spark_width=8)
        wide = describe_discovery(result, spark_width=40)
        assert len(wide) > len(narrow)

    def test_empty_result_rejected(self):
        with pytest.raises(ValidationError):
            describe_discovery(DiscoveryResult(shapelets=[]))
