"""Tests for repro.benchlib: tables, timing, runners."""

from __future__ import annotations

import time

import pytest

from repro.benchlib.runners import evaluate_method, make_method, method_names
from repro.benchlib.tables import format_table, print_table
from repro.benchlib.timing import timed
from repro.datasets.loader import load_dataset
from repro.exceptions import ValidationError


class TestFormatTable:
    def test_alignment_and_precision(self):
        text = format_table(
            ["name", "acc"], [["IPS", 0.98765], ["BASE", 0.5]], precision=3
        )
        lines = text.splitlines()
        assert "0.988" in text
        assert lines[0].startswith("name")
        assert set(lines[1]) == {"-"}

    def test_title(self):
        text = format_table(["a"], [[1]], title="Table IV")
        assert text.splitlines()[0] == "Table IV"

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            format_table(["a", "b"], [[1]])

    def test_empty_headers_rejected(self):
        with pytest.raises(ValidationError):
            format_table([], [])

    def test_print_table_smoke(self, capsys):
        print_table(["x"], [[1.0]])
        assert "1.00" in capsys.readouterr().out


class TestTimed:
    def test_returns_result_and_elapsed(self):
        result, elapsed = timed(lambda: (time.sleep(0.01), 42)[1])
        assert result == 42
        assert elapsed >= 0.01


class TestRunners:
    def test_method_names_cover_runnables(self):
        names = method_names()
        for expected in ("IPS", "BASE", "BSPCOVER", "ELIS", "TSF", "BOP"):
            assert expected in names

    def test_make_unknown_rejected(self):
        with pytest.raises(ValidationError):
            make_method("COTE")  # published-only, not runnable

    def test_every_runnable_method_instantiates(self):
        for name in method_names():
            assert make_method(name, k=2, seed=0) is not None

    @pytest.mark.parametrize("name", ["IPS", "BASE", "1NN-ED"])
    def test_evaluate_method_end_to_end(self, name):
        data = load_dataset(
            "ItalyPowerDemand", seed=0, max_train=16, max_test=20
        )
        kwargs = {"q_n": 4} if name == "IPS" else {}
        result = evaluate_method(name, data, k=3, seed=0, **kwargs)
        assert result.method == name
        assert result.dataset == "ItalyPowerDemand"
        assert 0.0 <= result.accuracy <= 1.0
        assert result.total_seconds > 0.0

    @pytest.mark.parametrize(
        "name", ["BSPCOVER", "FS", "LTS", "ELIS", "ST", "SD", "RotF", "TSF", "BOP", "1NN-DTW"]
    )
    def test_remaining_methods_evaluate(self, name):
        data = load_dataset(
            "ItalyPowerDemand", seed=0, max_train=12, max_test=12
        )
        kwargs = {}
        if name in ("LTS", "ELIS"):
            kwargs["epochs"] = 15
        if name == "ST":
            kwargs["max_candidates"] = 40
        result = evaluate_method(name, data, k=2, seed=0, **kwargs)
        assert 0.0 <= result.accuracy <= 1.0
