"""Tests for repro.ts.concat: junction bookkeeping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import LengthError, ValidationError
from repro.ts.concat import ConcatenatedSeries, concatenate_series


class TestConcatenateSeries:
    def test_values_and_boundaries(self):
        cs = concatenate_series([np.arange(3.0), np.arange(4.0), np.arange(2.0)])
        assert len(cs) == 9
        assert cs.boundaries.tolist() == [0, 3, 7, 9]
        assert cs.n_instances == 3

    def test_matrix_input(self, rng):
        X = rng.normal(size=(4, 10))
        cs = concatenate_series(X)
        assert len(cs) == 40
        assert np.array_equal(cs.values[10:20], X[1])

    def test_custom_instance_ids(self):
        cs = concatenate_series([np.ones(5), np.ones(5)], instance_ids=[7, 3])
        assert cs.instance_ids.tolist() == [7, 3]

    def test_rejects_empty_list(self):
        with pytest.raises(ValidationError):
            concatenate_series([])

    def test_rejects_empty_instance(self):
        with pytest.raises(ValidationError):
            concatenate_series([np.ones(3), np.array([])])


class TestValidWindowMask:
    def test_counts_per_instance(self):
        cs = concatenate_series([np.ones(10), np.ones(10)])
        mask = cs.valid_window_mask(4)
        # Each instance has 7 valid starts; 3 junction windows invalid.
        assert mask.sum() == 14
        assert mask.size == 17

    def test_junction_positions_masked(self):
        cs = concatenate_series([np.ones(5), np.ones(5)])
        mask = cs.valid_window_mask(3)
        # Starts 3 and 4 straddle the junction at position 5.
        assert not mask[3]
        assert not mask[4]
        assert mask[2]
        assert mask[5]

    def test_window_one_all_valid(self):
        cs = concatenate_series([np.ones(4), np.ones(4)])
        assert cs.valid_window_mask(1).all()


class TestLocate:
    def test_round_trip(self):
        cs = concatenate_series([np.arange(6.0), np.arange(8.0)], instance_ids=[10, 20])
        instance, offset = cs.locate(7, 3)
        assert instance == 20
        assert offset == 1

    def test_rejects_junction_window(self):
        cs = concatenate_series([np.ones(5), np.ones(5)])
        with pytest.raises(LengthError):
            cs.locate(4, 3)

    def test_rejects_out_of_range(self):
        cs = concatenate_series([np.ones(5)])
        with pytest.raises(LengthError):
            cs.locate(4, 3)

    def test_instance_of_position(self):
        cs = concatenate_series([np.ones(5), np.ones(5)])
        assert cs.instance_of_position(0) == 0
        assert cs.instance_of_position(4) == 0
        assert cs.instance_of_position(5) == 1

    def test_bad_boundaries_rejected(self):
        with pytest.raises(ValidationError):
            ConcatenatedSeries(values=np.ones(5), boundaries=np.array([1, 5]))
