"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.generators import make_planted_dataset
from repro.ts.series import Dataset


@pytest.fixture()
def rng() -> np.random.Generator:
    """Fresh deterministic generator per test."""
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def tiny_two_class() -> Dataset:
    """A small 2-class planted dataset (shared, read-only)."""
    return make_planted_dataset(
        n_classes=2, n_instances=16, length=80, seed=7, name="tiny2"
    )


@pytest.fixture(scope="session")
def tiny_three_class() -> Dataset:
    """A small 3-class planted dataset (shared, read-only)."""
    return make_planted_dataset(
        n_classes=3, n_instances=18, length=90, seed=11, name="tiny3"
    )


@pytest.fixture()
def random_series(rng: np.random.Generator) -> np.ndarray:
    """A 200-point Gaussian series."""
    return rng.normal(size=200)
