"""Shared fixtures for the test suite."""

from __future__ import annotations

import signal

import numpy as np
import pytest

from repro.datasets.generators import make_planted_dataset
from repro.ts.series import Dataset


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    """Per-test wall-clock guard for ``@pytest.mark.timeout_guard(seconds)``.

    Pure stdlib: arms a SIGALRM interval timer around the test body so a
    test that genuinely hangs (the fault-injection suite provokes hangs
    on purpose) fails with a TimeoutError instead of wedging the run. On
    platforms without SIGALRM the marker is a no-op.
    """
    marker = item.get_closest_marker("timeout_guard")
    if marker is None or not hasattr(signal, "SIGALRM"):
        yield
        return
    seconds = float(marker.args[0]) if marker.args else 30.0

    def _on_timeout(signum, frame):
        raise TimeoutError(
            f"test exceeded its {seconds:g}s timeout_guard budget"
        )

    previous = signal.signal(signal.SIGALRM, _on_timeout)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def pytest_collection_modifyitems(items):
    """File-prefix markers applied automatically, so ``pytest -m serve``
    / ``pytest -m campaign`` (and their ``make verify-*`` targets) select
    whole suites without per-file bookkeeping."""
    for item in items:
        if item.fspath.basename.startswith("test_serve"):
            item.add_marker(pytest.mark.serve)
        if item.fspath.basename.startswith("test_campaign"):
            item.add_marker(pytest.mark.campaign)
        if item.fspath.basename.startswith(
            ("test_streaming", "test_serve_streaming")
        ):
            item.add_marker(pytest.mark.streaming)
        if item.fspath.basename.startswith(("test_obs", "test_telemetry")):
            item.add_marker(pytest.mark.obs)


@pytest.fixture()
def rng() -> np.random.Generator:
    """Fresh deterministic generator per test."""
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def tiny_two_class() -> Dataset:
    """A small 2-class planted dataset (shared, read-only)."""
    return make_planted_dataset(
        n_classes=2, n_instances=16, length=80, seed=7, name="tiny2"
    )


@pytest.fixture(scope="session")
def tiny_three_class() -> Dataset:
    """A small 3-class planted dataset (shared, read-only)."""
    return make_planted_dataset(
        n_classes=3, n_instances=18, length=90, seed=11, name="tiny3"
    )


@pytest.fixture()
def random_series(rng: np.random.Generator) -> np.ndarray:
    """A 200-point Gaussian series."""
    return rng.normal(size=200)


@pytest.fixture(scope="session")
def frozen_classifier(tiny_two_class):
    """A fitted classifier shared by the serving suites (read-only)."""
    from repro.core.config import IPSConfig
    from repro.core.pipeline import IPSClassifier

    return IPSClassifier(
        IPSConfig(k=3, q_n=6, q_s=3, seed=7)
    ).fit_dataset(tiny_two_class)
