"""Tests for repro.baselines.quality and sax."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.quality import best_information_gain, entropy
from repro.baselines.sax import gaussian_breakpoints, paa, sax_word, sax_words_of_windows
from repro.exceptions import ValidationError


class TestEntropy:
    def test_pure_is_zero(self):
        assert entropy(np.array([1, 1, 1])) == 0.0

    def test_balanced_binary_is_one_bit(self):
        assert entropy(np.array([0, 1, 0, 1])) == pytest.approx(1.0)

    def test_uniform_k_classes(self):
        assert entropy(np.arange(8)) == pytest.approx(3.0)

    def test_empty_is_zero(self):
        assert entropy(np.array([])) == 0.0


class TestBestInformationGain:
    def test_perfect_split(self):
        distances = np.array([0.1, 0.2, 0.9, 1.0])
        labels = np.array([0, 0, 1, 1])
        gain, threshold = best_information_gain(distances, labels)
        assert gain == pytest.approx(1.0)
        assert 0.2 < threshold < 0.9

    def test_no_split_possible_on_identical_distances(self):
        gain, _threshold = best_information_gain(
            np.full(6, 0.5), np.array([0, 0, 0, 1, 1, 1])
        )
        assert gain == 0.0

    def test_single_class_zero_gain(self):
        gain, _ = best_information_gain(np.arange(5.0), np.zeros(5, dtype=int))
        assert gain == 0.0

    def test_gain_bounded_by_parent_entropy(self, rng):
        distances = rng.normal(size=30)
        labels = rng.integers(0, 3, size=30)
        gain, _ = best_information_gain(distances, labels)
        assert 0.0 <= gain <= entropy(labels) + 1e-12

    def test_interleaved_worse_than_separated(self, rng):
        labels = np.array([0, 1] * 10)
        interleaved = np.arange(20.0)
        separated = np.concatenate([np.arange(10.0), np.arange(10.0) + 100])
        g_inter, _ = best_information_gain(interleaved, labels)
        g_sep, _ = best_information_gain(
            separated, np.repeat([0, 1], 10)
        )
        assert g_sep > g_inter

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            best_information_gain(np.arange(3.0), np.zeros(4, dtype=int))


class TestPAA:
    def test_exact_segment_means(self):
        x = np.array([1.0, 1.0, 5.0, 5.0])
        assert np.allclose(paa(x, 2), [1.0, 5.0])

    def test_uneven_split(self):
        out = paa(np.arange(10.0), 3)
        assert out.shape == (3,)

    def test_segments_clamped_to_length(self):
        out = paa(np.arange(3.0), 10)
        assert out.shape == (3,)

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            paa(np.array([]), 2)


class TestSAX:
    def test_breakpoints_equiprobable(self):
        bp = gaussian_breakpoints(4)
        assert bp.shape == (3,)
        assert bp[1] == pytest.approx(0.0, abs=1e-12)

    def test_word_symbols_in_alphabet(self, rng):
        word = sax_word(rng.normal(size=32), n_segments=8, alphabet_size=4)
        assert len(word) == 8
        assert all(0 <= s < 4 for s in word)

    def test_similar_series_same_word(self, rng):
        x = np.sin(np.linspace(0, np.pi, 40))
        y = x + 0.01 * rng.normal(size=40)
        assert sax_word(x) == sax_word(y)

    def test_opposite_trends_differ(self):
        up = np.linspace(-1, 1, 32)
        down = np.linspace(1, -1, 32)
        assert sax_word(up) != sax_word(down)

    def test_words_of_windows_count(self, rng):
        words = sax_words_of_windows(rng.normal(size=50), window=10)
        assert len(words) == 41

    def test_rejects_tiny_alphabet(self):
        with pytest.raises(ValidationError):
            gaussian_breakpoints(1)
