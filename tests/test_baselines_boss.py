"""Tests for repro.baselines.sfa and boss."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.boss import BOSS, boss_distance
from repro.baselines.sfa import SFA, fourier_coefficients
from repro.datasets.generators import make_planted_dataset
from repro.exceptions import NotFittedError, ValidationError
from repro.ts.series import Dataset


@pytest.fixture(scope="module")
def planted():
    full = make_planted_dataset(n_classes=2, n_instances=40, length=72, seed=53)
    train = Dataset(X=full.X[:18], y=full.classes_[full.y[:18]], name="train")
    test = Dataset(X=full.X[18:], y=full.classes_[full.y[18:]], name="test")
    return train, test


class TestFourierCoefficients:
    def test_length_and_determinism(self, rng):
        x = rng.normal(size=32)
        features = fourier_coefficients(x, 8)
        assert features.shape == (8,)
        assert np.array_equal(features, fourier_coefficients(x, 8))

    def test_amplitude_invariance_with_norm(self, rng):
        x = rng.normal(size=32)
        assert np.allclose(
            fourier_coefficients(x, 6), fourier_coefficients(3.0 * x + 5.0, 6),
            atol=1e-9,
        )

    def test_sine_concentrates_energy(self):
        t = np.linspace(0, 2 * np.pi, 64, endpoint=False)
        features = fourier_coefficients(np.sin(t), 8)
        # A pure 1-cycle sine puts its energy in the first feature pair.
        energy_first = features[0] ** 2 + features[1] ** 2
        assert energy_first > 0.9 * np.sum(features**2)

    def test_pads_when_short(self):
        features = fourier_coefficients(np.arange(4.0), 10)
        assert features.shape == (10,)

    def test_rejects_scalar(self):
        with pytest.raises(ValidationError):
            fourier_coefficients(np.array([1.0]), 4)


class TestSFA:
    def test_words_in_alphabet(self, rng):
        subsequences = rng.normal(size=(50, 24))
        sfa = SFA(n_coefficients=6, alphabet_size=4).fit(subsequences)
        word = sfa.word(rng.normal(size=24))
        assert len(word) == 6
        assert all(0 <= s < 4 for s in word)

    def test_equi_depth_bins_balanced(self, rng):
        """MCB equi-depth: training symbols are roughly uniform."""
        subsequences = rng.normal(size=(400, 24))
        sfa = SFA(n_coefficients=4, alphabet_size=4).fit(subsequences)
        symbols = np.array([sfa.word(row)[0] for row in subsequences])
        counts = np.bincount(symbols, minlength=4)
        assert counts.min() > 50  # ~100 each, allow slack

    def test_similar_inputs_same_word(self, rng):
        subsequences = rng.normal(size=(80, 24))
        sfa = SFA(n_coefficients=4, alphabet_size=3).fit(subsequences)
        x = rng.normal(size=24)
        assert sfa.word(x) == sfa.word(x + 1e-9)

    def test_unfitted_rejected(self, rng):
        with pytest.raises(NotFittedError):
            SFA().word(rng.normal(size=16))

    def test_bad_params_rejected(self):
        with pytest.raises(ValidationError):
            SFA(n_coefficients=0)
        with pytest.raises(ValidationError):
            SFA(alphabet_size=1)


class TestBossDistance:
    def test_zero_for_identical(self):
        h = {(1, 2): 3.0, (0, 1): 1.0}
        assert boss_distance(h, dict(h)) == 0.0

    def test_asymmetric(self):
        a = {(1,): 2.0}
        b = {(1,): 2.0, (2,): 5.0}
        # a->b ignores b's extra word; b->a does not.
        assert boss_distance(a, b) == 0.0
        assert boss_distance(b, a) == 25.0


class TestBOSS:
    def test_learns_planted_data(self, planted):
        train, test = planted
        model = BOSS(seed=0).fit_dataset(train)
        accuracy = model.score(test.X, test.classes_[test.y])
        assert accuracy > 0.6

    def test_deterministic(self, planted):
        train, _test = planted
        a = BOSS(seed=4).fit_dataset(train).predict(train.X)
        b = BOSS(seed=4).fit_dataset(train).predict(train.X)
        assert np.array_equal(a, b)

    def test_original_labels_returned(self, planted):
        train, test = planted
        model = BOSS(seed=0).fit_dataset(train)
        predictions = model.predict(test.X[:5])
        assert set(np.unique(predictions)).issubset(set(train.classes_))

    def test_unfitted_rejected(self, rng):
        with pytest.raises(NotFittedError):
            BOSS().predict(rng.normal(size=(1, 40)))

    def test_bad_params_rejected(self):
        with pytest.raises(ValidationError):
            BOSS(window_ratio=0.0)
        with pytest.raises(ValidationError):
            BOSS(max_fit_windows=1)
