"""Tests for repro.datasets: generators, special sets, registry, loader."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.generators import PATTERN_LIBRARY, make_planted_dataset
from repro.datasets.loader import load_dataset
from repro.datasets.registry import REGISTRY, TABLE_DATASETS, get_profile
from repro.datasets.special import (
    make_cbf,
    make_ecg,
    make_gun_point,
    make_italy_power,
    make_synthetic_control,
    make_two_patterns,
)
from repro.exceptions import DatasetError, ValidationError


class TestPlantedGenerator:
    def test_shape_and_classes(self):
        ds = make_planted_dataset(n_classes=3, n_instances=12, length=64, seed=0)
        assert ds.X.shape == (12, 64)
        assert ds.n_classes == 3
        assert np.bincount(ds.y).min() == 4

    def test_deterministic(self):
        a = make_planted_dataset(n_classes=2, n_instances=8, length=50, seed=9)
        b = make_planted_dataset(n_classes=2, n_instances=8, length=50, seed=9)
        assert np.array_equal(a.X, b.X)
        assert np.array_equal(a.y, b.y)

    def test_different_seeds_differ(self):
        a = make_planted_dataset(n_classes=2, n_instances=8, length=50, seed=1)
        b = make_planted_dataset(n_classes=2, n_instances=8, length=50, seed=2)
        assert not np.array_equal(a.X, b.X)

    def test_planted_patterns_create_cross_instance_similarity(self):
        """Within a class, instances share a close subsequence (the plant);
        across classes they do not — the property shapelet methods need."""
        from repro.ts.distance import subsequence_distance

        ds = make_planted_dataset(n_classes=2, n_instances=20, length=80, seed=4)
        zero = ds.series_of_class(0)
        one = ds.series_of_class(1)
        within = np.mean(
            [subsequence_distance(zero[i, 20:60], zero[j]) for i in range(4) for j in range(4, 8)]
        )
        across = np.mean(
            [subsequence_distance(zero[i, 20:60], one[j]) for i in range(4) for j in range(4)]
        )
        # Not every window contains the pattern, so compare full-instance
        # best-window distances aggregated over several pairs.
        assert within < across * 1.5

    def test_pattern_library_distinct_shapes(self):
        shapes = [fn(32) for fn in PATTERN_LIBRARY]
        for i in range(len(shapes)):
            for j in range(i + 1, len(shapes)):
                assert not np.allclose(shapes[i], shapes[j])

    def test_many_classes_cycle_library(self):
        ds = make_planted_dataset(n_classes=12, n_instances=24, length=64, seed=0)
        assert ds.n_classes == 12

    def test_rejects_bad_params(self):
        with pytest.raises(ValidationError):
            make_planted_dataset(n_classes=0, n_instances=5, length=64)
        with pytest.raises(ValidationError):
            make_planted_dataset(n_classes=5, n_instances=3, length=64)
        with pytest.raises(ValidationError):
            make_planted_dataset(n_classes=2, n_instances=5, length=8)


class TestSpecialGenerators:
    def test_cbf_three_classes(self):
        ds = make_cbf(30, length=128, seed=0)
        assert ds.n_classes == 3
        assert ds.X.shape == (30, 128)

    def test_cbf_bell_rises_funnel_falls(self):
        ds = make_cbf(60, length=128, seed=1)
        for label, slope_sign in ((1, 1.0), (2, -1.0)):
            rows = ds.series_of_class(label)
            # Average the support region trend across instances.
            mid = rows[:, 30:100]
            slopes = [np.polyfit(np.arange(mid.shape[1]), r, 1)[0] for r in mid]
            assert np.sign(np.median(slopes)) == slope_sign

    def test_two_patterns_four_classes(self):
        ds = make_two_patterns(40, seed=0)
        assert ds.n_classes == 4

    def test_synthetic_control_six_regimes(self):
        ds = make_synthetic_control(36, seed=0)
        assert ds.n_classes == 6
        # Increasing trend class has positive slope, decreasing negative.
        up = ds.series_of_class(2)
        down = ds.series_of_class(3)
        assert np.polyfit(np.arange(60), up.mean(axis=0), 1)[0] > 0.1
        assert np.polyfit(np.arange(60), down.mean(axis=0), 1)[0] < -0.1

    def test_italy_power_winter_has_morning_bump(self):
        ds = make_italy_power(60, length=24, seed=0)
        summer = ds.series_of_class(0).mean(axis=0)
        winter = ds.series_of_class(1).mean(axis=0)
        morning = slice(7, 11)
        assert winter[morning].mean() > summer[morning].mean() + 0.2

    def test_ecg_classes_differ_in_qrs(self):
        ds = make_ecg(40, length=96, n_classes=2, seed=0)
        normal = ds.series_of_class(0).mean(axis=0)
        wide = ds.series_of_class(1).mean(axis=0)
        # The wide-QRS class has more energy around the R peak flanks.
        flank = slice(30, 36)
        assert wide[flank].mean() > normal[flank].mean()

    def test_ecg_class_count_bounds(self):
        with pytest.raises(ValidationError):
            make_ecg(10, n_classes=6)

    def test_gun_point_dip_distinguishes(self):
        ds = make_gun_point(40, length=150, seed=0)
        gun = ds.series_of_class(0).mean(axis=0)
        point = ds.series_of_class(1).mean(axis=0)
        early = slice(15, 25)
        assert gun[early].mean() < point[early].mean()


class TestRegistry:
    def test_47_datasets(self):
        assert len(REGISTRY) == 47  # 46 of Tables IV/VI + MoteStrain

    def test_table_datasets_excludes_motestrain(self):
        assert len(TABLE_DATASETS) == 46
        assert "MoteStrain" not in TABLE_DATASETS

    def test_true_ucr_metadata_spot_checks(self):
        arrow = get_profile("ArrowHead")
        assert (arrow.n_classes, arrow.n_train, arrow.n_test, arrow.length) == (
            3, 36, 175, 251,
        )
        italy = get_profile("ItalyPowerDemand")
        assert (italy.n_classes, italy.length) == (2, 24)
        nif = get_profile("NonInvasiveFatalECGThorax1")
        assert nif.n_classes == 42

    def test_unknown_name_rejected(self):
        with pytest.raises(DatasetError):
            get_profile("NotADataset")

    def test_categories_cover_paper_types(self):
        categories = {p.category for p in REGISTRY.values()}
        assert {"Image", "Sensor", "Simulated", "Motion"} <= categories


class TestLoader:
    def test_default_sizes_match_profile(self):
        data = load_dataset("ItalyPowerDemand", seed=0)
        profile = get_profile("ItalyPowerDemand")
        total = data.train.n_series + data.test.n_series
        assert total == profile.n_train + profile.n_test
        assert data.train.series_length == profile.length

    def test_caps_applied(self):
        data = load_dataset("ArrowHead", seed=0, max_train=12, max_test=20, max_length=60)
        assert data.train.n_series <= 14  # 12 requested, may round up slightly
        assert data.train.series_length == 60
        assert data.train.n_classes == 3  # classes never reduced

    def test_min_two_per_class_in_train(self):
        data = load_dataset("Beef", seed=0, max_train=2, max_test=5, max_length=50)
        counts = np.bincount(data.train.y, minlength=data.train.n_classes)
        assert counts.min() >= 1
        assert data.train.n_series >= 2 * 5  # clamped to 2 per class

    def test_deterministic_and_cached(self):
        a = load_dataset("GunPoint", seed=3, max_train=10, max_test=10)
        b = load_dataset("GunPoint", seed=3, max_train=10, max_test=10)
        assert a is b  # cache hit
        assert np.array_equal(a.train.X, b.train.X)

    def test_different_seed_different_data(self):
        a = load_dataset("GunPoint", seed=1, max_train=10, max_test=10)
        b = load_dataset("GunPoint", seed=2, max_train=10, max_test=10)
        assert not np.array_equal(a.train.X, b.train.X)

    def test_train_test_prototypes_shared(self):
        """Test instances must be classifiable from train (same generator pool)."""
        from repro.classify.neighbors import OneNearestNeighbor

        data = load_dataset("ShapeletSim", seed=0, max_train=20, max_test=40, max_length=150)
        model = OneNearestNeighbor("euclidean").fit(data.train.X, data.train.y)
        internal_test_y = data.test.y
        # Labels must align across the two Dataset objects (same classes_).
        assert np.array_equal(data.train.classes_, data.test.classes_)
        assert model.score(data.test.X, internal_test_y) > 0.5

    def test_every_registered_dataset_loads_small(self):
        for name in list(REGISTRY)[:10]:
            data = load_dataset(name, seed=0, max_train=8, max_test=8, max_length=40)
            assert data.train.n_series > 0
            assert data.test.n_series > 0
