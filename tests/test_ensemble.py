"""Tests for repro.ensemble: the COTE-IPS-style weighted-vote ensemble."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import IPSConfig
from repro.datasets.generators import make_planted_dataset
from repro.ensemble import CoteIpsEnsemble
from repro.exceptions import NotFittedError, ValidationError
from repro.ts.series import Dataset


@pytest.fixture(scope="module")
def split():
    full = make_planted_dataset(n_classes=2, n_instances=40, length=60, seed=17)
    train = Dataset(X=full.X[:20], y=full.classes_[full.y[:20]], name="train")
    test_X = full.X[20:]
    test_y = full.classes_[full.y[20:]]
    return train, test_X, test_y


@pytest.fixture(scope="module")
def fitted(split):
    train, _X, _y = split
    config = IPSConfig(k=3, q_n=6, q_s=3, length_ratios=(0.2, 0.35), seed=0)
    return CoteIpsEnsemble(config, cv_splits=2).fit_dataset(train)


class TestCoteIpsEnsemble:
    def test_members_weighted_by_cv(self, fitted):
        assert fitted.weights_ is not None
        assert set(fitted.weights_) == {"IPS", "1NN-ED", "1NN-DTW", "RotF"}
        assert all(0.0 < w <= 1.0 for w in fitted.weights_.values())

    def test_accuracy_above_chance(self, fitted, split):
        _train, test_X, test_y = split
        assert fitted.score(test_X, test_y) > 0.6

    def test_ensemble_at_least_close_to_best_member(self, fitted, split):
        """The weighted vote should not fall far below its best member."""
        _train, test_X, test_y = split
        ensemble_acc = fitted.score(test_X, test_y)
        member_accs = []
        for member in fitted._members.values():  # noqa: SLF001
            preds = fitted._classes[np.asarray(member.predict(test_X))]  # noqa: SLF001
            member_accs.append(float(np.mean(preds == test_y)))
        assert ensemble_acc >= max(member_accs) - 0.25

    def test_predict_original_labels(self, split):
        train, test_X, _test_y = split
        relabeled = Dataset(X=train.X, y=np.where(train.y == 0, 30, 40))
        config = IPSConfig(k=2, q_n=4, q_s=3, length_ratios=(0.25,), seed=0)
        model = CoteIpsEnsemble(config, cv_splits=2).fit_dataset(relabeled)
        preds = model.predict(test_X)
        assert set(np.unique(preds)).issubset({30, 40})

    def test_custom_members(self, split):
        train, test_X, test_y = split
        from repro.classify.neighbors import OneNearestNeighbor

        class _Member:
            def fit(self, X, y):
                self._m = OneNearestNeighbor("euclidean").fit(X, y)
                return self

            def predict(self, X):
                return self._m.predict(X)

        model = CoteIpsEnsemble(members={"only-1nn": _Member()}, cv_splits=2)
        model.fit_dataset(train)
        assert set(model.weights_) == {"only-1nn"}
        assert 0.0 <= model.score(test_X, test_y) <= 1.0

    def test_unfitted_rejected(self):
        with pytest.raises(NotFittedError):
            CoteIpsEnsemble().predict(np.zeros((1, 30)))

    def test_bad_cv_splits_rejected(self):
        with pytest.raises(ValidationError):
            CoteIpsEnsemble(cv_splits=1)
