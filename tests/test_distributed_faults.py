"""Fault-tolerance layer tests: injection, retries, quorum, checkpoints.

The fault-injection harness doubles as the proof that determinism is
preserved under failure: the acceptance tests assert that a run with
injected crashes and retries enabled produces a candidate pool
bit-identical to the zero-fault run with the same master seed.
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import dataclass

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import FaultToleranceConfig, IPSConfig
from repro.datasets.generators import make_planted_dataset
from repro.distributed import (
    CheckpointStore,
    DistributedIPS,
    DroppedResult,
    FaultInjector,
    FaultPlan,
    RetryingExecutor,
    SerialExecutor,
    unit_key,
)
from repro.distributed.discovery import validate_unit_result
from repro.exceptions import (
    CheckpointError,
    PartialResultError,
    QuorumError,
    UnitTimeoutError,
    ValidationError,
    WorkerCrashError,
)
from repro.types import Candidate, CandidateKind

pytestmark = pytest.mark.robustness


@dataclass(frozen=True)
class FakeUnit:
    """Minimal stand-in for a WorkUnit (the executors only need ``seed``)."""

    seed: int
    payload: int = 0


def make_candidate(value: float = 1.0, label: int = 0) -> Candidate:
    return Candidate(
        values=np.full(4, value),
        label=label,
        kind=CandidateKind.MOTIF,
        source_instance=0,
        start=0,
        sample_id=0,
    )


def echo_worker(unit: FakeUnit) -> list[Candidate]:
    return [make_candidate(value=float(unit.payload))]


@pytest.fixture(scope="module")
def planted():
    return make_planted_dataset(n_classes=2, n_instances=16, length=80, seed=7)


@pytest.fixture(scope="module")
def config():
    return IPSConfig(q_n=6, q_s=3, k=3, length_ratios=(0.15, 0.3), seed=0)


def config_with(base: IPSConfig, **ft_kwargs) -> IPSConfig:
    defaults = dict(max_retries=3, base_delay=0.0)
    defaults.update(ft_kwargs)
    return IPSConfig(
        q_n=base.q_n,
        q_s=base.q_s,
        k=base.k,
        length_ratios=base.length_ratios,
        seed=base.seed,
        fault_tolerance=FaultToleranceConfig(**defaults),
    )


def shapelet_pools_identical(a, b) -> bool:
    if len(a.shapelets) != len(b.shapelets):
        return False
    return all(
        np.array_equal(s1.values, s2.values) and s1.label == s2.label
        for s1, s2 in zip(a.shapelets, b.shapelets)
    )


class TestFaultPlan:
    def test_rates_validated(self):
        with pytest.raises(ValidationError):
            FaultPlan(crash_rate=1.5)
        with pytest.raises(ValidationError):
            FaultPlan(drop_rate=-0.1)
        with pytest.raises(ValidationError):
            FaultPlan(hang_seconds=-1.0)

    def test_decide_is_deterministic(self):
        plan = FaultPlan(crash_rate=0.3, nan_rate=0.3, seed=42)
        for unit_seed in (1, 99, 2**63):
            for attempt in (0, 1, 2):
                assert plan.decide(unit_seed, attempt) == plan.decide(
                    unit_seed, attempt
                )

    def test_decide_varies_with_attempt(self):
        """Faults must be transient across attempts, or retries are useless."""
        plan = FaultPlan(crash_rate=0.5, seed=0)
        fates = {
            (seed, attempt): plan.decide(seed, attempt)
            for seed in range(40)
            for attempt in range(2)
        }
        recovered = sum(
            1
            for seed in range(40)
            if fates[(seed, 0)] == "crash" and fates[(seed, 1)] is None
        )
        assert recovered > 0

    def test_rate_zero_never_fires(self):
        plan = FaultPlan(seed=3)
        assert all(plan.decide(s, 0) is None for s in range(50))

    def test_rate_one_always_fires(self):
        plan = FaultPlan(crash_rate=1.0, seed=3)
        assert all(plan.decide(s, a) == "crash" for s in range(20) for a in range(3))

    def test_slow_rate_validated(self):
        with pytest.raises(ValidationError):
            FaultPlan(slow_rate=-0.1)
        with pytest.raises(ValidationError):
            FaultPlan(slow_seconds=-1.0)

    def test_slow_delay_deterministic_and_bounded(self):
        """The jitter is a pure function of (plan seed, unit, attempt),
        bounded to [0.5x, 1.5x] of ``slow_seconds``."""
        plan = FaultPlan(slow_rate=1.0, slow_seconds=0.01, seed=3)
        delays = [
            plan.slow_delay(s, a) for s in range(20) for a in range(3)
        ]
        assert delays == [
            plan.slow_delay(s, a) for s in range(20) for a in range(3)
        ]
        assert all(0.005 <= d <= 0.015 for d in delays)
        assert len(set(delays)) > 1  # it really is jitter

    def test_appending_slow_kind_preserved_existing_decisions(self):
        """``slow`` was appended to FAULT_KINDS after campaigns already
        existed: the first five uniform draws must be unchanged (numpy
        Generator prefix property), and a plan without slow_rate must
        never decide ``slow`` — so recorded campaigns replay as before."""
        for unit_seed in (0, 7, 2**40):
            for attempt in (0, 1):
                key = [42, unit_seed & 0xFFFFFFFFFFFFFFFF, attempt]
                with_slow = np.random.default_rng(key).random(6)
                legacy = np.random.default_rng(key).random(5)
                assert np.array_equal(with_slow[:5], legacy)
        plan = FaultPlan(
            crash_rate=0.2, nan_rate=0.2, drop_rate=0.2, seed=42
        )
        decisions = {
            plan.decide(s, a) for s in range(200) for a in range(2)
        }
        assert "slow" not in decisions
        assert {"crash", "nan", "drop"} <= decisions


class TestFaultInjector:
    def test_crash_raises(self):
        injector = FaultInjector(echo_worker, FaultPlan(crash_rate=1.0))
        with pytest.raises(WorkerCrashError):
            injector(FakeUnit(seed=1))

    def test_hang_sentinel_raises_timeout(self):
        injector = FaultInjector(echo_worker, FaultPlan(hang_rate=1.0))
        with pytest.raises(UnitTimeoutError):
            injector(FakeUnit(seed=1))

    def test_nan_poisoning_detected_by_validator(self):
        injector = FaultInjector(echo_worker, FaultPlan(nan_rate=1.0))
        poisoned = injector(FakeUnit(seed=1, payload=3))
        assert all(np.all(np.isnan(c.values)) for c in poisoned)
        assert validate_unit_result(poisoned) is not None

    def test_drop_returns_marker(self):
        injector = FaultInjector(echo_worker, FaultPlan(drop_rate=1.0))
        result = injector(FakeUnit(seed=1))
        assert isinstance(result, DroppedResult)
        assert validate_unit_result(result) is not None

    def test_duplicate_doubles_payload(self):
        injector = FaultInjector(echo_worker, FaultPlan(duplicate_rate=1.0))
        result = injector(FakeUnit(seed=1, payload=2))
        assert len(result) == 2
        assert result[0] == result[1]
        assert validate_unit_result(result) is None  # dupes merge-time concern

    def test_clean_payload_passes_validation(self):
        injector = FaultInjector(echo_worker, FaultPlan())
        assert validate_unit_result(injector(FakeUnit(seed=1, payload=5))) is None

    def test_slow_delays_but_never_corrupts(self):
        """Satellite fault kind: ``slow`` adds deterministic latency and
        then computes normally — the payload is untouched."""
        plan = FaultPlan(slow_rate=1.0, slow_seconds=0.005, seed=4)
        injector = FaultInjector(echo_worker, plan)
        start = time.perf_counter()
        result = injector(FakeUnit(seed=1, payload=9))
        elapsed = time.perf_counter() - start
        assert elapsed >= plan.slow_delay(1, 0) * 0.5
        assert result == echo_worker(FakeUnit(seed=1, payload=9))
        assert validate_unit_result(result) is None


class _TransientWorker:
    """Fails (raises) for attempts below ``succeed_at``, then succeeds."""

    def __init__(self, succeed_at: int) -> None:
        self.succeed_at = succeed_at

    def for_attempt(self, attempt: int):
        if attempt < self.succeed_at:
            def _fail(unit):
                raise WorkerCrashError(f"transient failure, attempt {attempt}")
            return _fail
        return echo_worker


class _BrokenPoolExecutor:
    """Simulates a broken worker pool: every map call dies pool-level."""

    def map(self, fn, units):
        raise RuntimeError("pool is broken")


class TestRetryingExecutor:
    def test_parameters_validated(self):
        with pytest.raises(ValidationError):
            RetryingExecutor(max_retries=-1)
        with pytest.raises(ValidationError):
            RetryingExecutor(base_delay=0.5, max_delay=0.1)
        with pytest.raises(ValidationError):
            RetryingExecutor(unit_timeout=0.0)

    def test_recovers_transient_failures(self):
        executor = RetryingExecutor(max_retries=2, base_delay=0.0)
        units = [FakeUnit(seed=s, payload=s) for s in range(4)]
        outcomes = executor.map_with_outcomes(_TransientWorker(1), units)
        assert all(o.ok for o in outcomes)
        assert all(o.attempts == 2 for o in outcomes)

    def test_map_raises_partial_result_on_permanent_failure(self):
        executor = RetryingExecutor(max_retries=1, base_delay=0.0)
        with pytest.raises(PartialResultError, match="failed after 2 attempts"):
            executor.map(_TransientWorker(5), [FakeUnit(seed=1)])

    def test_outcomes_report_permanent_failures_without_raising(self):
        executor = RetryingExecutor(max_retries=1, base_delay=0.0)
        outcomes = executor.map_with_outcomes(
            _TransientWorker(5), [FakeUnit(seed=1)]
        )
        assert len(outcomes) == 1
        assert not outcomes[0].ok
        assert "transient failure" in outcomes[0].error

    def test_validation_failures_are_retried(self):
        injector = FaultInjector(echo_worker, FaultPlan(nan_rate=0.6, seed=2))
        executor = RetryingExecutor(
            max_retries=5, base_delay=0.0, validate=validate_unit_result
        )
        units = [FakeUnit(seed=s, payload=s) for s in range(10)]
        outcomes = executor.map_with_outcomes(injector, units)
        assert all(o.ok for o in outcomes)
        assert any(o.attempts > 1 for o in outcomes)
        for outcome, unit in zip(outcomes, units):
            assert np.all(outcome.value[0].values == float(unit.payload))

    def test_backoff_schedule_is_seeded_and_bounded(self):
        sleeps: list[float] = []
        executor = RetryingExecutor(
            max_retries=3,
            base_delay=0.1,
            max_delay=0.25,
            jitter=0.5,
            seed=7,
            sleep=sleeps.append,
        )
        executor.map_with_outcomes(_TransientWorker(10), [FakeUnit(seed=1)])
        assert len(sleeps) == 3  # one sleep per retry round
        assert sleeps[0] >= 0.1 and sleeps[-1] <= 0.25 * 1.5

        repeat: list[float] = []
        executor2 = RetryingExecutor(
            max_retries=3,
            base_delay=0.1,
            max_delay=0.25,
            jitter=0.5,
            seed=7,
            sleep=repeat.append,
        )
        executor2.map_with_outcomes(_TransientWorker(10), [FakeUnit(seed=1)])
        assert repeat == sleeps

    def test_zero_base_delay_never_sleeps(self):
        sleeps: list[float] = []
        executor = RetryingExecutor(
            max_retries=3, base_delay=0.0, sleep=sleeps.append
        )
        executor.map_with_outcomes(_TransientWorker(2), [FakeUnit(seed=1)])
        assert sleeps == []

    def test_degrades_to_serial_when_pool_breaks(self):
        executor = RetryingExecutor(
            inner=_BrokenPoolExecutor(), max_retries=0, base_delay=0.0
        )
        units = [FakeUnit(seed=s, payload=s) for s in range(3)]
        with pytest.warns(RuntimeWarning, match="degrading to serial"):
            values = executor.map(echo_worker, units)
        assert executor.degraded_
        assert isinstance(executor.inner, SerialExecutor)
        assert [v[0].values[0] for v in values] == [0.0, 1.0, 2.0]

    @pytest.mark.timeout_guard(30)
    def test_wall_clock_timeout_marks_unit_failed(self):
        def slow_worker(unit):
            time.sleep(0.05)
            return echo_worker(unit)

        executor = RetryingExecutor(
            max_retries=0, base_delay=0.0, unit_timeout=0.01
        )
        outcomes = executor.map_with_outcomes(slow_worker, [FakeUnit(seed=1)])
        assert not outcomes[0].ok
        assert "budget" in outcomes[0].error


class TestCheckpointStore:
    def test_roundtrip(self, tmp_path):
        store = CheckpointStore(tmp_path)
        candidates = [make_candidate(1.5, label=1), make_candidate(-2.0)]
        store.save("abc", candidates)
        assert store.has("abc")
        assert store.completed_keys() == {"abc"}
        restored = store.load("abc")
        assert restored == candidates

    def test_empty_unit_roundtrip(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("empty", [])
        assert store.load("empty") == []

    def test_missing_returns_none(self, tmp_path):
        assert CheckpointStore(tmp_path).load("nope") is None

    def test_corrupt_entry_treated_as_missing(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("abc", [make_candidate()])
        path = tmp_path / "unit_abc.npz"
        path.write_bytes(b"not an npz file")
        assert store.load("abc") is None
        assert not path.exists()  # cleaned up for recompute

    def test_manifest_guards_run_identity(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.check_manifest({"seed": 0, "q_n": 6})
        store.check_manifest({"seed": 0, "q_n": 6})  # same run: fine
        with pytest.raises(CheckpointError, match="different"):
            store.check_manifest({"seed": 1, "q_n": 6})


class TestFaultTolerantDiscovery:
    def test_crash_20pct_with_retries_bit_identical(self, planted, config):
        """Acceptance: 20% crash rate + retries == zero-fault run, bit for bit."""
        clean = DistributedIPS(config).discover(planted)
        faulty = DistributedIPS(
            config_with(config, max_retries=5),
            fault_plan=FaultPlan(crash_rate=0.2, seed=123),
        ).discover(planted)
        assert shapelet_pools_identical(clean, faulty)
        assert faulty.n_candidates_generated == clean.n_candidates_generated
        assert faulty.extra["recovered_units"] > 0
        assert faulty.extra["failed_units"] == []

    def test_quorum_unmet_raises_quorum_error(self, planted, config):
        """Acceptance: retries disabled + quorum unmet -> QuorumError."""
        with pytest.raises(QuorumError, match="quorum"):
            DistributedIPS(
                config_with(config, max_retries=0, quorum=0.9),
                fault_plan=FaultPlan(crash_rate=0.6, seed=5),
            ).discover(planted)

    def test_degraded_run_is_deterministic(self, planted, config):
        """Same seed + same fault plan => identical pool when quorum met."""
        cfg = config_with(config, max_retries=0, quorum=0.3)
        plan = FaultPlan(crash_rate=0.4, seed=9)
        first = DistributedIPS(cfg, fault_plan=plan).discover(planted)
        second = DistributedIPS(cfg, fault_plan=plan).discover(planted)
        assert first.extra["failed_units"] == second.extra["failed_units"]
        assert first.extra["failed_units"]  # the plan really lost units
        assert shapelet_pools_identical(first, second)

    def test_checkpoint_resume_recomputes_only_missing(
        self, planted, config, tmp_path
    ):
        """Acceptance: a killed run resumed from its checkpoint dir only
        recomputes the units that never completed."""
        run_dir = str(tmp_path / "run")
        crashed = DistributedIPS(
            config_with(
                config, max_retries=0, quorum=0.3, checkpoint_dir=run_dir
            ),
            fault_plan=FaultPlan(crash_rate=0.4, seed=9),
        ).discover(planted)
        lost = crashed.extra["failed_units"]
        assert lost  # the "kill" left work behind
        n_units = crashed.extra["n_work_units"]

        resumed = DistributedIPS(
            config_with(config, checkpoint_dir=run_dir)
        ).discover(planted)
        assert resumed.extra["checkpoint_hits"] == n_units - len(lost)
        assert resumed.extra["n_units_computed"] == len(lost)
        assert resumed.extra["failed_units"] == []

        clean = DistributedIPS(config).discover(planted)
        assert shapelet_pools_identical(clean, resumed)
        assert resumed.n_candidates_generated == clean.n_candidates_generated

    def test_checkpoint_rejects_foreign_run(self, planted, config, tmp_path):
        run_dir = str(tmp_path / "run")
        DistributedIPS(
            config_with(config, checkpoint_dir=run_dir)
        ).discover(planted)
        other = IPSConfig(
            q_n=config.q_n,
            q_s=config.q_s,
            k=config.k,
            length_ratios=config.length_ratios,
            seed=999,
            fault_tolerance=FaultToleranceConfig(
                base_delay=0.0, checkpoint_dir=run_dir
            ),
        )
        with pytest.raises(CheckpointError):
            DistributedIPS(other).discover(planted)

    def test_duplicated_deliveries_are_merged_away(self, planted, config):
        clean = DistributedIPS(config).discover(planted)
        duped = DistributedIPS(
            config_with(config),
            fault_plan=FaultPlan(duplicate_rate=0.5, seed=6),
        ).discover(planted)
        assert duped.extra["duplicates_dropped"] > 0
        assert duped.n_candidates_generated == clean.n_candidates_generated
        assert shapelet_pools_identical(clean, duped)

    def test_nan_and_drop_faults_recovered(self, planted, config):
        clean = DistributedIPS(config).discover(planted)
        mixed = DistributedIPS(
            config_with(config, max_retries=6),
            fault_plan=FaultPlan(nan_rate=0.2, drop_rate=0.2, seed=21),
        ).discover(planted)
        assert mixed.extra["recovered_units"] > 0
        assert shapelet_pools_identical(clean, mixed)

    def test_slow_workers_bit_identical(self, planted, config):
        """Satellite acceptance: slow faults stretch the schedule but the
        discovered pool is bit-identical to the zero-fault run — latency
        jitter must never leak into results."""
        clean = DistributedIPS(config).discover(planted)
        slowed = DistributedIPS(
            config_with(config),
            fault_plan=FaultPlan(slow_rate=0.4, slow_seconds=0.002, seed=23),
        ).discover(planted)
        assert shapelet_pools_identical(clean, slowed)
        assert slowed.n_candidates_generated == clean.n_candidates_generated
        assert slowed.extra["failed_units"] == []

    @pytest.mark.timeout_guard(60)
    def test_injected_hangs_recovered_via_sentinel(self, planted, config):
        clean = DistributedIPS(config).discover(planted)
        hung = DistributedIPS(
            config_with(config, max_retries=6),
            fault_plan=FaultPlan(hang_rate=0.3, seed=13),
        ).discover(planted)
        assert shapelet_pools_identical(clean, hung)

    @pytest.mark.timeout_guard(120)
    def test_live_hangs_caught_by_unit_timeout(self, planted, config):
        """Real sleeps exceed unit_timeout, get flagged, and retries recover."""
        clean = DistributedIPS(config).discover(planted)
        slow = DistributedIPS(
            config_with(config, max_retries=6, unit_timeout=0.02),
            fault_plan=FaultPlan(hang_rate=0.25, hang_seconds=0.05, seed=17),
        ).discover(planted)
        assert slow.extra["recovered_units"] > 0
        assert shapelet_pools_identical(clean, slow)

    def test_broken_pool_degrades_but_run_survives(self, planted, config):
        discoverer = DistributedIPS(
            config_with(config), executor=_BrokenPoolExecutor()
        )
        with pytest.warns(RuntimeWarning, match="degrading to serial"):
            result = discoverer.discover(planted)
        assert result.extra["executor_degraded"]
        clean = DistributedIPS(config).discover(planted)
        assert shapelet_pools_identical(clean, result)

    def test_legacy_fail_fast_path_still_aborts(self, planted, config):
        """Without fault_tolerance, a worker exception propagates (seed
        behaviour preserved)."""

        class _Aborting:
            def map(self, fn, units):
                raise RuntimeError("worker exploded")

        with pytest.raises(RuntimeError, match="worker exploded"):
            DistributedIPS(config, executor=_Aborting()).discover(planted)

@pytest.fixture(scope="module")
def clean_result(planted, config):
    """The uninterrupted reference run the property test compares against."""
    return DistributedIPS(config).discover(planted)


class TestCheckpointResumeProperty:
    """PR 6 satellite: for *any* crash pattern, a run killed mid-way and
    resumed from its checkpoint directory converges to a DiscoveryResult
    bit-identical to the uninterrupted run."""

    @settings(max_examples=5, deadline=None)
    @given(crash_seed=st.integers(min_value=0, max_value=2**16))
    def test_resume_after_injected_crash_bit_identical(
        self, planted, config, clean_result, crash_seed
    ):
        plan = FaultPlan(crash_rate=0.45, seed=crash_seed)
        with tempfile.TemporaryDirectory() as run_dir:
            try:
                # The "crash": retries disabled, so ~45% of units die and
                # the run ends partial (or aborts on quorum) — exactly
                # like a worker pool lost mid-campaign.
                DistributedIPS(
                    config_with(
                        config,
                        max_retries=0,
                        quorum=0.2,
                        checkpoint_dir=run_dir,
                    ),
                    fault_plan=plan,
                ).discover(planted)
            except QuorumError:
                pass  # even an aborted run leaves its completed units
            resumed = DistributedIPS(
                config_with(config, checkpoint_dir=run_dir)
            ).discover(planted)
        assert resumed.extra["failed_units"] == []
        assert shapelet_pools_identical(clean_result, resumed)
        assert (
            resumed.n_candidates_generated
            == clean_result.n_candidates_generated
        )
        assert (
            resumed.n_candidates_after_pruning
            == clean_result.n_candidates_after_pruning
        )
