"""Tests for repro.multivariate: dataset container + per-dimension IPS."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import IPSConfig
from repro.datasets.generators import make_planted_dataset
from repro.exceptions import NotFittedError, ValidationError
from repro.multivariate import MultivariateDataset, MultivariateIPSClassifier


def _make_mv(n: int = 24, n_dims: int = 3, length: int = 60, seed: int = 0):
    """Multivariate data: dimension 0 carries the class signal; the rest
    are informative-in-one-dim / pure-noise channels."""
    rng = np.random.default_rng(seed)
    signal = make_planted_dataset(n_classes=2, n_instances=n, length=length, seed=seed)
    X = np.empty((n, n_dims, length))
    X[:, 0, :] = signal.X
    second = make_planted_dataset(
        n_classes=2, n_instances=n, length=length, seed=seed + 1
    )
    # Re-sort the second generator's rows to match the first's labels.
    want = signal.y
    rows0 = list(np.flatnonzero(second.y == 0))
    rows1 = list(np.flatnonzero(second.y == 1))
    chosen = [rows0.pop() if label == 0 else rows1.pop() for label in want]
    X[:, 1, :] = second.X[chosen]
    for dim in range(2, n_dims):
        X[:, dim, :] = rng.normal(size=(n, length))
    return X, signal.classes_[signal.y]


class TestMultivariateDataset:
    def test_shape_accessors(self):
        X, y = _make_mv()
        ds = MultivariateDataset(X=X, y=y, name="mv")
        assert ds.n_instances == 24
        assert ds.n_dimensions == 3
        assert ds.series_length == 60
        assert ds.n_classes == 2

    def test_dimension_view_shares_labels(self):
        X, y = _make_mv()
        ds = MultivariateDataset(X=X, y=y)
        uni = ds.dimension(1)
        assert uni.X.shape == (24, 60)
        assert np.array_equal(uni.y, ds.y)

    def test_rejects_2d(self):
        with pytest.raises(ValidationError):
            MultivariateDataset(X=np.zeros((4, 10)), y=[0, 0, 1, 1])

    def test_rejects_nan(self):
        X = np.zeros((2, 2, 10))
        X[0, 0, 0] = np.nan
        with pytest.raises(ValidationError):
            MultivariateDataset(X=X, y=[0, 1])

    def test_dimension_out_of_range(self):
        X, y = _make_mv()
        ds = MultivariateDataset(X=X, y=y)
        with pytest.raises(ValidationError):
            ds.dimension(5)

    def test_label_remap(self):
        X, _y = _make_mv()
        ds = MultivariateDataset(X=X, y=np.repeat([5, 9], 12))
        assert set(ds.y.tolist()) == {0, 1}
        assert ds.classes_.tolist() == [5, 9]


class TestMultivariateIPSClassifier:
    @pytest.fixture(scope="class")
    def fitted(self):
        X, y = _make_mv(n=24, seed=3)
        config = IPSConfig(k=2, q_n=6, q_s=3, length_ratios=(0.2, 0.35), seed=0)
        clf = MultivariateIPSClassifier(config).fit(X[:16], y[:16])
        return clf, X[16:], y[16:]

    def test_learns_from_signal_dimension(self, fitted):
        clf, X_test, y_test = fitted
        assert clf.score(X_test, y_test) > 0.6

    def test_shapelets_per_dimension(self, fitted):
        clf, _X, _y = fitted
        assert set(clf.shapelets_per_dim_) <= {0, 1, 2}
        assert clf.n_shapelets >= 2

    def test_predict_shape_and_labels(self, fitted):
        clf, X_test, y_test = fitted
        preds = clf.predict(X_test)
        assert preds.shape == (X_test.shape[0],)
        assert set(np.unique(preds)).issubset(set(np.unique(y_test)))

    def test_rejects_2d_predict(self, fitted):
        clf, _X, _y = fitted
        with pytest.raises(ValidationError):
            clf.predict(np.zeros((4, 60)))

    def test_unfitted_rejected(self):
        clf = MultivariateIPSClassifier()
        with pytest.raises(NotFittedError):
            clf.predict(np.zeros((1, 2, 30)))
        with pytest.raises(NotFittedError):
            _ = clf.n_shapelets


class TestMultivariateGenerator:
    def test_shape_and_labels(self):
        from repro.datasets import make_multivariate_planted

        mv = make_multivariate_planted(
            n_classes=2, n_instances=12, n_dimensions=4, length=48,
            informative_dimensions=2, seed=0,
        )
        assert mv.X.shape == (12, 4, 48)
        assert mv.n_classes == 2

    def test_informative_channels_align_with_labels(self):
        """Both informative channels must be learnable with the SAME labels."""
        from repro.classify.neighbors import OneNearestNeighbor
        from repro.datasets import make_multivariate_planted
        from repro.ts.distance import subsequence_distance

        mv = make_multivariate_planted(
            n_classes=2, n_instances=24, n_dimensions=3, length=64,
            informative_dimensions=2, seed=1,
        )
        for dim in (0, 1):
            uni = mv.dimension(dim)
            zero = uni.series_of_class(0)
            one = uni.series_of_class(1)
            within = np.mean(
                [subsequence_distance(zero[i, 15:45], zero[j]) for i in range(3) for j in range(3, 6)]
            )
            across = np.mean(
                [subsequence_distance(zero[i, 15:45], one[j]) for i in range(3) for j in range(3)]
            )
            assert within < across * 1.5, dim

    def test_noise_channels_uninformative(self):
        from repro.datasets import make_multivariate_planted

        mv = make_multivariate_planted(
            n_classes=2, n_instances=20, n_dimensions=3, length=48,
            informative_dimensions=1, seed=2,
        )
        noise = mv.dimension(2)
        class_means = [noise.series_of_class(c).mean() for c in (0, 1)]
        assert abs(class_means[0] - class_means[1]) < 0.5

    def test_bad_informative_count_rejected(self):
        from repro.datasets import make_multivariate_planted
        from repro.exceptions import ValidationError

        with pytest.raises(ValidationError):
            make_multivariate_planted(
                n_classes=2, n_instances=8, n_dimensions=2, length=48,
                informative_dimensions=3,
            )

    def test_deterministic(self):
        from repro.datasets import make_multivariate_planted

        a = make_multivariate_planted(2, 8, 2, 48, seed=5)
        b = make_multivariate_planted(2, 8, 2, 48, seed=5)
        assert np.array_equal(a.X, b.X)
