"""Tests for repro.types: Candidate, Shapelet, DiscoveryResult."""

from __future__ import annotations

import numpy as np
import pytest

from repro.types import Candidate, CandidateKind, DiscoveryResult, Shapelet


def _candidate(values=(1.0, 2.0, 3.0), **kwargs) -> Candidate:
    defaults = dict(label=0, kind=CandidateKind.MOTIF)
    defaults.update(kwargs)
    return Candidate(values=np.asarray(values), **defaults)


class TestCandidate:
    def test_length(self):
        assert _candidate().length == 3
        assert len(_candidate()) == 3

    def test_values_coerced_to_float64(self):
        cand = _candidate(values=[1, 2, 3])
        assert cand.values.dtype == np.float64

    def test_rejects_2d_values(self):
        with pytest.raises(ValueError):
            Candidate(values=np.zeros((2, 2)), label=0, kind=CandidateKind.MOTIF)

    def test_rejects_empty_values(self):
        with pytest.raises(ValueError):
            Candidate(values=np.array([]), label=0, kind=CandidateKind.MOTIF)

    def test_equality_includes_values_and_provenance(self):
        a = _candidate(start=3)
        b = _candidate(start=3)
        c = _candidate(start=4)
        assert a == b
        assert a != c

    def test_hash_consistent_with_equality(self):
        assert hash(_candidate(start=3)) == hash(_candidate(start=3))

    def test_usable_in_sets(self):
        pool = {_candidate(start=1), _candidate(start=1), _candidate(start=2)}
        assert len(pool) == 2

    def test_kind_enum_round_trips_strings(self):
        assert CandidateKind("motif") is CandidateKind.MOTIF
        assert CandidateKind("discord") is CandidateKind.DISCORD


class TestShapelet:
    def test_from_candidate_carries_provenance(self):
        cand = _candidate(source_instance=5, start=9)
        shp = Shapelet.from_candidate(cand, score=0.25)
        assert shp.source_instance == 5
        assert shp.start == 9
        assert shp.score == 0.25
        assert np.array_equal(shp.values, cand.values)

    def test_replace_returns_modified_copy(self):
        shp = Shapelet(values=np.ones(4), label=1, score=0.5)
        other = shp.replace(score=0.1)
        assert other.score == 0.1
        assert shp.score == 0.5

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Shapelet(values=np.array([]), label=0)


class TestDiscoveryResult:
    def test_total_time_sums_stages(self):
        result = DiscoveryResult(
            shapelets=[],
            time_candidate_generation=1.0,
            time_pruning=2.0,
            time_selection=3.0,
        )
        assert result.total_time == pytest.approx(6.0)

    def test_pruning_rate(self):
        result = DiscoveryResult(
            shapelets=[], n_candidates_generated=100, n_candidates_after_pruning=25
        )
        assert result.pruning_rate == pytest.approx(0.75)

    def test_pruning_rate_empty_pool_is_zero(self):
        assert DiscoveryResult(shapelets=[]).pruning_rate == 0.0
