"""Hypothesis property tests for the DABF and SAX invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.sax import paa, sax_word
from repro.filters.dabf import DABF
from repro.instanceprofile.candidates import CandidatePool
from repro.types import Candidate, CandidateKind

_FLOATS = st.floats(
    min_value=-20.0, max_value=20.0, allow_nan=False, allow_infinity=False
)


def _pool_from(data: st.DataObject, n_classes: int, length: int) -> CandidatePool:
    pool = CandidatePool()
    rng = np.random.default_rng(data.draw(st.integers(0, 10_000)))
    for label in range(n_classes):
        offset = data.draw(st.floats(-5.0, 5.0))
        for i in range(data.draw(st.integers(3, 8))):
            pool.add(
                Candidate(
                    values=rng.normal(size=length) + offset,
                    label=label,
                    kind=CandidateKind.MOTIF,
                    start=i,
                )
            )
    return pool


@settings(max_examples=20, deadline=None)
@given(data=st.data())
def test_dabf_query_deterministic(data):
    pool = _pool_from(data, n_classes=2, length=10)
    dabf = DABF.build(pool, seed=0)
    query = np.random.default_rng(0).normal(size=10)
    first = dabf.per_class[0].query_zscore(query)
    second = dabf.per_class[0].query_zscore(query)
    assert first == second


@settings(max_examples=20, deadline=None)
@given(data=st.data())
def test_dabf_prune_theta_monotone(data):
    pool = _pool_from(data, n_classes=2, length=8)
    dabf = DABF.build(pool, seed=0)
    theta_small = data.draw(st.floats(0.5, 2.0))
    theta_large = theta_small + data.draw(st.floats(0.5, 4.0))
    _p1, small = dabf.prune(pool, theta=theta_small)
    _p2, large = dabf.prune(pool, theta=theta_large)
    assert large.n_removed >= small.n_removed


@settings(max_examples=20, deadline=None)
@given(data=st.data())
def test_dabf_prune_conserves_candidates(data):
    pool = _pool_from(data, n_classes=3, length=8)
    dabf = DABF.build(pool, seed=0)
    pruned, report = dabf.prune(pool)
    assert len(pruned) + report.n_removed == len(pool)
    assert report.n_kept == len(pruned)


@settings(max_examples=40, deadline=None)
@given(
    values=st.lists(_FLOATS, min_size=4, max_size=60),
    n_segments=st.integers(2, 10),
    alphabet=st.integers(2, 8),
)
def test_sax_word_contract(values, n_segments, alphabet):
    word = sax_word(np.asarray(values), n_segments=n_segments, alphabet_size=alphabet)
    assert len(word) == min(n_segments, len(values))
    assert all(0 <= symbol < alphabet for symbol in word)


@settings(max_examples=40, deadline=None)
@given(
    values=st.lists(_FLOATS, min_size=2, max_size=60),
    n_segments=st.integers(1, 12),
)
def test_paa_mean_preserved(values, n_segments):
    """PAA preserves the overall mean when segments are equal-sized."""
    arr = np.asarray(values)
    out = paa(arr, n_segments)
    assert out.size == min(n_segments, arr.size)
    if arr.size % out.size == 0:
        assert np.isclose(out.mean(), arr.mean(), atol=1e-9)


@settings(max_examples=30, deadline=None)
@given(
    values=st.lists(_FLOATS, min_size=8, max_size=40),
    shift=st.floats(-50.0, 50.0),
    scale=st.floats(0.1, 10.0),
)
def test_sax_affine_invariance(values, shift, scale):
    """SAX z-normalizes first: affine transforms give the same word."""
    arr = np.asarray(values)
    base = sax_word(arr)
    transformed = sax_word(arr * scale + shift)
    assert base == transformed
