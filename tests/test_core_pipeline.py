"""Tests for repro.core.pipeline: IPS discovery + IPSClassifier."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import IPSConfig
from repro.core.pipeline import IPS, IPSClassifier, score_with_class_fallback
from repro.core.utility import UtilityScores
from repro.datasets.generators import make_planted_dataset
from repro.exceptions import EmptyPoolError, NotFittedError, ValidationError
from repro.instanceprofile.candidates import CandidatePool
from repro.ts.series import Dataset
from repro.types import Candidate, CandidateKind


@pytest.fixture(scope="module")
def planted_split():
    train = make_planted_dataset(n_classes=2, n_instances=20, length=80, seed=21)
    test = make_planted_dataset(n_classes=2, n_instances=30, length=80, seed=21)
    # Same seed -> same prototypes; different slice below ensures overlap-free.
    full = make_planted_dataset(n_classes=2, n_instances=50, length=80, seed=21)
    train = Dataset(X=full.X[:20], y=full.classes_[full.y[:20]], name="train")
    test = Dataset(X=full.X[20:], y=full.classes_[full.y[20:]], name="test")
    return train, test


def _fast_config(**overrides) -> IPSConfig:
    defaults = dict(q_n=6, q_s=3, k=3, length_ratios=(0.15, 0.3), seed=0)
    defaults.update(overrides)
    return IPSConfig(**defaults)


class TestIPSDiscovery:
    def test_discovers_k_per_class(self, planted_split):
        train, _test = planted_split
        result = IPS(_fast_config()).discover(train)
        per_class = {}
        for shp in result.shapelets:
            per_class[shp.label] = per_class.get(shp.label, 0) + 1
        assert set(per_class) == {0, 1}
        assert all(count <= 3 for count in per_class.values())

    def test_stage_times_recorded(self, planted_split):
        train, _test = planted_split
        result = IPS(_fast_config()).discover(train)
        assert result.time_candidate_generation > 0.0
        assert result.time_pruning > 0.0
        assert result.time_selection > 0.0
        assert result.total_time == pytest.approx(
            result.time_candidate_generation
            + result.time_pruning
            + result.time_selection
        )

    def test_pruning_reduces_pool(self, planted_split):
        train, _test = planted_split
        result = IPS(_fast_config()).discover(train)
        assert result.n_candidates_after_pruning <= result.n_candidates_generated

    def test_shapelet_provenance_round_trips(self, planted_split):
        train, _test = planted_split
        result = IPS(_fast_config()).discover(train)
        for shp in result.shapelets:
            row = train.X[shp.source_instance]
            assert np.allclose(row[shp.start : shp.start + shp.length], shp.values)

    def test_deterministic(self, planted_split):
        train, _test = planted_split
        r1 = IPS(_fast_config()).discover(train)
        r2 = IPS(_fast_config()).discover(train)
        assert len(r1.shapelets) == len(r2.shapelets)
        for a, b in zip(r1.shapelets, r2.shapelets):
            assert np.array_equal(a.values, b.values)

    def test_no_dabf_arm(self, planted_split):
        train, _test = planted_split
        result = IPS(_fast_config(use_dabf=False)).discover(train)
        assert result.shapelets

    def test_no_dt_cr_arm(self, planted_split):
        train, _test = planted_split
        result = IPS(_fast_config(use_dt_cr=False)).discover(train)
        assert result.shapelets

    def test_single_class_dataset_skips_pruning(self):
        ds = make_planted_dataset(n_classes=1, n_instances=6, length=60, seed=0)
        result = IPS(_fast_config()).discover(ds)
        assert result.shapelets
        assert result.n_candidates_after_pruning == result.n_candidates_generated


def _pool_with(labels: list[int]) -> CandidatePool:
    pool = CandidatePool()
    for i, label in enumerate(labels):
        pool.add(
            Candidate(
                values=np.arange(4, dtype=float) + i,
                label=label,
                kind=CandidateKind.MOTIF,
                source_instance=i,
                start=0,
                sample_id=0,
            )
        )
    return pool


def _trivial_scores(motifs: list[Candidate]) -> UtilityScores:
    n = len(motifs)
    return UtilityScores(
        candidates=motifs, intra=np.zeros(n), inter=np.zeros(n), instance=np.zeros(n)
    )


@pytest.mark.robustness
class TestScoreWithClassFallback:
    def test_healthy_classes_score_from_pruned_pool(self):
        pool = _pool_with([0, 0, 1])
        pruned = _pool_with([0, 1])
        scored_pools = []

        def scorer(active, label):
            scored_pools.append(active)
            return _trivial_scores(active.motifs(label))

        scores = score_with_class_fallback(scorer, pruned, pool, [0, 1])
        assert set(scores) == {0, 1}
        assert all(active is pruned for active in scored_pools)

    def test_emptied_class_falls_back_to_unpruned(self):
        pool = _pool_with([0, 0, 1])
        pruned = _pool_with([0])  # class 1 lost everything

        def scorer(active, label):
            return _trivial_scores(active.motifs(label))

        with pytest.warns(RuntimeWarning, match="class 1: degraded"):
            scores = score_with_class_fallback(scorer, pruned, pool, [0, 1])
        assert len(scores[1].candidates) == 1  # recovered from `pool`
        assert len(scores[0].candidates) == 1

    def test_empty_pool_error_from_scorer_is_caught(self):
        pool = _pool_with([0, 1])
        pruned = _pool_with([0, 1])
        calls = {"count": 0}

        def scorer(active, label):
            if label == 1 and calls["count"] == 0:
                calls["count"] += 1
                raise EmptyPoolError("degraded per-class pool")
            return _trivial_scores(active.motifs(label))

        with pytest.warns(RuntimeWarning, match="falling back"):
            scores = score_with_class_fallback(scorer, pruned, pool, [0, 1])
        assert len(scores[1].candidates) == 1


class TestIPSClassifier:
    def test_fit_predict_accuracy(self, planted_split):
        train, test = planted_split
        clf = IPSClassifier(_fast_config()).fit_dataset(train)
        accuracy = clf.score(test.X, test.classes_[test.y])
        assert accuracy > 0.7  # planted patterns are separable

    def test_predict_returns_original_labels(self):
        full = make_planted_dataset(n_classes=2, n_instances=24, length=60, seed=3)
        # Remap labels to {10, 20}.
        y = np.where(full.y == 0, 10, 20)
        clf = IPSClassifier(_fast_config()).fit(full.X, y)
        preds = clf.predict(full.X)
        assert set(np.unique(preds)).issubset({10, 20})

    def test_unfitted_predict_rejected(self, rng):
        clf = IPSClassifier(_fast_config())
        with pytest.raises(NotFittedError):
            clf.predict(rng.normal(size=(2, 60)))

    def test_score_rejects_unseen_labels(self, planted_split):
        train, test = planted_split
        clf = IPSClassifier(_fast_config()).fit_dataset(train)
        bad_labels = np.full(test.n_series, 99)
        with pytest.raises(ValidationError):
            clf.score(test.X, bad_labels)

    def test_transform_exposes_features(self, planted_split):
        train, test = planted_split
        clf = IPSClassifier(_fast_config()).fit_dataset(train)
        features = clf.transform(test.X)
        assert features.shape == (test.n_series, len(clf.shapelets_))
        assert np.all(features >= 0.0)
