"""Tests for repro.classify.svm: dual coordinate descent linear SVM."""

from __future__ import annotations

import numpy as np
import pytest

from repro.classify.svm import LinearSVM, OneVsRestSVM
from repro.exceptions import NotFittedError, ValidationError


def _separable(rng, n=60, d=4, margin=2.0):
    X = rng.normal(size=(n, d))
    w = rng.normal(size=d)
    w /= np.linalg.norm(w)
    scores = X @ w
    y = np.where(scores >= 0, 1.0, -1.0)
    X += margin * 0.5 * y[:, None] * w  # push classes apart
    return X, y


class TestLinearSVM:
    def test_separable_data_perfect_train_accuracy(self, rng):
        X, y = _separable(rng)
        model = LinearSVM(C=10.0, seed=0).fit(X, y)
        assert np.all(model.predict(X) == y)

    def test_decision_function_sign_matches_predict(self, rng):
        X, y = _separable(rng)
        model = LinearSVM(seed=0).fit(X, y)
        scores = model.decision_function(X)
        assert np.all((scores >= 0) == (model.predict(X) == 1))

    def test_margin_larger_with_small_C_regularization(self, rng):
        X, y = _separable(rng)
        strong = LinearSVM(C=0.001, seed=0).fit(X, y)
        weak = LinearSVM(C=100.0, seed=0).fit(X, y)
        assert np.linalg.norm(strong.coef_) < np.linalg.norm(weak.coef_)

    def test_bias_learned(self, rng):
        X = rng.normal(size=(50, 3)) + 10.0  # shifted data needs a bias
        y = np.where(X[:, 0] > 10.0, 1.0, -1.0)
        model = LinearSVM(C=10.0, seed=0).fit(X, y)
        assert np.mean(model.predict(X) == y) > 0.9

    def test_rejects_non_pm1_labels(self, rng):
        with pytest.raises(ValidationError):
            LinearSVM().fit(rng.normal(size=(4, 2)), np.array([0.0, 1.0, 0.0, 1.0]))

    def test_rejects_bad_c(self):
        with pytest.raises(ValidationError):
            LinearSVM(C=0.0)

    def test_unfitted_rejected(self, rng):
        with pytest.raises(NotFittedError):
            LinearSVM().decision_function(rng.normal(size=(2, 3)))

    def test_deterministic_with_seed(self, rng):
        X, y = _separable(rng)
        a = LinearSVM(seed=7).fit(X, y)
        b = LinearSVM(seed=7).fit(X, y)
        assert np.allclose(a.coef_, b.coef_)


class TestOneVsRestSVM:
    def test_binary_passthrough(self, rng):
        X, y_pm = _separable(rng)
        y = np.where(y_pm > 0, 3, 8)  # arbitrary labels
        model = OneVsRestSVM(C=10.0, seed=0).fit(X, y)
        assert set(np.unique(model.predict(X))).issubset({3, 8})
        assert model.score(X, y) > 0.95

    def test_three_class_blobs(self, rng):
        centers = np.array([[0.0, 0.0], [6.0, 0.0], [0.0, 6.0]])
        X = np.vstack([rng.normal(size=(30, 2)) * 0.5 + c for c in centers])
        y = np.repeat([10, 20, 30], 30)
        model = OneVsRestSVM(C=10.0, seed=0).fit(X, y)
        assert model.score(X, y) > 0.95

    def test_decision_function_shape(self, rng):
        centers = np.array([[0.0, 0.0], [6.0, 0.0], [0.0, 6.0]])
        X = np.vstack([rng.normal(size=(10, 2)) + c for c in centers])
        y = np.repeat([0, 1, 2], 10)
        model = OneVsRestSVM(seed=0).fit(X, y)
        assert model.decision_function(X).shape == (30, 3)

    def test_single_class_degenerates_gracefully(self, rng):
        X = rng.normal(size=(5, 3))
        model = OneVsRestSVM(seed=0).fit(X, np.full(5, 7))
        assert np.all(model.predict(X) == 7)

    def test_unfitted_rejected(self, rng):
        with pytest.raises(NotFittedError):
            OneVsRestSVM().predict(rng.normal(size=(2, 3)))
