"""Multi-backend kernel engine: registry, auto-tuner, store, counters.

The backend contracts:

* every float64 backend (``reference``, ``tiled``, ``sharded``) produces
  bit-identical output — tiling and sharding change traversal order,
  never arithmetic;
* the ``float32`` backend stays within its advertised ``atol``/``rtol``
  bound against the reference on unit-scale data;
* the auto-tuner never trades precision (never picks ``float32``);
* the persistent :class:`SpectraStore` gives a fresh cache disk hits on
  a second run, verifies checksums, and quarantines corruption;
* the chunked 2-D kernel's peak memory is bounded by the documented byte
  budget (the ``_CHUNK_ELEMENTS`` regression);
* the direct and FFT branches account ``kernel_calls`` identically.
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

from repro.core.config import IPSConfig
from repro.core.pipeline import IPS, resolve_kernel_backend
from repro.datasets.generators import make_planted_dataset
from repro.exceptions import CacheIntegrityError, ValidationError
from repro.kernels import (
    BackendSpec,
    PerfCounters,
    SeriesCache,
    SpectraStore,
    backend_names,
    batch_min_distance,
    batch_sliding_dot,
    choose_backend,
    distance_profile,
    get_backend,
    sliding_dot_product,
)
from repro.kernels import engine
from repro.kernels.backends import SHARD_MIN_WORK
from repro.kernels.store import content_digest, spectrum_key


@pytest.fixture()
def workload():
    rng = np.random.default_rng(42)
    X = rng.normal(size=(12, 200))
    queries = [rng.normal(size=n) for n in (9, 17, 9, 30)]
    return X, queries


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert set(backend_names()) >= {
            "reference",
            "float32",
            "tiled",
            "sharded",
        }

    def test_unknown_name_lists_choices(self):
        with pytest.raises(ValidationError, match="reference"):
            get_backend("nope")

    def test_overrides_return_a_copy(self):
        tiled = get_backend("tiled")
        small = get_backend("tiled", budget_bytes=1 << 17)
        assert small.budget_bytes == 1 << 17
        assert tiled.budget_bytes != small.budget_bytes  # original intact

    def test_spec_validation(self):
        with pytest.raises(ValidationError, match="precision"):
            BackendSpec(name="x", precision="float16")
        with pytest.raises(ValidationError, match="layout"):
            BackendSpec(name="x", layout="diagonal")
        with pytest.raises(ValidationError, match="64 KiB"):
            BackendSpec(name="x", budget_bytes=10)
        with pytest.raises(ValidationError, match="max_workers"):
            BackendSpec(name="x", max_workers=0)

    def test_bit_identical_property(self):
        assert get_backend("reference").bit_identical
        assert get_backend("tiled").bit_identical
        assert get_backend("sharded").bit_identical
        assert not get_backend("float32").bit_identical


class TestBitIdentity:
    """Float64 backends agree bit-for-bit, whatever the tile/shard shape."""

    def test_tiled_matches_reference(self, workload):
        X, queries = workload
        reference = batch_min_distance(queries, X)
        # A tiny budget forces many tiles, covering ragged edge tiles.
        tiny = get_backend("tiled", budget_bytes=1 << 16)
        tiled = batch_min_distance(
            queries, X, cache=SeriesCache(backend=tiny)
        )
        np.testing.assert_array_equal(reference, tiled)

    def test_sharded_matches_reference(self, workload):
        X, queries = workload
        reference = batch_min_distance(queries, X)
        sharded = batch_min_distance(
            queries, X, cache=SeriesCache(backend="sharded")
        )
        np.testing.assert_array_equal(reference, sharded)

    def test_backend_argument_overrides_cache(self, workload):
        X, queries = workload
        cache = SeriesCache(backend="tiled")
        explicit = batch_min_distance(queries, X, backend="reference")
        via_cache = batch_min_distance(queries, X, cache=cache)
        np.testing.assert_array_equal(explicit, via_cache)


class TestFloat32Bound:
    def test_error_within_advertised_bound(self, workload):
        X, queries = workload
        spec = get_backend("float32")
        reference = batch_min_distance(queries, X)
        low = batch_min_distance(
            queries, X, cache=SeriesCache(backend=spec)
        )
        assert low.dtype == np.float64  # outputs upcast
        error = np.abs(low - reference)
        bound = spec.atol + spec.rtol * np.abs(reference)
        assert np.all(error <= bound)

    def test_sliding_dots_also_bounded(self, workload):
        X, _queries = workload
        rng = np.random.default_rng(7)
        queries = rng.normal(size=(5, 20))
        spec = get_backend("float32")
        reference = batch_sliding_dot(queries, X)
        low = batch_sliding_dot(queries, X, backend="float32")
        scale = np.maximum(np.abs(reference), 1.0)
        # Dot products are sums of ~20 unit-scale terms; the relative
        # bound applies against the output magnitude.
        assert np.all(np.abs(low - reference) <= spec.atol + spec.rtol * scale)


class TestAutoTuner:
    def test_small_workload_stays_reference(self):
        assert choose_backend(4, 128).name == "reference"

    def test_large_workset_low_work_tiles(self):
        spec = choose_backend(
            64, 4096, budget_bytes=1 << 20, cpu_count=1
        )
        assert spec.name == "tiled"
        assert spec.budget_bytes == 1 << 20

    def test_heavy_work_shards_capped_at_cores(self):
        spec = choose_backend(
            4000, 8000, budget_bytes=1 << 20, max_workers=16, cpu_count=3
        )
        assert spec.name == "sharded"
        assert spec.max_workers == 3

    def test_never_picks_float32(self):
        for n_series, n_points in ((1, 32), (64, 512), (4000, 8000)):
            assert choose_backend(n_series, n_points).name != "float32"

    def test_threshold_is_documented_constant(self):
        assert SHARD_MIN_WORK == 5e8


class TestSpectraStore:
    def test_roundtrip(self, tmp_path):
        store = SpectraStore(tmp_path)
        spectrum = np.fft.rfft(np.arange(32.0))
        key = spectrum_key(content_digest(np.arange(32.0)), 32, np.float64)
        store.save(key, spectrum)
        np.testing.assert_array_equal(store.load(key), spectrum)
        assert len(store) == 1

    def test_missing_key_is_none(self, tmp_path):
        assert SpectraStore(tmp_path).load("0" * 64) is None

    def test_corrupt_payload_quarantined(self, tmp_path):
        store = SpectraStore(tmp_path)
        key = "a" * 64
        store.save(key, np.fft.rfft(np.arange(16.0)))
        payload_path, sidecar_path = store._paths(key)
        payload_path.write_bytes(b"garbage")
        assert store.load(key) is None  # checksum mismatch -> miss
        assert not payload_path.exists() and not sidecar_path.exists()

    def test_torn_sidecar_is_a_miss(self, tmp_path):
        store = SpectraStore(tmp_path)
        key = "b" * 64
        store.save(key, np.fft.rfft(np.arange(16.0)))
        _payload_path, sidecar_path = store._paths(key)
        sidecar_path.write_text("{not json")
        assert store.load(key) is None

    def test_unusable_directory_raises(self, tmp_path):
        target = tmp_path / "plainfile"
        target.write_text("occupied")
        from repro.exceptions import SpectraStoreError

        with pytest.raises(SpectraStoreError):
            SpectraStore(target)

    def test_cross_run_hit_rate(self, tmp_path, workload):
        """The acceptance criterion: a second run hits on disk."""
        X, queries = workload
        first = PerfCounters()
        cold = batch_min_distance(
            queries, X, cache=SeriesCache(first, store=tmp_path)
        )
        assert first.spectra_disk_hits == 0
        assert first.spectra_disk_misses > 0
        second = PerfCounters()
        warm = batch_min_distance(
            queries, X, cache=SeriesCache(second, store=tmp_path)
        )
        np.testing.assert_array_equal(cold, warm)
        assert second.spectra_disk_hits > 0
        assert second.spectra_disk_misses == 0
        assert second.spectra_disk_hit_rate == 1.0
        # Fewer forward FFTs: only the query transforms remain.
        assert second.fft_count < first.fft_count
        snapshot = second.snapshot()
        assert snapshot["spectra_disk_hits"] == second.spectra_disk_hits
        assert snapshot["spectra_disk_hit_rate"] == 1.0

    def test_scipy_version_partitions_keys(self):
        digest = content_digest(np.arange(8.0))
        assert spectrum_key(digest, 16, np.float64) != spectrum_key(
            digest, 16, np.float32
        )
        assert spectrum_key(digest, 16, np.float64) != spectrum_key(
            digest, 32, np.float64
        )


class TestCacheIntegrity:
    def test_debug_fingerprint_detects_mutation(self):
        cache = SeriesCache(debug_fingerprint=True)
        series = np.sin(np.arange(64.0))
        distance_profile(np.ones(8), series, cache=cache)
        series[3] = 99.0
        with pytest.raises(CacheIntegrityError, match="immutable"):
            distance_profile(np.ones(8), series, cache=cache)

    def test_unmutated_arrays_pass(self):
        cache = SeriesCache(debug_fingerprint=True)
        series = np.sin(np.arange(64.0))
        first = distance_profile(np.ones(8), series, cache=cache)
        second = distance_profile(np.ones(8), series, cache=cache)
        np.testing.assert_array_equal(first, second)

    def test_default_mode_does_not_hash(self):
        cache = SeriesCache()
        series = np.sin(np.arange(64.0))
        distance_profile(np.ones(8), series, cache=cache)
        entry = cache._entries[id(series)]
        assert entry.digest is None  # hashing is opt-in


class TestCounterParity:
    """Direct and FFT branches account kernel_calls identically."""

    @pytest.mark.parametrize("series_length", [10, 64])
    def test_1d_branches_match_scalar(self, series_length):
        # length 10 -> n_out = 3 (direct branch); 64 -> n_out = 57 (FFT).
        rng = np.random.default_rng(0)
        series = rng.normal(size=series_length)
        queries = rng.normal(size=(3, 8))
        scalar = PerfCounters()
        scalar_cache = SeriesCache(scalar)
        for q in queries:
            sliding_dot_product(q, series, cache=scalar_cache)
        batched = PerfCounters()
        batch_sliding_dot(queries, series, cache=SeriesCache(batched))
        assert batched.kernel_calls == scalar.kernel_calls == 3

    @pytest.mark.parametrize("series_length", [10, 64])
    def test_2d_counts_series_times_queries(self, series_length):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(4, series_length))
        queries = rng.normal(size=(3, 8))
        counters = PerfCounters()
        batch_sliding_dot(queries, X, cache=SeriesCache(counters))
        assert counters.kernel_calls == 4 * 3


class TestPeakMemory:
    """The chunked 2-D loop's working set obeys the byte budget.

    The predecessor sized chunks by *element count*, so the complex128
    product intermediate alone ran ~3x past the documented ceiling.
    Chunks are now sized by the bytes of the worst simultaneous
    intermediates; this pins that with a tracemalloc measurement (numpy
    array allocations are traced; psutil is unavailable here).
    """

    def test_chunked_peak_stays_bounded(self, monkeypatch):
        rng = np.random.default_rng(5)
        X = rng.normal(size=(24, 512))
        queries = rng.normal(size=(16, 32))
        expected = batch_sliding_dot(queries, X)

        def measure(budget_bytes):
            monkeypatch.setattr(engine, "_CHUNK_BYTES", budget_bytes)
            cache = SeriesCache()
            batch_sliding_dot(queries, X, cache=cache)  # warm the spectra
            tracemalloc.start()
            out = batch_sliding_dot(queries, X, cache=cache)
            _current, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            return out, peak

        budget = 256 * 1024
        chunked_out, chunked_peak = measure(budget)
        unchunked_out, unchunked_peak = measure(1 << 30)
        np.testing.assert_array_equal(chunked_out, expected)
        np.testing.assert_array_equal(unchunked_out, expected)
        # Chunking must actually bound the intermediates: everything
        # beyond the float64 output buffer fits a few chunk budgets.
        assert chunked_peak < expected.nbytes + 8 * budget
        assert chunked_peak < unchunked_peak

    def test_intermediate_sizing_is_bytes_not_elements(self):
        n_fft = 1024
        per_row = engine._intermediate_bytes_per_row(n_fft, np.dtype(np.float64))
        # complex product over the half spectrum + real inverse buffer.
        assert per_row == 16 * (n_fft // 2 + 1) + 8 * n_fft
        half = engine._intermediate_bytes_per_row(n_fft, np.dtype(np.float32))
        assert half == 8 * (n_fft // 2 + 1) + 4 * n_fft


class TestConfigWiring:
    def test_unknown_backend_rejected_at_construction(self):
        with pytest.raises(ValidationError, match="kernel backend"):
            IPSConfig(kernel_backend="warp-drive")

    def test_tiny_tile_budget_rejected(self):
        with pytest.raises(ValidationError, match="kernel_tile_budget"):
            IPSConfig(kernel_tile_budget=1024)

    def test_resolve_auto_and_named(self):
        dataset = make_planted_dataset(
            n_classes=2, n_instances=6, length=48, seed=3, name="wiring"
        )
        auto = resolve_kernel_backend(IPSConfig(), dataset)
        assert auto.name in backend_names()
        assert auto.precision == "float64"  # auto never trades precision
        named = resolve_kernel_backend(
            IPSConfig(kernel_backend="tiled", kernel_tile_budget=1 << 20),
            dataset,
        )
        assert named.name == "tiled"
        assert named.budget_bytes == 1 << 20

    def test_discovery_identical_across_f64_backends(self):
        dataset = make_planted_dataset(
            n_classes=2, n_instances=8, length=60, seed=9, name="backends"
        )
        base = dict(k=2, q_n=4, q_s=3, seed=0)
        results = {
            name: IPS(IPSConfig(kernel_backend=name, **base)).discover(dataset)
            for name in ("reference", "tiled")
        }
        ref = results["reference"]
        assert ref.extra["kernel_backend"] == "reference"
        assert results["tiled"].extra["kernel_backend"] == "tiled"
        for a, b in zip(ref.shapelets, results["tiled"].shapelets):
            assert a.score == b.score  # bitwise
            np.testing.assert_array_equal(a.values, b.values)

    def test_spectra_cache_dir_hits_across_runs(self, tmp_path):
        dataset = make_planted_dataset(
            n_classes=2, n_instances=6, length=48, seed=4, name="store"
        )
        # use_dt_cr=False routes utility scoring through the distance
        # kernels (the DT path replaces distances with hash-rank gaps and
        # would never consult the spectra store from discover alone).
        config = dict(
            k=2,
            q_n=3,
            q_s=2,
            seed=0,
            use_dt_cr=False,
            spectra_cache_dir=str(tmp_path),
        )
        first = IPS(IPSConfig(**config)).discover(dataset)
        second = IPS(IPSConfig(**config)).discover(dataset)
        assert first.extra["perf"]["spectra_disk_misses"] > 0
        assert second.extra["perf"]["spectra_disk_hits"] > 0
        for a, b in zip(first.shapelets, second.shapelets):
            assert a.score == b.score
            np.testing.assert_array_equal(a.values, b.values)

    def test_manifest_records_resolved_backend(self):
        dataset = make_planted_dataset(
            n_classes=2, n_instances=6, length=48, seed=5, name="manifest"
        )
        config = IPSConfig(
            k=2, q_n=3, q_s=2, seed=0, observability="trace",
            kernel_backend="tiled",
        )
        ips = IPS(config)
        ips.discover(dataset)
        recorded = ips.trace_.manifest["kernel_backend"]
        assert recorded["name"] == "tiled"
        assert recorded["precision"] == "float64"
        assert recorded["bit_identical"] is True
        assert ips.kernel_backend_.name == "tiled"
