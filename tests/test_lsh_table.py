"""Tests for repro.lsh.table: bucket tables and ranking."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.lsh import LSHTable, make_lsh


def _table(dim=8, seed=0, width=None):
    kwargs = {} if width is None else {"width": width}
    return LSHTable(make_lsh("l2", dim=dim, seed=seed, **kwargs))


class TestLSHTable:
    def test_add_and_counts(self, rng):
        table = _table()
        for i in range(10):
            table.add(rng.normal(size=8), item_id=i)
        assert table.n_items == 10
        assert 1 <= table.n_buckets <= 10

    def test_identical_items_share_bucket(self, rng):
        table = _table()
        x = rng.normal(size=8)
        table.add(x)
        table.add(x.copy())
        assert table.n_buckets == 1
        assert table.buckets()[0].size == 2

    def test_bucket_center_is_mean_projection(self, rng):
        table = _table(width=1000.0)  # everything in one bucket
        X = rng.normal(size=(5, 8))
        for row in X:
            table.add(row)
        bucket = table.buckets()[0]
        expected = np.mean([table.family.project(row) for row in X], axis=0)
        assert np.allclose(bucket.center, expected)

    def test_ranked_buckets_sorted_by_center_norm(self, rng):
        table = _table(width=0.1)  # many buckets
        for _ in range(40):
            table.add(rng.normal(size=8) * rng.uniform(0.1, 5.0))
        norms = [b.center_norm for b in table.ranked_buckets()]
        assert norms == sorted(norms)

    def test_bucket_rank_of_existing_key(self, rng):
        table = _table()
        x = rng.normal(size=8)
        table.add(x)
        for _ in range(5):
            table.add(rng.normal(size=8) * 3)
        rank = table.bucket_rank_of(x)
        ranked = table.ranked_buckets()
        assert ranked[rank].key == table.family.signature(x)

    def test_bucket_rank_of_unseen_query_in_range(self, rng):
        table = _table(width=0.5)
        for _ in range(20):
            table.add(rng.normal(size=8))
        rank = table.bucket_rank_of(rng.normal(size=8) * 10)
        assert 0 <= rank <= table.n_buckets

    def test_batch_ranks_monotone_in_norm(self, rng):
        table = _table(width=0.5)
        for _ in range(30):
            table.add(rng.normal(size=8))
        direction = rng.normal(size=8)
        direction /= np.linalg.norm(direction)
        X = np.vstack([direction * s for s in (0.1, 1.0, 10.0)])
        ranks = table.bucket_ranks_batch(X)
        assert ranks[0] <= ranks[1] <= ranks[2]

    def test_member_norms_one_entry_per_item(self, rng):
        table = _table()
        for _ in range(12):
            table.add(rng.normal(size=8))
        assert table.member_norms().size == 12

    def test_query_norm_positive(self, rng):
        table = _table()
        table.add(rng.normal(size=8))
        assert table.query_norm(rng.normal(size=8)) >= 0.0

    def test_empty_table_rank_rejected(self, rng):
        with pytest.raises(ValidationError):
            _table().bucket_rank_of(rng.normal(size=8))

    def test_empty_bucket_center_rejected(self):
        from repro.lsh.table import Bucket

        with pytest.raises(ValidationError):
            _ = Bucket(key=(0,)).center
