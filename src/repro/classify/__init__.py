"""Classification substrate, implemented from scratch on numpy.

The IPS pipeline ends with a shapelet transform fed into a linear-kernel
SVM (Section III-E "Remarks"); the evaluation additionally needs 1NN-ED,
1NN-DTW, and Rotation Forest baselines (Table VI). None of scikit-learn is
available in this environment, so the estimators live here:

* :class:`LinearSVM` / :class:`OneVsRestSVM` — L2-regularized hinge-loss
  SVM trained by dual coordinate descent (the liblinear algorithm).
* :class:`OneNearestNeighbor` — 1NN under Euclidean or DTW (with LB_Keogh
  pruning).
* :class:`DecisionTree`, :class:`RotationForest`, :class:`PCA`,
  :class:`KMeans`, :class:`LogisticRegression` — used by baselines.

All estimators follow the ``fit`` / ``predict`` convention and raise
:class:`repro.exceptions.NotFittedError` when used before fitting.
"""

from repro.classify.kmeans import KMeans
from repro.classify.logistic import LogisticRegression
from repro.classify.metrics import accuracy_score, confusion_matrix
from repro.classify.model_selection import StratifiedKFold, train_test_split
from repro.classify.naive_bayes import GaussianNB
from repro.classify.neighbors import OneNearestNeighbor
from repro.classify.pca import PCA
from repro.classify.rotation_forest import RotationForest
from repro.classify.scaler import StandardScaler
from repro.classify.svm import LinearSVM, OneVsRestSVM
from repro.classify.tree import DecisionTree

__all__ = [
    "GaussianNB",
    "KMeans",
    "LinearSVM",
    "LogisticRegression",
    "OneNearestNeighbor",
    "OneVsRestSVM",
    "PCA",
    "RotationForest",
    "StandardScaler",
    "StratifiedKFold",
    "DecisionTree",
    "accuracy_score",
    "confusion_matrix",
    "train_test_split",
]
