"""L2-regularized logistic regression via gradient descent.

Used by the LTS baseline (Grabocka et al. 2014 learn shapelets jointly with
a logistic model) and available as a standalone classifier.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import NotFittedError, ValidationError
from repro.types import ParamsMixin


def sigmoid(z: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(z, dtype=np.float64)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


class LogisticRegression(ParamsMixin):
    """Binary/multinomial (one-vs-rest) logistic regression.

    Parameters
    ----------
    l2:
        L2 penalty weight (lambda).
    lr:
        Gradient-descent learning rate.
    max_epochs:
        Full-batch gradient steps.
    tol:
        Stop when the gradient norm falls below this.
    """

    def __init__(
        self,
        l2: float = 1e-3,
        lr: float = 0.5,
        max_epochs: int = 500,
        tol: float = 1e-6,
    ) -> None:
        if l2 < 0:
            raise ValidationError(f"l2 must be >= 0, got {l2}")
        self.l2 = float(l2)
        self.lr = float(lr)
        self.max_epochs = int(max_epochs)
        self.tol = float(tol)
        self.classes_: np.ndarray | None = None
        self.coef_: np.ndarray | None = None  # (n_classes_or_1, d)
        self.intercept_: np.ndarray | None = None

    def _fit_binary(self, X: np.ndarray, target: np.ndarray) -> tuple[np.ndarray, float]:
        n, d = X.shape
        w = np.zeros(d)
        b = 0.0
        for _ in range(self.max_epochs):
            p = sigmoid(X @ w + b)
            error = p - target
            grad_w = X.T @ error / n + self.l2 * w
            grad_b = float(error.mean())
            new_w = w - self.lr * grad_w
            new_b = b - self.lr * grad_b
            if not (np.isfinite(new_w).all() and np.isfinite(new_b)):
                # Diverging step (overflow on extreme feature scales):
                # keep the last finite iterate rather than returning NaN.
                break
            w, b = new_w, new_b
            if np.linalg.norm(grad_w) + abs(grad_b) < self.tol:
                break
        return w, b

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LogisticRegression":
        """Train (one-vs-rest for more than two classes)."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        if X.ndim != 2 or X.shape[0] != y.shape[0] or X.shape[0] == 0:
            raise ValidationError("X must be (M, d) with matching non-empty y")
        if not np.isfinite(X).all():
            raise ValidationError(
                "logistic regression input contains non-finite values"
            )
        self.classes_ = np.unique(y)
        if self.classes_.size < 2:
            self.coef_ = np.zeros((1, X.shape[1]))
            self.intercept_ = np.zeros(1)
            return self
        targets = (
            [self.classes_[1]] if self.classes_.size == 2 else list(self.classes_)
        )
        weights, biases = [], []
        for cls in targets:
            w, b = self._fit_binary(X, (y == cls).astype(np.float64))
            weights.append(w)
            biases.append(b)
        self.coef_ = np.vstack(weights)
        self.intercept_ = np.asarray(biases)
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Class probabilities, shape ``(M, |C|)``."""
        if self.coef_ is None or self.classes_ is None:
            raise NotFittedError("call fit before predict_proba")
        X = np.asarray(X, dtype=np.float64)
        scores = X @ self.coef_.T + self.intercept_
        if self.classes_.size == 2:
            p1 = sigmoid(scores[:, 0])
            return np.column_stack([1.0 - p1, p1])
        probs = sigmoid(scores)
        totals = probs.sum(axis=1, keepdims=True)
        totals[totals == 0.0] = 1.0
        return probs / totals

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Per-class linear scores, always shape ``(M, C)``.

        Binary models hold one weight vector with score ``s``; the matrix
        form is ``[-s, s]`` in ``classes_`` order, matching the repo-wide
        :class:`repro.types.Predictor` convention.
        """
        if self.coef_ is None or self.classes_ is None:
            raise NotFittedError("call fit before decision_function")
        X = np.asarray(X, dtype=np.float64)
        scores = X @ self.coef_.T + self.intercept_
        if self.classes_.size == 2:
            return np.column_stack([-scores[:, 0], scores[:, 0]])
        return scores

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted original labels."""
        if self.classes_ is None:
            raise NotFittedError("call fit before predict")
        if self.classes_.size < 2:
            X = np.asarray(X, dtype=np.float64)
            return np.full(X.shape[0], self.classes_[0], dtype=np.int64)
        probs = self.predict_proba(X)
        return self.classes_[np.argmax(probs, axis=1)].astype(np.int64)

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Accuracy against original-valued labels."""
        from repro.classify.metrics import accuracy_score

        return accuracy_score(np.asarray(y, dtype=np.int64), self.predict(X))
