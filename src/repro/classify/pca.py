"""Principal component analysis via SVD (substrate for Rotation Forest)."""

from __future__ import annotations

import numpy as np

from repro.exceptions import NotFittedError, ValidationError
from repro.types import ParamsMixin


class PCA(ParamsMixin):
    """Centered PCA keeping ``n_components`` directions.

    ``n_components=None`` keeps every direction (a pure rotation), which is
    what Rotation Forest needs.
    """

    def __init__(self, n_components: int | None = None) -> None:
        if n_components is not None and n_components < 1:
            raise ValidationError(f"n_components must be >= 1, got {n_components}")
        self.n_components = n_components
        self.mean_: np.ndarray | None = None
        self.components_: np.ndarray | None = None  # (k, d)
        self.explained_variance_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "PCA":
        """Learn the principal directions of ``X``.

        Non-finite input is rejected with a typed error (SVD would
        otherwise raise an opaque ``LinAlgError`` or silently produce
        NaN components). Rank-deficient matrices are fine — zero
        singular values simply contribute zero explained variance — and
        if the iterative SVD fails to converge the symmetric
        eigendecomposition of the covariance is used instead.
        """
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[0] == 0:
            raise ValidationError("X must be a non-empty 2-D matrix")
        if not np.isfinite(X).all():
            raise ValidationError("PCA input contains non-finite values")
        self.mean_ = X.mean(axis=0)
        centered = X - self.mean_
        try:
            _u, s, vt = np.linalg.svd(centered, full_matrices=False)
        except np.linalg.LinAlgError:
            # Convergence failure on pathological input: fall back to the
            # (always-convergent) symmetric eigensolver on X^T X.
            evals, evecs = np.linalg.eigh(centered.T @ centered)
            order = np.argsort(evals)[::-1]
            s = np.sqrt(np.clip(evals[order], 0.0, None))
            vt = evecs[:, order].T
        k = vt.shape[0] if self.n_components is None else min(self.n_components, vt.shape[0])
        self.components_ = vt[:k]
        denominator = max(X.shape[0] - 1, 1)
        self.explained_variance_ = (s[:k] ** 2) / denominator
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Project onto the principal directions."""
        if self.components_ is None or self.mean_ is None:
            raise NotFittedError("call fit before transform")
        X = np.asarray(X, dtype=np.float64)
        return (X - self.mean_) @ self.components_.T

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        """Fit then transform in one call."""
        return self.fit(X).transform(X)
