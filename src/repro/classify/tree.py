"""CART decision tree (Gini impurity), substrate for Rotation Forest.

A straightforward recursive binary-split tree on continuous features. Split
search is vectorized per feature: candidate thresholds are the midpoints of
consecutive distinct sorted values, and class counts on both sides are
maintained by cumulative sums, giving O(d * n log n) per node.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import NotFittedError, ValidationError
from repro.types import ParamsMixin, PredictorMixin


@dataclass
class _Node:
    """Internal node (with children) or leaf (with a label)."""

    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None
    label: int = -1

    @property
    def is_leaf(self) -> bool:
        """True when the node has no children."""
        return self.left is None


def _gini_from_counts(counts: np.ndarray, total: np.ndarray) -> np.ndarray:
    """Gini impurity for rows of class counts (total given separately)."""
    safe_total = np.where(total == 0, 1, total).astype(np.float64)
    proportions = counts / safe_total[:, None]
    return 1.0 - np.sum(proportions * proportions, axis=1)


class DecisionTree(PredictorMixin, ParamsMixin):
    """CART classifier.

    Parameters
    ----------
    max_depth:
        Depth cap (``None`` = grow until pure or too small).
    min_samples_split:
        Minimum node size eligible for splitting.
    max_features:
        Features examined per node: ``None`` (all), an int, or ``"sqrt"``.
    seed:
        Seed for feature subsampling.
    """

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        max_features: int | str | None = None,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        if min_samples_split < 2:
            raise ValidationError("min_samples_split must be >= 2")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.max_features = max_features
        self.seed = seed
        self._root: _Node | None = None
        self.n_classes_: int = 0
        self.classes_: np.ndarray | None = None

    def _resolve_n_features(self, d: int) -> int:
        if self.max_features is None:
            return d
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(d)))
        n = int(self.max_features)
        if n < 1:
            raise ValidationError(f"max_features must be >= 1, got {self.max_features}")
        return min(n, d)

    def _best_split(
        self, X: np.ndarray, y: np.ndarray, features: np.ndarray
    ) -> tuple[int, float, float]:
        """Best (feature, threshold, impurity-decrease) over the candidates."""
        n = y.size
        counts_total = np.bincount(y, minlength=self.n_classes_)
        parent_gini = 1.0 - np.sum((counts_total / n) ** 2)
        best = (-1, 0.0, 0.0)
        onehot = np.zeros((n, self.n_classes_))
        onehot[np.arange(n), y] = 1.0
        for feature in features:
            order = np.argsort(X[:, feature], kind="stable")
            sorted_vals = X[order, feature]
            distinct = np.flatnonzero(np.diff(sorted_vals) > 0)
            if distinct.size == 0:
                continue
            left_counts = np.cumsum(onehot[order], axis=0)[distinct]
            left_totals = distinct + 1
            right_counts = counts_total - left_counts
            right_totals = n - left_totals
            gini_left = _gini_from_counts(left_counts, left_totals)
            gini_right = _gini_from_counts(right_counts, right_totals)
            weighted = (left_totals * gini_left + right_totals * gini_right) / n
            gains = parent_gini - weighted
            idx = int(np.argmax(gains))
            if gains[idx] > best[2] + 1e-12:
                pos = distinct[idx]
                threshold = 0.5 * (sorted_vals[pos] + sorted_vals[pos + 1])
                best = (int(feature), float(threshold), float(gains[idx]))
        return best

    def _grow(self, X: np.ndarray, y: np.ndarray, depth: int, rng) -> _Node:
        majority = int(np.bincount(y, minlength=self.n_classes_).argmax())
        if (
            y.size < self.min_samples_split
            or np.unique(y).size == 1
            or (self.max_depth is not None and depth >= self.max_depth)
        ):
            return _Node(label=majority)
        d = X.shape[1]
        n_feat = self._resolve_n_features(d)
        features = (
            np.arange(d) if n_feat == d else rng.choice(d, size=n_feat, replace=False)
        )
        feature, threshold, gain = self._best_split(X, y, features)
        if feature < 0 or gain <= 0.0:
            return _Node(label=majority)
        mask = X[:, feature] <= threshold
        left = self._grow(X[mask], y[mask], depth + 1, rng)
        right = self._grow(X[~mask], y[~mask], depth + 1, rng)
        return _Node(feature=feature, threshold=threshold, left=left, right=right)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTree":
        """Grow the tree."""
        X = np.asarray(X, dtype=np.float64)
        y_raw = np.asarray(y, dtype=np.int64)
        if X.ndim != 2 or X.shape[0] != y_raw.shape[0] or X.shape[0] == 0:
            raise ValidationError("X must be (M, d) with matching non-empty y")
        self.classes_, y_internal = np.unique(y_raw, return_inverse=True)
        self.n_classes_ = self.classes_.size
        rng = (
            self.seed
            if isinstance(self.seed, np.random.Generator)
            else np.random.default_rng(self.seed)
        )
        self._root = self._grow(X, y_internal.astype(np.int64), 0, rng)
        return self

    def _predict_one(self, x: np.ndarray) -> int:
        node = self._root
        while not node.is_leaf:
            node = node.left if x[node.feature] <= node.threshold else node.right
        return node.label

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted original labels."""
        if self._root is None or self.classes_ is None:
            raise NotFittedError("call fit before predict")
        X = np.asarray(X, dtype=np.float64)
        internal = np.array([self._predict_one(x) for x in X], dtype=np.int64)
        return self.classes_[internal]

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Accuracy against original-valued labels."""
        from repro.classify.metrics import accuracy_score

        return accuracy_score(np.asarray(y, dtype=np.int64), self.predict(X))

    def depth(self) -> int:
        """Actual depth of the grown tree."""
        if self._root is None:
            raise NotFittedError("call fit before depth")

        def walk(node: _Node) -> int:
            """Depth below this node."""
            if node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self._root)
