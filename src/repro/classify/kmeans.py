"""Lloyd's k-means with k-means++ seeding (substrate for the SD baseline)."""

from __future__ import annotations

import numpy as np

from repro.exceptions import NotFittedError, ValidationError
from repro.types import ParamsMixin


class KMeans(ParamsMixin):
    """k-means clustering.

    Parameters
    ----------
    n_clusters:
        Number of centroids.
    max_iter:
        Lloyd iterations cap.
    tol:
        Stop when the total centroid shift falls below this.
    seed:
        Reproducibility seed.
    """

    def __init__(
        self,
        n_clusters: int,
        max_iter: int = 100,
        tol: float = 1e-6,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        if n_clusters < 1:
            raise ValidationError("n_clusters must be >= 1")
        self.n_clusters = n_clusters
        self.max_iter = max_iter
        self.tol = tol
        self.seed = seed
        self.centers_: np.ndarray | None = None
        self.labels_: np.ndarray | None = None
        self.inertia_: float = float("nan")

    def _init_centers(self, X: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """k-means++ seeding."""
        n = X.shape[0]
        centers = [X[rng.integers(n)]]
        for _ in range(1, self.n_clusters):
            dists = np.min(
                [np.einsum("ij,ij->i", X - c, X - c) for c in centers], axis=0
            )
            total = dists.sum()
            if total <= 0.0:
                centers.append(X[rng.integers(n)])
                continue
            probs = dists / total
            centers.append(X[rng.choice(n, p=probs)])
        return np.vstack(centers)

    def fit(self, X: np.ndarray) -> "KMeans":
        """Cluster the rows of ``X``."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[0] == 0:
            raise ValidationError("X must be a non-empty 2-D matrix")
        k = min(self.n_clusters, X.shape[0])
        rng = (
            self.seed
            if isinstance(self.seed, np.random.Generator)
            else np.random.default_rng(self.seed)
        )
        if k < self.n_clusters:
            self.n_clusters = k
        centers = self._init_centers(X, rng)
        labels = np.zeros(X.shape[0], dtype=np.int64)
        for _ in range(self.max_iter):
            # Assignment step.
            dists = (
                np.einsum("ij,ij->i", X, X)[:, None]
                - 2.0 * X @ centers.T
                + np.einsum("ij,ij->i", centers, centers)[None, :]
            )
            labels = np.argmin(dists, axis=1)
            # Update step.
            new_centers = centers.copy()
            for c in range(self.n_clusters):
                members = X[labels == c]
                if members.shape[0] > 0:
                    new_centers[c] = members.mean(axis=0)
            shift = float(np.linalg.norm(new_centers - centers))
            centers = new_centers
            if shift < self.tol:
                break
        self.centers_ = centers
        self.labels_ = labels.astype(np.int64)
        diffs = X - centers[labels]
        self.inertia_ = float(np.einsum("ij,ij->", diffs, diffs))
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Nearest-centroid assignment for new points."""
        if self.centers_ is None:
            raise NotFittedError("call fit before predict")
        X = np.asarray(X, dtype=np.float64)
        dists = (
            np.einsum("ij,ij->i", X, X)[:, None]
            - 2.0 * X @ self.centers_.T
            + np.einsum("ij,ij->i", self.centers_, self.centers_)[None, :]
        )
        return np.argmin(dists, axis=1).astype(np.int64)
