"""Train/test splitting and stratified cross-validation helpers."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError


def train_test_split(
    X: np.ndarray,
    y: np.ndarray,
    test_fraction: float = 0.3,
    stratify: bool = True,
    seed: int | np.random.Generator | None = 0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Random (optionally stratified) split into train and test parts.

    Returns ``(X_train, y_train, X_test, y_test)``. Stratification keeps at
    least one instance of every class on each side whenever the class has
    two or more instances.
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y)
    if X.shape[0] != y.shape[0] or X.shape[0] < 2:
        raise ValidationError("need at least 2 matching samples to split")
    if not 0.0 < test_fraction < 1.0:
        raise ValidationError(f"test_fraction must be in (0, 1), got {test_fraction}")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    test_idx: list[int] = []
    if stratify:
        for cls in np.unique(y):
            rows = np.flatnonzero(y == cls)
            rng.shuffle(rows)
            n_test = int(round(test_fraction * rows.size))
            if rows.size >= 2:
                n_test = min(max(n_test, 1), rows.size - 1)
            else:
                n_test = 0
            test_idx.extend(rows[:n_test])
    else:
        order = rng.permutation(X.shape[0])
        n_test = max(1, int(round(test_fraction * X.shape[0])))
        test_idx = list(order[:n_test])
    test_mask = np.zeros(X.shape[0], dtype=bool)
    test_mask[test_idx] = True
    return X[~test_mask], y[~test_mask], X[test_mask], y[test_mask]


class StratifiedKFold:
    """Stratified k-fold index generator.

    Yields ``(train_indices, test_indices)`` pairs with per-class balance.
    """

    def __init__(self, n_splits: int = 5, seed: int | np.random.Generator | None = 0):
        if n_splits < 2:
            raise ValidationError("n_splits must be >= 2")
        self.n_splits = n_splits
        self.seed = seed

    def split(self, y: np.ndarray):
        """Generate the folds for label vector ``y``."""
        y = np.asarray(y)
        if y.shape[0] < self.n_splits:
            raise ValidationError(
                f"cannot make {self.n_splits} folds from {y.shape[0]} samples"
            )
        rng = (
            self.seed
            if isinstance(self.seed, np.random.Generator)
            else np.random.default_rng(self.seed)
        )
        fold_of = np.empty(y.shape[0], dtype=np.int64)
        for cls in np.unique(y):
            rows = np.flatnonzero(y == cls)
            rng.shuffle(rows)
            fold_of[rows] = np.arange(rows.size) % self.n_splits
        for fold in range(self.n_splits):
            test = np.flatnonzero(fold_of == fold)
            train = np.flatnonzero(fold_of != fold)
            yield train, test
