"""Linear SVM trained by dual coordinate descent (Hsieh et al., ICML 2008).

This is the algorithm behind liblinear: solve the dual of the
L2-regularized L1-loss (hinge) SVM

    min_w  (1/2) ||w||^2 + C sum_i max(0, 1 - y_i w . x_i)

by coordinate-wise updates of the box-constrained dual variables
``alpha_i in [0, C]``, maintaining ``w = sum_i alpha_i y_i x_i``. A bias
term is handled by augmenting each sample with a constant feature.

Multi-class problems use one-vs-rest with decision-value argmax
(:class:`OneVsRestSVM`), which is what the paper's final classification
stage needs ("we adopt SVM with a linear kernel", Section III-E).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import NotFittedError, ValidationError
from repro.types import ParamsMixin, PredictorMixin


class LinearSVM(ParamsMixin):
    """Binary linear SVM (labels must be -1 / +1).

    Parameters
    ----------
    C:
        Soft-margin penalty.
    max_epochs:
        Maximum passes over the data.
    tol:
        Stop when the largest projected-gradient violation in an epoch
        falls below this.
    fit_bias:
        Learn an intercept via feature augmentation.
    seed:
        Seed for the per-epoch coordinate permutation.
    """

    def __init__(
        self,
        C: float = 1.0,
        max_epochs: int = 200,
        tol: float = 1e-4,
        fit_bias: bool = True,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        if C <= 0:
            raise ValidationError(f"C must be > 0, got {C}")
        self.C = float(C)
        self.max_epochs = int(max_epochs)
        self.tol = float(tol)
        self.fit_bias = bool(fit_bias)
        self.seed = seed
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LinearSVM":
        """Train on ``(M, d)`` features with labels in {-1, +1}."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2 or X.shape[0] != y.shape[0] or X.shape[0] == 0:
            raise ValidationError("X must be (M, d) with matching non-empty y")
        if not np.isfinite(X).all():
            raise ValidationError("SVM input contains non-finite values")
        labels = np.unique(y)
        if not np.all(np.isin(labels, (-1.0, 1.0))):
            raise ValidationError(f"labels must be -1/+1, got {labels}")
        rng = (
            self.seed
            if isinstance(self.seed, np.random.Generator)
            else np.random.default_rng(self.seed)
        )
        bias_value = 1.0
        if self.fit_bias:
            # Scale the augmented column to the feature magnitude so the
            # intercept converges at the same rate as the weights
            # (liblinear's -B option; with value 1 a shifted dataset needs
            # thousands of epochs to move the bias).
            bias_value = max(1.0, float(np.mean(np.abs(X))))
            X = np.hstack([X, np.full((X.shape[0], 1), bias_value)])
        n, d = X.shape
        diag = np.einsum("ij,ij->i", X, X)
        alpha = np.zeros(n)
        w = np.zeros(d)
        indices = np.arange(n)
        for _ in range(self.max_epochs):
            rng.shuffle(indices)
            max_violation = 0.0
            for i in indices:
                if diag[i] <= 0.0:
                    continue
                gradient = y[i] * (X[i] @ w) - 1.0
                # Projected gradient respecting the box [0, C].
                if alpha[i] <= 0.0:
                    projected = min(gradient, 0.0)
                elif alpha[i] >= self.C:
                    projected = max(gradient, 0.0)
                else:
                    projected = gradient
                if projected == 0.0:
                    continue
                max_violation = max(max_violation, abs(projected))
                new_alpha = min(max(alpha[i] - gradient / diag[i], 0.0), self.C)
                delta = new_alpha - alpha[i]
                if delta != 0.0:
                    w += delta * y[i] * X[i]
                    alpha[i] = new_alpha
            if max_violation < self.tol:
                break
        if self.fit_bias:
            self.coef_ = w[:-1].copy()
            self.intercept_ = float(w[-1] * bias_value)
        else:
            self.coef_ = w.copy()
            self.intercept_ = 0.0
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Signed margins ``w . x + b``."""
        if self.coef_ is None:
            raise NotFittedError("call fit before decision_function")
        X = np.asarray(X, dtype=np.float64)
        return X @ self.coef_ + self.intercept_

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Labels in {-1, +1}."""
        return np.where(self.decision_function(X) >= 0.0, 1, -1).astype(np.int64)

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Accuracy against -1/+1 labels."""
        from repro.classify.metrics import accuracy_score

        return accuracy_score(np.asarray(y, dtype=np.int64), self.predict(X))


class OneVsRestSVM(PredictorMixin, ParamsMixin):
    """Multi-class linear SVM via one-vs-rest decision-value argmax.

    Accepts arbitrary integer labels; binary problems collapse to a single
    underlying :class:`LinearSVM`. Conforms to the repo-wide
    :class:`repro.types.Predictor` surface: ``decision_function`` is always
    ``(M, C)`` (the binary single-model score ``s`` becomes the column pair
    ``[-s, s]``), and ``predict_proba`` is the softmax of the decision
    values (via :class:`~repro.types.PredictorMixin`).
    """

    def __init__(
        self,
        C: float = 1.0,
        max_epochs: int = 200,
        tol: float = 1e-4,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        self.C = C
        self.max_epochs = max_epochs
        self.tol = tol
        self.seed = seed
        self.classes_: np.ndarray | None = None
        self._models: list[LinearSVM] = []

    def fit(self, X: np.ndarray, y: np.ndarray) -> "OneVsRestSVM":
        """Train one binary SVM per class."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        self.classes_ = np.unique(y)
        if self.classes_.size < 2:
            # Degenerate single-class training set: predict that class.
            self._models = []
            return self
        rng = (
            self.seed
            if isinstance(self.seed, np.random.Generator)
            else np.random.default_rng(self.seed)
        )
        self._models = []
        targets = (
            [self.classes_[1]] if self.classes_.size == 2 else list(self.classes_)
        )
        for cls in targets:
            binary = np.where(y == cls, 1.0, -1.0)
            model = LinearSVM(
                C=self.C, max_epochs=self.max_epochs, tol=self.tol, seed=rng
            )
            model.fit(X, binary)
            self._models.append(model)
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Per-class decision values, always shape ``(M, C)``.

        Binary problems train a single underlying machine with score
        ``s``; its matrix form is the column pair ``[-s, s]`` (column
        order follows ``classes_``), so argmax, margins, and softmax all
        work uniformly across class counts. The pre-streaming flat
        ``(M,)`` binary shape is gone — see docs/api.md.
        """
        if self.classes_ is None:
            raise NotFittedError("call fit before decision_function")
        X = np.asarray(X, dtype=np.float64)
        if not self._models:
            return np.zeros((X.shape[0], max(1, self.classes_.size)))
        if self.classes_.size == 2:
            scores = self._models[0].decision_function(X)
            return np.column_stack([-scores, scores])
        return np.column_stack([m.decision_function(X) for m in self._models])

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted original labels."""
        if self.classes_ is None:
            raise NotFittedError("call fit before predict")
        X = np.asarray(X, dtype=np.float64)
        if not self._models:
            return np.full(X.shape[0], self.classes_[0], dtype=np.int64)
        if self.classes_.size == 2:
            scores = self._models[0].decision_function(X)
            return np.where(scores >= 0.0, self.classes_[1], self.classes_[0]).astype(
                np.int64
            )
        scores = self.decision_function(X)
        return self.classes_[np.argmax(scores, axis=1)].astype(np.int64)

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Accuracy on a labelled set."""
        from repro.classify.metrics import accuracy_score

        return accuracy_score(np.asarray(y, dtype=np.int64), self.predict(X))
