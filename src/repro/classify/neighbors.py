"""One-nearest-neighbour classifiers: 1NN-ED and 1NN-DTW.

These are the classic strong baselines of the UCR benchmark (the ED / DTW
columns of the paper's Table II and the ``DTW_Rn_1NN`` column of Table VI).
The DTW variant supports a Sakoe-Chiba band and uses the LB_Keogh lower
bound to skip full DTW computations during search.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import NotFittedError, ValidationError
from repro.ts.dtw import dtw_distance, lb_keogh
from repro.types import ParamsMixin, PredictorMixin


class OneNearestNeighbor(PredictorMixin, ParamsMixin):
    """1NN classifier under Euclidean or DTW distance.

    Parameters
    ----------
    metric:
        ``"euclidean"`` or ``"dtw"``.
    band:
        Sakoe-Chiba half-width for DTW; ``None`` = unconstrained. A common
        UCR setting is a band of ~10% of the series length.
    """

    def __init__(self, metric: str = "euclidean", band: int | None = None) -> None:
        if metric not in ("euclidean", "dtw"):
            raise ValidationError(f"unknown metric {metric!r}")
        self.metric = metric
        self.band = band
        self._X: np.ndarray | None = None
        self._y: np.ndarray | None = None
        self.classes_: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "OneNearestNeighbor":
        """Memorize the training set."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        if X.ndim != 2 or X.shape[0] != y.shape[0] or X.shape[0] == 0:
            raise ValidationError("X must be (M, N) with matching non-empty y")
        self._X = X
        self._y = y
        self.classes_ = np.unique(y)
        return self

    def _check_fitted(self) -> tuple[np.ndarray, np.ndarray]:
        if self._X is None or self._y is None:
            raise NotFittedError("call fit before predict")
        return self._X, self._y

    def _predict_one_euclidean(self, x: np.ndarray) -> int:
        X, y = self._check_fitted()
        diffs = X - x
        dists = np.einsum("ij,ij->i", diffs, diffs)
        return int(y[np.argmin(dists)])

    def _predict_one_dtw(self, x: np.ndarray) -> int:
        X, y = self._check_fitted()
        best = np.inf
        best_label = int(y[0])
        band = self.band
        for row, label in zip(X, y):
            if band is not None and row.size == x.size:
                # LB_Keogh prune: skip full DTW when the bound already loses.
                if lb_keogh(x, row, band) >= best:
                    continue
            dist = dtw_distance(x, row, band=band)
            if dist < best:
                best = dist
                best_label = int(label)
        return best_label

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict labels for every row of ``X``."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        predict_one = (
            self._predict_one_euclidean
            if self.metric == "euclidean"
            else self._predict_one_dtw
        )
        return np.array([predict_one(x) for x in X], dtype=np.int64)

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Accuracy on a labelled set."""
        from repro.classify.metrics import accuracy_score

        return accuracy_score(np.asarray(y, dtype=np.int64), self.predict(X))
