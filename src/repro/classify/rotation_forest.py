"""Rotation Forest (Rodriguez et al. 2006), the RotF column of Table VI.

Each ensemble member rotates the feature space before growing a CART tree:
features are partitioned into random groups, PCA is fitted per group on a
bootstrap-like subsample, and the per-group loadings are assembled into a
block-diagonal rotation matrix. Predictions are majority votes.
"""

from __future__ import annotations

import numpy as np

from repro.classify.pca import PCA
from repro.classify.tree import DecisionTree
from repro.exceptions import NotFittedError, ValidationError
from repro.types import ParamsMixin, PredictorMixin


class RotationForest(PredictorMixin, ParamsMixin):
    """Rotation Forest classifier.

    Parameters
    ----------
    n_estimators:
        Number of rotated trees.
    group_size:
        Features per PCA group.
    sample_fraction:
        Fraction of instances used to fit each group's PCA (adds diversity).
    max_depth:
        Depth cap passed to the member trees.
    seed:
        Reproducibility seed.
    """

    def __init__(
        self,
        n_estimators: int = 10,
        group_size: int = 3,
        sample_fraction: float = 0.75,
        max_depth: int | None = None,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        if n_estimators < 1:
            raise ValidationError("n_estimators must be >= 1")
        if group_size < 1:
            raise ValidationError("group_size must be >= 1")
        if not 0.0 < sample_fraction <= 1.0:
            raise ValidationError("sample_fraction must be in (0, 1]")
        self.n_estimators = n_estimators
        self.group_size = group_size
        self.sample_fraction = sample_fraction
        self.max_depth = max_depth
        self.seed = seed
        self.classes_: np.ndarray | None = None
        self._members: list[tuple[np.ndarray, DecisionTree]] = []

    def _build_rotation(self, X: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        n, d = X.shape
        permutation = rng.permutation(d)
        rotation = np.zeros((d, d))
        n_sub = max(2, int(round(self.sample_fraction * n)))
        for start in range(0, d, self.group_size):
            group = permutation[start : start + self.group_size]
            rows = rng.choice(n, size=min(n_sub, n), replace=False)
            sub = X[np.ix_(rows, group)]
            if np.ptp(sub) == 0.0:
                # Degenerate constant block: identity rotation for the group.
                rotation[np.ix_(group, group)] = np.eye(group.size)
                continue
            pca = PCA().fit(sub)
            # components_ is (k, g) with k <= g; pad with zero rows if the
            # subsample was rank-deficient so the block stays square.
            block = np.zeros((group.size, group.size))
            block[: pca.components_.shape[0]] = pca.components_
            rotation[np.ix_(group, group)] = block.T
        return rotation

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RotationForest":
        """Train the ensemble."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        if X.ndim != 2 or X.shape[0] != y.shape[0] or X.shape[0] == 0:
            raise ValidationError("X must be (M, d) with matching non-empty y")
        rng = (
            self.seed
            if isinstance(self.seed, np.random.Generator)
            else np.random.default_rng(self.seed)
        )
        self.classes_ = np.unique(y)
        self._members = []
        for _ in range(self.n_estimators):
            rotation = self._build_rotation(X, rng)
            rotated = X @ rotation
            tree = DecisionTree(max_depth=self.max_depth, seed=rng)
            tree.fit(rotated, y)
            self._members.append((rotation, tree))
        return self

    def _vote_matrix(self, X: np.ndarray) -> np.ndarray:
        if self.classes_ is None or not self._members:
            raise NotFittedError("call fit before predict")
        X = np.asarray(X, dtype=np.float64)
        class_index = {cls: i for i, cls in enumerate(self.classes_)}
        votes = np.zeros((X.shape[0], self.classes_.size), dtype=np.int64)
        for rotation, tree in self._members:
            preds = tree.predict(X @ rotation)
            for row, pred in enumerate(preds):
                votes[row, class_index[int(pred)]] += 1
        return votes

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Majority vote over the rotated trees."""
        votes = self._vote_matrix(X)
        return self.classes_[np.argmax(votes, axis=1)].astype(np.int64)

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Vote shares per class, shape ``(M, C)`` rows summing to 1."""
        votes = self._vote_matrix(X)
        return votes.astype(np.float64) / self.n_estimators

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Raw vote counts per class, shape ``(M, C)``."""
        return self._vote_matrix(X).astype(np.float64)

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Accuracy on a labelled set."""
        from repro.classify.metrics import accuracy_score

        return accuracy_score(np.asarray(y, dtype=np.int64), self.predict(X))
