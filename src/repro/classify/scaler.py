"""Feature standardization for the shapelet-transform -> SVM stage."""

from __future__ import annotations

import numpy as np

from repro.exceptions import NotFittedError, ValidationError
from repro.ts.preprocessing import FLAT_STD
from repro.types import ParamsMixin


class StandardScaler(ParamsMixin):
    """Per-feature zero-mean / unit-variance scaling.

    Constant features are left centred at zero rather than divided by a
    near-zero standard deviation. Non-finite cells never poison the
    statistics: per-column mean/std are computed over the finite entries
    only (a column with no finite entries scales to all zeros), and
    :meth:`transform` maps any remaining non-finite cell to 0.0, so the
    output is finite by construction.
    """

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "StandardScaler":
        """Learn per-column mean and std (finite entries only)."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[0] == 0:
            raise ValidationError("X must be a non-empty 2-D matrix")
        finite = np.isfinite(X)
        if finite.all():
            mean = X.mean(axis=0)
            std = X.std(axis=0)
        else:
            counts = np.maximum(finite.sum(axis=0), 1)
            safe = np.where(finite, X, 0.0)
            mean = safe.sum(axis=0) / counts
            var = np.where(finite, (safe - mean) ** 2, 0.0).sum(axis=0) / counts
            std = np.sqrt(var)
            dead = ~finite.any(axis=0)
            mean[dead] = 0.0
            std[dead] = 0.0
        self.mean_ = mean
        self.scale_ = np.where(std < FLAT_STD, 1.0, std)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Apply the learned scaling; non-finite cells become 0.0."""
        if self.mean_ is None or self.scale_ is None:
            raise NotFittedError("call fit before transform")
        X = np.asarray(X, dtype=np.float64)
        scaled = (np.where(np.isfinite(X), X, self.mean_) - self.mean_) / self.scale_
        return scaled

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        """Fit then transform in one call."""
        return self.fit(X).transform(X)
