"""Feature standardization for the shapelet-transform -> SVM stage."""

from __future__ import annotations

import numpy as np

from repro.exceptions import NotFittedError, ValidationError
from repro.ts.preprocessing import FLAT_STD


class StandardScaler:
    """Per-feature zero-mean / unit-variance scaling.

    Constant features are left centred at zero rather than divided by a
    near-zero standard deviation.
    """

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "StandardScaler":
        """Learn per-column mean and std."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[0] == 0:
            raise ValidationError("X must be a non-empty 2-D matrix")
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        self.scale_ = np.where(std < FLAT_STD, 1.0, std)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Apply the learned scaling."""
        if self.mean_ is None or self.scale_ is None:
            raise NotFittedError("call fit before transform")
        X = np.asarray(X, dtype=np.float64)
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        """Fit then transform in one call."""
        return self.fit(X).transform(X)
