"""Classification metrics."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError


def accuracy_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of exact label matches."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValidationError(
            f"shape mismatch: y_true {y_true.shape} vs y_pred {y_pred.shape}"
        )
    if y_true.size == 0:
        raise ValidationError("cannot score empty label arrays")
    return float(np.mean(y_true == y_pred))


def confusion_matrix(
    y_true: np.ndarray, y_pred: np.ndarray, n_classes: int | None = None
) -> np.ndarray:
    """Confusion matrix ``M[i, j]`` = count of true class i predicted as j.

    Labels must already be in ``0..n_classes-1``.
    """
    y_true = np.asarray(y_true, dtype=np.int64)
    y_pred = np.asarray(y_pred, dtype=np.int64)
    if y_true.shape != y_pred.shape:
        raise ValidationError("y_true and y_pred must have the same shape")
    if n_classes is None:
        n_classes = int(max(y_true.max(), y_pred.max())) + 1
    if np.any(y_true < 0) or np.any(y_pred < 0):
        raise ValidationError("labels must be non-negative")
    if np.any(y_true >= n_classes) or np.any(y_pred >= n_classes):
        raise ValidationError(f"labels exceed n_classes={n_classes}")
    matrix = np.zeros((n_classes, n_classes), dtype=np.int64)
    np.add.at(matrix, (y_true, y_pred), 1)
    return matrix
