"""Gaussian naive Bayes on transformed features.

Lines et al.'s shapelet-transformation paper (and this paper's Section I)
list Naive Bayes among the classic classifiers applied to shapelet
features; this implementation completes the set next to the SVM and 1NN.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import NotFittedError, ValidationError
from repro.ts.preprocessing import FLAT_STD
from repro.types import ParamsMixin


class GaussianNB(ParamsMixin):
    """Gaussian naive Bayes classifier.

    Per-class, per-feature normal likelihoods with a variance floor
    (``var_smoothing`` times the largest feature variance) against
    zero-variance features.
    """

    def __init__(self, var_smoothing: float = 1e-9) -> None:
        if var_smoothing < 0:
            raise ValidationError("var_smoothing must be >= 0")
        self.var_smoothing = var_smoothing
        self.classes_: np.ndarray | None = None
        self.theta_: np.ndarray | None = None  # (n_classes, d) means
        self.var_: np.ndarray | None = None
        self.log_prior_: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GaussianNB":
        """Estimate per-class feature means/variances and priors."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        if X.ndim != 2 or X.shape[0] != y.shape[0] or X.shape[0] == 0:
            raise ValidationError("X must be (M, d) with matching non-empty y")
        self.classes_ = np.unique(y)
        n_classes, d = self.classes_.size, X.shape[1]
        self.theta_ = np.empty((n_classes, d))
        self.var_ = np.empty((n_classes, d))
        priors = np.empty(n_classes)
        global_var = max(float(X.var(axis=0).max()), FLAT_STD)
        epsilon = self.var_smoothing * global_var + FLAT_STD
        for idx, cls in enumerate(self.classes_):
            rows = X[y == cls]
            self.theta_[idx] = rows.mean(axis=0)
            self.var_[idx] = rows.var(axis=0) + epsilon
            priors[idx] = rows.shape[0] / X.shape[0]
        self.log_prior_ = np.log(priors)
        return self

    def _joint_log_likelihood(self, X: np.ndarray) -> np.ndarray:
        if self.theta_ is None:
            raise NotFittedError("call fit before predict")
        X = np.asarray(X, dtype=np.float64)
        n_classes = self.classes_.size
        out = np.empty((X.shape[0], n_classes))
        for idx in range(n_classes):
            diff = X - self.theta_[idx]
            log_likelihood = -0.5 * np.sum(
                np.log(2.0 * np.pi * self.var_[idx]) + diff * diff / self.var_[idx],
                axis=1,
            )
            out[:, idx] = self.log_prior_[idx] + log_likelihood
        return out

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Maximum a-posteriori class (original label values)."""
        jll = self._joint_log_likelihood(X)
        return self.classes_[np.argmax(jll, axis=1)].astype(np.int64)

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Posterior probabilities, shape ``(M, |C|)``."""
        jll = self._joint_log_likelihood(X)
        jll = jll - jll.max(axis=1, keepdims=True)
        probs = np.exp(jll)
        return probs / probs.sum(axis=1, keepdims=True)

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Joint log-likelihood per class, shape ``(M, C)``.

        The natural decision values of a generative model: softmax of
        these rows is exactly :meth:`predict_proba`, so margins and
        probabilities agree (:class:`repro.types.Predictor` contract).
        """
        return self._joint_log_likelihood(X)

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Accuracy on a labelled set."""
        from repro.classify.metrics import accuracy_score

        return accuracy_score(np.asarray(y, dtype=np.int64), self.predict(X))
