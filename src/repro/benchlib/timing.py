"""Wall-clock timing helper."""

from __future__ import annotations

import time
from typing import Callable, TypeVar

T = TypeVar("T")


def timed(fn: Callable[[], T]) -> tuple[T, float]:
    """Run ``fn`` and return ``(result, elapsed_seconds)``."""
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start
