"""Aligned-table formatting and run-folder result collection.

The benchmark harnesses print the same rows the paper's tables report;
these helpers keep the output readable in a terminal and in the captured
``bench_output.txt``. :func:`collect_cell_rows` turns a campaign run
folder into result rows the way the extractors of a benchmark toolkit
turn run directories into frames — tolerantly: a missing, failed, or
corrupt cell becomes a NaN-accuracy row with a status column instead of
aborting the collection.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Iterable, Sequence

from repro.exceptions import ValidationError

#: Row keys produced by :func:`collect_cell_rows`, in column order.
CELL_ROW_KEYS: tuple[str, ...] = (
    "dataset", "method", "scenario", "status", "error_type",
    "accuracy", "completed",
)


def _cell(value: object, precision: int) -> str:
    if isinstance(value, float):
        if math.isnan(value):
            return "-"
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    precision: int = 2,
    title: str | None = None,
) -> str:
    """Monospace table with per-column alignment.

    Floats are fixed to ``precision`` decimals; everything else is
    str()'d. The first column is left-aligned, the rest right-aligned.
    """
    if not headers:
        raise ValidationError("headers must be non-empty")
    text_rows = [[_cell(v, precision) for v in row] for row in rows]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValidationError(
                f"row width {len(row)} != header width {len(headers)}"
            )
    widths = [
        max(len(headers[j]), *(len(r[j]) for r in text_rows)) if text_rows else len(headers[j])
        for j in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        headers[j].ljust(widths[j]) if j == 0 else headers[j].rjust(widths[j])
        for j in range(len(headers))
    )
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in text_rows:
        lines.append(
            "  ".join(
                row[j].ljust(widths[j]) if j == 0 else row[j].rjust(widths[j])
                for j in range(len(headers))
            )
        )
    return "\n".join(lines)


def _placeholder_row(dataset: str, method: str, scenario: str, status: str) -> dict:
    """A NaN-accuracy row standing in for a cell with no usable result."""
    return {
        "dataset": dataset,
        "method": method,
        "scenario": scenario,
        "status": status,
        "error_type": None,
        "accuracy": float("nan"),
        "completed": None,
    }


def _row_from_record(stem: str, record: object) -> dict:
    """One result row from a parsed cell record, however partial.

    Any structural damage (non-dict record, missing sections or fields)
    degrades to a placeholder/NaN value rather than raising — incomplete
    run folders are the expected input during and after a crash.
    """
    parts = stem.split("__")
    dataset, method, scenario = (parts + ["?", "?", "?"])[:3]
    if not isinstance(record, dict):
        return _placeholder_row(dataset, method, scenario, "unreadable")
    cell = record.get("cell") if isinstance(record.get("cell"), dict) else {}
    payload = (
        record.get("payload") if isinstance(record.get("payload"), dict) else {}
    )
    accuracy = payload.get("accuracy")
    if not isinstance(accuracy, (int, float)):
        accuracy = float("nan")
    return {
        "dataset": cell.get("dataset", dataset),
        "method": cell.get("method", method),
        "scenario": cell.get("scenario", scenario),
        "status": payload.get("status", "unreadable"),
        "error_type": payload.get("error_type"),
        "accuracy": float(accuracy),
        "completed": payload.get("completed"),
    }


def collect_cell_rows(
    campaign_dir: str | Path,
    expected: Iterable[tuple[str, str, str]] | None = None,
) -> list[dict]:
    """Collect per-cell result rows from a (possibly incomplete) run folder.

    Reads every ``cells/*.json`` under ``campaign_dir`` (or ``*.json``
    when pointed directly at a cells directory). Tolerant by design:

    * an unparseable or truncated file → a row with ``status
      "unreadable"`` and NaN accuracy;
    * a ``failed`` cell → its typed error provenance with NaN accuracy;
    * with ``expected`` (``(dataset, method, scenario)`` triples), cells
      that have no file at all → ``status "missing"`` NaN rows, and the
      output follows the expected order (extra files are appended).

    Never raises on incomplete folders; only a nonexistent directory is
    an error.
    """
    root = Path(campaign_dir)
    cells_dir = root / "cells" if (root / "cells").is_dir() else root
    if not cells_dir.is_dir():
        raise ValidationError(f"no such run folder: {campaign_dir}")
    by_key: dict[tuple[str, str, str], dict] = {}
    for path in sorted(cells_dir.glob("*.json")):
        try:
            record = json.loads(path.read_text())
        except (OSError, UnicodeDecodeError, json.JSONDecodeError):
            record = None
        row = _row_from_record(path.stem, record)
        by_key[(row["dataset"], row["method"], row["scenario"])] = row
    if expected is None:
        return [by_key[key] for key in sorted(by_key)]
    rows = []
    seen = set()
    for dataset, method, scenario in expected:
        key = (dataset, method, scenario)
        seen.add(key)
        rows.append(
            by_key.get(key, _placeholder_row(dataset, method, scenario, "missing"))
        )
    rows.extend(by_key[key] for key in sorted(by_key) if key not in seen)
    return rows


def print_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    precision: int = 2,
    title: str | None = None,
) -> None:
    """Print :func:`format_table` with surrounding blank lines."""
    print()
    print(format_table(headers, rows, precision=precision, title=title))
    print()
