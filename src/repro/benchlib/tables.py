"""Aligned-table formatting for benchmark output.

The benchmark harnesses print the same rows the paper's tables report;
these helpers keep the output readable in a terminal and in the captured
``bench_output.txt``.
"""

from __future__ import annotations

from typing import Sequence

from repro.exceptions import ValidationError


def _cell(value: object, precision: int) -> str:
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    precision: int = 2,
    title: str | None = None,
) -> str:
    """Monospace table with per-column alignment.

    Floats are fixed to ``precision`` decimals; everything else is
    str()'d. The first column is left-aligned, the rest right-aligned.
    """
    if not headers:
        raise ValidationError("headers must be non-empty")
    text_rows = [[_cell(v, precision) for v in row] for row in rows]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValidationError(
                f"row width {len(row)} != header width {len(headers)}"
            )
    widths = [
        max(len(headers[j]), *(len(r[j]) for r in text_rows)) if text_rows else len(headers[j])
        for j in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        headers[j].ljust(widths[j]) if j == 0 else headers[j].rjust(widths[j])
        for j in range(len(headers))
    )
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in text_rows:
        lines.append(
            "  ".join(
                row[j].ljust(widths[j]) if j == 0 else row[j].rjust(widths[j])
                for j in range(len(headers))
            )
        )
    return "\n".join(lines)


def print_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    precision: int = 2,
    title: str | None = None,
) -> None:
    """Print :func:`format_table` with surrounding blank lines."""
    print()
    print(format_table(headers, rows, precision=precision, title=title))
    print()
