"""Append-only benchmark trajectory ledger + regression differ.

The ``BENCH_*.json`` files are *latest-state* snapshots: each run merges
its section under the machine key, so the trajectory — did yesterday's
change cost 10% of serve throughput? — is invisible. This module adds
the missing axis:

* :func:`append_history` — every perfbench / loadgen / streambench run
  appends one line to ``BENCH_history.jsonl``: commit SHA, UTC
  timestamp, machine key, benchmark kind, and that kind's *headline*
  numbers (extracted by :func:`headline_metrics` from the same record
  the BENCH file stores);
* :func:`diff_history` — per (kind, machine), compares the latest entry
  against the previous one (falling back to the committed BENCH file
  when the ledger has a single entry) and flags any metric that moved in
  its *bad* direction by more than the threshold;
* ``repro obs bench-diff`` — the CLI face: prints the delta table and
  exits non-zero on any regression, so CI can gate on the trajectory.

Metric direction is by name: latency/seconds/overhead metrics regress
when they grow, speedup/throughput/fraction/hit-rate metrics regress
when they shrink (:func:`lower_is_better`).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.exceptions import ValidationError
from repro.obs.manifest import git_sha

#: The ledger next to the BENCH_*.json files at the repository root.
HISTORY_FILENAME = "BENCH_history.jsonl"

#: Benchmark kinds the ledger understands, mapped to their BENCH file.
BENCH_FILES = {
    "kernels": "BENCH_kernels.json",
    "serve": "BENCH_serve.json",
    "streaming": "BENCH_streaming.json",
}

#: Name fragments marking a metric where *smaller* is the good direction.
_LOWER_BETTER_TOKENS = ("seconds", "latency", "overhead", "wall")


def lower_is_better(metric: str) -> bool:
    """Whether ``metric`` regresses by growing (latency-like names).

    A trailing ``_s`` (a seconds unit) also counts, but only as a
    suffix: substring matching would misread ``series_per_second`` —
    a throughput, higher is better — as latency-like.
    """
    name = metric.lower()
    if name.endswith("_s"):
        return True
    return any(token in name for token in _LOWER_BETTER_TOKENS)


def headline_metrics(kind: str, record: dict) -> dict[str, float]:
    """Extract a kind's headline numbers from one machine's record.

    ``record`` is the per-machine dict the BENCH file stores (and the
    benchmark ``main`` holds right before persisting). Missing sections
    are skipped, never raised — benches run with partial flags
    (``--obs-only``, ``--no-sweep``) still produce a useful line.
    """
    if kind not in BENCH_FILES:
        raise ValidationError(
            f"unknown benchmark kind {kind!r}; expected one of "
            f"{sorted(BENCH_FILES)}"
        )
    out: dict[str, float] = {}

    def grab(name: str, *path) -> None:
        node = record
        for key in path:
            if not isinstance(node, dict) or key not in node:
                return
            node = node[key]
        if isinstance(node, (int, float)) and not isinstance(node, bool):
            out[name] = float(node)

    if kind == "kernels":
        grab("min_distance.speedup", "min_distance", "speedup")
        grab("mass.speedup", "mass", "speedup")
        grab("obs.overhead.counters", "observability", "overhead", "counters")
        grab(
            "obs.overhead.serve_telemetry",
            "observability",
            "serve",
            "overhead",
            "telemetry",
        )
        grab(
            "spectra.cross_run_hit_rate",
            "backends",
            "spectra_store",
            "cross_run_hit_rate",
        )
    elif kind == "serve":
        grab("steady.p50_latency_s", "steady", "p50_latency_s")
        grab("steady.p99_latency_s", "steady", "p99_latency_s")
        grab("steady.series_per_second", "steady", "series_per_second")
        grab("overload.series_per_second", "overload", "series_per_second")
    else:  # streaming
        grab("latency.p50_append_s", "latency", "p50_append_s")
        grab("latency.p99_append_s", "latency", "p99_append_s")
        grab("early.fraction", "early", "fraction")
        grab(
            "throughput.stream_over_batch_ratio",
            "throughput",
            "stream_over_batch_ratio",
        )
    return out


def append_history(
    kind: str,
    machine: str,
    record: dict,
    path: str | Path = HISTORY_FILENAME,
    timestamp: float | None = None,
) -> dict:
    """Append one trajectory line for a finished benchmark run.

    Returns the entry written. The file is append-only JSONL — never
    rewritten — so concurrent benches at worst interleave whole lines.
    """
    entry = {
        "kind": kind,
        "machine": machine,
        "git_sha": git_sha(),
        "timestamp": time.time() if timestamp is None else float(timestamp),
        "metrics": headline_metrics(kind, record),
    }
    path = Path(path)
    with path.open("a", encoding="utf-8") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")
    return entry


def load_history(path: str | Path = HISTORY_FILENAME) -> list[dict]:
    """All well-formed ledger entries, in file (= time) order.

    Malformed lines are skipped: an interrupted append must not brick
    every future ``bench-diff``.
    """
    path = Path(path)
    if not path.exists():
        return []
    entries: list[dict] = []
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(entry, dict) and isinstance(entry.get("metrics"), dict):
            entries.append(entry)
    return entries


def _bench_baseline(kind: str, machine: str, bench_dir: Path) -> dict | None:
    """Headline metrics from the committed BENCH file, if present."""
    path = bench_dir / BENCH_FILES[kind]
    if not path.exists():
        return None
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
    record = data.get(machine)
    if not isinstance(record, dict):
        return None
    metrics = headline_metrics(kind, record)
    return metrics or None


def diff_history(
    entries: list[dict],
    *,
    machine: str,
    threshold: float = 0.25,
    kinds: tuple[str, ...] | None = None,
    bench_dir: str | Path = ".",
) -> list[dict]:
    """Per-metric deltas of each kind's latest run vs its baseline.

    The baseline is the previous ledger entry of the same (kind,
    machine); a kind with a single entry falls back to the committed
    BENCH file (so a fresh clone's first run still diffs against the
    repository's committed numbers). Returns one row per comparable
    metric::

        {kind, metric, baseline, current, change, direction, regression}

    ``change`` is the signed relative move; ``regression`` is True when
    the move exceeds ``threshold`` in the metric's bad direction.
    """
    if threshold <= 0:
        raise ValidationError("threshold must be > 0")
    bench_dir = Path(bench_dir)
    rows: list[dict] = []
    for kind in kinds or tuple(sorted(BENCH_FILES)):
        mine = [
            entry
            for entry in entries
            if entry.get("kind") == kind and entry.get("machine") == machine
        ]
        if not mine:
            continue
        current = mine[-1]["metrics"]
        if len(mine) >= 2:
            baseline = mine[-2]["metrics"]
            baseline_src = "history"
        else:
            baseline = _bench_baseline(kind, machine, bench_dir)
            baseline_src = "bench-file"
            if baseline is None:
                continue
        for metric in sorted(set(current) & set(baseline)):
            base, cur = baseline[metric], current[metric]
            if base == 0:
                change = 0.0 if cur == 0 else float("inf")
            else:
                change = (cur - base) / abs(base)
            lower = lower_is_better(metric)
            bad_move = change if lower else -change
            rows.append(
                {
                    "kind": kind,
                    "metric": metric,
                    "baseline": base,
                    "current": cur,
                    "change": change,
                    "direction": "lower" if lower else "higher",
                    "baseline_source": baseline_src,
                    "regression": bad_move > threshold,
                }
            )
    return rows


def render_bench_diff(rows: list[dict], threshold: float) -> str:
    """Human-readable delta table (the ``repro obs bench-diff`` output)."""
    from repro.benchlib.tables import format_table

    if not rows:
        return (
            "bench-diff: no comparable runs in the ledger "
            f"({HISTORY_FILENAME}); run a benchmark first"
        )
    table_rows = [
        [
            row["kind"],
            row["metric"],
            f"{row['baseline']:.6g}",
            f"{row['current']:.6g}",
            f"{row['change']:+.1%}",
            row["direction"],
            "REGRESSION" if row["regression"] else "ok",
        ]
        for row in rows
    ]
    out = format_table(
        ["kind", "metric", "baseline", "current", "change", "better", "verdict"],
        table_rows,
        title=f"bench-diff (threshold {threshold:.0%})",
    )
    n_bad = sum(1 for row in rows if row["regression"])
    verdict = (
        f"{n_bad} regression(s) beyond the {threshold:.0%} threshold"
        if n_bad
        else f"no regressions beyond the {threshold:.0%} threshold"
    )
    return f"{out}\n{verdict}"


__all__ = [
    "BENCH_FILES",
    "HISTORY_FILENAME",
    "append_history",
    "diff_history",
    "headline_metrics",
    "load_history",
    "lower_is_better",
    "render_bench_diff",
]
