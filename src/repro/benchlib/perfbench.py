"""Kernel micro-benchmark behind ``make verify-perf`` and ``verify-obs``.

Times the batched kernel engine against the equivalent scalar loops on a
fixed synthetic workload (default: 100 queries x 50 series, the
acceptance workload of the kernels redesign), verifies the two paths
agree bit-for-bit, and persists the result to ``BENCH_kernels.json`` at
the repository root, keyed by a machine fingerprint so runs from
different machines coexist.

The process exits non-zero when the batched path fails to beat the
scalar path — the engine's whole reason to exist — making the target a
regression gate, not just a report.

A per-backend sweep follows (skippable with ``--no-sweep``): every
registered kernel backend runs the same workload, float64 backends are
gated on bit-identity with the reference, ``float32`` on its advertised
error bound, and a persistent :class:`~repro.kernels.SpectraStore` is
exercised across two cold caches to prove a cross-run disk hit rate > 0.
Results land in the ``"backends"`` section of ``BENCH_kernels.json``.

With ``--obs-only`` the observability-overhead benchmark runs instead
(``make verify-obs``): full ``IPS.discover`` runs are timed in the
``"off"``, ``"counters"``, and ``"trace"`` modes, interleaved best-of-N,
and the counters-mode overhead is gated at <=2% of the off-mode time —
the budget that lets ``"counters"`` stay the default. Results land in
the ``"observability"`` section of the same file.

Run as::

    PYTHONPATH=src python -m repro.benchlib.perfbench
    PYTHONPATH=src python -m repro.benchlib.perfbench --queries 20 --series 10
    PYTHONPATH=src python -m repro.benchlib.perfbench --obs-only
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.kernels import (
    PerfCounters,
    SeriesCache,
    SpectraStore,
    backend_names,
    batch_mass,
    batch_min_distance,
    choose_backend,
    get_backend,
    mass,
    subsequence_distance,
)

#: Default acceptance workload: 100 queries against 50 series.
DEFAULT_QUERIES = 100
DEFAULT_SERIES = 50
DEFAULT_SERIES_LENGTH = 300
DEFAULT_QUERY_LENGTH = 30


def machine_key() -> str:
    """Stable fingerprint of this machine for the results file."""
    return "-".join(
        part
        for part in (
            platform.system().lower(),
            platform.machine(),
            platform.python_version(),
        )
        if part
    )


def _best_of(repeats: int, fn) -> float:
    """Minimum wall time over ``repeats`` runs (noise-resistant)."""
    best = np.inf
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run_benchmark(
    n_queries: int = DEFAULT_QUERIES,
    n_series: int = DEFAULT_SERIES,
    series_length: int = DEFAULT_SERIES_LENGTH,
    query_length: int = DEFAULT_QUERY_LENGTH,
    repeats: int = 3,
    seed: int = 0,
) -> dict:
    """Time scalar vs batched kernels on one workload; returns the record."""
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n_series, series_length))
    queries = rng.normal(size=(n_queries, query_length))
    query_list = list(queries)

    # -- Def.-4 distance matrix: per-pair scalar loop vs one batched call.
    def scalar_min_distance():
        out = np.empty((n_series, n_queries))
        for j in range(n_series):
            for i in range(n_queries):
                out[j, i] = subsequence_distance(query_list[i], X[j])
        return out

    counters = PerfCounters()

    def batched_min_distance():
        return batch_min_distance(
            query_list, X, cache=SeriesCache(counters=counters)
        )

    scalar_result = scalar_min_distance()
    batched_result = batched_min_distance()
    if not np.array_equal(scalar_result, batched_result):
        raise AssertionError(
            "batched kernel output differs from the scalar loop"
        )
    t_scalar = _best_of(repeats, scalar_min_distance)
    t_batch = _best_of(repeats, batched_min_distance)

    # -- MASS profiles: per-query loop vs one batched FFT pass.
    series = rng.normal(size=series_length * 4)

    def scalar_mass():
        return [mass(q, series) for q in query_list]

    def batched_mass():
        return batch_mass(queries, series)

    t_scalar_mass = _best_of(repeats, scalar_mass)
    t_batch_mass = _best_of(repeats, batched_mass)

    return {
        "workload": {
            "n_queries": n_queries,
            "n_series": n_series,
            "series_length": series_length,
            "query_length": query_length,
            "repeats": repeats,
            "seed": seed,
        },
        "min_distance": {
            "scalar_seconds": t_scalar,
            "batch_seconds": t_batch,
            "speedup": t_scalar / t_batch if t_batch > 0 else float("inf"),
        },
        "mass": {
            "scalar_seconds": t_scalar_mass,
            "batch_seconds": t_batch_mass,
            "speedup": (
                t_scalar_mass / t_batch_mass
                if t_batch_mass > 0
                else float("inf")
            ),
        },
        "bit_identical": True,
        "perf_counters": counters.snapshot(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }


def run_backend_sweep(
    n_queries: int = DEFAULT_QUERIES,
    n_series: int = DEFAULT_SERIES,
    series_length: int = DEFAULT_SERIES_LENGTH,
    query_length: int = DEFAULT_QUERY_LENGTH,
    repeats: int = 3,
    seed: int = 0,
) -> dict:
    """Benchmark every registered kernel backend on one workload.

    Three gates, all correctness- rather than timing-based (micro-scale
    timings of the sharded backend are dominated by process start-up and
    would flap):

    * every float64 backend must reproduce the ``reference`` output
      bit-for-bit;
    * the ``float32`` backend must stay within its advertised
      ``atol``/``rtol`` error bound against the reference;
    * a second run against the same persistent :class:`SpectraStore`
      must hit on disk (cross-run hit rate > 0) — the whole point of the
      store.

    Timings per backend are recorded for the report either way.
    """
    import tempfile

    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n_series, series_length))
    queries = rng.normal(size=(n_queries, query_length))
    query_list = list(queries)

    failures: list[str] = []
    results: dict[str, dict] = {}
    reference = batch_min_distance(
        query_list, X, cache=SeriesCache(backend="reference")
    )
    ref_seconds = None
    for name in backend_names():
        spec = get_backend(name)

        def run():
            return batch_min_distance(
                query_list, X, cache=SeriesCache(backend=spec)
            )

        output = run()
        seconds = _best_of(repeats, run)
        if ref_seconds is None:
            ref_seconds = seconds
        entry: dict = {
            "seconds": seconds,
            "speedup_vs_reference": (
                ref_seconds / seconds if seconds > 0 else float("inf")
            ),
            "precision": spec.precision,
            "layout": spec.layout,
            "sharded": spec.sharded,
        }
        if spec.bit_identical:
            entry["bit_identical"] = bool(np.array_equal(output, reference))
            if not entry["bit_identical"]:
                failures.append(
                    f"{name}: output differs from the reference backend"
                )
        else:
            error = np.abs(output - reference)
            bound = spec.atol + spec.rtol * np.abs(reference)
            entry["max_abs_error"] = float(error.max())
            entry["bound_ok"] = bool(np.all(error <= bound))
            if not entry["bound_ok"]:
                failures.append(
                    f"{name}: error {entry['max_abs_error']:.2e} exceeds "
                    f"atol={spec.atol:g} + rtol={spec.rtol:g} * |ref|"
                )
        results[name] = entry

    # -- Persistent spectra store: second run must hit on disk.
    with tempfile.TemporaryDirectory(prefix="repro-spectra-") as tmp:
        store = SpectraStore(tmp)
        first = PerfCounters()
        batch_min_distance(
            query_list, X, cache=SeriesCache(first, store=store)
        )
        second = PerfCounters()
        batch_min_distance(
            query_list, X, cache=SeriesCache(second, store=store)
        )
        store_record = {
            "entries": len(store),
            "first_run": {
                "disk_hits": first.spectra_disk_hits,
                "disk_misses": first.spectra_disk_misses,
                "fft_count": first.fft_count,
            },
            "second_run": {
                "disk_hits": second.spectra_disk_hits,
                "disk_misses": second.spectra_disk_misses,
                "fft_count": second.fft_count,
            },
            "cross_run_hit_rate": second.spectra_disk_hit_rate,
        }
        if not second.spectra_disk_hits:
            failures.append(
                "spectra store: second run recorded zero disk hits"
            )

    return {
        "workload": {
            "n_queries": n_queries,
            "n_series": n_series,
            "series_length": series_length,
            "query_length": query_length,
            "repeats": repeats,
            "seed": seed,
        },
        "auto_choice": choose_backend(n_series, series_length).name,
        "results": results,
        "spectra_store": store_record,
        "gate": {"passed": not failures, "failures": failures},
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }


#: Counters-mode overhead budget enforced by ``--obs-only`` (2%).
OBS_MAX_COUNTERS_OVERHEAD = 0.02


def run_observability_benchmark(repeats: int = 5, seed: int = 0) -> dict:
    """Time ``IPS.discover`` across observability modes; returns the record.

    The same planted two-class dataset is discovered in ``"off"``,
    ``"counters"``, and ``"trace"`` modes. Modes run back-to-back within
    each repeat and the overhead of a mode is the *minimum over repeats
    of the within-repeat ratio* against the off run of the same repeat:
    adjacent runs share whatever machine drift is happening, so the
    paired ratio isolates the instrumentation cost, and taking the
    minimum means transient stalls can only hide overhead, never
    fabricate it — the gate (counters overhead within
    :data:`OBS_MAX_COUNTERS_OVERHEAD`) cannot fail from noise alone.
    """
    # Imported here: repro.benchlib must stay importable without pulling
    # the whole pipeline in at module-import time.
    from repro.core.config import IPSConfig
    from repro.core.pipeline import IPS
    from repro.ts.series import Dataset

    rng = np.random.default_rng(seed)
    n_per_class, length = 6, 120
    X = rng.normal(size=(2 * n_per_class, length))
    y = np.repeat([0, 1], n_per_class)
    X[y == 1] += np.sin(np.linspace(0.0, 6.0, length))
    dataset = Dataset(X=X, y=y)

    modes = ("off", "counters", "trace")

    def run(mode: str):
        config = IPSConfig(k=3, q_n=8, q_s=3, seed=seed, observability=mode)
        return IPS(config).discover(dataset)

    for mode in modes:  # warmup: caches, JIT-free but fills allocators
        run(mode)
    best = {mode: np.inf for mode in modes}
    best_ratio = {mode: np.inf for mode in ("counters", "trace")}
    for _ in range(repeats):
        elapsed = {}
        for mode in modes:
            start = time.perf_counter()
            run(mode)
            elapsed[mode] = time.perf_counter() - start
            best[mode] = min(best[mode], elapsed[mode])
        for mode in ("counters", "trace"):
            best_ratio[mode] = min(
                best_ratio[mode], elapsed[mode] / elapsed["off"]
            )
    overhead = {mode: best_ratio[mode] - 1.0 for mode in best_ratio}
    return {
        "workload": {
            "n_series": 2 * n_per_class,
            "series_length": length,
            "k": 3,
            "q_n": 8,
            "q_s": 3,
            "repeats": repeats,
            "seed": seed,
        },
        "seconds": {mode: best[mode] for mode in modes},
        "overhead": overhead,
        "gate": {
            "counters_max_overhead": OBS_MAX_COUNTERS_OVERHEAD,
            "passed": overhead["counters"] <= OBS_MAX_COUNTERS_OVERHEAD,
        },
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }


def run_serve_overhead_benchmark(repeats: int = 5, seed: int = 0) -> dict:
    """Time the serving path with and without telemetry attached.

    The ``observability="off"`` contract extended to serving: an
    :class:`~repro.serve.service.InferenceService` built without a
    registry must predict bit-identically to an instrumented one, and
    the instrumented path (shared registry + SLO tracker feeding every
    request) must stay within :data:`OBS_MAX_COUNTERS_OVERHEAD` of the
    bare path. Same methodology as the discovery-mode benchmark: the
    two services serve the identical request matrix back-to-back within
    each repeat, and the overhead is the minimum over repeats of the
    within-repeat ratio, so noise can hide overhead but never fabricate
    it.
    """
    from repro.core.config import IPSConfig
    from repro.core.pipeline import IPSClassifier
    from repro.datasets.generators import make_planted_dataset
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.telemetry import SLOTracker
    from repro.serve.service import InferenceService, ServeConfig

    dataset = make_planted_dataset(
        n_classes=2, n_instances=16, length=100, seed=seed, name="obs-serve"
    )
    classifier = IPSClassifier(
        IPSConfig(k=3, q_n=6, q_s=3, seed=seed)
    ).fit_dataset(dataset)
    rng = np.random.default_rng(seed)
    X = dataset.X[rng.integers(0, dataset.X.shape[0], size=200)]
    config = ServeConfig(queue_depth=256, max_batch=32)

    def serve(instrumented: bool) -> tuple[np.ndarray, float]:
        kwargs = (
            {
                "metrics": MetricsRegistry(),
                "slo": SLOTracker(
                    latency_target_s=0.5,
                    latency_fraction=0.99,
                    error_rate_target=0.01,
                ),
            }
            if instrumented
            else {}
        )
        with InferenceService(classifier, config, **kwargs) as service:
            start = time.perf_counter()
            predictions = service.predict(X)
            return predictions, time.perf_counter() - start

    baseline, _ = serve(False)  # warmup + reference predictions
    best = {"off": np.inf, "telemetry": np.inf}
    best_ratio = np.inf
    bit_identical = True
    for _ in range(repeats):
        off_pred, off_s = serve(False)
        tel_pred, tel_s = serve(True)
        bit_identical = bit_identical and bool(
            np.array_equal(baseline, off_pred)
            and np.array_equal(baseline, tel_pred)
        )
        best["off"] = min(best["off"], off_s)
        best["telemetry"] = min(best["telemetry"], tel_s)
        best_ratio = min(best_ratio, tel_s / off_s)
    overhead = best_ratio - 1.0
    return {
        "workload": {
            "n_requests": int(X.shape[0]),
            "series_length": int(X.shape[1]),
            "repeats": repeats,
            "seed": seed,
        },
        "seconds": dict(best),
        "overhead": {"telemetry": overhead},
        "bit_identical": bit_identical,
        "gate": {
            "telemetry_max_overhead": OBS_MAX_COUNTERS_OVERHEAD,
            "passed": bit_identical and overhead <= OBS_MAX_COUNTERS_OVERHEAD,
        },
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }


def persist(record: dict, path: Path) -> None:
    """Merge the record into the machine-keyed results file.

    Merging is per top-level section, so an ``--obs-only`` run updates
    the ``"observability"`` section without wiping the kernel timings
    (and vice versa).
    """
    existing: dict = {}
    if path.exists():
        try:
            existing = json.loads(path.read_text())
        except json.JSONDecodeError:
            existing = {}
    merged = existing.get(machine_key(), {})
    if not isinstance(merged, dict):
        merged = {}
    merged.update(record)
    existing[machine_key()] = merged
    path.write_text(json.dumps(existing, indent=2, sort_keys=True) + "\n")


def _append_history(output: Path) -> None:
    """Append this machine's merged record to the trajectory ledger.

    Reads back the just-persisted BENCH file so the ledger line covers
    every section, whichever flags this invocation ran with.
    """
    from repro.benchlib.history import HISTORY_FILENAME, append_history

    try:
        merged = json.loads(output.read_text()).get(machine_key(), {})
    except (OSError, json.JSONDecodeError):
        return
    if merged:
        append_history(
            "kernels", machine_key(), merged, output.parent / HISTORY_FILENAME
        )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--queries", type=int, default=DEFAULT_QUERIES)
    parser.add_argument("--series", type=int, default=DEFAULT_SERIES)
    parser.add_argument(
        "--series-length", type=int, default=DEFAULT_SERIES_LENGTH
    )
    parser.add_argument(
        "--query-length", type=int, default=DEFAULT_QUERY_LENGTH
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--obs-only",
        action="store_true",
        help="run the observability-overhead benchmark instead "
        "(gates counters-mode overhead at <=2%%)",
    )
    parser.add_argument(
        "--no-sweep",
        action="store_true",
        help="skip the per-backend sweep (bit-identity, float32 error "
        "bound, and persistent spectra-store gates)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parents[3] / "BENCH_kernels.json",
        help="machine-keyed results file (default: repo root)",
    )
    args = parser.parse_args(argv)

    if args.obs_only:
        record = run_observability_benchmark(repeats=max(args.repeats, 5))
        record["serve"] = run_serve_overhead_benchmark(
            repeats=max(args.repeats, 5)
        )
        persist({"observability": record}, args.output)
        _append_history(args.output)
        seconds, overhead = record["seconds"], record["overhead"]
        print(f"machine            {machine_key()}")
        for mode in ("off", "counters", "trace"):
            line = f"{mode:<19}{seconds[mode]:.4f}s"
            if mode in overhead:
                line += f"   overhead {overhead[mode]:+.2%}"
            print(line)
        serve = record["serve"]
        print(
            f"serve telemetry    {serve['seconds']['telemetry']:.4f}s   "
            f"overhead {serve['overhead']['telemetry']:+.2%}   "
            + ("bit-identical" if serve["bit_identical"] else "MISMATCH")
        )
        print(f"results written to {args.output}")
        failed = False
        if not record["gate"]["passed"]:
            print(
                f"FAIL: counters-mode overhead {overhead['counters']:+.2%} "
                f"exceeds the {OBS_MAX_COUNTERS_OVERHEAD:.0%} budget",
                file=sys.stderr,
            )
            failed = True
        if not serve["gate"]["passed"]:
            print(
                "FAIL: instrumented serve path "
                + (
                    f"overhead {serve['overhead']['telemetry']:+.2%} exceeds "
                    f"the {OBS_MAX_COUNTERS_OVERHEAD:.0%} budget"
                    if serve["bit_identical"]
                    else "is not bit-identical to the bare path"
                ),
                file=sys.stderr,
            )
            failed = True
        return 1 if failed else 0

    record = run_benchmark(
        n_queries=args.queries,
        n_series=args.series,
        series_length=args.series_length,
        query_length=args.query_length,
        repeats=args.repeats,
    )
    persist(record, args.output)

    dist, mass_rec = record["min_distance"], record["mass"]
    print(f"machine            {machine_key()}")
    print(
        f"min_distance       scalar {dist['scalar_seconds']:.4f}s   "
        f"batch {dist['batch_seconds']:.4f}s   "
        f"speedup {dist['speedup']:.1f}x"
    )
    print(
        f"mass profiles      scalar {mass_rec['scalar_seconds']:.4f}s   "
        f"batch {mass_rec['batch_seconds']:.4f}s   "
        f"speedup {mass_rec['speedup']:.1f}x"
    )

    failed = dist["speedup"] < 1.0 or mass_rec["speedup"] < 1.0
    if failed:
        print(
            "FAIL: batched kernels slower than the scalar loops",
            file=sys.stderr,
        )

    if not args.no_sweep:
        sweep = run_backend_sweep(
            n_queries=args.queries,
            n_series=args.series,
            series_length=args.series_length,
            query_length=args.query_length,
            repeats=args.repeats,
        )
        persist({"backends": sweep}, args.output)
        for name, entry in sweep["results"].items():
            line = f"backend:{name:<11}{entry['seconds']:.4f}s"
            if "bit_identical" in entry:
                line += (
                    "   bit-identical"
                    if entry["bit_identical"]
                    else "   MISMATCH"
                )
            else:
                line += f"   max err {entry['max_abs_error']:.2e}"
            print(line)
        hit_rate = sweep["spectra_store"]["cross_run_hit_rate"]
        print(
            f"spectra store      cross-run hit rate {hit_rate:.0%}   "
            f"auto choice: {sweep['auto_choice']}"
        )
        if not sweep["gate"]["passed"]:
            for failure in sweep["gate"]["failures"]:
                print(f"FAIL: {failure}", file=sys.stderr)
            failed = True

    _append_history(args.output)
    print(f"results written to {args.output}")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
