"""Shared helpers for the benchmark harness in ``benchmarks/``."""

from repro.benchlib.runners import evaluate_method, make_method, method_names
from repro.benchlib.tables import format_table, print_table
from repro.benchlib.timing import timed

__all__ = [
    "evaluate_method",
    "format_table",
    "make_method",
    "method_names",
    "print_table",
    "timed",
]
