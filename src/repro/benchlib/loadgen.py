"""Serving load generator behind ``make verify-serve``.

Drives a live :class:`repro.serve.InferenceService` through two
scenarios and gates the results into ``BENCH_serve.json`` (machine-keyed
like ``BENCH_kernels.json``):

``steady``
    Concurrent clients push a fixed request count through an adequately
    provisioned service. Reports p50/p99 latency and sustained
    series/sec. Gated three ways: every response must be bit-identical
    to offline ``IPSClassifier.predict`` (hard fail), the error/shed
    rate must be zero, and — when a previous record exists for this
    machine — p99 latency and throughput must not regress beyond
    generous noise bounds (3x).
``overload``
    The same load against a deliberately tiny queue, so the shedding
    policy must engage. Gated on *accounting*: every submitted request
    terminates with either a prediction or a typed error (nothing is
    lost or left hanging), all successes remain bit-identical, and at
    least one request is shed (otherwise the scenario tested nothing).

Run as::

    PYTHONPATH=src python -m repro.benchlib.loadgen
    PYTHONPATH=src python -m repro.benchlib.loadgen --requests 400 --clients 8
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from pathlib import Path

import numpy as np

from repro.benchlib.history import HISTORY_FILENAME, append_history
from repro.benchlib.perfbench import machine_key, persist

#: Regression tolerance against the previous record (3x in either
#: direction): wide enough for shared-CI noise, tight enough to catch a
#: real serving-path regression.
REGRESSION_FACTOR = 3.0


def _fit_model(seed: int = 0):
    """Small planted-dataset classifier shared by both scenarios."""
    from repro.core.config import IPSConfig
    from repro.core.pipeline import IPSClassifier
    from repro.datasets.generators import make_planted_dataset

    dataset = make_planted_dataset(
        n_classes=2, n_instances=16, length=100, seed=seed, name="loadgen"
    )
    classifier = IPSClassifier(
        IPSConfig(k=3, q_n=6, q_s=3, seed=seed)
    ).fit_dataset(dataset)
    return classifier, dataset


def _make_requests(dataset, n_requests: int, seed: int) -> np.ndarray:
    """Request matrix: perturbed copies of the training series."""
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, dataset.n_series, size=n_requests)
    noise = 0.05 * rng.normal(size=(n_requests, dataset.series_length))
    return dataset.X[rows] + noise


def _drive(service, requests: np.ndarray, n_clients: int, deadline_s):
    """Fire ``requests`` from ``n_clients`` threads; returns outcomes.

    Each client owns a contiguous slice (deterministic assignment) and
    submits back-to-back, holding futures so queue pressure builds.
    Returns ``(outcomes, wall_seconds)`` where each outcome is
    ``(index, label | None, error | None, latency | None)``.
    """
    slices = np.array_split(np.arange(len(requests)), n_clients)
    outcomes: list = [None] * len(requests)

    def client(indices) -> None:
        pending = []
        for i in indices:
            try:
                pending.append((i, service.submit(requests[i], deadline_s)))
            except Exception as exc:  # noqa: BLE001 - admission refusal is data
                outcomes[i] = (i, None, exc, None)
        for i, future in pending:
            try:
                outcomes[i] = (i, future.result(timeout=30.0), None, future.latency)
            except Exception as exc:  # noqa: BLE001
                outcomes[i] = (i, None, exc, future.latency)

    threads = [
        threading.Thread(target=client, args=(chunk,))
        for chunk in slices
        if chunk.size
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return outcomes, time.perf_counter() - start


def _summarize(outcomes, offline: np.ndarray, wall: float) -> dict:
    latencies = sorted(
        o[3] for o in outcomes if o[1] is not None and o[3] is not None
    )
    n_ok = sum(1 for o in outcomes if o[2] is None)
    errors: dict[str, int] = {}
    for o in outcomes:
        if o[2] is not None:
            name = type(o[2]).__name__
            errors[name] = errors.get(name, 0) + 1
    mismatches = sum(
        1 for o in outcomes if o[2] is None and o[1] != offline[o[0]]
    )
    def pct(p: float) -> float:
        if not latencies:
            return float("nan")
        return float(latencies[min(len(latencies) - 1, int(p * len(latencies)))])
    return {
        "n_requests": len(outcomes),
        "n_ok": n_ok,
        "n_errors": len(outcomes) - n_ok,
        "errors_by_type": errors,
        "mismatches": mismatches,
        "p50_latency_s": pct(0.50),
        "p99_latency_s": pct(0.99),
        "wall_seconds": wall,
        "series_per_second": len(outcomes) / wall if wall > 0 else float("inf"),
    }


def run_load_benchmark(
    n_requests: int = 200,
    n_clients: int = 4,
    deadline_s: float | None = None,
    queue_depth: int | None = None,
    validation: str = "repair",
    seed: int = 0,
) -> dict:
    """Run both scenarios; returns the full record (gates included)."""
    from repro.serve import InferenceService, ServeConfig

    classifier, dataset = _fit_model(seed)
    requests = _make_requests(dataset, n_requests, seed + 1)
    offline = classifier.predict(requests)

    # -- steady: adequately provisioned, zero tolerated failures.
    steady_config = ServeConfig(
        queue_depth=queue_depth if queue_depth is not None else n_requests,
        max_batch=16,
        validation=validation,
        default_deadline_s=deadline_s,
    )
    with InferenceService(classifier, steady_config) as service:
        # One warmup pass so allocator/cache effects don't land on p99.
        service.predict(requests[0])
        outcomes, wall = _drive(service, requests, n_clients, deadline_s)
        steady = _summarize(outcomes, offline, wall)
        steady["service_stats"] = service.stats()

    # -- overload: tiny queue, shed-oldest must engage; accounting holds.
    overload_config = ServeConfig(
        queue_depth=max(2, n_requests // 50),
        shed_policy="shed-oldest",
        max_batch=4,
        validation=validation,
    )
    with InferenceService(classifier, overload_config) as service:
        outcomes, wall = _drive(service, requests, n_clients, None)
        overload = _summarize(outcomes, offline, wall)
        overload["service_stats"] = service.stats()

    shed_or_ok = (
        overload["n_ok"]
        + sum(
            n
            for name, n in overload["errors_by_type"].items()
            if name in ("RequestSheddedError", "QueueFullError")
        )
    )
    record = {
        "workload": {
            "n_requests": n_requests,
            "n_clients": n_clients,
            "deadline_s": deadline_s,
            "validation": validation,
            "seed": seed,
            "series_length": dataset.series_length,
        },
        "steady": steady,
        "overload": overload,
        "gate": {
            "bit_identical": steady["mismatches"] == 0
            and overload["mismatches"] == 0,
            "steady_error_free": steady["n_errors"] == 0,
            "overload_accounted": shed_or_ok == overload["n_requests"],
            "overload_shed_engaged": overload["service_stats"]["shed"] > 0,
        },
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }
    return record


def apply_regression_gate(record: dict, previous: dict | None) -> dict:
    """Extend ``record['gate']`` with the vs-previous regression verdict.

    Only a previous record of the *same workload* (request count,
    client count, deadline, validation mode) is comparable — steady p99
    includes queue wait, which scales with the backlog, so comparing a
    200-request run against a 100-request record would flag workload
    size as a regression.
    """
    gate = record["gate"]
    gate["regression_factor"] = REGRESSION_FACTOR
    comparable = ("n_requests", "n_clients", "deadline_s", "validation")
    if not previous:
        gate["vs_previous"] = "no previous record"
        gate["no_regression"] = True
    elif any(
        previous.get("workload", {}).get(key) != record["workload"][key]
        for key in comparable
    ):
        gate["vs_previous"] = "previous record not comparable (different workload)"
        gate["no_regression"] = True
    else:
        prev_p99 = previous.get("steady", {}).get("p99_latency_s")
        prev_rate = previous.get("steady", {}).get("series_per_second")
        p99_ok = (
            prev_p99 is None
            or record["steady"]["p99_latency_s"]
            <= prev_p99 * REGRESSION_FACTOR
        )
        rate_ok = (
            prev_rate is None
            or record["steady"]["series_per_second"]
            >= prev_rate / REGRESSION_FACTOR
        )
        gate["vs_previous"] = {
            "p99_latency_s": prev_p99,
            "series_per_second": prev_rate,
        }
        gate["no_regression"] = bool(p99_ok and rate_ok)
    gate["passed"] = bool(
        gate["bit_identical"]
        and gate["steady_error_free"]
        and gate["overload_accounted"]
        and gate["overload_shed_engaged"]
        and gate["no_regression"]
    )
    return record


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=200)
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="per-request deadline for the steady scenario (default: none)",
    )
    parser.add_argument("--queue-depth", type=int, default=None)
    parser.add_argument(
        "--validation", default="repair", choices=["strict", "repair", "off"]
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parents[3] / "BENCH_serve.json",
        help="machine-keyed results file (default: repo root)",
    )
    args = parser.parse_args(argv)

    previous = None
    if args.output.exists():
        try:
            previous = json.loads(args.output.read_text()).get(machine_key())
        except (OSError, json.JSONDecodeError):
            previous = None

    record = run_load_benchmark(
        n_requests=args.requests,
        n_clients=args.clients,
        deadline_s=None if args.deadline_ms is None else args.deadline_ms / 1e3,
        queue_depth=args.queue_depth,
        validation=args.validation,
        seed=args.seed,
    )
    record = apply_regression_gate(record, previous)
    persist(record, args.output)
    append_history(
        "serve", machine_key(), record, args.output.parent / HISTORY_FILENAME
    )

    steady, overload, gate = record["steady"], record["overload"], record["gate"]
    print(f"machine            {machine_key()}")
    print(
        f"steady             p50 {steady['p50_latency_s'] * 1e3:.2f}ms   "
        f"p99 {steady['p99_latency_s'] * 1e3:.2f}ms   "
        f"{steady['series_per_second']:.0f} series/s   "
        f"{steady['n_errors']} errors"
    )
    print(
        f"overload           {overload['n_ok']} ok / "
        f"{overload['service_stats']['shed']} shed / "
        f"{overload['n_errors']} typed errors of {overload['n_requests']}"
    )
    print(f"results written to {args.output}")
    if not gate["passed"]:
        failed = [
            name
            for name in (
                "bit_identical",
                "steady_error_free",
                "overload_accounted",
                "overload_shed_engaged",
                "no_regression",
            )
            if not gate[name]
        ]
        print(f"FAIL: serve gate violated: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
