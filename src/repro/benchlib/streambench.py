"""Streaming early-classification benchmark behind ``make verify-streaming``.

Drives the chunked streaming stack (:mod:`repro.streaming` through
:class:`repro.serve.StreamingInferenceService`) over a planted dataset
and gates the results into ``BENCH_streaming.json`` (machine-keyed like
``BENCH_serve.json``):

* **per-append latency** — p50/p99 over every ``submit_chunk`` call
  (the interactive cost a streaming caller pays per chunk);
* **early-emission fraction** — the share of test streams whose
  decision latched before end-of-stream. Gated ``> 0`` at the
  calibrated threshold: a streaming subsystem that never emits early
  is an expensive batch path;
* **final-label agreement** — every streamed label must equal the
  batch ``IPSClassifier.predict`` label (streaming features converge
  bit-identically to the batch ``direct`` engine, so a disagreement at
  the calibrated threshold is a correctness bug, not noise);
* **throughput ratio** — streaming wall clock over batch wall clock
  for the same test matrix, bounded against the previous record for
  this machine (3x in either direction).

The default margin threshold (2.5) and minimum fraction (0.7) are the
calibrated operating point on the planted workload: ~80% of streams
emit early with zero label disagreement.

Run as::

    PYTHONPATH=src python -m repro.benchlib.streambench
    PYTHONPATH=src python -m repro.benchlib.streambench --margin-threshold 2.0
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.benchlib.history import HISTORY_FILENAME, append_history
from repro.benchlib.perfbench import machine_key, persist

#: Throughput-ratio regression tolerance vs the previous record (3x).
REGRESSION_FACTOR = 3.0

#: Calibrated operating point on the planted workload (see module doc).
DEFAULT_MARGIN_THRESHOLD = 2.5
DEFAULT_MIN_FRACTION = 0.7


def _fit_model(seed: int = 1):
    """Planted-dataset classifier + held-out streams for the benchmark."""
    from repro.core.config import IPSConfig
    from repro.core.pipeline import IPSClassifier
    from repro.datasets.generators import make_planted_dataset

    train = make_planted_dataset(2, 16, 120, seed=seed, name="streambench")
    test = make_planted_dataset(2, 30, 120, seed=seed + 100, name="streambench")
    classifier = IPSClassifier(
        IPSConfig(k=3, q_n=6, q_s=3, seed=seed)
    ).fit_dataset(train)
    return classifier, test


def _percentile(values: list[float], p: float) -> float:
    if not values:
        return float("nan")
    ordered = sorted(values)
    return float(ordered[min(len(ordered) - 1, int(p * len(ordered)))])


def run_stream_benchmark(
    margin_threshold: float = DEFAULT_MARGIN_THRESHOLD,
    min_fraction: float = DEFAULT_MIN_FRACTION,
    chunk_size: int = 16,
    seed: int = 1,
) -> dict:
    """Run the streaming workload; returns the full record (gates included)."""
    from repro.serve import StreamConfig, StreamingInferenceService

    classifier, test = _fit_model(seed)
    X = test.X
    length = test.series_length

    batch_start = time.perf_counter()
    batch_labels = classifier.predict(X)
    batch_wall = time.perf_counter() - batch_start

    stream_config = StreamConfig(
        margin_threshold=margin_threshold, min_fraction=min_fraction
    )
    append_latencies: list[float] = []
    decisions = []
    stream_start = time.perf_counter()
    with StreamingInferenceService(
        classifier, stream_config=stream_config
    ) as service:
        from repro.datasets.replay import iter_chunks

        for row in X:
            session_id = service.open_stream()
            decision = None
            for chunk in iter_chunks(row, chunk_size):
                t0 = time.perf_counter()
                decision = service.submit_chunk(session_id, chunk)
                append_latencies.append(time.perf_counter() - t0)
                if decision.final:
                    break
            if decision is None or not decision.final:
                decision = service.close_stream(session_id)
            else:
                service._drop_session(session_id)
            decisions.append(decision)
        stats = service.stats()
    stream_wall = time.perf_counter() - stream_start

    labels = np.array([d.label for d in decisions])
    n_early = sum(1 for d in decisions if d.early)
    early_ts = [d.t_emitted for d in decisions if d.early]
    agreement = float(np.mean(labels == batch_labels))
    throughput_ratio = stream_wall / batch_wall if batch_wall > 0 else float("inf")

    record = {
        "workload": {
            "n_streams": int(X.shape[0]),
            "series_length": int(length),
            "chunk_size": chunk_size,
            "margin_threshold": margin_threshold,
            "min_fraction": min_fraction,
            "seed": seed,
        },
        "latency": {
            "n_appends": len(append_latencies),
            "p50_append_s": _percentile(append_latencies, 0.50),
            "p99_append_s": _percentile(append_latencies, 0.99),
        },
        "early": {
            "n_early": n_early,
            "fraction": n_early / len(decisions),
            "mean_t_emitted": float(np.mean(early_ts)) if early_ts else None,
            "mean_t_fraction": (
                float(np.mean(early_ts)) / length if early_ts else None
            ),
        },
        "labels": {
            "agreement_with_batch": agreement,
            "disagreements": int(np.sum(labels != batch_labels)),
        },
        "throughput": {
            "batch_wall_s": batch_wall,
            "stream_wall_s": stream_wall,
            "stream_over_batch_ratio": throughput_ratio,
        },
        "service_stats": stats["streaming"],
        "gate": {
            "early_emission": n_early > 0,
            "labels_match_batch": agreement == 1.0,
        },
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }
    return record


def apply_regression_gate(record: dict, previous: dict | None) -> dict:
    """Extend ``record['gate']`` with the vs-previous throughput verdict.

    Only a previous record of the same workload (stream count, chunk
    size, thresholds) is comparable — the stream/batch ratio scales with
    how early streams terminate, which the thresholds control.
    """
    gate = record["gate"]
    gate["regression_factor"] = REGRESSION_FACTOR
    comparable = ("n_streams", "chunk_size", "margin_threshold", "min_fraction")
    if not previous:
        gate["vs_previous"] = "no previous record"
        gate["no_regression"] = True
    elif any(
        previous.get("workload", {}).get(key) != record["workload"][key]
        for key in comparable
    ):
        gate["vs_previous"] = "previous record not comparable (different workload)"
        gate["no_regression"] = True
    else:
        prev_ratio = previous.get("throughput", {}).get("stream_over_batch_ratio")
        prev_p99 = previous.get("latency", {}).get("p99_append_s")
        ratio_ok = (
            prev_ratio is None
            or record["throughput"]["stream_over_batch_ratio"]
            <= prev_ratio * REGRESSION_FACTOR
        )
        p99_ok = (
            prev_p99 is None
            or record["latency"]["p99_append_s"] <= prev_p99 * REGRESSION_FACTOR
        )
        gate["vs_previous"] = {
            "stream_over_batch_ratio": prev_ratio,
            "p99_append_s": prev_p99,
        }
        gate["no_regression"] = bool(ratio_ok and p99_ok)
    gate["passed"] = bool(
        gate["early_emission"]
        and gate["labels_match_batch"]
        and gate["no_regression"]
    )
    return record


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--margin-threshold", type=float, default=DEFAULT_MARGIN_THRESHOLD
    )
    parser.add_argument("--min-fraction", type=float, default=DEFAULT_MIN_FRACTION)
    parser.add_argument("--chunk-size", type=int, default=16)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parents[3] / "BENCH_streaming.json",
        help="machine-keyed results file (default: repo root)",
    )
    args = parser.parse_args(argv)

    previous = None
    if args.output.exists():
        try:
            previous = json.loads(args.output.read_text()).get(machine_key())
        except (OSError, json.JSONDecodeError):
            previous = None

    record = run_stream_benchmark(
        margin_threshold=args.margin_threshold,
        min_fraction=args.min_fraction,
        chunk_size=args.chunk_size,
        seed=args.seed,
    )
    record = apply_regression_gate(record, previous)
    persist(record, args.output)
    append_history(
        "streaming", machine_key(), record, args.output.parent / HISTORY_FILENAME
    )

    latency, early, labels = record["latency"], record["early"], record["labels"]
    throughput, gate = record["throughput"], record["gate"]
    print(f"machine            {machine_key()}")
    print(
        f"per-append         p50 {latency['p50_append_s'] * 1e3:.3f}ms   "
        f"p99 {latency['p99_append_s'] * 1e3:.3f}ms   "
        f"({latency['n_appends']} appends)"
    )
    mean_t = early["mean_t_fraction"]
    print(
        f"early emission     {early['n_early']}/{record['workload']['n_streams']} "
        f"streams ({100 * early['fraction']:.0f}%)"
        + (f", mean at {100 * mean_t:.0f}% of the series" if mean_t else "")
    )
    print(
        f"labels             {100 * labels['agreement_with_batch']:.2f}% "
        f"agreement with batch ({labels['disagreements']} disagreements)"
    )
    print(
        f"throughput         stream {throughput['stream_wall_s']:.3f}s vs "
        f"batch {throughput['batch_wall_s']:.3f}s "
        f"(ratio {throughput['stream_over_batch_ratio']:.2f}x)"
    )
    print(f"results written to {args.output}")
    if not gate["passed"]:
        failed = [
            name
            for name in ("early_emission", "labels_match_batch", "no_regression")
            if not gate[name]
        ]
        print(
            f"FAIL: streaming gate violated: {', '.join(failed)}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
