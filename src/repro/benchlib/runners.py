"""Method factory and evaluation runner shared by the benchmark harness.

``make_method(name)`` instantiates any runnable method by its Table VI
name; ``evaluate_method`` runs the full fit/score cycle on a loaded
dataset and reports accuracy plus discovery time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.bag_of_patterns import BagOfPatterns
from repro.baselines.boss import BOSS
from repro.baselines.bspcover import BSPCover
from repro.baselines.elis import ELIS
from repro.baselines.interval_forest import TimeSeriesForest
from repro.baselines.fast_shapelets import FastShapelets
from repro.baselines.learning_shapelets import LearningShapelets
from repro.baselines.mp_base import MPBaseline
from repro.baselines.scalable_discovery import ScalableDiscovery
from repro.baselines.shapelet_transform_st import ShapeletTransformST
from repro.benchlib.timing import timed
from repro.classify.neighbors import OneNearestNeighbor
from repro.classify.rotation_forest import RotationForest
from repro.core.config import FaultToleranceConfig, IPSConfig
from repro.core.pipeline import IPSClassifier
from repro.datasets.loader import TrainTestData
from repro.exceptions import ValidationError


@dataclass(frozen=True)
class MethodResult:
    """Accuracy and timing of one method on one dataset.

    ``completed`` is False when an anytime budget truncated discovery
    (the accuracy then reflects the best-so-far shapelets).
    """

    method: str
    dataset: str
    accuracy: float
    discovery_seconds: float
    total_seconds: float
    completed: bool = True


class _NeighborAdapter:
    """1NN wrapper matching the fit_dataset/score protocol."""

    def __init__(self, metric: str, band: int | None = None) -> None:
        self._model = OneNearestNeighbor(metric=metric, band=band)
        self.discovery_seconds_ = 0.0
        self._classes = None

    def fit_dataset(self, dataset):
        """Fit on internal labels, remembering the class mapping."""
        self._model.fit(dataset.X, dataset.y)
        self._classes = dataset.classes_
        return self

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Accuracy against original-valued labels."""
        from repro.classify.metrics import accuracy_score

        internal = self._model.predict(X)
        return accuracy_score(np.asarray(y, dtype=np.int64), self._classes[internal])


class _RotationForestAdapter:
    """Rotation Forest on raw series values (whole-series method)."""

    def __init__(self, seed: int | None = 0) -> None:
        self._model = RotationForest(n_estimators=10, group_size=8, seed=seed)
        self.discovery_seconds_ = 0.0
        self._classes = None

    def fit_dataset(self, dataset):
        """Fit on internal labels, remembering the class mapping."""
        self._model.fit(dataset.X, dataset.y)
        self._classes = dataset.classes_
        return self

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Accuracy against original-valued labels."""
        from repro.classify.metrics import accuracy_score

        internal = self._model.predict(X)
        return accuracy_score(np.asarray(y, dtype=np.int64), self._classes[internal])


def make_distributed_ips(
    k: int = 5,
    seed: int | None = 0,
    fault_plan=None,
    executor=None,
    fault_tolerance: FaultToleranceConfig | None = None,
    **overrides,
) -> IPSClassifier:
    """IPSClassifier backed by fault-tolerant distributed discovery.

    The classifier pipeline (transform, scaling, SVM) is unchanged; only
    the discovery stage is swapped for
    :class:`repro.distributed.DistributedIPS`. ``fault_plan`` injects
    deterministic worker faults (the robustness benchmark's knob);
    ``fault_tolerance`` defaults to a retrying policy without sleeps so
    benchmarks measure work, not backoff.
    """
    from repro.distributed.discovery import DistributedIPS

    if fault_tolerance is None:
        fault_tolerance = FaultToleranceConfig(
            max_retries=3, base_delay=0.0, quorum=0.5
        )
    config = IPSConfig(
        k=k, seed=seed, fault_tolerance=fault_tolerance, **overrides
    )
    classifier = IPSClassifier(config)
    classifier.discoverer_ = DistributedIPS(
        config, executor=executor, fault_plan=fault_plan
    )
    return classifier


def method_names() -> list[str]:
    """Runnable method names accepted by :func:`make_method`."""
    return [
        "IPS",
        "IPS-DIST",
        "BASE",
        "BSPCOVER",
        "FS",
        "LTS",
        "ELIS",
        "ST",
        "SD",
        "RotF",
        "TSF",
        "BOP",
        "BOSS",
        "1NN-ED",
        "1NN-DTW",
    ]


def make_method(name: str, k: int = 5, seed: int | None = 0, **overrides):
    """Instantiate a runnable method by its Table VI name."""
    builders = {
        "IPS": lambda: IPSClassifier(
            IPSConfig(k=k, seed=seed, **overrides)
        ),
        "IPS-DIST": lambda: make_distributed_ips(k=k, seed=seed, **overrides),
        "BASE": lambda: MPBaseline(k=k, seed=seed, **overrides),
        "BSPCOVER": lambda: BSPCover(k=k, seed=seed, **overrides),
        "FS": lambda: FastShapelets(k=k, seed=seed, **overrides),
        "LTS": lambda: LearningShapelets(k_per_class=k, seed=seed, **overrides),
        "ELIS": lambda: ELIS(k_per_class=k, seed=seed, **overrides),
        "ST": lambda: ShapeletTransformST(k=k, seed=seed, **overrides),
        "SD": lambda: ScalableDiscovery(k=k, seed=seed, **overrides),
        "RotF": lambda: _RotationForestAdapter(seed=seed),
        "TSF": lambda: TimeSeriesForest(seed=seed, **overrides),
        "BOP": lambda: BagOfPatterns(seed=seed, **overrides),
        "BOSS": lambda: BOSS(seed=seed, **overrides),
        "1NN-ED": lambda: _NeighborAdapter("euclidean"),
        "1NN-DTW": lambda: _NeighborAdapter("dtw", band=overrides.get("band", 10)),
    }
    if name not in builders:
        raise ValidationError(
            f"unknown method {name!r}; choose from {method_names()}"
        )
    return builders[name]()


def evaluate_method(
    name: str,
    data: TrainTestData,
    k: int = 5,
    seed: int | None = 0,
    validation: str = "repair",
    **overrides,
) -> MethodResult:
    """Fit + score one method on one loaded dataset.

    ``validation`` runs the data contracts on the train split before the
    model sees it (``"repair"`` default, ``"strict"``, or ``"off"`` for
    the legacy passthrough); repairs apply to the training data only —
    the test split is scored as loaded.
    """
    if validation != "off":
        from repro.validation import validate_dataset

        validated = validate_dataset(
            data.train, mode=validation, name=data.train.name
        )
        data = TrainTestData(
            train=validated.dataset,
            test=data.test,
            profile=data.profile,
            validation=validated.report,
        )
    model = make_method(name, k=k, seed=seed, **overrides)
    _, fit_seconds = timed(lambda: model.fit_dataset(data.train))
    y_test = data.test.classes_[data.test.y]
    accuracy = model.score(data.test.X, y_test)
    discovery = getattr(model, "discovery_seconds_", float("nan"))
    completed = bool(getattr(model, "completed_", True))
    if name in ("IPS", "IPS-DIST") and model.discovery_result_ is not None:
        discovery = model.discovery_result_.total_time
        completed = model.discovery_result_.completed
    return MethodResult(
        method=name,
        dataset=data.name,
        accuracy=float(accuracy),
        discovery_seconds=float(discovery),
        total_seconds=float(fit_seconds),
        completed=completed,
    )
