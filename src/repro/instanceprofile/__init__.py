"""Instance profile (IP): the paper's core data structure (Section III-A).

Whereas the matrix profile annotates *one* series with self-join
nearest-neighbour distances, the instance profile annotates a *class* of a
dataset: ``Q_N`` random samples of ``Q_S`` instances are drawn per class
(bagging, Breiman 1996), each sample is concatenated, and each subsequence
is annotated with its nearest-neighbour distance among subsequences of
*other* instances in the sample (Def. 9's ``m' != m``). Motifs (IP minima)
and discords (IP maxima) become the shapelet-candidate pool (Algorithm 1).
"""

from repro.instanceprofile.candidates import CandidatePool, generate_candidates
from repro.instanceprofile.profile import InstanceProfile, instance_profile
from repro.instanceprofile.sampling import BaggingSampler, resolve_lengths

__all__ = [
    "BaggingSampler",
    "CandidatePool",
    "InstanceProfile",
    "generate_candidates",
    "instance_profile",
    "resolve_lengths",
]
