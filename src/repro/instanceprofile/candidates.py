"""Algorithm 1: shapelet-candidate generation with the instance profile.

For every class: draw ``Q_N`` bagging samples of ``Q_S`` instances,
concatenate each sample, compute the instance profile at every candidate
length, and harvest the motif (IP minimum) and discord (IP maximum) as
candidates. Candidates carry full provenance (instance, offset, sample id)
for interpretability.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import EmptyPoolError, ValidationError
from repro.instanceprofile.profile import instance_profile
from repro.instanceprofile.sampling import BaggingSampler
from repro.kernels import SeriesCache
from repro.matrixprofile.discovery import top_k_discords, top_k_motifs
from repro.obs import NULL_TRACER
from repro.ts.concat import concatenate_series
from repro.ts.series import Dataset
from repro.types import Candidate, CandidateKind


@dataclass
class CandidatePool:
    """The paper's candidate pool Phi, organized per class and kind."""

    _motifs: dict[int, list[Candidate]] = field(default_factory=dict)
    _discords: dict[int, list[Candidate]] = field(default_factory=dict)

    @property
    def classes(self) -> list[int]:
        """Class labels present in the pool, sorted."""
        return sorted(set(self._motifs) | set(self._discords))

    def add(self, candidate: Candidate) -> None:
        """Insert a candidate under its label and kind."""
        store = self._motifs if candidate.kind is CandidateKind.MOTIF else self._discords
        store.setdefault(candidate.label, []).append(candidate)

    def motifs(self, label: int) -> list[Candidate]:
        """Motif candidates of a class (the paper's Phi_C^motif)."""
        return list(self._motifs.get(label, []))

    def discords(self, label: int) -> list[Candidate]:
        """Discord candidates of a class (the paper's Phi_C^discord)."""
        return list(self._discords.get(label, []))

    def all_of_class(self, label: int) -> list[Candidate]:
        """Motifs then discords of a class (the paper's Phi_C)."""
        return self.motifs(label) + self.discords(label)

    def other_classes(self, label: int) -> list[Candidate]:
        """All candidates of every class except ``label`` (Phi_{C-bar})."""
        out: list[Candidate] = []
        for cls in self.classes:
            if cls != label:
                out.extend(self.all_of_class(cls))
        return out

    def remove(self, candidate: Candidate) -> bool:
        """Remove one candidate (Algorithm 3, lines 6/9). Returns success."""
        store = self._motifs if candidate.kind is CandidateKind.MOTIF else self._discords
        bucket = store.get(candidate.label)
        if not bucket:
            return False
        try:
            bucket.remove(candidate)
        except ValueError:
            return False
        return True

    def counts(self) -> dict[int, tuple[int, int]]:
        """Per-class ``(n_motifs, n_discords)``."""
        return {
            cls: (len(self._motifs.get(cls, [])), len(self._discords.get(cls, [])))
            for cls in self.classes
        }

    def __len__(self) -> int:
        return sum(len(v) for v in self._motifs.values()) + sum(
            len(v) for v in self._discords.values()
        )

    def __iter__(self):
        for cls in self.classes:
            yield from self.all_of_class(cls)

    def copy(self) -> "CandidatePool":
        """Shallow copy (candidates are immutable, lists are fresh)."""
        out = CandidatePool()
        out._motifs = {k: list(v) for k, v in self._motifs.items()}
        out._discords = {k: list(v) for k, v in self._discords.items()}
        return out


def _harvest(
    out: list[Candidate],
    ip,
    label: int,
    sample_id: int,
    kind: CandidateKind,
    per_profile: int,
) -> None:
    """Extract top positions from one instance profile into ``out``."""
    picker = top_k_motifs if kind is CandidateKind.MOTIF else top_k_discords
    for position, _value in picker(ip.profile, per_profile):
        instance_id, offset = ip.locate(position)
        out.append(
            Candidate(
                values=ip.subsequence(position),
                label=label,
                kind=kind,
                source_instance=instance_id,
                start=offset,
                sample_id=sample_id,
            )
        )


def _unit_candidates(
    dataset: Dataset,
    rows: np.ndarray,
    label: int,
    sample_id: int,
    lengths: list[int],
    motifs_per_profile: int,
    discords_per_profile: int,
    normalized: bool,
    counters=None,
    tracer=NULL_TRACER,
) -> list[Candidate]:
    """Algorithm-1 inner loop for one (class, sample) work unit.

    Each unit gets a private :class:`~repro.kernels.SeriesCache` scoped
    to its concatenated sample: the sample's cumulative sums and FFT
    spectra are computed once and reused across the whole candidate-length
    grid, then released with the unit (bounding memory over the
    ``Q_N x n_classes`` unit stream). ``counters`` aggregates the cache's
    hit/miss/FFT tallies into the run-wide perf counters; ``tracer``
    records one ``"unit"`` span with nested per-length ``"mp"`` spans.
    """
    with tracer.span("unit", label=label, sample_id=sample_id) as unit_span:
        sample = concatenate_series(dataset.X[rows], instance_ids=rows)
        unit_cache = SeriesCache(counters=counters)
        unit: list[Candidate] = []
        min_instance = int(np.diff(sample.boundaries).min())
        for length in lengths:
            if length > min_instance:
                # Window longer than some instance: skip this length.
                continue
            with tracer.span("mp", length=length) as mp_span:
                ip = instance_profile(
                    sample, length, normalized=normalized, cache=unit_cache
                )
                if not np.any(np.isfinite(ip.values)):
                    mp_span.set(degenerate=True)
                    continue
                _harvest(
                    unit, ip, label, sample_id, CandidateKind.MOTIF,
                    motifs_per_profile,
                )
                _harvest(
                    unit, ip, label, sample_id, CandidateKind.DISCORD,
                    discords_per_profile,
                )
        unit_span.set(n_candidates=len(unit))
    return unit


def generate_candidates(
    dataset: Dataset,
    q_n: int,
    q_s: int,
    lengths: list[int],
    motifs_per_profile: int = 1,
    discords_per_profile: int = 1,
    normalized: bool = True,
    seed: int | np.random.Generator | None = None,
    budget_tracker=None,
    perf_counters=None,
    tracer=NULL_TRACER,
) -> CandidatePool:
    """Algorithm 1: generate the candidate pool Phi with the IP.

    Parameters
    ----------
    dataset:
        Training data.
    q_n, q_s:
        Sample count and sample size (bagging parameters).
    lengths:
        Concrete candidate lengths (use
        :func:`repro.instanceprofile.sampling.resolve_lengths` to derive
        them from the paper's ratios).
    motifs_per_profile, discords_per_profile:
        How many motifs/discords to harvest per instance profile; the paper
        takes one of each (min and max of the IP).
    normalized:
        Distance flavour for the underlying profile computation.
    seed:
        Reproducibility seed for the bagging sampler.
    budget_tracker:
        Optional :class:`repro.core.budget.BudgetTracker`. Units are
        processed round-robin across classes (all classes at sample 0,
        then sample 1, ...) and the budget is checked between rounds, so
        an exhausted budget truncates at a round boundary with every
        class equally covered. The first round always completes. The
        per-class candidate lists are identical to the unbudgeted run up
        to the truncation point: bagging samples are pre-drawn in the
        historical class-major RNG order.
    perf_counters:
        Optional :class:`repro.kernels.PerfCounters`; per-unit kernel
        caches report their hit/miss/FFT tallies into it. Never affects
        the candidates produced.
    tracer:
        Optional :class:`repro.obs.Trace`; each work unit records a
        ``"unit"`` span (label, sample id, candidate count) containing a
        ``"mp"`` span per candidate length. Defaults to the no-op
        :data:`repro.obs.NULL_TRACER`.
    """
    if tracer is None:
        tracer = NULL_TRACER
    if not lengths:
        raise ValidationError("at least one candidate length is required")
    for length in lengths:
        if not 2 <= length <= dataset.series_length:
            raise ValidationError(
                f"candidate length {length} invalid for series of length "
                f"{dataset.series_length}"
            )
    sampler = BaggingSampler(q_n=q_n, q_s=q_s, seed=seed)
    # Class-major draw order keeps pools bit-identical to older releases.
    samples_by_class = [
        sampler.samples_for_class(dataset.class_indices(label))
        for label in range(dataset.n_classes)
    ]
    pool = CandidatePool()
    rounds_completed = 0
    for sample_id in range(q_n):
        if budget_tracker is not None and sample_id > 0 and budget_tracker.exhausted:
            break
        for label in range(dataset.n_classes):
            unit = _unit_candidates(
                dataset,
                samples_by_class[label][sample_id],
                label,
                sample_id,
                lengths,
                motifs_per_profile,
                discords_per_profile,
                normalized,
                counters=perf_counters,
                tracer=tracer,
            )
            for candidate in unit:
                pool.add(candidate)
            if budget_tracker is not None:
                budget_tracker.charge(
                    len(unit), sum(c.length for c in unit)
                )
        rounds_completed += 1
    if budget_tracker is not None:
        budget_tracker.record_phase(
            "generation",
            rounds_completed=rounds_completed,
            rounds_total=q_n,
            truncated=rounds_completed < q_n,
        )
    if len(pool) == 0:
        raise EmptyPoolError(
            "candidate generation produced no candidates; check lengths and data"
        )
    return pool
