"""Bagging-style instance sampling for the instance profile (Def. 9).

Each of the ``Q_N`` samples draws ``Q_S`` instances of a class uniformly at
random *without replacement inside the sample* (a sample of identical
copies would make the cross-instance nearest neighbour trivially zero),
with replacement *across* samples — the "bagging way" [Breiman 1996] cited
by Algorithm 1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError


def resolve_lengths(series_length: int, ratios: tuple[float, ...]) -> list[int]:
    """Turn the paper's length *ratios* into concrete subsequence lengths.

    §IV-A: "the lengths of shapelet candidates are given as a ratio of the
    subsequence length to the length of the original time series", ratios in
    {0.1, ..., 0.5}. Lengths are clipped to [3, N], deduplicated, sorted.
    """
    if series_length < 3:
        raise ValidationError(f"series too short: {series_length}")
    lengths: set[int] = set()
    for ratio in ratios:
        if not 0.0 < ratio <= 1.0:
            raise ValidationError(f"length ratio must be in (0, 1], got {ratio}")
        lengths.add(int(min(series_length, max(3, round(ratio * series_length)))))
    return sorted(lengths)


@dataclass
class BaggingSampler:
    """Draws the ``Q_N x Q_S`` instance samples of Algorithm 1.

    Parameters
    ----------
    q_n:
        Number of samples per class (paper: from {10, 20, 50, 100}).
    q_s:
        Instances per sample (paper: from {2, 3, 4, 5, 10}); clamped to the
        class size, and at least 2 whenever the class has >= 2 instances so
        the cross-instance profile is defined.
    seed:
        Seed (or Generator) for reproducibility.
    """

    q_n: int
    q_s: int
    seed: int | np.random.Generator | None = None

    def __post_init__(self) -> None:
        if self.q_n < 1:
            raise ValidationError(f"q_n must be >= 1, got {self.q_n}")
        if self.q_s < 1:
            raise ValidationError(f"q_s must be >= 1, got {self.q_s}")
        self._rng = (
            self.seed
            if isinstance(self.seed, np.random.Generator)
            else np.random.default_rng(self.seed)
        )

    def samples_for_class(self, class_indices: np.ndarray) -> list[np.ndarray]:
        """The ``Q_N`` samples (arrays of dataset row indices) for one class.

        Each sample has ``min(Q_S, |D_C|)`` distinct indices, but at least 2
        when the class holds at least 2 instances.
        """
        class_indices = np.asarray(class_indices, dtype=np.int64)
        if class_indices.size == 0:
            raise ValidationError("class has no instances to sample from")
        size = min(self.q_s, class_indices.size)
        if class_indices.size >= 2:
            size = max(size, 2)
        return [
            self._rng.choice(class_indices, size=size, replace=False)
            for _ in range(self.q_n)
        ]
