"""Instance-profile computation over a concatenated sample (Def. 8 / 9)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kernels import SeriesCache
from repro.matrixprofile.profile import MatrixProfile
from repro.matrixprofile.stomp import stomp_self_join
from repro.ts.concat import ConcatenatedSeries
from repro.ts.windows import num_windows


@dataclass
class InstanceProfile:
    """The instance profile of one concatenated sample at one window length.

    Wraps the underlying :class:`MatrixProfile` together with the
    concatenation provenance so that motif/discord *positions in the long
    series* can be mapped back to ``(training instance, offset)`` pairs.
    """

    profile: MatrixProfile
    sample: ConcatenatedSeries
    window: int

    @property
    def values(self) -> np.ndarray:
        """Nearest-cross-instance-neighbour distance per window (Def. 8)."""
        return self.profile.values

    def __len__(self) -> int:
        return len(self.profile)

    def locate(self, position: int) -> tuple[int, int]:
        """Map a window start back to ``(instance_id, offset)``."""
        return self.sample.locate(position, self.window)

    def subsequence(self, position: int) -> np.ndarray:
        """The raw subsequence values at a window start."""
        return self.sample.values[position : position + self.window].copy()


def instance_profile(
    sample: ConcatenatedSeries,
    window: int,
    normalized: bool = True,
    cache: SeriesCache | None = None,
) -> InstanceProfile:
    """Compute the instance profile of a concatenated sample (Def. 8/9).

    Every length-``window`` subsequence is annotated with the distance to
    its nearest neighbour among subsequences of the *other* instances in
    the sample (``m' != m``); windows crossing instance junctions are
    masked out entirely. A single-instance sample (a class with only one
    training instance) has no "other instance", so it degrades to the
    ordinary within-series matrix profile with trivial-match exclusion.

    ``cache`` (a :class:`repro.kernels.SeriesCache`) lets the candidate
    generator share the sample's cumulative sums and FFT spectra across
    the candidate-length grid instead of recomputing them per length.
    """
    n_out = num_windows(len(sample), window)
    valid = sample.valid_window_mask(window)
    if sample.n_instances > 1:
        starts = np.arange(n_out)
        groups = np.searchsorted(sample.boundaries, starts, side="right") - 1
    else:
        groups = None
    profile = stomp_self_join(
        sample.values,
        window,
        valid_mask=valid,
        normalized=normalized,
        groups=groups,
        cache=cache,
    )
    return InstanceProfile(profile=profile, sample=sample, window=window)
