"""Deterministic repair policies applied by the validation layer.

Every policy is a pure function of its inputs: the same dirty array is
always repaired to the same clean array, so a run on repaired data is as
reproducible as a run on clean data.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError


def interpolate_gaps(series: np.ndarray) -> tuple[np.ndarray, int]:
    """Fill non-finite gaps by linear interpolation between finite points.

    Interior gaps are linearly interpolated; leading/trailing gaps are
    filled with the nearest finite value (no extrapolation is invented).

    Returns the repaired copy and the number of values filled. A series
    with no finite values cannot be repaired and raises
    :class:`ValidationError` — callers fall back to drop-with-record.
    """
    arr = np.asarray(series, dtype=np.float64)
    if arr.ndim != 1:
        raise ValidationError(f"interpolate_gaps expects 1-D, got {arr.shape}")
    finite = np.isfinite(arr)
    n_bad = int(arr.size - finite.sum())
    if n_bad == 0:
        return arr.copy(), 0
    if not finite.any():
        raise ValidationError("series has no finite values to interpolate from")
    positions = np.arange(arr.size)
    repaired = arr.copy()
    repaired[~finite] = np.interp(
        positions[~finite], positions[finite], arr[finite]
    )
    return repaired, n_bad


def pad_or_truncate(series: np.ndarray, target_length: int) -> np.ndarray:
    """Bring a series to ``target_length``: truncate the tail or edge-pad.

    Padding replicates the last value (edge padding invents no new
    dynamics, unlike zero padding which fabricates a level shift).
    """
    arr = np.asarray(series, dtype=np.float64)
    if arr.ndim != 1 or arr.size == 0:
        raise ValidationError("pad_or_truncate expects a non-empty 1-D series")
    if target_length < 1:
        raise ValidationError(f"target_length must be >= 1, got {target_length}")
    if arr.size == target_length:
        return arr.copy()
    if arr.size > target_length:
        return arr[:target_length].copy()
    pad = np.full(target_length - arr.size, arr[-1])
    return np.concatenate([arr, pad])


def drop_rows(
    X: np.ndarray, y: np.ndarray, rows: list[int]
) -> tuple[np.ndarray, np.ndarray]:
    """Remove the given row indices from a dataset (drop-with-record).

    The *record* half of the policy lives in the caller's
    :class:`~repro.validation.contracts.RepairRecord`; this helper only
    performs the deterministic removal.
    """
    keep = np.setdiff1d(np.arange(len(X)), np.asarray(rows, dtype=np.int64))
    if keep.size == 0:
        raise ValidationError("repair would drop every instance")
    return X[keep], np.asarray(y)[keep]


def majority_length(lengths: list[int]) -> int:
    """The repair target for ragged datasets: most common length.

    Ties break toward the *longer* length (truncation discards real data;
    edge padding is the milder distortion).
    """
    if not lengths:
        raise ValidationError("no lengths to vote over")
    values, counts = np.unique(np.asarray(lengths, dtype=np.int64), return_counts=True)
    best = counts.max()
    return int(values[counts == best].max())
