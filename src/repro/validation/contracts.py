"""Data contracts: findings, severities, and the validation entry points.

A *contract check* inspects the raw input and emits :class:`Finding`
objects. Each finding carries a severity and names the deterministic
repair policy that would fix it:

===================  ========  =======================================
code                 severity  repair policy
===================  ========  =======================================
``empty``            ERROR     none (always raises)
``ragged-lengths``   ERROR     ``pad_or_truncate`` to majority length
``non-finite``       ERROR     ``interpolate_gaps`` per row
``unrepairable-row`` ERROR     ``drop`` (row has no finite values)
``short-series``     ERROR     ``pad_or_truncate`` to the minimum
``constant-series``  WARNING   none needed (flat-window convention)
``all-identical``    WARNING   none (dataset carries no signal)
``duplicate-rows``   WARNING   recorded; ``drop`` only when asked
``conflicting-dup``  WARNING   recorded (same series, different label)
``small-class``      WARNING   recorded (class below ``min_class_size``)
===================  ========  =======================================

``mode="strict"`` raises on ERROR findings, ``mode="repair"`` applies the
policies and records every change, ``mode="off"`` skips the checks and
constructs the :class:`~repro.ts.series.Dataset` directly (the legacy
path — NaN input then fails in the ``Dataset`` constructor).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from repro.exceptions import ValidationError
from repro.ts.preprocessing import FLAT_STD
from repro.ts.series import Dataset
from repro.validation.repair import (
    interpolate_gaps,
    majority_length,
    pad_or_truncate,
)

VALIDATION_MODES = ("strict", "repair", "off")


class Severity(str, Enum):
    """How bad a finding is: ERROR blocks a strict run, WARNING does not."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True)
class Finding:
    """One contract violation, with the rows it concerns."""

    code: str
    severity: Severity
    message: str
    rows: tuple[int, ...] = ()
    repair: str | None = None

    def __str__(self) -> str:
        loc = f" (rows {list(self.rows[:10])})" if self.rows else ""
        return f"[{self.severity.value}] {self.code}: {self.message}{loc}"


@dataclass(frozen=True)
class RepairRecord:
    """One repair the validator actually applied."""

    code: str
    policy: str
    rows: tuple[int, ...]
    detail: str = ""

    def __str__(self) -> str:
        return f"{self.code} -> {self.policy} on rows {list(self.rows[:10])}"


@dataclass
class ValidationReport:
    """Structured outcome of a validation pass.

    Attached to ``DiscoveryResult.extra["validation_report"]`` so a
    discovery run records exactly what was repaired in its inputs.
    """

    mode: str
    name: str = ""
    findings: list[Finding] = field(default_factory=list)
    repairs: list[RepairRecord] = field(default_factory=list)
    n_series_in: int = 0
    n_series_out: int = 0

    @property
    def errors(self) -> list[Finding]:
        """ERROR-severity findings."""
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Finding]:
        """WARNING-severity findings."""
        return [f for f in self.findings if f.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        """True when no ERROR finding is left unrepaired."""
        repaired = {(r.code, r.rows) for r in self.repairs}
        return all((f.code, f.rows) in repaired for f in self.errors)

    def add(self, finding: Finding) -> None:
        """Record a finding."""
        self.findings.append(finding)

    def record_repair(
        self, finding: Finding, policy: str, detail: str = ""
    ) -> None:
        """Record that ``finding`` was fixed by ``policy``."""
        self.repairs.append(
            RepairRecord(
                code=finding.code, policy=policy, rows=finding.rows, detail=detail
            )
        )

    def summary(self) -> str:
        """Human-readable multi-line summary."""
        label = self.name or "<unnamed>"
        lines = [
            f"validation of {label} (mode={self.mode}): "
            f"{len(self.errors)} errors, {len(self.warnings)} warnings, "
            f"{len(self.repairs)} repairs, "
            f"{self.n_series_in} -> {self.n_series_out} series"
        ]
        lines.extend(f"  {f}" for f in self.findings)
        lines.extend(f"  repaired: {r}" for r in self.repairs)
        return "\n".join(lines)

    def raise_if_errors(self) -> None:
        """Raise :class:`ValidationError` when unrepaired errors remain."""
        repaired = {(r.code, r.rows) for r in self.repairs}
        open_errors = [
            f for f in self.errors if (f.code, f.rows) not in repaired
        ]
        if open_errors:
            detail = "; ".join(str(f) for f in open_errors[:5])
            raise ValidationError(
                f"{self.name or 'dataset'} failed validation: {detail}"
            )


@dataclass(frozen=True)
class ValidatedDataset:
    """A repaired dataset plus the report describing what happened."""

    dataset: Dataset
    report: ValidationReport


def _coerce_rows(X: object) -> list[np.ndarray]:
    """Turn the accepted input shapes into a list of 1-D float rows."""
    if isinstance(X, np.ndarray) and X.ndim == 2:
        return [np.asarray(row, dtype=np.float64) for row in X]
    if isinstance(X, np.ndarray) and X.ndim == 1:
        return [np.asarray(X, dtype=np.float64)]
    rows = []
    for i, row in enumerate(X):
        arr = np.asarray(row, dtype=np.float64)
        if arr.ndim != 1:
            raise ValidationError(f"row {i} is not 1-D (shape {arr.shape})")
        rows.append(arr)
    return rows


def _check_mode(mode: str) -> None:
    if mode not in VALIDATION_MODES:
        raise ValidationError(
            f"unknown validation mode {mode!r}; choose from {VALIDATION_MODES}"
        )


def validate_series(
    series: np.ndarray,
    *,
    mode: str = "strict",
    min_length: int = 3,
    name: str = "series",
) -> tuple[np.ndarray, ValidationReport]:
    """Validate (and in repair mode fix) a single 1-D series.

    Returns the (possibly repaired) float64 array and the report. An
    empty series, or one with no finite values, is unrepairable and
    always raises.
    """
    _check_mode(mode)
    arr = np.asarray(series, dtype=np.float64)
    if arr.ndim != 1:
        raise ValidationError(f"{name} must be 1-D, got shape {arr.shape}")
    if arr.size == 0:
        raise ValidationError(f"{name} must be non-empty")
    report = ValidationReport(mode=mode, name=name, n_series_in=1, n_series_out=1)
    if mode == "off":
        return arr.copy(), report

    finite = np.isfinite(arr)
    if not finite.all():
        finding = Finding(
            code="non-finite",
            severity=Severity.ERROR,
            message=f"{int((~finite).sum())} non-finite values",
            rows=(0,),
            repair="interpolate_gaps",
        )
        report.add(finding)
        if mode == "repair" and finite.any():
            arr, n_filled = interpolate_gaps(arr)
            report.record_repair(
                finding, "interpolate_gaps", f"filled {n_filled} values"
            )
    if arr.size < min_length:
        finding = Finding(
            code="short-series",
            severity=Severity.ERROR,
            message=f"length {arr.size} < required minimum {min_length}",
            rows=(0,),
            repair="pad_or_truncate",
        )
        report.add(finding)
        if mode == "repair":
            arr = pad_or_truncate(arr, min_length)
            report.record_repair(
                finding, "pad_or_truncate", f"padded to {min_length}"
            )
    if arr.size and np.isfinite(arr).all() and float(np.std(arr)) < FLAT_STD:
        report.add(
            Finding(
                code="constant-series",
                severity=Severity.WARNING,
                message="series is constant (flat-window convention applies)",
                rows=(0,),
            )
        )
    if mode == "strict":
        report.raise_if_errors()
    return arr.copy(), report


def validate_dataset(
    X: object,
    y: object = None,
    *,
    mode: str = "repair",
    min_class_size: int = 2,
    min_series_length: int = 3,
    drop_duplicates: bool = False,
    name: str = "",
) -> ValidatedDataset:
    """Check a labelled dataset against the data contracts.

    Parameters
    ----------
    X:
        ``(M, N)`` matrix, a list of 1-D arrays (may be ragged), or an
        existing :class:`Dataset` (then ``y`` must be omitted).
    y:
        Integer labels, one per row.
    mode:
        ``"strict"`` (raise on errors), ``"repair"`` (fix and record), or
        ``"off"`` (legacy passthrough).
    min_class_size:
        Classes with fewer examples are flagged (WARNING).
    min_series_length:
        Series shorter than this are an ERROR; the repair policy pads.
        The IPS pipeline needs at least 3 points for its shortest
        candidate length (see ``resolve_lengths``).
    drop_duplicates:
        When True (repair mode), exact duplicate rows with the same
        label are dropped, keeping the first occurrence.
    name:
        Dataset name, carried into the report and the repaired dataset.
    """
    _check_mode(mode)
    if isinstance(X, Dataset):
        if y is not None:
            raise ValidationError("pass either a Dataset or (X, y), not both")
        y = X.classes_[X.y]
        name = name or X.name
        X = X.X
    if y is None:
        raise ValidationError("labels y are required")

    rows = _coerce_rows(X)
    labels = np.asarray(y)
    if labels.ndim != 1 or labels.shape[0] != len(rows):
        raise ValidationError(
            f"labels length {labels.shape} does not match {len(rows)} series"
        )
    if len(rows) == 0:
        raise ValidationError("dataset is empty")
    report = ValidationReport(mode=mode, name=name, n_series_in=len(rows))
    if mode == "off":
        dataset = Dataset(X=np.vstack(rows), y=labels, name=name)
        report.n_series_out = dataset.n_series
        return ValidatedDataset(dataset=dataset, report=report)

    # 1. Ragged lengths -> pad/truncate to the majority length.
    lengths = [row.size for row in rows]
    if len(set(lengths)) > 1:
        target = majority_length(lengths)
        ragged = tuple(i for i, n in enumerate(lengths) if n != target)
        finding = Finding(
            code="ragged-lengths",
            severity=Severity.ERROR,
            message=(
                f"series lengths differ ({sorted(set(lengths))}); "
                f"majority length is {target}"
            ),
            rows=ragged,
            repair="pad_or_truncate",
        )
        report.add(finding)
        if mode == "repair":
            rows = [
                pad_or_truncate(row, target) if row.size != target else row
                for row in rows
            ]
            report.record_repair(
                finding, "pad_or_truncate", f"target length {target}"
            )

    # 2. Non-finite values -> interpolate; hopeless rows -> drop.
    gap_rows = tuple(
        i for i, row in enumerate(rows) if not np.isfinite(row).all()
    )
    if gap_rows:
        hopeless = tuple(
            i for i in gap_rows if not np.isfinite(rows[i]).any()
        )
        repairable = tuple(i for i in gap_rows if i not in set(hopeless))
        if repairable:
            finding = Finding(
                code="non-finite",
                severity=Severity.ERROR,
                message=f"{len(repairable)} series contain NaN/inf gaps",
                rows=repairable,
                repair="interpolate_gaps",
            )
            report.add(finding)
            if mode == "repair":
                filled = 0
                for i in repairable:
                    rows[i], n = interpolate_gaps(rows[i])
                    filled += n
                report.record_repair(
                    finding, "interpolate_gaps", f"filled {filled} values"
                )
        if hopeless:
            finding = Finding(
                code="unrepairable-row",
                severity=Severity.ERROR,
                message=f"{len(hopeless)} series have no finite values",
                rows=hopeless,
                repair="drop",
            )
            report.add(finding)
            if mode == "repair":
                keep = [i for i in range(len(rows)) if i not in set(hopeless)]
                if not keep:
                    raise ValidationError(
                        f"{name or 'dataset'}: every series is unrepairable"
                    )
                rows = [rows[i] for i in keep]
                labels = labels[keep]
                report.record_repair(finding, "drop", "removed hopeless rows")

    # 3. Series too short for any shapelet length -> pad.
    if mode == "repair" or not report.errors:
        common = rows[0].size if len({r.size for r in rows}) == 1 else None
    else:
        common = None
    if common is not None and common < min_series_length:
        finding = Finding(
            code="short-series",
            severity=Severity.ERROR,
            message=(
                f"series length {common} is below the minimum "
                f"{min_series_length} required by the shapelet-length grid"
            ),
            rows=tuple(range(len(rows))),
            repair="pad_or_truncate",
        )
        report.add(finding)
        if mode == "repair":
            rows = [pad_or_truncate(row, min_series_length) for row in rows]
            report.record_repair(
                finding, "pad_or_truncate", f"padded to {min_series_length}"
            )

    # 4. Constant series (legal; the flat-window convention covers them).
    flat = tuple(
        i
        for i, row in enumerate(rows)
        if np.isfinite(row).all() and float(np.std(row)) < FLAT_STD
    )
    if flat:
        report.add(
            Finding(
                code="constant-series",
                severity=Severity.WARNING,
                message=(
                    f"{len(flat)} constant series (z-normalized distances "
                    "follow the flat-window convention)"
                ),
                rows=flat,
            )
        )

    # 5. Duplicates: same values, same or conflicting label.
    seen: dict[bytes, tuple[int, int]] = {}
    dup_same: list[int] = []
    dup_conflict: list[int] = []
    for i, row in enumerate(rows):
        key = row.tobytes()
        if key in seen:
            first_row, first_label = seen[key]
            if int(labels[i]) == first_label:
                dup_same.append(i)
            else:
                dup_conflict.append(i)
        else:
            seen[key] = (i, int(labels[i]))
    if len(seen) == 1 and len(rows) > 1:
        report.add(
            Finding(
                code="all-identical",
                severity=Severity.WARNING,
                message="every series is identical; the data carries no signal",
                rows=tuple(range(len(rows))),
            )
        )
    else:
        if dup_same:
            finding = Finding(
                code="duplicate-rows",
                severity=Severity.WARNING,
                message=f"{len(dup_same)} exact duplicate series (same label)",
                rows=tuple(dup_same),
                repair="drop" if drop_duplicates else None,
            )
            report.add(finding)
            if mode == "repair" and drop_duplicates:
                keep = [i for i in range(len(rows)) if i not in set(dup_same)]
                rows = [rows[i] for i in keep]
                labels = labels[keep]
                report.record_repair(finding, "drop", "kept first occurrences")
        if dup_conflict:
            report.add(
                Finding(
                    code="conflicting-dup",
                    severity=Severity.WARNING,
                    message=(
                        f"{len(dup_conflict)} series duplicate an earlier "
                        "series under a different label"
                    ),
                    rows=tuple(dup_conflict),
                )
            )

    # 6. Classes with too few examples.
    unique, counts = np.unique(np.asarray(labels, dtype=np.int64), return_counts=True)
    small = unique[counts < min_class_size]
    if small.size:
        small_rows = tuple(
            int(i)
            for i in np.flatnonzero(np.isin(np.asarray(labels, dtype=np.int64), small))
        )
        report.add(
            Finding(
                code="small-class",
                severity=Severity.WARNING,
                message=(
                    f"classes {sorted(int(c) for c in small)} have fewer than "
                    f"{min_class_size} examples; their profiles degrade to "
                    "self-joins"
                ),
                rows=small_rows,
            )
        )

    if mode == "strict":
        report.raise_if_errors()

    dataset = Dataset(X=np.vstack(rows), y=labels, name=name)
    report.n_series_out = dataset.n_series
    return ValidatedDataset(dataset=dataset, report=report)
