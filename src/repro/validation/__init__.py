"""Data contracts for datasets entering the IPS pipeline.

Real archive data is dirty: the UCR-archive paper (Dau et al. 2019)
documents missing values, variable-length series, and long flat regions
in published datasets. This package turns those pathologies into
*findings* with a severity and a deterministic *repair policy*, instead
of letting them surface as opaque numpy errors deep inside a kernel.

Entry points
------------
``validate_dataset(X, y, mode=...)``
    Check a labelled dataset (dense matrix, ragged row list, or an
    existing :class:`repro.ts.series.Dataset`) against the contracts and
    return a repaired :class:`~repro.validation.contracts.ValidatedDataset`
    plus a structured report.
``validate_series(values, mode=...)``
    The single-series subset of the same contracts.

Modes: ``"strict"`` raises :class:`repro.exceptions.ValidationError` on
the first ERROR-severity finding, ``"repair"`` applies each finding's
repair policy and records what changed, ``"off"`` skips the checks.
"""

from repro.validation.contracts import (
    Finding,
    RepairRecord,
    Severity,
    ValidatedDataset,
    ValidationReport,
    validate_dataset,
    validate_series,
)
from repro.validation.repair import (
    drop_rows,
    interpolate_gaps,
    pad_or_truncate,
)

__all__ = [
    "Finding",
    "RepairRecord",
    "Severity",
    "ValidatedDataset",
    "ValidationReport",
    "drop_rows",
    "interpolate_gaps",
    "pad_or_truncate",
    "validate_dataset",
    "validate_series",
]
