"""A COTE-style weighted-vote ensemble augmented with IPS (COTE-IPS column).

The paper's best-performing method is COTE-IPS: the collective-of-
transformations ensemble with IPS added as a member. The full 35-member
COTE is out of scope (its members include entire other systems), but the
structure is faithfully reproduced: heterogeneous members — IPS, 1NN-ED,
1NN-DTW, Rotation Forest, and optionally any extra fit/predict estimator —
each weighted by its stratified cross-validation accuracy on the training
set, combining predictions by weighted voting.
"""

from __future__ import annotations

import numpy as np

from repro.classify.metrics import accuracy_score
from repro.classify.model_selection import StratifiedKFold
from repro.classify.neighbors import OneNearestNeighbor
from repro.classify.rotation_forest import RotationForest
from repro.core.config import IPSConfig
from repro.core.pipeline import IPSClassifier
from repro.exceptions import NotFittedError, ValidationError
from repro.ts.series import Dataset


class _UnivariateAdapter:
    """Wrap raw-series classifiers so every member sees (X, internal y)."""

    def __init__(self, factory) -> None:
        self._factory = factory
        self._model = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "_UnivariateAdapter":
        """Instantiate a fresh member and fit it."""
        self._model = self._factory()
        self._model.fit(X, y)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Delegate to the wrapped member."""
        return self._model.predict(X)


def default_members(config: IPSConfig) -> dict[str, object]:
    """The standard member set: IPS + the classical strong baselines."""
    return {
        "IPS": _UnivariateAdapter(lambda: IPSClassifier(config)),
        "1NN-ED": _UnivariateAdapter(lambda: OneNearestNeighbor("euclidean")),
        "1NN-DTW": _UnivariateAdapter(
            lambda: OneNearestNeighbor("dtw", band=10)
        ),
        "RotF": _UnivariateAdapter(
            lambda: RotationForest(n_estimators=8, group_size=8, seed=config.seed)
        ),
    }


class CoteIpsEnsemble:
    """Weighted-vote ensemble of heterogeneous TSC members.

    Parameters
    ----------
    config:
        IPS configuration for the IPS member (and seeds for the rest).
    members:
        Optional ``{name: estimator}`` override; estimators need
        ``fit(X, y)`` / ``predict(X)`` on raw series with internal labels.
    cv_splits:
        Stratified folds used to estimate each member's weight.
    """

    def __init__(
        self,
        config: IPSConfig | None = None,
        members: dict[str, object] | None = None,
        cv_splits: int = 3,
    ) -> None:
        if cv_splits < 2:
            raise ValidationError("cv_splits must be >= 2")
        self.config = config or IPSConfig()
        self._member_spec = members
        self.cv_splits = cv_splits
        self.weights_: dict[str, float] | None = None
        self._members: dict[str, object] | None = None
        self._classes: np.ndarray | None = None

    def _fresh_members(self) -> dict[str, object]:
        if self._member_spec is not None:
            return dict(self._member_spec)
        return default_members(self.config)

    def fit_dataset(self, dataset: Dataset) -> "CoteIpsEnsemble":
        """Weight members by CV accuracy, then refit each on all data."""
        X, y = dataset.X, dataset.y
        n_splits = min(self.cv_splits, int(np.bincount(y).min()), dataset.n_series)
        weights: dict[str, float] = {}
        if n_splits >= 2:
            folds = list(StratifiedKFold(n_splits=n_splits, seed=self.config.seed).split(y))
            for name in self._fresh_members():
                correct = total = 0
                for train_idx, test_idx in folds:
                    member = self._fresh_members()[name]
                    try:
                        member.fit(X[train_idx], y[train_idx])
                        predictions = member.predict(X[test_idx])
                    except Exception:  # noqa: BLE001 - degenerate fold
                        continue
                    correct += int(np.sum(predictions == y[test_idx]))
                    total += test_idx.size
                weights[name] = correct / total if total else 0.0
        else:
            weights = {name: 1.0 for name in self._fresh_members()}
        # Floor at a small epsilon so a 0-weight member cannot divide the
        # vote by zero when all members fail CV.
        self.weights_ = {name: max(w, 1e-6) for name, w in weights.items()}

        self._members = self._fresh_members()
        for member in self._members.values():
            member.fit(X, y)
        self._classes = dataset.classes_
        return self

    def fit(self, X: np.ndarray, y: np.ndarray) -> "CoteIpsEnsemble":
        """Fit on raw arrays."""
        return self.fit_dataset(Dataset(X=X, y=y))

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Weighted-vote prediction (original label values)."""
        if self._members is None or self._classes is None or self.weights_ is None:
            raise NotFittedError("call fit before predict")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        n_classes = self._classes.size
        votes = np.zeros((X.shape[0], n_classes))
        for name, member in self._members.items():
            predictions = np.asarray(member.predict(X), dtype=np.int64)
            weight = self.weights_[name]
            for row, pred in enumerate(predictions):
                votes[row, pred] += weight
        return self._classes[np.argmax(votes, axis=1)]

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Accuracy against original-valued labels."""
        return accuracy_score(np.asarray(y, dtype=np.int64), self.predict(X))
