"""Hamming LSH: bit sampling over quantized coordinates (Indyk & Motwani).

The original Hamming-space scheme samples coordinates of binary vectors.
Real-valued series are first quantized to ``n_levels`` uniform levels over
a fixed value range, then ``n_projections`` coordinates are sampled. Table
VII of the paper finds this the weakest scheme for time series — the
quantization discards amplitude detail — and this implementation
reproduces that ordering.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.lsh.base import validate_input


class HammingLSH:
    """Bit-sampling LSH over uniformly quantized values.

    Parameters
    ----------
    dim:
        Input dimension.
    n_projections:
        Number of sampled coordinates.
    n_levels:
        Quantization levels per coordinate.
    value_range:
        ``(low, high)`` clip range for quantization; values outside are
        clipped. The default ``(-4, 4)`` suits z-normalized data.
    seed:
        Reproducibility seed.
    """

    def __init__(
        self,
        dim: int,
        n_projections: int = 8,
        n_levels: int = 8,
        value_range: tuple[float, float] = (-4.0, 4.0),
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if dim < 1:
            raise ValidationError(f"dim must be >= 1, got {dim}")
        if n_projections < 1:
            raise ValidationError(f"n_projections must be >= 1, got {n_projections}")
        if n_levels < 2:
            raise ValidationError(f"n_levels must be >= 2, got {n_levels}")
        low, high = value_range
        if not low < high:
            raise ValidationError(f"invalid value_range {value_range}")
        self.dim = int(dim)
        self.n_projections = int(n_projections)
        self.n_levels = int(n_levels)
        self.value_range = (float(low), float(high))
        rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        # Sample with replacement when k > dim so short candidates still work.
        replace = self.n_projections > self.dim
        self._coords = rng.choice(self.dim, size=self.n_projections, replace=replace)
        self._scale = np.sqrt(self.dim / self.n_projections)

    def _quantize(self, x: np.ndarray) -> np.ndarray:
        low, high = self.value_range
        clipped = np.clip(x, low, high)
        step = (high - low) / self.n_levels
        levels = np.floor((clipped - low) / step).astype(np.int64)
        return np.minimum(levels, self.n_levels - 1)

    def project(self, x: np.ndarray) -> np.ndarray:
        """Sampled raw coordinates, scaled to preserve the norm in expectation."""
        x = validate_input(x, self.dim)
        return x[self._coords] * self._scale

    def project_batch(self, X: np.ndarray) -> np.ndarray:
        """Projections for every row of an ``(n, dim)`` matrix at once."""
        X = np.asarray(X, dtype=np.float64)
        return X[:, self._coords] * self._scale

    def signature(self, x: np.ndarray) -> tuple:
        """Quantized values at the sampled coordinates."""
        x = validate_input(x, self.dim)
        return tuple(self._quantize(x[self._coords]))
