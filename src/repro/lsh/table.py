"""Bucket table: items hashed by an LSH family, with per-bucket centers.

This is the "LSH_C" half of a DABF (Fig. 7 of the paper): candidates are
hashed into buckets; each bucket tracks the mean of its members'
projections (its *center*); buckets are then ranked by the distance between
their center and the origin, giving every member a scalar position in the
codomain. That scalar feeds both the distribution fit (Algorithm 2) and the
DT optimization's ``|B_i - B_j|`` bound (Formula 15).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ValidationError
from repro.lsh.base import LSHFamily


@dataclass
class Bucket:
    """One LSH bucket: member item ids plus the running projection sum."""

    key: tuple
    items: list[int] = field(default_factory=list)
    _proj_sum: np.ndarray = None  # type: ignore[assignment]

    def add(self, item_id: int, projection: np.ndarray) -> None:
        """Insert a member."""
        self.items.append(item_id)
        if self._proj_sum is None:
            self._proj_sum = projection.astype(np.float64, copy=True)
        else:
            self._proj_sum += projection

    @property
    def size(self) -> int:
        """Number of members."""
        return len(self.items)

    @property
    def center(self) -> np.ndarray:
        """Mean projection of the members (the bucket center of Fig. 7)."""
        if self._proj_sum is None:
            raise ValidationError("bucket is empty")
        return self._proj_sum / len(self.items)

    @property
    def center_norm(self) -> float:
        """Distance between the bucket center and the origin."""
        return float(np.linalg.norm(self.center))


class LSHTable:
    """Items hashed by one family into ranked buckets.

    Parameters
    ----------
    family:
        The hashing scheme (fixed input dimension).
    """

    def __init__(self, family: LSHFamily) -> None:
        self.family = family
        self._buckets: dict[tuple, Bucket] = {}
        self._n_items = 0
        self._item_norms: list[float] = []
        self._ranked_cache: list[Bucket] | None = None

    def add(self, x: np.ndarray, item_id: int | None = None) -> int:
        """Hash ``x`` into its bucket; returns the item id used."""
        if item_id is None:
            item_id = self._n_items
        key = self.family.signature(x)
        projection = self.family.project(x)
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = Bucket(key=key)
            self._buckets[key] = bucket
        bucket.add(int(item_id), projection)
        self._item_norms.append(float(np.linalg.norm(projection)))
        self._n_items += 1
        self._ranked_cache = None
        return int(item_id)

    @property
    def n_items(self) -> int:
        """Total items inserted."""
        return self._n_items

    @property
    def n_buckets(self) -> int:
        """Number of distinct buckets."""
        return len(self._buckets)

    def buckets(self) -> list[Bucket]:
        """All buckets, unordered (Algorithm 2, line 6)."""
        return list(self._buckets.values())

    def ranked_buckets(self) -> list[Bucket]:
        """Buckets sorted by center-to-origin distance (Algorithm 2, line 7)."""
        if self._ranked_cache is None:
            self._ranked_cache = sorted(
                self._buckets.values(), key=lambda b: b.center_norm
            )
        return self._ranked_cache

    def _rank_index(self) -> tuple[dict[tuple, int], np.ndarray]:
        """(signature -> rank) map plus the sorted center norms."""
        ranked = self.ranked_buckets()
        key_rank = {bucket.key: rank for rank, bucket in enumerate(ranked)}
        norms = np.asarray([bucket.center_norm for bucket in ranked])
        return key_rank, norms

    def bucket_rank_of(self, x: np.ndarray) -> int:
        """Rank index a query would occupy among the ranked buckets.

        If the query's signature matches an existing bucket, that bucket's
        rank is returned; otherwise the insertion position of the query's
        projection norm among the ranked centers (the nearest rank in the
        codomain ordering).
        """
        if not self._buckets:
            raise ValidationError("table is empty")
        key_rank, norms = self._rank_index()
        key = self.family.signature(x)
        if key in key_rank:
            return key_rank[key]
        norm = float(np.linalg.norm(self.family.project(x)))
        return int(np.searchsorted(norms, norm))

    def bucket_ranks_batch(self, X: np.ndarray) -> np.ndarray:
        """Ranks for every row of ``X`` at once.

        Batch queries resolve by projection-norm position only (no
        signature lookup): the rank is the codomain coordinate the DT
        optimization needs, and the norm position is within one bucket of
        the signature rank by construction.
        """
        if not self._buckets:
            raise ValidationError("table is empty")
        _key_rank, norms = self._rank_index()
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValidationError("bucket_ranks_batch expects a 2-D matrix")
        project_batch = getattr(self.family, "project_batch", None)
        if project_batch is not None:
            query_norms = np.linalg.norm(project_batch(X), axis=1)
        else:
            query_norms = np.array(
                [np.linalg.norm(self.family.project(row)) for row in X]
            )
        return np.searchsorted(norms, query_norms).astype(np.int64)

    def query_norm(self, x: np.ndarray) -> float:
        """Distance between the query's projection and the origin.

        This is the DABF query statistic ``dist(LSH(e), 0)`` of Algorithm 3.
        """
        return float(np.linalg.norm(self.family.project(x)))

    def member_norms(self) -> np.ndarray:
        """Projection-to-origin distance of each inserted item.

        The histogram over these values is the "distribution of the hashed
        time series subsequences in the codomain" of Section III-B. Exact
        per-item norms are used (not the bucket-center norms) so that the
        distribution members and the query statistic of Algorithm 3 live
        on the same scale.
        """
        return np.asarray(self._item_norms, dtype=np.float64)
