"""The LSH family interface and the scheme factory."""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from repro.exceptions import ValidationError


@runtime_checkable
class LSHFamily(Protocol):
    """Interface implemented by every hashing scheme.

    A family is bound to a fixed input dimension at construction (the
    candidate length it will hash) and is deterministic given its seed.
    """

    dim: int

    def project(self, x: np.ndarray) -> np.ndarray:
        """Continuous embedding of ``x`` (approximately L2-preserving)."""
        ...

    def signature(self, x: np.ndarray) -> tuple:
        """Discrete bucket key of ``x`` (hashable tuple)."""
        ...


def validate_input(x: np.ndarray, dim: int) -> np.ndarray:
    """Shared input validation for all schemes."""
    arr = np.asarray(x, dtype=np.float64)
    if arr.ndim != 1:
        raise ValidationError(f"LSH input must be 1-D, got shape {arr.shape}")
    if arr.size != dim:
        raise ValidationError(f"LSH input has dim {arr.size}, family expects {dim}")
    return arr


def make_lsh(
    scheme: str,
    dim: int,
    n_projections: int = 8,
    seed: int | np.random.Generator | None = None,
    **kwargs,
) -> LSHFamily:
    """Factory for the three schemes of Table VII.

    Parameters
    ----------
    scheme:
        One of ``"l2"`` (p-stable, the paper's default), ``"cosine"``,
        ``"hamming"``.
    dim:
        Input dimension (the candidate length).
    n_projections:
        Number of hash functions composed into one signature.
    seed:
        Reproducibility seed.
    kwargs:
        Scheme-specific options (e.g. ``width`` for L2, ``n_levels`` for
        Hamming).
    """
    # Imports are local to avoid a circular import at package load.
    from repro.lsh.cosine import CosineLSH
    from repro.lsh.hamming import HammingLSH
    from repro.lsh.pstable import PStableL2LSH

    schemes = {
        "l2": PStableL2LSH,
        "cosine": CosineLSH,
        "hamming": HammingLSH,
    }
    key = scheme.lower()
    if key not in schemes:
        raise ValidationError(
            f"unknown LSH scheme {scheme!r}; choose from {sorted(schemes)}"
        )
    return schemes[key](dim=dim, n_projections=n_projections, seed=seed, **kwargs)
