"""Cosine (SimHash) LSH: random-hyperplane sign bits (Charikar 2002)."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.lsh.base import validate_input


class CosineLSH:
    """Random-hyperplane LSH for angular similarity.

    The signature is the sign pattern of ``A x``; collisions are likely for
    small angles. Table VII of the paper shows cosine slightly behind the
    L2 scheme for time series, since subsequence discrimination depends on
    magnitude as well as direction.
    """

    def __init__(
        self,
        dim: int,
        n_projections: int = 8,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if dim < 1:
            raise ValidationError(f"dim must be >= 1, got {dim}")
        if n_projections < 1:
            raise ValidationError(f"n_projections must be >= 1, got {n_projections}")
        self.dim = int(dim)
        self.n_projections = int(n_projections)
        rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        self._hyperplanes = rng.normal(size=(self.n_projections, self.dim))
        self._scale = 1.0 / np.sqrt(self.n_projections)

    def project(self, x: np.ndarray) -> np.ndarray:
        """Gaussian projection (shared with the L2 family for the statistic)."""
        x = validate_input(x, self.dim)
        return (self._hyperplanes @ x) * self._scale

    def project_batch(self, X: np.ndarray) -> np.ndarray:
        """Projections for every row of an ``(n, dim)`` matrix at once."""
        X = np.asarray(X, dtype=np.float64)
        return (X @ self._hyperplanes.T) * self._scale

    def signature(self, x: np.ndarray) -> tuple:
        """Sign bits of the hyperplane projections."""
        x = validate_input(x, self.dim)
        return tuple((self._hyperplanes @ x >= 0.0).astype(np.int8))
