"""Locality-sensitive hashing families (Def. 10 of the paper).

Three schemes, matching the Table VII ablation:

* :class:`PStableL2LSH` — the default; p-stable projections under the L2
  norm (Datar et al., SoCG 2004).
* :class:`CosineLSH` — SimHash random hyperplanes.
* :class:`HammingLSH` — bit sampling over quantized coordinates (shown by
  the paper to be the weakest for time series).

Every family exposes both a discrete ``signature`` (the bucket key) and a
continuous ``project`` embedding; by the Johnson-Lindenstrauss lemma the
projection approximately preserves L2 distances, which is what the DABF's
distance-to-origin statistic and the DT optimization (Formula 15) rely on.
"""

from repro.lsh.base import LSHFamily, make_lsh
from repro.lsh.cosine import CosineLSH
from repro.lsh.hamming import HammingLSH
from repro.lsh.pstable import PStableL2LSH
from repro.lsh.table import Bucket, LSHTable

__all__ = [
    "Bucket",
    "CosineLSH",
    "HammingLSH",
    "LSHFamily",
    "LSHTable",
    "PStableL2LSH",
    "make_lsh",
]
