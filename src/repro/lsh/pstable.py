"""p-stable LSH under the L2 norm (Datar, Immorlica, Indyk, Mirrokni 2004).

Each hash function is ``h(x) = floor((a . x + b) / w)`` with ``a`` drawn
from a standard Gaussian (2-stable for L2) and ``b`` uniform in ``[0, w)``.
The continuous projection ``A x / sqrt(k)`` approximately preserves L2
norms (Johnson-Lindenstrauss), which the DABF distance statistic relies on.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.lsh.base import validate_input


class PStableL2LSH:
    """The paper's default LSH scheme (Section III-B).

    Parameters
    ----------
    dim:
        Input dimension.
    n_projections:
        Number of composed hash functions ``k``.
    width:
        Quantization width ``w``; larger widths merge more points per
        bucket. ``None`` picks ``sqrt(dim)``, a scale under which two
        z-normalized subsequences of correlation ~0 land ~1 bucket apart.
    seed:
        Reproducibility seed.
    """

    def __init__(
        self,
        dim: int,
        n_projections: int = 8,
        width: float | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if dim < 1:
            raise ValidationError(f"dim must be >= 1, got {dim}")
        if n_projections < 1:
            raise ValidationError(f"n_projections must be >= 1, got {n_projections}")
        self.dim = int(dim)
        self.n_projections = int(n_projections)
        self.width = float(width) if width is not None else float(np.sqrt(dim))
        if self.width <= 0:
            raise ValidationError(f"width must be > 0, got {self.width}")
        rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        self._directions = rng.normal(size=(self.n_projections, self.dim))
        self._offsets = rng.uniform(0.0, self.width, size=self.n_projections)
        self._scale = 1.0 / np.sqrt(self.n_projections)

    def project(self, x: np.ndarray) -> np.ndarray:
        """JL-scaled Gaussian projection (norm-preserving in expectation)."""
        x = validate_input(x, self.dim)
        return (self._directions @ x) * self._scale

    def project_batch(self, X: np.ndarray) -> np.ndarray:
        """Projections for every row of an ``(n, dim)`` matrix at once."""
        X = np.asarray(X, dtype=np.float64)
        return (X @ self._directions.T) * self._scale

    def signature(self, x: np.ndarray) -> tuple:
        """Quantized bucket key ``floor((a.x + b) / w)`` per projection."""
        x = validate_input(x, self.dim)
        raw = self._directions @ x
        return tuple(np.floor((raw + self._offsets) / self.width).astype(np.int64))
