"""Human-readable rendering of a trace: the per-phase time breakdown.

``render_report`` turns a :class:`~repro.obs.trace.Trace` into the
terminal report behind ``repro obs report``: a span tree with sibling
spans of the same name aggregated (count, total, self, cumulative %),
followed by the counter/gauge tables and a manifest summary.
"""

from __future__ import annotations

from pathlib import Path

from repro.obs.trace import Span, Trace


def _tree_rows(
    spans: list[Span], depth: int, run_total: float, rows: list
) -> None:
    """Aggregate same-named siblings and recurse depth-first."""
    groups: dict[str, list[Span]] = {}
    for span in spans:
        groups.setdefault(span.name, []).append(span)
    for name, group in groups.items():
        total = sum(s.duration for s in group)
        children = [c for s in group for c in s.children]
        self_time = total - sum(c.duration for c in children)
        share = 100.0 * total / run_total if run_total > 0 else 0.0
        rows.append(
            [
                "  " * depth + name,
                len(group),
                total,
                self_time,
                share,
            ]
        )
        _tree_rows(children, depth + 1, run_total, rows)


def render_report(trace: Trace) -> str:
    """The full ``repro obs report`` text for one trace."""
    # Imported here: repro.benchlib pulls in the baselines package, which
    # itself imports repro.obs (via the kernels/candidates stack) — a
    # module-level import would be circular.
    from repro.benchlib.tables import format_table

    run_total = trace.total_seconds
    rows: list = []
    _tree_rows(trace.roots, 0, run_total, rows)
    sections = [
        format_table(
            ["span", "count", "total s", "self s", "cum %"],
            rows,
            precision=4,
            title=f"span tree — run total {run_total:.4f}s",
        )
    ]

    metrics = trace.metrics.snapshot()
    counter_rows = [
        [name, value] for name, value in sorted(metrics["counters"].items())
    ]
    gauge_rows = [
        [name, value] for name, value in sorted(metrics["gauges"].items())
    ]
    hist_rows = [
        [name, hist["count"], hist["sum"], hist["min"], hist["max"]]
        for name, hist in sorted(metrics["histograms"].items())
    ]
    if counter_rows:
        sections.append(
            format_table(["counter", "value"], counter_rows, title="counters")
        )
    if gauge_rows:
        sections.append(
            format_table(["gauge", "value"], gauge_rows, precision=4, title="gauges")
        )
    if hist_rows:
        sections.append(
            format_table(
                ["histogram", "count", "sum", "min", "max"],
                hist_rows,
                precision=4,
                title="histograms",
            )
        )

    cache_section = _render_kernel_caches(
        metrics["counters"], metrics["gauges"]
    )
    if cache_section:
        sections.append(cache_section)

    manifest = trace.manifest or {}
    if manifest:
        lines = ["manifest"]
        versions = manifest.get("versions") or {}
        if versions:
            lines.append(
                "  versions: "
                + ", ".join(f"{k} {v}" for k, v in sorted(versions.items()))
            )
        if manifest.get("git_sha"):
            lines.append(f"  git sha: {manifest['git_sha']}")
        dataset = manifest.get("dataset") or {}
        if dataset:
            lines.append(
                f"  dataset: {dataset.get('name') or '<unnamed>'} "
                f"({dataset.get('n_series')} x {dataset.get('series_length')}, "
                f"{dataset.get('n_classes')} classes, "
                f"sha256 {str(dataset.get('sha256'))[:12]}...)"
            )
        if manifest.get("seed") is not None:
            lines.append(f"  seed: {manifest['seed']}")
        if manifest.get("created_at"):
            lines.append(f"  created: {manifest['created_at']}")
        sections.append("\n".join(lines))

    return "\n\n".join(sections)


def _render_kernel_caches(counters: dict, gauges: dict) -> str | None:
    """Cache-effectiveness summary of the kernel engine's counters.

    Surfaces the in-memory series cache and the persistent spectra
    store (disk hits/misses + hit rates, PR 8's counters) plus which
    backend ran, so cache behaviour is readable straight from
    ``repro obs report`` instead of raw JSONL.
    """
    mem_hits = counters.get("kernels.cache_hits")
    disk_hits = counters.get("kernels.spectra_disk_hits")
    backends = {
        name.split(".", 2)[2]: int(value)
        for name, value in counters.items()
        if name.startswith("kernels.backend_runs.")
    }
    if mem_hits is None and disk_hits is None and not backends:
        return None
    lines = ["kernel engine"]
    if backends:
        chosen = ", ".join(
            f"{name} x{count}" for name, count in sorted(backends.items())
        )
        lines.append(f"  backend runs: {chosen}")
    if mem_hits is not None:
        misses = counters.get("kernels.cache_misses", 0)
        rate = gauges.get("kernels.cache_hit_rate", 0.0)
        lines.append(
            f"  series cache: {int(mem_hits)} hits / {int(misses)} misses "
            f"(hit rate {rate:.1%})"
        )
    if disk_hits is not None:
        misses = counters.get("kernels.spectra_disk_misses", 0)
        rate = gauges.get("kernels.spectra_disk_hit_rate", 0.0)
        lines.append(
            f"  spectra store: {int(disk_hits)} disk hits / "
            f"{int(misses)} misses (hit rate {rate:.1%})"
        )
    return "\n".join(lines)


def load_trace(path: str | Path) -> Trace:
    """Read a JSONL trace file from disk."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(
            f"no trace file at {path}; run with observability='trace+jsonl' "
            "(or `repro run ... --obs trace+jsonl`) first"
        )
    return Trace.from_jsonl(path)
