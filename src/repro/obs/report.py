"""Human-readable rendering of a trace: the per-phase time breakdown.

``render_report`` turns a :class:`~repro.obs.trace.Trace` into the
terminal report behind ``repro obs report``: a span tree with sibling
spans of the same name aggregated (count, total, self, cumulative %),
followed by the counter/gauge tables and a manifest summary.
"""

from __future__ import annotations

from pathlib import Path

from repro.obs.trace import Span, Trace


def _tree_rows(
    spans: list[Span], depth: int, run_total: float, rows: list
) -> None:
    """Aggregate same-named siblings and recurse depth-first."""
    groups: dict[str, list[Span]] = {}
    for span in spans:
        groups.setdefault(span.name, []).append(span)
    for name, group in groups.items():
        total = sum(s.duration for s in group)
        children = [c for s in group for c in s.children]
        self_time = total - sum(c.duration for c in children)
        share = 100.0 * total / run_total if run_total > 0 else 0.0
        rows.append(
            [
                "  " * depth + name,
                len(group),
                total,
                self_time,
                share,
            ]
        )
        _tree_rows(children, depth + 1, run_total, rows)


def render_report(trace: Trace) -> str:
    """The full ``repro obs report`` text for one trace."""
    # Imported here: repro.benchlib pulls in the baselines package, which
    # itself imports repro.obs (via the kernels/candidates stack) — a
    # module-level import would be circular.
    from repro.benchlib.tables import format_table

    run_total = trace.total_seconds
    rows: list = []
    _tree_rows(trace.roots, 0, run_total, rows)
    sections = [
        format_table(
            ["span", "count", "total s", "self s", "cum %"],
            rows,
            precision=4,
            title=f"span tree — run total {run_total:.4f}s",
        )
    ]

    metrics = trace.metrics.snapshot()
    counter_rows = [
        [name, value] for name, value in sorted(metrics["counters"].items())
    ]
    gauge_rows = [
        [name, value] for name, value in sorted(metrics["gauges"].items())
    ]
    hist_rows = [
        [name, hist["count"], hist["sum"], hist["min"], hist["max"]]
        for name, hist in sorted(metrics["histograms"].items())
    ]
    if counter_rows:
        sections.append(
            format_table(["counter", "value"], counter_rows, title="counters")
        )
    if gauge_rows:
        sections.append(
            format_table(["gauge", "value"], gauge_rows, precision=4, title="gauges")
        )
    if hist_rows:
        sections.append(
            format_table(
                ["histogram", "count", "sum", "min", "max"],
                hist_rows,
                precision=4,
                title="histograms",
            )
        )

    manifest = trace.manifest or {}
    if manifest:
        lines = ["manifest"]
        versions = manifest.get("versions") or {}
        if versions:
            lines.append(
                "  versions: "
                + ", ".join(f"{k} {v}" for k, v in sorted(versions.items()))
            )
        if manifest.get("git_sha"):
            lines.append(f"  git sha: {manifest['git_sha']}")
        dataset = manifest.get("dataset") or {}
        if dataset:
            lines.append(
                f"  dataset: {dataset.get('name') or '<unnamed>'} "
                f"({dataset.get('n_series')} x {dataset.get('series_length')}, "
                f"{dataset.get('n_classes')} classes, "
                f"sha256 {str(dataset.get('sha256'))[:12]}...)"
            )
        if manifest.get("seed") is not None:
            lines.append(f"  seed: {manifest['seed']}")
        if manifest.get("created_at"):
            lines.append(f"  created: {manifest['created_at']}")
        sections.append("\n".join(lines))

    return "\n\n".join(sections)


def load_trace(path: str | Path) -> Trace:
    """Read a JSONL trace file from disk."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(
            f"no trace file at {path}; run with observability='trace+jsonl' "
            "(or `repro run ... --obs trace+jsonl`) first"
        )
    return Trace.from_jsonl(path)
