"""Run manifests: everything needed to reproduce a discovery run.

A manifest pins the four reproducibility axes of a run: the full
:class:`~repro.core.config.IPSConfig` (seeds included), a content
fingerprint of the training data, the package versions that executed the
run, and the source revision (git SHA, resolved without spawning a
subprocess). ``IPS.discover`` attaches one to every trace, so any
``DiscoveryResult`` carrying ``extra["trace"]`` can be re-derived from
its manifest alone.
"""

from __future__ import annotations

import dataclasses
import hashlib
import platform
import time
from pathlib import Path

from repro._version import __version__


#: Manifest value when no commit SHA can be determined. A constant (not
#: ``None``) so downstream consumers comparing manifests never have to
#: branch on missing keys vs null values.
UNKNOWN_GIT_SHA = "unknown"


def git_sha(start: str | Path | None = None) -> str:
    """Best-effort HEAD commit of the enclosing git checkout.

    Reads ``.git`` directly (no subprocess): resolves ``HEAD`` through
    one level of symbolic ref, falling back to ``packed-refs``, and
    follows a ``.git`` *file* (worktree/submodule ``gitdir:`` pointer)
    one hop. Degrades to :data:`UNKNOWN_GIT_SHA` outside a checkout, on
    a detached/malformed ``HEAD``, an unreadable or packed ref, or any
    other parsing hiccup — a manifest must never fail a run, whatever
    state the checkout is in.
    """
    try:
        here = Path(start) if start is not None else Path(__file__).resolve()
        for parent in [here, *here.parents]:
            git_dir = parent / ".git"
            if git_dir.is_file():
                # Worktree / submodule: ".git" is a one-line pointer file.
                pointer = git_dir.read_text(errors="replace").strip()
                if not pointer.startswith("gitdir:"):
                    return UNKNOWN_GIT_SHA
                target = Path(pointer.split(":", 1)[1].strip())
                if not target.is_absolute():
                    target = parent / target
                git_dir = target
            if not git_dir.is_dir():
                continue
            head_file = git_dir / "HEAD"
            if not head_file.exists():
                return UNKNOWN_GIT_SHA
            head = head_file.read_text(errors="replace").strip()
            if not head.startswith("ref:"):
                # Detached HEAD: the file holds the commit SHA itself.
                return head or UNKNOWN_GIT_SHA
            parts = head.split(None, 1)
            if len(parts) < 2 or not parts[1].strip():
                return UNKNOWN_GIT_SHA
            ref = parts[1].strip()
            ref_file = git_dir / ref
            if ref_file.exists():
                return ref_file.read_text(errors="replace").strip() or UNKNOWN_GIT_SHA
            packed = git_dir / "packed-refs"
            if packed.exists():
                for line in packed.read_text(errors="replace").splitlines():
                    if line.endswith(ref) and not line.startswith(("#", "^")):
                        return line.split(None, 1)[0]
            return UNKNOWN_GIT_SHA
    except Exception:  # noqa: BLE001 - manifests degrade, never raise
        return UNKNOWN_GIT_SHA
    return UNKNOWN_GIT_SHA


def dataset_fingerprint(dataset) -> dict:
    """Content identity of a :class:`~repro.ts.series.Dataset`.

    The SHA-256 spans the value matrix, the internal labels, and the
    original class values, so any change to the training data changes
    the fingerprint.
    """
    digest = hashlib.sha256()
    digest.update(dataset.X.tobytes())
    digest.update(dataset.y.tobytes())
    digest.update(dataset.classes_.tobytes())
    return {
        "name": dataset.name,
        "n_series": dataset.n_series,
        "series_length": dataset.series_length,
        "n_classes": dataset.n_classes,
        "sha256": digest.hexdigest(),
    }


def package_versions() -> dict:
    """Versions of the packages that determine numerical results."""
    import numpy
    import scipy

    return {
        "repro": __version__,
        "numpy": numpy.__version__,
        "scipy": scipy.__version__,
        "python": platform.python_version(),
    }


def run_manifest(config, dataset=None, *, kernel_backend=None) -> dict:
    """Build the manifest of one discovery run.

    Only called in the trace modes — fingerprinting hashes the whole
    training matrix, which would violate the counters-mode overhead
    budget if done unconditionally.

    ``kernel_backend`` is the *resolved* kernel
    :class:`~repro.kernels.BackendSpec` of the run (the config may say
    ``"auto"``; the manifest records what the auto-tuner actually chose).
    """
    from repro.obs.trace import jsonify

    backend = None
    if kernel_backend is not None:
        backend = {
            "name": kernel_backend.name,
            "precision": kernel_backend.precision,
            "layout": kernel_backend.layout,
            "sharded": kernel_backend.sharded,
            "bit_identical": kernel_backend.bit_identical,
        }
    return {
        "created_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "config": jsonify(dataclasses.asdict(config)),
        "seed": config.seed,
        "kernel_backend": backend,
        "dataset": dataset_fingerprint(dataset) if dataset is not None else None,
        "versions": package_versions(),
        "platform": platform.platform(),
        "git_sha": git_sha(),
    }
