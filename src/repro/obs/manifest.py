"""Run manifests: everything needed to reproduce a discovery run.

A manifest pins the four reproducibility axes of a run: the full
:class:`~repro.core.config.IPSConfig` (seeds included), a content
fingerprint of the training data, the package versions that executed the
run, and the source revision (git SHA, resolved without spawning a
subprocess). ``IPS.discover`` attaches one to every trace, so any
``DiscoveryResult`` carrying ``extra["trace"]`` can be re-derived from
its manifest alone.
"""

from __future__ import annotations

import dataclasses
import hashlib
import platform
import time
from pathlib import Path

from repro._version import __version__


def git_sha(start: str | Path | None = None) -> str | None:
    """Best-effort HEAD commit of the enclosing git checkout.

    Reads ``.git`` files directly (no subprocess): resolves ``HEAD``
    through one level of symbolic ref, falling back to
    ``packed-refs``. Returns ``None`` outside a checkout or on any
    parsing hiccup — a manifest must never fail a run.
    """
    try:
        here = Path(start) if start is not None else Path(__file__).resolve()
        for parent in [here, *here.parents]:
            git_dir = parent / ".git"
            if not git_dir.is_dir():
                continue
            head = (git_dir / "HEAD").read_text().strip()
            if not head.startswith("ref:"):
                return head or None
            ref = head.split(None, 1)[1].strip()
            ref_file = git_dir / ref
            if ref_file.exists():
                return ref_file.read_text().strip() or None
            packed = git_dir / "packed-refs"
            if packed.exists():
                for line in packed.read_text().splitlines():
                    if line.endswith(ref) and not line.startswith(("#", "^")):
                        return line.split(None, 1)[0]
            return None
    except OSError:
        return None
    return None


def dataset_fingerprint(dataset) -> dict:
    """Content identity of a :class:`~repro.ts.series.Dataset`.

    The SHA-256 spans the value matrix, the internal labels, and the
    original class values, so any change to the training data changes
    the fingerprint.
    """
    digest = hashlib.sha256()
    digest.update(dataset.X.tobytes())
    digest.update(dataset.y.tobytes())
    digest.update(dataset.classes_.tobytes())
    return {
        "name": dataset.name,
        "n_series": dataset.n_series,
        "series_length": dataset.series_length,
        "n_classes": dataset.n_classes,
        "sha256": digest.hexdigest(),
    }


def package_versions() -> dict:
    """Versions of the packages that determine numerical results."""
    import numpy
    import scipy

    return {
        "repro": __version__,
        "numpy": numpy.__version__,
        "scipy": scipy.__version__,
        "python": platform.python_version(),
    }


def run_manifest(config, dataset=None) -> dict:
    """Build the manifest of one discovery run.

    Only called in the trace modes — fingerprinting hashes the whole
    training matrix, which would violate the counters-mode overhead
    budget if done unconditionally.
    """
    from repro.obs.trace import jsonify

    return {
        "created_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "config": jsonify(dataclasses.asdict(config)),
        "seed": config.seed,
        "dataset": dataset_fingerprint(dataset) if dataset is not None else None,
        "versions": package_versions(),
        "platform": platform.platform(),
        "git_sha": git_sha(),
    }
