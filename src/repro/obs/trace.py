"""Structured tracing: run-scoped span trees with a JSONL sink.

A :class:`Trace` is both the tracer (it owns the ``span()`` context
manager and the counter hooks the pipeline calls) and the resulting
artifact (a tree of closed :class:`Span` objects plus a
:class:`~repro.obs.metrics.MetricsRegistry` and a run manifest). The
pipeline threads exactly one tracer through a discovery run; call sites
never branch on the observability mode — in ``"off"`` and ``"counters"``
modes they receive the shared :data:`NULL_TRACER`, whose ``span()``
returns a reusable no-op context manager, so the hot paths allocate no
trace objects at all (``Span.allocated`` counts real allocations, which
the off-mode test pins at zero).

Timestamps are monotonic (``time.perf_counter``) offsets from the trace
origin, so spans order correctly even across wall-clock adjustments.
Serialization (:meth:`Trace.to_jsonl` / :meth:`Trace.from_jsonl`) is
deterministic — sorted keys, depth-first span ids — so a round trip
reproduces the file bit-for-bit.
"""

from __future__ import annotations

import io
import json
import time
from contextlib import contextmanager
from pathlib import Path

from repro.exceptions import ValidationError
from repro.obs.metrics import MetricsRegistry

#: Accepted values of ``IPSConfig.observability``.
OBSERVABILITY_MODES: tuple[str, ...] = ("off", "counters", "trace", "trace+jsonl")

#: Default sink of ``"trace+jsonl"`` runs (and default source of
#: ``repro obs report``), relative to the working directory.
DEFAULT_JSONL_PATH = Path(".repro-obs") / "last-run.jsonl"


def jsonify(value: object) -> object:
    """Coerce a value to JSON-native types (deterministically).

    Numbers, strings, booleans, and ``None`` pass through; numpy scalars
    are unwrapped; sequences and mappings recurse; anything else becomes
    its ``repr`` so a trace can always be serialized.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if hasattr(value, "item") and not hasattr(value, "__len__"):
        try:
            return jsonify(value.item())
        except (TypeError, ValueError):
            return repr(value)
    if isinstance(value, dict):
        return {str(key): jsonify(val) for key, val in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = list(value)
        if isinstance(value, (set, frozenset)):
            items = sorted(items, key=repr)
        return [jsonify(item) for item in items]
    return repr(value)


class Span:
    """One timed, attributed node of the span tree."""

    __slots__ = ("name", "attrs", "start", "end", "children", "counters")

    #: Process-wide tally of real span allocations — the off-mode test
    #: asserts this does not move during an ``observability="off"`` run.
    allocated = 0

    def __init__(self, name: str, attrs: dict, start: float) -> None:
        Span.allocated += 1
        self.name = name
        self.attrs = attrs
        self.start = start
        self.end: float | None = None
        self.children: list[Span] = []
        self.counters: dict[str, float] = {}

    @property
    def duration(self) -> float:
        """Span wall time in seconds (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    @property
    def closed(self) -> bool:
        """True once the span (and every descendant) has ended."""
        return self.end is not None and all(c.closed for c in self.children)

    def set(self, **attrs: object) -> "Span":
        """Attach or overwrite attributes after creation (returns self)."""
        self.attrs.update(attrs)
        return self

    def to_dict(self) -> dict:
        """Nested JSON-friendly form (used by ``Trace.to_dict``)."""
        return {
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "attrs": jsonify(self.attrs),
            "counters": jsonify(self.counters),
            "children": [c.to_dict() for c in self.children],
        }


class _NullSpan:
    """The span stand-in handed out by :class:`NullTracer`."""

    __slots__ = ()
    children: tuple = ()
    counters: dict = {}
    duration = 0.0
    closed = True

    def set(self, **attrs: object) -> "_NullSpan":
        """Discard attributes."""
        return self


NULL_SPAN = _NullSpan()


class _NullContext:
    """Reusable no-op context manager (no per-call allocation)."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return NULL_SPAN

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_CONTEXT = _NullContext()


class NullTracer:
    """The do-nothing tracer used in ``"off"`` and ``"counters"`` modes.

    A process-wide singleton (:data:`NULL_TRACER`): every method is a
    no-op returning shared objects, so threading it through the pipeline
    costs a handful of attribute lookups and zero allocations.
    """

    __slots__ = ()
    active = False

    def span(self, name: str, **attrs: object) -> _NullContext:
        """A reusable no-op context manager yielding :data:`NULL_SPAN`."""
        return _NULL_CONTEXT

    def event(self, name: str, **attrs: object) -> _NullSpan:
        """Discard the event."""
        return NULL_SPAN

    def count(self, name: str, n: float = 1) -> None:
        """Discard the counter increment."""


NULL_TRACER = NullTracer()


class Trace:
    """A run-scoped span tree plus metrics and manifest.

    Use :meth:`span` as a context manager; spans nest by runtime call
    structure and are guaranteed closed on exception (the ``finally``
    clause stamps the end time and unwinds the stack), so a failed or
    budget-truncated run still yields a well-nested, serializable trace.
    """

    active = True

    def __init__(self, mode: str = "trace") -> None:
        if mode not in OBSERVABILITY_MODES:
            raise ValidationError(f"unknown observability mode {mode!r}")
        self.mode = mode
        self.manifest: dict = {}
        self.metrics = MetricsRegistry()
        self.roots: list[Span] = []
        self._stack: list[Span] = []
        self._origin = time.perf_counter()

    # -- recording --------------------------------------------------------
    def _now(self) -> float:
        return time.perf_counter() - self._origin

    @contextmanager
    def span(self, name: str, **attrs: object):
        """Open a child span of the innermost open span (or a new root)."""
        node = Span(name, dict(attrs), start=self._now())
        parent = self._stack[-1] if self._stack else None
        (parent.children if parent is not None else self.roots).append(node)
        self._stack.append(node)
        try:
            yield node
        finally:
            node.end = self._now()
            # Unwind at least to this span even if an inner frame leaked
            # an open child (keeps the tree well-nested under exceptions).
            while self._stack and self._stack.pop() is not node:
                pass

    def event(self, name: str, **attrs: object) -> Span:
        """Record a zero-duration span at the current position."""
        now = self._now()
        node = Span(name, dict(attrs), start=now)
        node.end = now
        parent = self._stack[-1] if self._stack else None
        (parent.children if parent is not None else self.roots).append(node)
        return node

    def count(self, name: str, n: float = 1) -> None:
        """Bump a named counter on the current span and the run metrics."""
        if self._stack:
            counters = self._stack[-1].counters
            counters[name] = counters.get(name, 0) + n
        self.metrics.counter(name, n)

    # -- inspection -------------------------------------------------------
    @property
    def closed(self) -> bool:
        """True once every recorded span has an end time."""
        return not self._stack and all(root.closed for root in self.roots)

    @property
    def total_seconds(self) -> float:
        """Sum of root-span durations."""
        return sum(root.duration for root in self.roots)

    def find(self, name: str) -> list[Span]:
        """All spans with the given name, depth-first."""
        out: list[Span] = []

        def _walk(span: Span) -> None:
            if span.name == name:
                out.append(span)
            for child in span.children:
                _walk(child)

        for root in self.roots:
            _walk(root)
        return out

    def to_dict(self) -> dict:
        """Whole-trace JSON-friendly form."""
        return {
            "mode": self.mode,
            "manifest": jsonify(self.manifest),
            "metrics": self.metrics.snapshot(),
            "spans": [root.to_dict() for root in self.roots],
        }

    # -- JSONL ------------------------------------------------------------
    def to_jsonl(self, path: str | Path | None = None) -> str:
        """Serialize to JSON Lines; optionally also write to ``path``.

        One record per line: a header carrying the mode and manifest, a
        metrics record, then every span depth-first with explicit
        ``id``/``parent`` references. Keys are sorted and ids are
        assigned deterministically, so serializing a deserialized trace
        reproduces the file bit-for-bit.
        """
        buf = io.StringIO()

        def emit(record: dict) -> None:
            buf.write(json.dumps(record, sort_keys=True))
            buf.write("\n")

        emit(
            {
                "type": "header",
                "mode": self.mode,
                "manifest": jsonify(self.manifest),
            }
        )
        emit({"type": "metrics", "data": self.metrics.snapshot()})
        next_id = 0

        def emit_span(span: Span, parent_id: int | None) -> None:
            nonlocal next_id
            span_id = next_id
            next_id += 1
            emit(
                {
                    "type": "span",
                    "id": span_id,
                    "parent": parent_id,
                    "name": span.name,
                    "start": span.start,
                    "end": span.end,
                    "attrs": jsonify(span.attrs),
                    "counters": jsonify(span.counters),
                }
            )
            for child in span.children:
                emit_span(child, span_id)

        for root in self.roots:
            emit_span(root, None)
        text = buf.getvalue()
        if path is not None:
            path = Path(path)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(text)
        return text

    @classmethod
    def from_jsonl(cls, source: str | Path) -> "Trace":
        """Rebuild a trace from :meth:`to_jsonl` output (text or path)."""
        if isinstance(source, Path) or (
            "\n" not in str(source) and Path(str(source)).exists()
        ):
            text = Path(source).read_text()
        else:
            text = str(source)
        trace = cls(mode="trace")
        by_id: dict[int, Span] = {}
        for line in text.splitlines():
            if not line.strip():
                continue
            record = json.loads(line)
            kind = record.get("type")
            if kind == "header":
                trace.mode = record.get("mode", "trace")
                trace.manifest = record.get("manifest", {})
            elif kind == "metrics":
                trace.metrics = MetricsRegistry.from_snapshot(
                    record.get("data", {})
                )
            elif kind == "span":
                span = Span(
                    record["name"], dict(record.get("attrs", {})), record["start"]
                )
                span.end = record.get("end")
                span.counters = dict(record.get("counters", {}))
                by_id[record["id"]] = span
                parent = record.get("parent")
                if parent is None:
                    trace.roots.append(span)
                else:
                    by_id[parent].children.append(span)
            else:
                raise ValidationError(f"unknown trace record type {kind!r}")
        return trace


def make_tracer(mode: str) -> Trace | NullTracer:
    """The tracer for an observability mode.

    ``"trace"``/``"trace+jsonl"`` get a fresh :class:`Trace`;
    ``"off"``/``"counters"`` share the allocation-free
    :data:`NULL_TRACER`.
    """
    if mode not in OBSERVABILITY_MODES:
        raise ValidationError(
            f"unknown observability mode {mode!r}; "
            f"choose from {OBSERVABILITY_MODES}"
        )
    if mode in ("trace", "trace+jsonl"):
        return Trace(mode=mode)
    return NULL_TRACER
