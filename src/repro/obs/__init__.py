"""``repro.obs``: structured tracing, metrics, and run manifests.

The observability layer of the reproduction, threaded through every
major pipeline stage (candidate generation, matrix profiles, DABF
pruning, utility scoring, transform, classification, distributed
retries, budget checks, validation repair). Zero dependencies beyond
the packages the pipeline already uses.

Four pieces:

* :class:`Trace` / :func:`make_tracer` — nestable ``span("phase",
  **attrs)`` context managers producing a run-scoped span tree with
  monotonic timestamps, per-span counters, and a JSONL sink
  (:meth:`Trace.to_jsonl` / :meth:`Trace.from_jsonl`, bit-identical
  round trips);
* :class:`MetricsRegistry` / :func:`global_metrics` — process-local
  counters, gauges, and summary histograms that absorb the kernel
  engine's ``PerfCounters`` (kept as the compatible per-run view at
  ``DiscoveryResult.extra["perf"]``);
* :func:`run_manifest` — config, seeds, dataset fingerprint, package
  versions, and git SHA, attached to every trace so a
  ``DiscoveryResult`` is reproducible from its trace alone;
* :func:`render_report` — the per-phase time-breakdown tree behind
  ``repro obs report``;
* :mod:`repro.obs.telemetry` — the *live* layer: Prometheus text
  exposition (:func:`render_prometheus`), a stdlib
  :class:`TelemetryServer` serving ``/metrics`` + ``/healthz``,
  :class:`SLOTracker` error-budget burn, and typed
  :class:`HealthReport` reasons, all over
  :class:`~repro.obs.metrics.WindowedHistogram` sliding windows.

Select a mode with ``IPSConfig(observability=...)``: ``"off"`` (no
observability work at all — the null tracer and the no-op perf-counter
singleton), ``"counters"`` (the default: kernel counters only, overhead
gated at <=2%), ``"trace"`` (span tree + metrics + manifest at
``DiscoveryResult.extra["trace"]``), or ``"trace+jsonl"`` (additionally
stream the trace to a JSONL file, default ``.repro-obs/last-run.jsonl``).
See ``docs/observability.md``.
"""

from repro.obs.manifest import (
    UNKNOWN_GIT_SHA,
    dataset_fingerprint,
    git_sha,
    package_versions,
    run_manifest,
)
from repro.obs.metrics import (
    BUCKET_BOUNDS,
    MetricsRegistry,
    WindowedHistogram,
    global_metrics,
    reset_global_metrics,
)
from repro.obs.report import load_trace, render_report
from repro.obs.telemetry import (
    HEALTH_STATES,
    HealthReason,
    HealthReport,
    SLOTracker,
    TelemetryServer,
    prometheus_name,
    render_prometheus,
)
from repro.obs.trace import (
    DEFAULT_JSONL_PATH,
    NULL_TRACER,
    OBSERVABILITY_MODES,
    NullTracer,
    Span,
    Trace,
    jsonify,
    make_tracer,
)

__all__ = [
    "BUCKET_BOUNDS",
    "DEFAULT_JSONL_PATH",
    "HEALTH_STATES",
    "HealthReason",
    "HealthReport",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "OBSERVABILITY_MODES",
    "SLOTracker",
    "Span",
    "TelemetryServer",
    "Trace",
    "UNKNOWN_GIT_SHA",
    "WindowedHistogram",
    "dataset_fingerprint",
    "git_sha",
    "global_metrics",
    "jsonify",
    "load_trace",
    "make_tracer",
    "package_versions",
    "prometheus_name",
    "render_prometheus",
    "render_report",
    "reset_global_metrics",
    "run_manifest",
]
