"""Process-local metrics: counters, gauges, and summary histograms.

A :class:`MetricsRegistry` is a plain in-process store — no exporters, no
threads. Each :class:`~repro.obs.trace.Trace` owns one (per-run metrics);
a module-level registry (:func:`global_metrics`) additionally accumulates
kernel-engine tallies across every run of the process, superseding
``repro.kernels.perf.PerfCounters`` as the metrics surface while keeping
``DiscoveryResult.extra["perf"]`` as the compatible per-run view.

Histograms are summary-only (count / sum / min / max): enough for the
runtime-breakdown reports without unbounded memory, and exactly
reconstructible from a snapshot so JSONL round trips stay bit-identical.

For live telemetry (the :mod:`repro.obs.telemetry` layer) the summary is
not enough — a latency SLO needs *rolling* tail quantiles, not
since-process-start extremes. :class:`WindowedHistogram` adds a bounded
sliding window: a ring buffer of the last ``capacity`` samples plus
fixed log-scale buckets maintained incrementally, so appends stay O(1)
and p50/p90/p99 queries read the bucket counts without touching the
samples. Registries grow windows on demand via
:meth:`MetricsRegistry.observe_window`.
"""

from __future__ import annotations

import math

#: Log-scale bucket geometry shared by every window: powers of two from
#: 1 microsecond up. 40 buckets reach ~5.5e5 (seconds-scale metrics are
#: covered many times over); values outside the span land in the
#: open-ended first/last buckets.
_BUCKET_LO = 1e-6
_BUCKET_FACTOR = 2.0
_BUCKET_COUNT = 40

#: Upper bounds of the shared log-scale buckets (last one is +inf).
BUCKET_BOUNDS: tuple[float, ...] = tuple(
    _BUCKET_LO * _BUCKET_FACTOR**i for i in range(_BUCKET_COUNT)
) + (math.inf,)


def _bucket_index(value: float) -> int:
    """O(1) log-scale bucket of ``value`` (arithmetic, no search)."""
    if value < _BUCKET_LO:
        return 0
    index = int(math.log(value / _BUCKET_LO, _BUCKET_FACTOR)) + 1
    # Guard the float edge: log() of an exact power can land a hair low.
    while index < _BUCKET_COUNT and value > BUCKET_BOUNDS[index]:
        index += 1
    return min(index, _BUCKET_COUNT)


class WindowedHistogram:
    """Sliding-window histogram: ring-buffer samples + log-scale buckets.

    The last ``capacity`` observations are retained exactly (ring
    buffer); per-bucket counts are maintained incrementally on append
    and eviction, so :meth:`append` is O(1) and :meth:`quantile` is
    O(buckets). Quantiles are answered from the bucket counts: the
    returned value is the upper bound of the bucket holding the q-th
    windowed sample, so it is exact to within one bucket (a factor of
    2 with the default geometry) — tight enough for SLO burn math,
    cheap enough for the hot serving path.
    """

    __slots__ = (
        "capacity",
        "_ring",
        "_next",
        "_size",
        "_buckets",
        "_window_sum",
        "total_count",
        "total_sum",
    )

    def __init__(self, capacity: int = 512) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._ring: list[float] = [0.0] * self.capacity
        self._next = 0
        self._size = 0
        self._buckets = [0] * (_BUCKET_COUNT + 1)
        self._window_sum = 0.0
        #: Lifetime tallies (never evicted; the Prometheus counters).
        self.total_count = 0
        self.total_sum = 0.0

    def __len__(self) -> int:
        return self._size

    def append(self, value: float) -> None:
        """Record one sample, evicting the oldest once at capacity."""
        value = float(value)
        if self._size == self.capacity:
            evicted = self._ring[self._next]
            self._buckets[_bucket_index(evicted)] -= 1
            self._window_sum -= evicted
        else:
            self._size += 1
        self._ring[self._next] = value
        self._next = (self._next + 1) % self.capacity
        self._buckets[_bucket_index(value)] += 1
        self._window_sum += value
        self.total_count += 1
        self.total_sum += value

    def values(self) -> list[float]:
        """The windowed samples, oldest first (exact; O(capacity))."""
        if self._size < self.capacity:
            return self._ring[: self._size]
        return self._ring[self._next :] + self._ring[: self._next]

    @property
    def window_sum(self) -> float:
        """Sum over the current window."""
        return self._window_sum

    @property
    def window_mean(self) -> float:
        """Mean over the current window (0.0 when empty)."""
        return self._window_sum / self._size if self._size else 0.0

    def quantile(self, q: float) -> float:
        """Windowed quantile from the bucket counts (one-bucket error).

        Returns the upper bound of the bucket containing the q-th
        sample; an empty window returns ``nan``, and a quantile landing
        in the open-ended top bucket returns the window max instead of
        ``inf`` (the max is tracked exactly enough via the samples).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self._size == 0:
            return float("nan")
        rank = max(1, math.ceil(q * self._size))
        seen = 0
        for index, count in enumerate(self._buckets):
            seen += count
            if seen >= rank:
                if index >= _BUCKET_COUNT:
                    return max(self.values())
                return BUCKET_BOUNDS[index]
        return max(self.values())

    def over_threshold_fraction(self, threshold: float) -> float:
        """Share of windowed samples strictly above ``threshold``.

        Exact (scans the ring, O(capacity)); this is the SLO-burn input,
        queried at health-check cadence rather than per request.
        """
        if self._size == 0:
            return 0.0
        over = sum(1 for value in self.values() if value > threshold)
        return over / self._size

    def snapshot(self) -> dict:
        """JSON-friendly state: lifetime tallies, quantiles, and the
        raw window (bounded by ``capacity``), so :meth:`from_snapshot`
        restores an identical histogram."""
        empty = self._size == 0
        return {
            "capacity": self.capacity,
            "count": self.total_count,
            "sum": self.total_sum,
            "p50": None if empty else self.quantile(0.50),
            "p90": None if empty else self.quantile(0.90),
            "p99": None if empty else self.quantile(0.99),
            "window": self.values(),
        }

    @classmethod
    def from_snapshot(cls, data: dict) -> "WindowedHistogram":
        """Rebuild from :meth:`snapshot` output (replays the window)."""
        hist = cls(capacity=int(data.get("capacity", 512)))
        for value in data.get("window", []):
            hist.append(value)
        hist.total_count = int(data.get("count", hist.total_count))
        hist.total_sum = float(data.get("sum", hist.total_sum))
        return hist


class MetricsRegistry:
    """Counters, gauges, and summary histograms keyed by name."""

    __slots__ = ("_counters", "_gauges", "_histograms", "_windows")

    def __init__(self) -> None:
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, dict[str, float]] = {}
        self._windows: dict[str, WindowedHistogram] = {}

    def counter(self, name: str, n: float = 1) -> float:
        """Add ``n`` to a monotonically increasing counter."""
        value = self._counters.get(name, 0) + n
        self._counters[name] = value
        return value

    def gauge(self, name: str, value: float) -> None:
        """Set a point-in-time value (last write wins)."""
        self._gauges[name] = value

    def window(self, name: str, capacity: int = 512) -> WindowedHistogram:
        """The named :class:`WindowedHistogram`, created on first use."""
        hist = self._windows.get(name)
        if hist is None:
            hist = self._windows[name] = WindowedHistogram(capacity)
        return hist

    def observe_window(self, name: str, value: float) -> None:
        """Record one sample into a sliding-window histogram."""
        self.window(name).append(value)

    def observe(self, name: str, value: float) -> None:
        """Record one sample into a summary histogram."""
        value = float(value)
        hist = self._histograms.get(name)
        if hist is None:
            self._histograms[name] = {
                "count": 1,
                "sum": value,
                "min": value,
                "max": value,
            }
            return
        hist["count"] += 1
        hist["sum"] += value
        hist["min"] = min(hist["min"], value)
        hist["max"] = max(hist["max"], value)

    _PERF_KEYS = (
        "kernel_calls",
        "batch_calls",
        "fft_count",
        "cache_hits",
        "cache_misses",
        "spectra_disk_hits",
        "spectra_disk_misses",
    )

    def absorb_perf(self, perf_snapshot: dict) -> None:
        """Adopt a ``PerfCounters.snapshot()`` as this run's kernel view.

        Kernel tallies become ``kernels.*`` counters, the hit rate a
        gauge, and per-phase wall times ``phase_seconds.*`` gauges.
        *Replace* semantics: the snapshot is cumulative within a run, so
        absorbing a later snapshot of the same counters (e.g. after the
        transform phase) updates the values instead of double-counting —
        the call is idempotent and never disturbs other counters.
        """
        for key in self._PERF_KEYS:
            self._counters[f"kernels.{key}"] = perf_snapshot.get(key, 0)
        self.gauge(
            "kernels.cache_hit_rate", perf_snapshot.get("cache_hit_rate", 0.0)
        )
        self.gauge(
            "kernels.spectra_disk_hit_rate",
            perf_snapshot.get("spectra_disk_hit_rate", 0.0),
        )
        for phase, seconds in perf_snapshot.get("phase_seconds", {}).items():
            self.gauge(f"phase_seconds.{phase}", seconds)

    def accumulate_perf(self, perf_snapshot: dict) -> None:
        """Additively fold a finished run's kernel tallies into this
        registry (the cross-run flavour used by :func:`global_metrics`)."""
        for key in self._PERF_KEYS:
            self.counter(f"kernels.{key}", perf_snapshot.get(key, 0))
        self.counter("runs", 1)
        for phase, seconds in perf_snapshot.get("phase_seconds", {}).items():
            self.observe(f"phase_seconds.{phase}", seconds)

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold another registry into this one (returns self)."""
        for name, value in other._counters.items():
            self.counter(name, value)
        self._gauges.update(other._gauges)
        for name, hist in other._histograms.items():
            mine = self._histograms.get(name)
            if mine is None:
                self._histograms[name] = dict(hist)
            else:
                mine["count"] += hist["count"]
                mine["sum"] += hist["sum"]
                mine["min"] = min(mine["min"], hist["min"])
                mine["max"] = max(mine["max"], hist["max"])
        for name, window in other._windows.items():
            mine_window = self.window(name, window.capacity)
            for value in window.values():
                mine_window.append(value)
        return self

    def snapshot(self) -> dict:
        """JSON-friendly copy of the whole registry.

        Histogram means are derived (``sum / count``) so a registry
        restored via :meth:`from_snapshot` snapshots identically. The
        ``windows`` key appears only when sliding windows exist, keeping
        pre-telemetry trace JSONL byte-stable.
        """
        snap = {
            "counters": dict(self._counters),
            "gauges": dict(self._gauges),
            "histograms": {
                name: {**hist, "mean": hist["sum"] / hist["count"]}
                for name, hist in self._histograms.items()
            },
        }
        if self._windows:
            snap["windows"] = {
                name: window.snapshot()
                for name, window in self._windows.items()
            }
        return snap

    @classmethod
    def from_snapshot(cls, data: dict) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`snapshot` output."""
        registry = cls()
        registry._counters = dict(data.get("counters", {}))
        registry._gauges = dict(data.get("gauges", {}))
        registry._histograms = {
            name: {key: hist[key] for key in ("count", "sum", "min", "max")}
            for name, hist in data.get("histograms", {}).items()
        }
        registry._windows = {
            name: WindowedHistogram.from_snapshot(window)
            for name, window in data.get("windows", {}).items()
        }
        return registry


_GLOBAL = MetricsRegistry()


def global_metrics() -> MetricsRegistry:
    """The process-wide registry (accumulates across runs)."""
    return _GLOBAL


def reset_global_metrics() -> None:
    """Swap in a fresh global registry (test hook)."""
    global _GLOBAL
    _GLOBAL = MetricsRegistry()
