"""Process-local metrics: counters, gauges, and summary histograms.

A :class:`MetricsRegistry` is a plain in-process store — no exporters, no
threads. Each :class:`~repro.obs.trace.Trace` owns one (per-run metrics);
a module-level registry (:func:`global_metrics`) additionally accumulates
kernel-engine tallies across every run of the process, superseding
``repro.kernels.perf.PerfCounters`` as the metrics surface while keeping
``DiscoveryResult.extra["perf"]`` as the compatible per-run view.

Histograms are summary-only (count / sum / min / max): enough for the
runtime-breakdown reports without unbounded memory, and exactly
reconstructible from a snapshot so JSONL round trips stay bit-identical.
"""

from __future__ import annotations


class MetricsRegistry:
    """Counters, gauges, and summary histograms keyed by name."""

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, dict[str, float]] = {}

    def counter(self, name: str, n: float = 1) -> float:
        """Add ``n`` to a monotonically increasing counter."""
        value = self._counters.get(name, 0) + n
        self._counters[name] = value
        return value

    def gauge(self, name: str, value: float) -> None:
        """Set a point-in-time value (last write wins)."""
        self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record one sample into a summary histogram."""
        value = float(value)
        hist = self._histograms.get(name)
        if hist is None:
            self._histograms[name] = {
                "count": 1,
                "sum": value,
                "min": value,
                "max": value,
            }
            return
        hist["count"] += 1
        hist["sum"] += value
        hist["min"] = min(hist["min"], value)
        hist["max"] = max(hist["max"], value)

    _PERF_KEYS = (
        "kernel_calls",
        "batch_calls",
        "fft_count",
        "cache_hits",
        "cache_misses",
        "spectra_disk_hits",
        "spectra_disk_misses",
    )

    def absorb_perf(self, perf_snapshot: dict) -> None:
        """Adopt a ``PerfCounters.snapshot()`` as this run's kernel view.

        Kernel tallies become ``kernels.*`` counters, the hit rate a
        gauge, and per-phase wall times ``phase_seconds.*`` gauges.
        *Replace* semantics: the snapshot is cumulative within a run, so
        absorbing a later snapshot of the same counters (e.g. after the
        transform phase) updates the values instead of double-counting —
        the call is idempotent and never disturbs other counters.
        """
        for key in self._PERF_KEYS:
            self._counters[f"kernels.{key}"] = perf_snapshot.get(key, 0)
        self.gauge(
            "kernels.cache_hit_rate", perf_snapshot.get("cache_hit_rate", 0.0)
        )
        for phase, seconds in perf_snapshot.get("phase_seconds", {}).items():
            self.gauge(f"phase_seconds.{phase}", seconds)

    def accumulate_perf(self, perf_snapshot: dict) -> None:
        """Additively fold a finished run's kernel tallies into this
        registry (the cross-run flavour used by :func:`global_metrics`)."""
        for key in self._PERF_KEYS:
            self.counter(f"kernels.{key}", perf_snapshot.get(key, 0))
        self.counter("runs", 1)
        for phase, seconds in perf_snapshot.get("phase_seconds", {}).items():
            self.observe(f"phase_seconds.{phase}", seconds)

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold another registry into this one (returns self)."""
        for name, value in other._counters.items():
            self.counter(name, value)
        self._gauges.update(other._gauges)
        for name, hist in other._histograms.items():
            mine = self._histograms.get(name)
            if mine is None:
                self._histograms[name] = dict(hist)
            else:
                mine["count"] += hist["count"]
                mine["sum"] += hist["sum"]
                mine["min"] = min(mine["min"], hist["min"])
                mine["max"] = max(mine["max"], hist["max"])
        return self

    def snapshot(self) -> dict:
        """JSON-friendly copy of the whole registry.

        Histogram means are derived (``sum / count``) so a registry
        restored via :meth:`from_snapshot` snapshots identically.
        """
        return {
            "counters": dict(self._counters),
            "gauges": dict(self._gauges),
            "histograms": {
                name: {**hist, "mean": hist["sum"] / hist["count"]}
                for name, hist in self._histograms.items()
            },
        }

    @classmethod
    def from_snapshot(cls, data: dict) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`snapshot` output."""
        registry = cls()
        registry._counters = dict(data.get("counters", {}))
        registry._gauges = dict(data.get("gauges", {}))
        registry._histograms = {
            name: {key: hist[key] for key in ("count", "sum", "min", "max")}
            for name, hist in data.get("histograms", {}).items()
        }
        return registry


_GLOBAL = MetricsRegistry()


def global_metrics() -> MetricsRegistry:
    """The process-wide registry (accumulates across runs)."""
    return _GLOBAL


def reset_global_metrics() -> None:
    """Swap in a fresh global registry (test hook)."""
    global _GLOBAL
    _GLOBAL = MetricsRegistry()
