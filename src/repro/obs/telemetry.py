"""Runtime telemetry: exposition, SLO tracking, and health endpoints.

PR 4's :mod:`repro.obs` stops at per-run traces; the online subsystems
(:mod:`repro.serve`, streaming sessions, campaigns) run for hours and
need *live* measurement. This module is that layer, built entirely on
the stdlib plus the existing :class:`~repro.obs.metrics.MetricsRegistry`:

* :func:`render_prometheus` — Prometheus text exposition of a registry
  snapshot: counters, gauges, summary histograms, and the sliding-window
  histograms rendered as Prometheus summaries (p50/p90/p99 quantiles);
* :class:`SLOTracker` — rolling latency/error-rate objectives over
  :class:`~repro.obs.metrics.WindowedHistogram` windows, with the
  error-budget *burn* (observed violation rate over allowed rate) the
  health endpoint and ``repro obs top`` both read;
* :class:`HealthReport` / :data:`HEALTH_STATES` — typed degraded /
  unhealthy reasons (breaker state, queue saturation, session capacity,
  SLO burn) produced by ``InferenceService.health()``;
* :class:`TelemetryServer` — an ``http.server`` daemon thread serving
  ``/metrics`` (Prometheus text), ``/metrics.json`` (the raw registry
  snapshot, what ``repro obs top`` polls), and ``/healthz`` (JSON, HTTP
  503 when unhealthy). Binds to port 0 by default so test suites never
  collide, and :meth:`TelemetryServer.close` is deterministic: the
  socket is closed and the thread joined before it returns.

Nothing here is on any hot path unless explicitly attached: services
built without a registry skip every instrumentation branch (the
``observability="off"`` contract, gated at <=2% by ``make verify-obs``).
"""

from __future__ import annotations

import json
import math
import re
import threading
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.exceptions import ValidationError
from repro.obs.metrics import MetricsRegistry, WindowedHistogram

# -- Prometheus text exposition -------------------------------------------

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")

#: Prefix of every exposed metric (``serve.shed`` -> ``repro_serve_shed``).
PROMETHEUS_PREFIX = "repro"


def prometheus_name(name: str) -> str:
    """Sanitize a registry name into a legal Prometheus metric name."""
    cleaned = _NAME_RE.sub("_", name.replace(".", "_"))
    if not cleaned or not (cleaned[0].isalpha() or cleaned[0] in "_:"):
        cleaned = "_" + cleaned
    return f"{PROMETHEUS_PREFIX}_{cleaned}"


def _format_value(value: float) -> str:
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(value) if value != int(value) else str(int(value))


def render_prometheus(registry: MetricsRegistry) -> str:
    """Render a registry as Prometheus text exposition format 0.0.4.

    Counters and gauges map directly; summary histograms become four
    gauges (``_count``/``_sum``/``_min``/``_max``); sliding windows
    become Prometheus summaries: ``{quantile="0.5|0.9|0.99"}`` sample
    lines over the *window* plus lifetime ``_count``/``_sum``.
    Output is deterministic (sorted by name) so tests can pin it.
    """
    snap = registry.snapshot()
    lines: list[str] = []
    for name, value in sorted(snap.get("counters", {}).items()):
        metric = prometheus_name(name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_value(value)}")
    for name, value in sorted(snap.get("gauges", {}).items()):
        metric = prometheus_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(value)}")
    for name, hist in sorted(snap.get("histograms", {}).items()):
        metric = prometheus_name(name)
        lines.append(f"# TYPE {metric} gauge")
        for key in ("count", "sum", "min", "max"):
            lines.append(f"{metric}_{key} {_format_value(hist[key])}")
    for name, window in sorted(snap.get("windows", {}).items()):
        metric = prometheus_name(name)
        lines.append(f"# TYPE {metric} summary")
        for quantile, key in (("0.5", "p50"), ("0.9", "p90"), ("0.99", "p99")):
            value = window.get(key)
            if value is None:
                value = float("nan")
            lines.append(
                f'{metric}{{quantile="{quantile}"}} {_format_value(value)}'
            )
        lines.append(f"{metric}_sum {_format_value(window['sum'])}")
        lines.append(f"{metric}_count {_format_value(window['count'])}")
    return "\n".join(lines) + "\n"


# -- SLO tracking ----------------------------------------------------------


class SLOTracker:
    """Rolling latency / error-rate objectives over sliding windows.

    Parameters
    ----------
    latency_target_s:
        Per-request latency objective.
    latency_fraction:
        Fraction of requests that must meet the target (e.g. 0.99 =
        "99% of requests under ``latency_target_s``").
    error_rate_target:
        Allowed fraction of failed requests.
    window:
        Samples retained per rolling window.

    The tracker owns two :class:`WindowedHistogram` windows — latencies
    and error indicators (1.0 = failed) — fed by :meth:`record`. The
    *burn* of an objective is the observed violation rate divided by the
    allowed rate: burn <= 1 means within budget, burn > 1 means the
    rolling window is violating the SLO (the health endpoint degrades at
    ``burn > 1`` and goes unhealthy at ``burn >= unhealthy_burn``).
    """

    def __init__(
        self,
        latency_target_s: float = 0.1,
        latency_fraction: float = 0.99,
        error_rate_target: float = 0.01,
        window: int = 512,
        unhealthy_burn: float = 10.0,
    ) -> None:
        if latency_target_s <= 0:
            raise ValidationError("latency_target_s must be > 0")
        if not 0.0 < latency_fraction < 1.0:
            raise ValidationError("latency_fraction must be in (0, 1)")
        if not 0.0 < error_rate_target < 1.0:
            raise ValidationError("error_rate_target must be in (0, 1)")
        if unhealthy_burn <= 1.0:
            raise ValidationError("unhealthy_burn must be > 1")
        self.latency_target_s = float(latency_target_s)
        self.latency_fraction = float(latency_fraction)
        self.error_rate_target = float(error_rate_target)
        self.unhealthy_burn = float(unhealthy_burn)
        self._latency = WindowedHistogram(window)
        self._errors = WindowedHistogram(window)
        self._lock = threading.Lock()

    def record(self, latency_s: float | None, *, error: bool = False) -> None:
        """Record one finished request (latency may be unknown on error)."""
        with self._lock:
            if latency_s is not None:
                self._latency.append(latency_s)
            self._errors.append(1.0 if error else 0.0)

    @property
    def latency_burn(self) -> float:
        """Observed over-target fraction / allowed fraction (0 = clean)."""
        with self._lock:
            observed = self._latency.over_threshold_fraction(
                self.latency_target_s
            )
        return observed / (1.0 - self.latency_fraction)

    @property
    def error_burn(self) -> float:
        """Observed rolling error rate / allowed error rate."""
        with self._lock:
            observed = self._errors.window_mean
        return observed / self.error_rate_target

    def snapshot(self) -> dict:
        """JSON-friendly view for ``/healthz`` and ``repro obs top``."""
        with self._lock:
            p99 = self._latency.quantile(0.99)
            n = len(self._latency)
            observed_over = self._latency.over_threshold_fraction(
                self.latency_target_s
            )
            error_rate = self._errors.window_mean
        return {
            "latency_target_s": self.latency_target_s,
            "latency_fraction": self.latency_fraction,
            "error_rate_target": self.error_rate_target,
            "window_requests": n,
            "rolling_p99_s": None if math.isnan(p99) else p99,
            "over_target_fraction": observed_over,
            "rolling_error_rate": error_rate,
            "latency_burn": observed_over / (1.0 - self.latency_fraction),
            "error_burn": error_rate / self.error_rate_target,
        }

    def reasons(self) -> list["HealthReason"]:
        """Typed health reasons for objectives currently burning."""
        out: list[HealthReason] = []
        for code, burn in (
            ("slo_latency_burn", self.latency_burn),
            ("slo_error_burn", self.error_burn),
        ):
            if burn > 1.0:
                severity = (
                    "unhealthy" if burn >= self.unhealthy_burn else "degraded"
                )
                out.append(
                    HealthReason(
                        code=code,
                        severity=severity,
                        detail=f"rolling burn {burn:.2f}x the error budget",
                    )
                )
        return out


# -- health reporting ------------------------------------------------------

#: Health states, best to worst; a report's status is its worst reason.
HEALTH_STATES: tuple[str, ...] = ("healthy", "degraded", "unhealthy")


@dataclass(frozen=True)
class HealthReason:
    """One typed contribution to a health verdict."""

    code: str
    severity: str
    detail: str

    def __post_init__(self) -> None:
        if self.severity not in ("degraded", "unhealthy"):
            raise ValidationError(
                f"severity must be degraded|unhealthy, got {self.severity!r}"
            )

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "severity": self.severity,
            "detail": self.detail,
        }


@dataclass(frozen=True)
class HealthReport:
    """Aggregate health: worst-severity status plus every typed reason."""

    status: str
    reasons: tuple[HealthReason, ...]

    @classmethod
    def from_reasons(cls, reasons: list[HealthReason]) -> "HealthReport":
        status = "healthy"
        for reason in reasons:
            if reason.severity == "unhealthy":
                status = "unhealthy"
                break
            status = "degraded"
        return cls(status=status, reasons=tuple(reasons))

    @property
    def ok(self) -> bool:
        """True unless unhealthy (degraded still serves)."""
        return self.status != "unhealthy"

    def to_dict(self) -> dict:
        return {
            "status": self.status,
            "reasons": [reason.to_dict() for reason in self.reasons],
        }


# -- the exposition server -------------------------------------------------


class TelemetryServer:
    """Stdlib HTTP exposition of one registry plus a health callable.

    Parameters
    ----------
    registry:
        The :class:`MetricsRegistry` to expose.
    health_fn:
        Zero-argument callable returning a :class:`HealthReport` (or a
        plain dict); ``None`` reports unconditionally healthy.
    host, port:
        Bind address. The default port 0 lets the OS pick a free port
        (read it back from :attr:`port`) so concurrent test suites and
        services never collide.

    The server runs ``serve_forever`` on a daemon thread — it can never
    keep the process alive — and :meth:`close` shuts the loop down,
    closes the listening socket, and joins the thread before returning,
    so a service's ``stop()`` leaves no socket behind. Usable as a
    context manager.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        *,
        health_fn=None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.registry = registry
        self.health_fn = health_fn
        outer = self

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, *_args) -> None:  # silence per-request noise
                pass

            def _send(self, status: int, content_type: str, body: str) -> None:
                payload = body.encode("utf-8")
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(payload)))
                self.end_headers()
                self.wfile.write(payload)

            def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
                path = self.path.split("?", 1)[0]
                try:
                    if path == "/metrics":
                        self._send(
                            200,
                            "text/plain; version=0.0.4; charset=utf-8",
                            render_prometheus(outer.registry),
                        )
                    elif path == "/metrics.json":
                        self._send(
                            200,
                            "application/json",
                            json.dumps(outer.registry.snapshot(), sort_keys=True),
                        )
                    elif path == "/healthz":
                        report = outer.health()
                        self._send(
                            200 if report["status"] != "unhealthy" else 503,
                            "application/json",
                            json.dumps(report, sort_keys=True),
                        )
                    else:
                        self._send(404, "text/plain", "not found\n")
                except Exception as exc:  # noqa: BLE001 - handler must not die
                    self._send(
                        500, "text/plain", f"{type(exc).__name__}: {exc}\n"
                    )

        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self._httpd.daemon_threads = True
        self._thread: threading.Thread | None = None
        self._closed = False

    @property
    def port(self) -> int:
        """The bound port (resolved after a port-0 bind)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        host = self._httpd.server_address[0]
        return f"http://{host}:{self.port}"

    def health(self) -> dict:
        """The current health report as a JSON-friendly dict."""
        if self.health_fn is None:
            return HealthReport.from_reasons([]).to_dict()
        report = self.health_fn()
        if isinstance(report, HealthReport):
            return report.to_dict()
        return dict(report)

    def start(self) -> "TelemetryServer":
        """Start the serving thread (idempotent)."""
        if self._closed:
            raise ValidationError("TelemetryServer already closed")
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-telemetry",
                daemon=True,
            )
            self._thread.start()
        return self

    def close(self) -> None:
        """Deterministic shutdown: stop the loop, close the socket, join."""
        if self._closed:
            return
        self._closed = True
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "TelemetryServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()


__all__ = [
    "HEALTH_STATES",
    "HealthReason",
    "HealthReport",
    "PROMETHEUS_PREFIX",
    "SLOTracker",
    "TelemetryServer",
    "prometheus_name",
    "render_prometheus",
]
