"""Shared value types used across the IPS pipeline.

These are deliberately small, immutable-ish dataclasses: a
:class:`Candidate` is a subsequence extracted during candidate generation
(Algorithm 1 of the paper), and a :class:`Shapelet` is a candidate that
survived DABF pruning and top-k selection (Algorithm 4) together with its
utility score.

The module also defines the repo-wide estimator contract: the
:class:`Estimator` and :class:`Transformer` protocols every public model
conforms to (enforced by the registry-driven conformance tests over
:mod:`repro.estimators`), :class:`ParamsMixin`, which derives
``get_params`` from the constructor signature, and — since the streaming
redesign — the unified :class:`Predictor` protocol: one prediction
surface (``predict`` / ``predict_proba`` / ``decision_function`` /
``classes_``) with pinned shapes, dtypes, and a single documented margin
convention (:func:`decision_margin`), shared by :class:`IPSClassifier
<repro.core.pipeline.IPSClassifier>`, every baseline, every
:mod:`repro.classify` model, and the online
:class:`~repro.serve.InferenceService` — which is what lets
:class:`repro.streaming.EarlyClassifier` wrap *any* of them.
"""

from __future__ import annotations

import dataclasses
import inspect
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Protocol, runtime_checkable

import numpy as np


@runtime_checkable
class Estimator(Protocol):
    """The classifier contract shared by every public model.

    ``fit(X, y)`` must return ``self``; ``predict`` on an unfitted model
    must raise :class:`repro.exceptions.NotFittedError`; ``predict``
    returns one integer label per row of ``X``; ``get_params`` returns
    the constructor arguments (see :class:`ParamsMixin`). ``isinstance``
    checks only verify the methods exist — the behavioural half of the
    contract is enforced by the conformance suite over
    :func:`repro.estimators.estimator_registry`.
    """

    def fit(self, X: Any, y: Any) -> "Estimator": ...

    def predict(self, X: Any) -> np.ndarray: ...

    def score(self, X: Any, y: Any) -> float: ...

    def get_params(self) -> dict: ...


@runtime_checkable
class Predictor(Protocol):
    """The unified prediction surface every fitted classifier exposes.

    Shape/dtype contract (``M`` rows in, ``C = len(classes_)``):

    * ``classes_`` — 1-D ``int64`` array of the class labels (original
      caller values), sorted ascending; column ``c`` of the matrix
      outputs below always refers to ``classes_[c]``.
    * ``predict(X) -> (M,) int64`` — one label per row, drawn from
      ``classes_``.
    * ``predict_proba(X) -> (M, C) float64`` — rows are probability
      distributions (non-negative, each summing to 1). Models without a
      native probabilistic read derive one (softmax over decision
      values, or a one-hot vote); see :class:`PredictorMixin`.
    * ``decision_function(X) -> (M, C) float64`` — per-class support,
      larger = more confident, *always* 2-D (the historical flat binary
      ``(M,)`` shape is gone; see docs/api.md for the migration table).

    Margin convention: the decision margin of a row is the gap between
    its largest and second-largest decision values —
    :func:`decision_margin`. This single convention is what streaming
    early-emission thresholds, drift gauges, and the serve layer all
    speak.

    ``isinstance`` checks verify the surface exists; the behavioural
    half is enforced by the Predictor conformance suite in
    ``tests/test_estimators.py``.
    """

    classes_: Any

    def predict(self, X: Any) -> np.ndarray: ...

    def predict_proba(self, X: Any) -> np.ndarray: ...

    def decision_function(self, X: Any) -> np.ndarray: ...


@runtime_checkable
class Transformer(Protocol):
    """The feature-transformer contract (scalers, PCA, shapelet transform).

    ``transform`` on an unfitted instance must raise
    :class:`repro.exceptions.NotFittedError`; fitting returns ``self``.
    """

    def transform(self, X: Any) -> np.ndarray: ...

    def get_params(self) -> dict: ...


class ParamsMixin:
    """Derive ``get_params`` from the constructor signature.

    Every model in this repo stores each constructor argument on ``self``
    under the same name (or, for arguments consumed by ``fit`` during
    construction, under the sklearn-style trailing-underscore name), so
    the parameter dict can be reconstructed by introspection instead of
    per-class boilerplate.
    """

    def get_params(self) -> dict:
        """Constructor arguments of this estimator, by name."""
        params: dict[str, Any] = {}
        signature = inspect.signature(type(self).__init__)
        for name, parameter in signature.parameters.items():
            if name == "self" or parameter.kind in (
                inspect.Parameter.VAR_POSITIONAL,
                inspect.Parameter.VAR_KEYWORD,
            ):
                continue
            if hasattr(self, name):
                params[name] = getattr(self, name)
            elif hasattr(self, name + "_"):
                params[name] = getattr(self, name + "_")
            else:
                raise AttributeError(
                    f"{type(self).__name__} does not store constructor "
                    f"argument {name!r}; store it on self (or self.{name}_) "
                    "or override get_params"
                )
        return params


def decision_margin(scores: np.ndarray) -> np.ndarray:
    """Per-row decision margin: top score minus runner-up score.

    This is *the* margin convention of the repo (documented on
    :class:`Predictor`): given an ``(M, C)`` decision matrix, row ``i``'s
    margin is ``sorted(scores[i])[-1] - sorted(scores[i])[-2]`` — always
    non-negative, and zero exactly when the top two classes tie. Streaming
    early emission (:class:`repro.streaming.EarlyClassifier`) compares
    this value against its threshold; drift gauges and serve metrics
    report the same quantity.

    A single-column matrix (one known class) has nothing to be confused
    with, so its margin is ``+inf``.
    """
    scores = np.asarray(scores, dtype=np.float64)
    if scores.ndim != 2:
        raise ValueError(
            f"decision_margin expects an (M, C) matrix, got ndim={scores.ndim}"
        )
    if scores.shape[1] == 1:
        return np.full(scores.shape[0], np.inf)
    # Partition brings the two largest values into the last two slots.
    top2 = np.partition(scores, scores.shape[1] - 2, axis=1)[:, -2:]
    return top2[:, 1] - top2[:, 0]


def softmax_rows(scores: np.ndarray) -> np.ndarray:
    """Row-wise softmax with max-subtraction for numerical stability."""
    scores = np.asarray(scores, dtype=np.float64)
    shifted = scores - scores.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


def one_hot_scores(labels: np.ndarray, classes: np.ndarray) -> np.ndarray:
    """``(M, C)`` one-hot matrix placing mass 1 on each row's label.

    The degenerate probability/decision matrix of a hard-vote model:
    column order follows ``classes`` (the model's ``classes_``).
    """
    labels = np.asarray(labels)
    classes = np.asarray(classes)
    out = np.zeros((labels.shape[0], classes.shape[0]), dtype=np.float64)
    columns = np.searchsorted(classes, labels)
    out[np.arange(labels.shape[0]), columns] = 1.0
    return out


class PredictorMixin:
    """Fill in the missing half of the :class:`Predictor` surface.

    A model that natively produces only one of ``predict_proba`` /
    ``decision_function`` inherits the other, derived consistently:

    * native ``predict_proba`` → ``decision_function`` is the log of the
      (clipped) probabilities — monotone in the probabilities, so argmax
      and margins rank identically;
    * native ``decision_function`` → ``predict_proba`` is the row softmax
      of the decision values;
    * neither → both collapse to the one-hot vote of ``predict``.

    Overrides are detected by comparing the bound implementation against
    the mixin's own (``type(self).predict_proba is not
    PredictorMixin.predict_proba``), so subclasses simply define whichever
    methods they natively support.
    """

    def _has_native(self, name: str) -> bool:
        return getattr(type(self), name) is not getattr(PredictorMixin, name)

    def predict_proba(self, X: Any) -> np.ndarray:
        """Per-class probabilities, ``(M, C)`` float64 rows summing to 1."""
        if self._has_native("decision_function"):
            return softmax_rows(self.decision_function(X))
        return one_hot_scores(self.predict(X), np.asarray(self.classes_))

    def decision_function(self, X: Any) -> np.ndarray:
        """Per-class support, ``(M, C)`` float64, larger = more confident."""
        if self._has_native("predict_proba"):
            proba = np.asarray(self.predict_proba(X), dtype=np.float64)
            return np.log(np.clip(proba, 1e-300, None))
        return one_hot_scores(self.predict(X), np.asarray(self.classes_))


class CandidateKind(str, Enum):
    """Whether a candidate was extracted as a motif or a discord.

    The paper's Algorithm 1 records both: motifs (the minimum of the
    instance profile) become shapelet candidates, while discords (the
    maximum) are kept around because the inter-class utility (Def. 12)
    scores motif candidates against *both* motifs and discords of the
    other classes.
    """

    MOTIF = "motif"
    DISCORD = "discord"


@dataclass(frozen=True)
class Candidate:
    """A shapelet candidate: a subsequence plus its provenance.

    Attributes
    ----------
    values:
        The raw subsequence values, shape ``(length,)``.
    label:
        Class label the candidate was extracted from.
    kind:
        Motif or discord (see :class:`CandidateKind`).
    source_instance:
        Index of the training instance the subsequence came from, or ``-1``
        when the position inside a concatenated sample could not be mapped
        back (never happens with junction masking on).
    start:
        Start offset of the subsequence inside ``source_instance``.
    sample_id:
        Which of the ``Q_N`` bagging samples produced this candidate.
    """

    values: np.ndarray
    label: int
    kind: CandidateKind
    source_instance: int = -1
    start: int = -1
    sample_id: int = -1

    def __post_init__(self) -> None:
        values = np.asarray(self.values, dtype=np.float64)
        if values.ndim != 1:
            raise ValueError(f"candidate values must be 1-D, got ndim={values.ndim}")
        if values.size == 0:
            raise ValueError("candidate values must be non-empty")
        object.__setattr__(self, "values", values)

    def __len__(self) -> int:
        return int(self.values.size)

    @property
    def length(self) -> int:
        """Length of the subsequence."""
        return int(self.values.size)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Candidate):
            return NotImplemented
        return (
            self.label == other.label
            and self.kind == other.kind
            and self.source_instance == other.source_instance
            and self.start == other.start
            and self.sample_id == other.sample_id
            and self.values.shape == other.values.shape
            and bool(np.array_equal(self.values, other.values))
        )

    def __hash__(self) -> int:
        return hash(
            (
                self.label,
                self.kind,
                self.source_instance,
                self.start,
                self.sample_id,
                self.values.tobytes(),
            )
        )


@dataclass(frozen=True)
class Shapelet:
    """A discovered shapelet: a candidate that won top-k selection.

    Attributes
    ----------
    values:
        The subsequence values, shape ``(length,)``.
    label:
        Class the shapelet represents / discriminates.
    score:
        The combined utility ``u = U_intra - U_inter + U_DC`` (smaller is
        better; see Algorithm 4 of the paper and DESIGN.md).
    source_instance, start:
        Provenance inside the training set, for interpretability plots
        (Fig. 13 of the paper).
    """

    values: np.ndarray
    label: int
    score: float = float("nan")
    source_instance: int = -1
    start: int = -1

    def __post_init__(self) -> None:
        values = np.asarray(self.values, dtype=np.float64)
        if values.ndim != 1 or values.size == 0:
            raise ValueError("shapelet values must be a non-empty 1-D array")
        object.__setattr__(self, "values", values)

    def __len__(self) -> int:
        return int(self.values.size)

    @property
    def length(self) -> int:
        """Length of the shapelet subsequence."""
        return int(self.values.size)

    @classmethod
    def from_candidate(cls, candidate: Candidate, score: float) -> "Shapelet":
        """Promote a surviving :class:`Candidate` into a shapelet."""
        return cls(
            values=candidate.values,
            label=candidate.label,
            score=float(score),
            source_instance=candidate.source_instance,
            start=candidate.start,
        )

    def replace(self, **changes: object) -> "Shapelet":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **changes)


@dataclass
class DiscoveryResult:
    """Full output of a shapelet-discovery run, including timing.

    The per-stage timings feed the Table V breakdown benchmark; the
    candidate counts feed the DABF pruning-rate diagnostics.

    ``completed`` is False when an anytime resource budget
    (:class:`repro.core.budget.Budget`) ran out before the pipeline
    finished; the result is still a valid best-so-far shapelet set, and
    ``extra["budget"]`` records per-phase progress and the exhaustion
    reason.
    """

    shapelets: list[Shapelet]
    n_candidates_generated: int = 0
    n_candidates_after_pruning: int = 0
    time_candidate_generation: float = 0.0
    time_pruning: float = 0.0
    time_selection: float = 0.0
    completed: bool = True
    extra: dict = field(default_factory=dict)

    @property
    def total_time(self) -> float:
        """Total discovery wall-clock time across the three stages."""
        return (
            self.time_candidate_generation + self.time_pruning + self.time_selection
        )

    @property
    def pruning_rate(self) -> float:
        """Fraction of generated candidates removed by DABF pruning."""
        if self.n_candidates_generated == 0:
            return 0.0
        kept = self.n_candidates_after_pruning
        return 1.0 - kept / self.n_candidates_generated
