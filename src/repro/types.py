"""Shared value types used across the IPS pipeline.

These are deliberately small, immutable-ish dataclasses: a
:class:`Candidate` is a subsequence extracted during candidate generation
(Algorithm 1 of the paper), and a :class:`Shapelet` is a candidate that
survived DABF pruning and top-k selection (Algorithm 4) together with its
utility score.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from enum import Enum

import numpy as np


class CandidateKind(str, Enum):
    """Whether a candidate was extracted as a motif or a discord.

    The paper's Algorithm 1 records both: motifs (the minimum of the
    instance profile) become shapelet candidates, while discords (the
    maximum) are kept around because the inter-class utility (Def. 12)
    scores motif candidates against *both* motifs and discords of the
    other classes.
    """

    MOTIF = "motif"
    DISCORD = "discord"


@dataclass(frozen=True)
class Candidate:
    """A shapelet candidate: a subsequence plus its provenance.

    Attributes
    ----------
    values:
        The raw subsequence values, shape ``(length,)``.
    label:
        Class label the candidate was extracted from.
    kind:
        Motif or discord (see :class:`CandidateKind`).
    source_instance:
        Index of the training instance the subsequence came from, or ``-1``
        when the position inside a concatenated sample could not be mapped
        back (never happens with junction masking on).
    start:
        Start offset of the subsequence inside ``source_instance``.
    sample_id:
        Which of the ``Q_N`` bagging samples produced this candidate.
    """

    values: np.ndarray
    label: int
    kind: CandidateKind
    source_instance: int = -1
    start: int = -1
    sample_id: int = -1

    def __post_init__(self) -> None:
        values = np.asarray(self.values, dtype=np.float64)
        if values.ndim != 1:
            raise ValueError(f"candidate values must be 1-D, got ndim={values.ndim}")
        if values.size == 0:
            raise ValueError("candidate values must be non-empty")
        object.__setattr__(self, "values", values)

    def __len__(self) -> int:
        return int(self.values.size)

    @property
    def length(self) -> int:
        """Length of the subsequence."""
        return int(self.values.size)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Candidate):
            return NotImplemented
        return (
            self.label == other.label
            and self.kind == other.kind
            and self.source_instance == other.source_instance
            and self.start == other.start
            and self.sample_id == other.sample_id
            and self.values.shape == other.values.shape
            and bool(np.array_equal(self.values, other.values))
        )

    def __hash__(self) -> int:
        return hash(
            (
                self.label,
                self.kind,
                self.source_instance,
                self.start,
                self.sample_id,
                self.values.tobytes(),
            )
        )


@dataclass(frozen=True)
class Shapelet:
    """A discovered shapelet: a candidate that won top-k selection.

    Attributes
    ----------
    values:
        The subsequence values, shape ``(length,)``.
    label:
        Class the shapelet represents / discriminates.
    score:
        The combined utility ``u = U_intra - U_inter + U_DC`` (smaller is
        better; see Algorithm 4 of the paper and DESIGN.md).
    source_instance, start:
        Provenance inside the training set, for interpretability plots
        (Fig. 13 of the paper).
    """

    values: np.ndarray
    label: int
    score: float = float("nan")
    source_instance: int = -1
    start: int = -1

    def __post_init__(self) -> None:
        values = np.asarray(self.values, dtype=np.float64)
        if values.ndim != 1 or values.size == 0:
            raise ValueError("shapelet values must be a non-empty 1-D array")
        object.__setattr__(self, "values", values)

    def __len__(self) -> int:
        return int(self.values.size)

    @property
    def length(self) -> int:
        """Length of the shapelet subsequence."""
        return int(self.values.size)

    @classmethod
    def from_candidate(cls, candidate: Candidate, score: float) -> "Shapelet":
        """Promote a surviving :class:`Candidate` into a shapelet."""
        return cls(
            values=candidate.values,
            label=candidate.label,
            score=float(score),
            source_instance=candidate.source_instance,
            start=candidate.start,
        )

    def replace(self, **changes: object) -> "Shapelet":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **changes)


@dataclass
class DiscoveryResult:
    """Full output of a shapelet-discovery run, including timing.

    The per-stage timings feed the Table V breakdown benchmark; the
    candidate counts feed the DABF pruning-rate diagnostics.

    ``completed`` is False when an anytime resource budget
    (:class:`repro.core.budget.Budget`) ran out before the pipeline
    finished; the result is still a valid best-so-far shapelet set, and
    ``extra["budget"]`` records per-phase progress and the exhaustion
    reason.
    """

    shapelets: list[Shapelet]
    n_candidates_generated: int = 0
    n_candidates_after_pruning: int = 0
    time_candidate_generation: float = 0.0
    time_pruning: float = 0.0
    time_selection: float = 0.0
    completed: bool = True
    extra: dict = field(default_factory=dict)

    @property
    def total_time(self) -> float:
        """Total discovery wall-clock time across the three stages."""
        return (
            self.time_candidate_generation + self.time_pruning + self.time_selection
        )

    @property
    def pruning_rate(self) -> float:
        """Fraction of generated candidates removed by DABF pruning."""
        if self.n_candidates_generated == 0:
            return 0.0
        kept = self.n_candidates_after_pruning
        return 1.0 - kept / self.n_candidates_generated
