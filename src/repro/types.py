"""Shared value types used across the IPS pipeline.

These are deliberately small, immutable-ish dataclasses: a
:class:`Candidate` is a subsequence extracted during candidate generation
(Algorithm 1 of the paper), and a :class:`Shapelet` is a candidate that
survived DABF pruning and top-k selection (Algorithm 4) together with its
utility score.

The module also defines the repo-wide estimator contract: the
:class:`Estimator` and :class:`Transformer` protocols every public model
conforms to (enforced by the registry-driven conformance tests over
:mod:`repro.estimators`), and :class:`ParamsMixin`, which derives
``get_params`` from the constructor signature.
"""

from __future__ import annotations

import dataclasses
import inspect
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Protocol, runtime_checkable

import numpy as np


@runtime_checkable
class Estimator(Protocol):
    """The classifier contract shared by every public model.

    ``fit(X, y)`` must return ``self``; ``predict`` on an unfitted model
    must raise :class:`repro.exceptions.NotFittedError`; ``predict``
    returns one integer label per row of ``X``; ``get_params`` returns
    the constructor arguments (see :class:`ParamsMixin`). ``isinstance``
    checks only verify the methods exist — the behavioural half of the
    contract is enforced by the conformance suite over
    :func:`repro.estimators.estimator_registry`.
    """

    def fit(self, X: Any, y: Any) -> "Estimator": ...

    def predict(self, X: Any) -> np.ndarray: ...

    def score(self, X: Any, y: Any) -> float: ...

    def get_params(self) -> dict: ...


@runtime_checkable
class Transformer(Protocol):
    """The feature-transformer contract (scalers, PCA, shapelet transform).

    ``transform`` on an unfitted instance must raise
    :class:`repro.exceptions.NotFittedError`; fitting returns ``self``.
    """

    def transform(self, X: Any) -> np.ndarray: ...

    def get_params(self) -> dict: ...


class ParamsMixin:
    """Derive ``get_params`` from the constructor signature.

    Every model in this repo stores each constructor argument on ``self``
    under the same name (or, for arguments consumed by ``fit`` during
    construction, under the sklearn-style trailing-underscore name), so
    the parameter dict can be reconstructed by introspection instead of
    per-class boilerplate.
    """

    def get_params(self) -> dict:
        """Constructor arguments of this estimator, by name."""
        params: dict[str, Any] = {}
        signature = inspect.signature(type(self).__init__)
        for name, parameter in signature.parameters.items():
            if name == "self" or parameter.kind in (
                inspect.Parameter.VAR_POSITIONAL,
                inspect.Parameter.VAR_KEYWORD,
            ):
                continue
            if hasattr(self, name):
                params[name] = getattr(self, name)
            elif hasattr(self, name + "_"):
                params[name] = getattr(self, name + "_")
            else:
                raise AttributeError(
                    f"{type(self).__name__} does not store constructor "
                    f"argument {name!r}; store it on self (or self.{name}_) "
                    "or override get_params"
                )
        return params


class CandidateKind(str, Enum):
    """Whether a candidate was extracted as a motif or a discord.

    The paper's Algorithm 1 records both: motifs (the minimum of the
    instance profile) become shapelet candidates, while discords (the
    maximum) are kept around because the inter-class utility (Def. 12)
    scores motif candidates against *both* motifs and discords of the
    other classes.
    """

    MOTIF = "motif"
    DISCORD = "discord"


@dataclass(frozen=True)
class Candidate:
    """A shapelet candidate: a subsequence plus its provenance.

    Attributes
    ----------
    values:
        The raw subsequence values, shape ``(length,)``.
    label:
        Class label the candidate was extracted from.
    kind:
        Motif or discord (see :class:`CandidateKind`).
    source_instance:
        Index of the training instance the subsequence came from, or ``-1``
        when the position inside a concatenated sample could not be mapped
        back (never happens with junction masking on).
    start:
        Start offset of the subsequence inside ``source_instance``.
    sample_id:
        Which of the ``Q_N`` bagging samples produced this candidate.
    """

    values: np.ndarray
    label: int
    kind: CandidateKind
    source_instance: int = -1
    start: int = -1
    sample_id: int = -1

    def __post_init__(self) -> None:
        values = np.asarray(self.values, dtype=np.float64)
        if values.ndim != 1:
            raise ValueError(f"candidate values must be 1-D, got ndim={values.ndim}")
        if values.size == 0:
            raise ValueError("candidate values must be non-empty")
        object.__setattr__(self, "values", values)

    def __len__(self) -> int:
        return int(self.values.size)

    @property
    def length(self) -> int:
        """Length of the subsequence."""
        return int(self.values.size)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Candidate):
            return NotImplemented
        return (
            self.label == other.label
            and self.kind == other.kind
            and self.source_instance == other.source_instance
            and self.start == other.start
            and self.sample_id == other.sample_id
            and self.values.shape == other.values.shape
            and bool(np.array_equal(self.values, other.values))
        )

    def __hash__(self) -> int:
        return hash(
            (
                self.label,
                self.kind,
                self.source_instance,
                self.start,
                self.sample_id,
                self.values.tobytes(),
            )
        )


@dataclass(frozen=True)
class Shapelet:
    """A discovered shapelet: a candidate that won top-k selection.

    Attributes
    ----------
    values:
        The subsequence values, shape ``(length,)``.
    label:
        Class the shapelet represents / discriminates.
    score:
        The combined utility ``u = U_intra - U_inter + U_DC`` (smaller is
        better; see Algorithm 4 of the paper and DESIGN.md).
    source_instance, start:
        Provenance inside the training set, for interpretability plots
        (Fig. 13 of the paper).
    """

    values: np.ndarray
    label: int
    score: float = float("nan")
    source_instance: int = -1
    start: int = -1

    def __post_init__(self) -> None:
        values = np.asarray(self.values, dtype=np.float64)
        if values.ndim != 1 or values.size == 0:
            raise ValueError("shapelet values must be a non-empty 1-D array")
        object.__setattr__(self, "values", values)

    def __len__(self) -> int:
        return int(self.values.size)

    @property
    def length(self) -> int:
        """Length of the shapelet subsequence."""
        return int(self.values.size)

    @classmethod
    def from_candidate(cls, candidate: Candidate, score: float) -> "Shapelet":
        """Promote a surviving :class:`Candidate` into a shapelet."""
        return cls(
            values=candidate.values,
            label=candidate.label,
            score=float(score),
            source_instance=candidate.source_instance,
            start=candidate.start,
        )

    def replace(self, **changes: object) -> "Shapelet":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **changes)


@dataclass
class DiscoveryResult:
    """Full output of a shapelet-discovery run, including timing.

    The per-stage timings feed the Table V breakdown benchmark; the
    candidate counts feed the DABF pruning-rate diagnostics.

    ``completed`` is False when an anytime resource budget
    (:class:`repro.core.budget.Budget`) ran out before the pipeline
    finished; the result is still a valid best-so-far shapelet set, and
    ``extra["budget"]`` records per-phase progress and the exhaustion
    reason.
    """

    shapelets: list[Shapelet]
    n_candidates_generated: int = 0
    n_candidates_after_pruning: int = 0
    time_candidate_generation: float = 0.0
    time_pruning: float = 0.0
    time_selection: float = 0.0
    completed: bool = True
    extra: dict = field(default_factory=dict)

    @property
    def total_time(self) -> float:
        """Total discovery wall-clock time across the three stages."""
        return (
            self.time_candidate_generation + self.time_pruning + self.time_selection
        )

    @property
    def pruning_rate(self) -> float:
        """Fraction of generated candidates removed by DABF pruning."""
        if self.n_candidates_generated == 0:
            return 0.0
        kept = self.n_candidates_after_pruning
        return 1.0 - kept / self.n_candidates_generated
