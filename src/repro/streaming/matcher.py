"""Incremental sliding-minimum shapelet distances over a growing series.

:class:`StreamingMatcher` is the streaming half of the shapelet
transform: it holds one unbounded series, fed chunk-by-chunk, and
maintains for every shapelet the minimum Def.-4 distance over all
complete windows seen so far.

Bit-identity to the batch ``direct`` engine
-------------------------------------------
Every quantity is produced by the exact code the batch
``ShapeletTransform(engine="direct")`` path runs:

* window sums of squares come from :class:`~repro.kernels.RollingStats`,
  whose chunk-extended cumulative sums are bit-identical to a one-shot
  ``cumsum`` (sequential accumulation — see :mod:`repro.kernels.rolling`);
* per-window dot products and distance profiles come from
  :func:`~repro.kernels.direct_window_dots` /
  :func:`~repro.kernels.direct_distance_profile`, evaluated on the same
  contiguous slices a batch call would see;
* the running minimum is updated per chunk — exact, because ``min`` over
  a partition of the windows equals ``min`` over all of them — and the
  raw (undivided) minimum is stored, with the ``/ length`` scaling
  applied once at read time, matching the batch
  ``profile.min() / q.size`` order of operations.

Consequently a series fed in chunks of *any* sizes (including one sample
at a time) yields exactly the bits of
``ShapeletTransform(shapelets, engine="direct").transform(series)`` —
the property test in ``tests/test_streaming_property.py`` pins this.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.kernels import RollingStats, direct_distance_profile
from repro.types import Shapelet


def _as_queries(shapelets) -> list[np.ndarray]:
    """Normalize a shapelet list (or raw 1-D arrays) to query arrays."""
    queries = []
    for i, shapelet in enumerate(shapelets):
        values = (
            shapelet.values
            if isinstance(shapelet, Shapelet)
            else np.asarray(shapelet, dtype=np.float64)
        )
        values = np.ascontiguousarray(values, dtype=np.float64)
        if values.ndim != 1 or values.size == 0:
            raise ValidationError(
                f"shapelet {i} must be a non-empty 1-D array"
            )
        queries.append(values)
    if not queries:
        raise ValidationError("at least one shapelet is required")
    return queries


class StreamingMatcher:
    """Per-shapelet sliding minimum distances over an unbounded series.

    Parameters
    ----------
    shapelets:
        The shapelets to match — :class:`repro.types.Shapelet` instances
        or raw 1-D arrays.

    Notes
    -----
    Memory grows with the series (the full history is retained so every
    window can be scored exactly); appends are amortized O(chunk + new
    windows x shapelet length).
    """

    def __init__(self, shapelets) -> None:
        self._queries = _as_queries(shapelets)
        self._q_ssqs = [float(np.dot(q, q)) for q in self._queries]
        self.lengths = np.array([q.size for q in self._queries], dtype=np.int64)
        self._stats = RollingStats()
        #: Raw (undivided) minimum squared distance per shapelet; +inf
        #: until the first complete window of that shapelet's length.
        self._best_raw = np.full(len(self._queries), np.inf)
        #: Windows already scored per shapelet (next window start index).
        self._scored = np.zeros(len(self._queries), dtype=np.int64)

    @property
    def n_shapelets(self) -> int:
        """Number of shapelets being matched."""
        return len(self._queries)

    @property
    def n(self) -> int:
        """Samples of the series seen so far."""
        return self._stats.n

    @property
    def ready(self) -> bool:
        """True once every shapelet has at least one complete window."""
        return self._stats.n >= int(self.lengths.max())

    def append(self, chunk) -> None:
        """Extend the series and score every newly completed window.

        Accepts scalars, 0-D arrays, and 1-D chunks of any size
        (including size 1); empty chunks are a no-op.
        """
        chunk = np.asarray(chunk, dtype=np.float64)
        if chunk.ndim > 1:
            raise ValidationError(
                f"StreamingMatcher streams one series; got ndim={chunk.ndim}"
            )
        self._stats.append(chunk)
        series = self._stats.values
        for i, query in enumerate(self._queries):
            total = self._stats.n_windows(query.size)
            start = int(self._scored[i])
            if total <= start:
                continue
            ssq = self._stats.window_ssq(query.size, start, total)
            profile = direct_distance_profile(
                series, query, ssq, self._q_ssqs[i], start, total
            )
            best = profile.min()
            if best < self._best_raw[i]:
                self._best_raw[i] = best
            self._scored[i] = total

    def distances(self) -> np.ndarray:
        """Best Def.-4 distance per shapelet so far, shape ``(m,)``.

        Entries are ``+inf`` for shapelets longer than the series seen so
        far. The raw running minimum is divided by the shapelet length
        here — once, at read time — so the result carries the exact bits
        of the batch ``profile.min() / length``.
        """
        return self._best_raw / self.lengths

    def snapshot(self) -> dict:
        """JSON-friendly progress summary (samples, windows, readiness)."""
        return {
            "n_samples": int(self._stats.n),
            "n_shapelets": self.n_shapelets,
            "windows_scored": self._scored.tolist(),
            "ready": bool(self.ready),
        }


__all__ = ["StreamingMatcher"]
