"""Early classification: emit a label before the series has fully arrived.

:class:`EarlyClassifier` wraps any fitted :class:`repro.types.Predictor`
over shapelet-transform features and watches the prediction's *decision
margin* (:func:`repro.types.decision_margin` — top score minus runner-up)
as samples stream in. Once the margin clears a threshold (and enough of
the series has arrived), the label is emitted early and latched; a
resource budget (:class:`repro.core.budget.Budget`) can force a best-so-
far emission instead, mirroring the anytime ``completed=False`` contract
of discovery.

Because the streaming features converge bit-identically to the batch
``direct``-engine features (:mod:`repro.streaming.transform`), an
end-of-stream decision always equals the batch prediction on the full
series — early emission can only trade *when* for *what* under the margin
threshold, never silently change the final model.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.core.budget import Budget, BudgetTracker
from repro.exceptions import NotFittedError, ValidationError
from repro.obs.metrics import MetricsRegistry
from repro.streaming.transform import StreamingTransform
from repro.types import Predictor, decision_margin

#: Decision reasons, in the order a stream can produce them.
REASONS: tuple[str, ...] = ("pending", "margin", "budget", "end_of_stream")


@dataclass(frozen=True)
class StreamingDecision:
    """One early-classification verdict (emitted after every append).

    Attributes
    ----------
    label:
        Best-guess label so far (``None`` before any feature is ready).
    confidence:
        ``predict_proba`` mass of ``label`` on the current features.
    margin:
        Decision margin (top minus runner-up score) on the current
        features — the quantity the emission threshold compares against.
    t_emitted:
        Samples seen when this decision was produced.
    final:
        True once the decision is latched: the margin cleared the
        threshold, the budget ran out, or the stream was closed. Later
        appends return the same decision.
    reason:
        Why this decision has its ``final`` status: ``"pending"`` (still
        streaming), ``"margin"`` (early emission), ``"budget"`` (anytime
        truncation), or ``"end_of_stream"`` (:meth:`EarlyClassifier.finalize`).
    completed:
        False only for budget truncations — the streaming analogue of
        ``DiscoveryResult.completed``.
    """

    label: int | None
    confidence: float
    margin: float
    t_emitted: int
    final: bool
    reason: str
    completed: bool = True

    @property
    def early(self) -> bool:
        """True when the label was emitted before the stream ended."""
        return self.final and self.reason == "margin"


class MarginDriftDetector:
    """Flag sustained margin collapse over a sliding window of decisions.

    A cheap guard for long-running streams: when the mean margin of the
    newer half of the window drops below ``ratio`` times the older half's
    mean, :attr:`drifted` latches True — a signal to re-fit or to stop
    trusting early emissions. Purely observational; it never blocks a
    decision.
    """

    def __init__(self, window: int = 32, ratio: float = 0.5) -> None:
        if window < 4 or window % 2:
            raise ValidationError("window must be an even integer >= 4")
        if not 0.0 < ratio <= 1.0:
            raise ValidationError(f"ratio must be in (0, 1], got {ratio}")
        self.window = window
        self.ratio = ratio
        self._margins: deque[float] = deque(maxlen=window)
        self.drifted = False

    def update(self, margin: float) -> bool:
        """Record one margin; return the (latched) drift flag."""
        if np.isfinite(margin):
            self._margins.append(float(margin))
        if len(self._margins) == self.window and not self.drifted:
            half = self.window // 2
            values = list(self._margins)
            older = sum(values[:half]) / half
            newer = sum(values[half:]) / half
            if older > 0 and newer < self.ratio * older:
                self.drifted = True
        return self.drifted


class EarlyClassifier:
    """Wrap a :class:`~repro.types.Predictor` for margin-gated early labels.

    Parameters
    ----------
    predictor:
        Any fitted Predictor over shapelet-transform feature vectors
        (typically the final classifier of an
        :class:`~repro.core.pipeline.IPSClassifier` — see
        :meth:`from_classifier`).
    shapelets:
        The shapelet set defining the features the predictor was trained
        on.
    scaler:
        Optional fitted feature scaler applied before prediction (the
        pipeline's :class:`~repro.classify.scaler.StandardScaler`).
    margin_threshold:
        Emit early once the decision margin reaches this. ``inf``
        disables early emission.
    min_samples:
        Samples that must arrive before early emission is allowed
        (independent of shapelet lengths; readiness is always required).
    budget:
        Optional :class:`~repro.core.budget.Budget`; each append charges
        its sample count to the candidate axis, and exhaustion forces a
        final best-so-far decision with ``completed=False``.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`; gauges
        ``streaming.margin``, ``streaming.emit_t``, observations
        ``streaming.append_seconds``, and counters
        ``streaming.appends`` / ``streaming.early_emits`` are recorded.
    classes:
        Optional label mapping: when the predictor was trained on
        internal labels ``0..C-1`` (as the IPS pipeline's inner
        classifier is), ``classes[internal]`` recovers the original
        value. ``None`` emits the predictor's labels unchanged.
    drift_detector:
        Optional :class:`MarginDriftDetector` updated with every margin.
    """

    def __init__(
        self,
        predictor: Predictor,
        shapelets,
        *,
        scaler=None,
        margin_threshold: float = 1.0,
        min_samples: int = 0,
        budget: Budget | None = None,
        metrics: MetricsRegistry | None = None,
        classes=None,
        drift_detector: MarginDriftDetector | None = None,
    ) -> None:
        for method in ("predict", "predict_proba", "decision_function"):
            if not callable(getattr(predictor, method, None)):
                raise ValidationError(
                    f"predictor lacks the Predictor surface ({method}); "
                    "see repro.types.Predictor"
                )
        if margin_threshold < 0:
            raise ValidationError(
                f"margin_threshold must be >= 0, got {margin_threshold}"
            )
        if min_samples < 0:
            raise ValidationError(f"min_samples must be >= 0, got {min_samples}")
        self.predictor = predictor
        self.transform = StreamingTransform(shapelets)
        self.scaler = scaler
        self.margin_threshold = float(margin_threshold)
        self.min_samples = int(min_samples)
        self.metrics = metrics
        self.classes = None if classes is None else np.asarray(classes)
        self.drift_detector = drift_detector
        self.tracker: BudgetTracker | None = (
            budget.start() if budget is not None else None
        )
        self.decision: StreamingDecision = StreamingDecision(
            label=None,
            confidence=0.0,
            margin=0.0,
            t_emitted=0,
            final=False,
            reason="pending",
        )

    @classmethod
    def from_classifier(
        cls, classifier, *, margin_threshold: float = 1.0, **kwargs
    ) -> "EarlyClassifier":
        """Build from a fitted pipeline classifier.

        Accepts an :class:`~repro.core.pipeline.IPSClassifier` or any
        baseline :class:`~repro.baselines.base.ShapeletTransformClassifier`
        — both expose ``shapelets_``, an inner scaler/classifier pair
        trained on internal labels, and original-valued ``classes_``.
        """
        shapelets = getattr(classifier, "shapelets_", None)
        inner = getattr(classifier, "_svm", None)
        scaler = getattr(classifier, "_scaler", None)
        if not shapelets or inner is None:
            raise NotFittedError(
                "from_classifier needs a fitted shapelet-pipeline classifier"
            )
        return cls(
            inner,
            shapelets,
            scaler=scaler,
            margin_threshold=margin_threshold,
            classes=classifier.classes_,
            **kwargs,
        )

    @property
    def final(self) -> bool:
        """True once the decision is latched."""
        return self.decision.final

    def _map_label(self, internal: int) -> int:
        if self.classes is None:
            return int(internal)
        return int(self.classes[int(internal)]) if 0 <= internal < len(
            self.classes
        ) else int(internal)

    def _evaluate(self) -> tuple[int, float, float]:
        """Predict on the current features: (label, confidence, margin)."""
        features = self.transform.features.reshape(1, -1)
        if self.scaler is not None:
            features = self.scaler.transform(features)
        scores = np.asarray(
            self.predictor.decision_function(features), dtype=np.float64
        )
        margin = float(decision_margin(scores)[0])
        proba = np.asarray(self.predictor.predict_proba(features), dtype=np.float64)
        label = int(np.asarray(self.predictor.predict(features))[0])
        classes = np.asarray(getattr(self.predictor, "classes_", []))
        if classes.size == proba.shape[1]:
            confidence = float(proba[0, int(np.searchsorted(classes, label))])
        else:
            confidence = float(proba[0].max())
        return self._map_label(label), confidence, margin

    def _emit(
        self, label, confidence, margin, *, final, reason, completed=True
    ) -> StreamingDecision:
        decision = StreamingDecision(
            label=label,
            confidence=confidence,
            margin=margin,
            t_emitted=self.transform.n,
            final=final,
            reason=reason,
            completed=completed,
        )
        self.decision = decision
        if self.metrics is not None and final:
            self.metrics.gauge("streaming.emit_t", float(decision.t_emitted))
            if decision.early:
                self.metrics.counter("streaming.early_emits")
        return decision

    def append(self, chunk) -> StreamingDecision:
        """Feed a chunk; return the current (possibly final) decision."""
        if self.decision.final:
            return self.decision
        started = time.perf_counter()
        chunk = np.asarray(chunk, dtype=np.float64)
        self.transform.append(chunk)
        if self.tracker is not None:
            self.tracker.charge(int(chunk.size))
        if self.metrics is not None:
            self.metrics.counter("streaming.appends")
        if not self.transform.ready:
            decision = self._emit(
                None, 0.0, 0.0, final=False, reason="pending"
            )
        else:
            label, confidence, margin = self._evaluate()
            if self.metrics is not None:
                self.metrics.gauge("streaming.margin", margin)
            if self.drift_detector is not None:
                self.drift_detector.update(margin)
            if self.tracker is not None and self.tracker.exhausted:
                decision = self._emit(
                    label,
                    confidence,
                    margin,
                    final=True,
                    reason="budget",
                    completed=False,
                )
            elif (
                margin >= self.margin_threshold
                and self.transform.n >= self.min_samples
            ):
                decision = self._emit(
                    label, confidence, margin, final=True, reason="margin"
                )
            else:
                decision = self._emit(
                    label, confidence, margin, final=False, reason="pending"
                )
        if self.metrics is not None:
            self.metrics.observe(
                "streaming.append_seconds", time.perf_counter() - started
            )
        return decision

    def finalize(self) -> StreamingDecision:
        """Close the stream: latch an end-of-stream decision.

        If a decision was already final (early emission or budget), it is
        returned unchanged. Otherwise the predictor runs on everything
        seen; with the full series this equals the batch prediction.
        """
        if self.decision.final:
            return self.decision
        if not self.transform.ready:
            raise ValidationError(
                "cannot finalize: the series is shorter than the longest "
                f"shapelet ({self.transform.n} samples seen)"
            )
        label, confidence, margin = self._evaluate()
        return self._emit(
            label, confidence, margin, final=True, reason="end_of_stream"
        )


__all__ = [
    "EarlyClassifier",
    "MarginDriftDetector",
    "REASONS",
    "StreamingDecision",
]
