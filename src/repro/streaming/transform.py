"""Chunk-fed shapelet transform: best-so-far feature vector per append.

:class:`StreamingTransform` exposes the shapelet-transform embedding of a
*growing* series: after every ``append(chunk)`` it returns the distance
vector computed over all samples seen so far. Once the stream ends, the
vector is bit-identical to the batch
``ShapeletTransform(shapelets, engine="direct").transform(series)`` row
(see :mod:`repro.streaming.matcher` for why), so a model fitted on batch
features can consume streaming features without recalibration.
"""

from __future__ import annotations

import numpy as np

from repro.core.transform import ShapeletTransform
from repro.exceptions import ValidationError
from repro.streaming.matcher import StreamingMatcher


class StreamingTransform:
    """Incremental counterpart of :class:`repro.core.transform.ShapeletTransform`.

    Parameters
    ----------
    shapelets:
        The shapelets defining the embedding —
        :class:`repro.types.Shapelet` instances or raw 1-D arrays.
    """

    def __init__(self, shapelets) -> None:
        self._matcher = StreamingMatcher(shapelets)

    @classmethod
    def from_transform(cls, transform: ShapeletTransform) -> "StreamingTransform":
        """Stream against a fitted batch transform's shapelet set.

        Only the Euclidean metric has a streaming equivalent (the DTW
        variant enumerates strided windows and has no incremental form).
        """
        if transform.shapelets_ is None:
            raise ValidationError("the batch transform is not fitted")
        if transform.metric != "euclidean":
            raise ValidationError(
                "only the euclidean metric has a streaming counterpart, "
                f"got {transform.metric!r}"
            )
        return cls(transform.shapelets_)

    @property
    def n_features(self) -> int:
        """Dimensionality of the embedding (= number of shapelets)."""
        return self._matcher.n_shapelets

    @property
    def n(self) -> int:
        """Samples of the series seen so far."""
        return self._matcher.n

    @property
    def ready(self) -> bool:
        """True once every feature is finite (all shapelets have fit)."""
        return self._matcher.ready

    def append(self, chunk) -> np.ndarray:
        """Feed a chunk; return the best-so-far ``(n_features,)`` vector.

        Features of shapelets longer than the series seen so far are
        ``+inf`` (check :attr:`ready` before handing the vector to a
        model trained on finite features).
        """
        self._matcher.append(chunk)
        return self.features

    @property
    def features(self) -> np.ndarray:
        """Current best-so-far distance vector, shape ``(n_features,)``."""
        return self._matcher.distances()


__all__ = ["StreamingTransform"]
