"""``repro.streaming``: early classification over unbounded series.

The streaming subsystem turns the batch shapelet pipeline into an online
one, in three layers:

* :class:`StreamingMatcher` — per-shapelet sliding minimum distances
  over a chunk-fed series, maintained incrementally on
  :class:`~repro.kernels.RollingStats` and the direct kernels;
* :class:`StreamingTransform` — the best-so-far shapelet-transform
  feature vector after every ``append(chunk)``, bit-identical at end of
  stream to ``ShapeletTransform(engine="direct")`` on the full series;
* :class:`EarlyClassifier` — wraps any :class:`repro.types.Predictor`
  and emits a :class:`StreamingDecision` once the decision margin clears
  a threshold, with optional anytime budgets, metrics gauges, and margin
  drift detection.

The serve layer exposes sessions over this stack
(:class:`repro.serve.StreamingInferenceService`), the CLI as
``repro stream``, and :func:`repro.datasets.iter_chunks` replays any
generator dataset as a chunked stream. See ``docs/streaming.md``.
"""

from __future__ import annotations

from repro.streaming.early import (
    REASONS,
    EarlyClassifier,
    MarginDriftDetector,
    StreamingDecision,
)
from repro.streaming.matcher import StreamingMatcher
from repro.streaming.transform import StreamingTransform

__all__ = [
    "EarlyClassifier",
    "MarginDriftDetector",
    "REASONS",
    "StreamingDecision",
    "StreamingMatcher",
    "StreamingTransform",
]
