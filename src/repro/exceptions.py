"""Exception hierarchy for the :mod:`repro` library.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch library-specific failures with a single ``except`` clause
while letting programming errors (``TypeError`` from bad call signatures,
etc.) propagate unchanged.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ValidationError(ReproError, ValueError):
    """An input array, length, or parameter failed validation.

    Inherits from :class:`ValueError` so code written against plain numpy
    conventions (``except ValueError``) keeps working.
    """


class LengthError(ValidationError):
    """A subsequence length is incompatible with the series it applies to."""


class NotFittedError(ReproError, RuntimeError):
    """A model method requiring a fitted estimator was called before ``fit``."""


class EmptyPoolError(ReproError):
    """A candidate pool was empty where at least one candidate is required."""


class DatasetError(ReproError, KeyError):
    """An unknown dataset name was requested from the registry."""


class UnitFailureError(ReproError):
    """A single distributed work unit failed (crash, timeout, bad output).

    Per-unit failures are retryable: the coordinator catches them and
    re-submits the unit rather than aborting the whole discovery run.
    """


class WorkerCrashError(UnitFailureError):
    """A worker raised (or was injected with) an exception mid-unit."""


class UnitTimeoutError(UnitFailureError):
    """A work unit exceeded its wall-clock budget (or hung and never
    returned; hangs are surfaced as this sentinel by the fault harness)."""


class PartialResultError(ReproError):
    """A distributed run completed with some work units permanently lost."""


class QuorumError(PartialResultError):
    """Too few work units of some class succeeded to trust the merged pool.

    Raised when the per-class success fraction falls below
    ``FaultToleranceConfig.quorum`` after all retries are exhausted.
    """


class CheckpointError(ReproError):
    """A checkpoint directory is unusable or belongs to a different run."""
