"""Exception hierarchy for the :mod:`repro` library.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch library-specific failures with a single ``except`` clause
while letting programming errors (``TypeError`` from bad call signatures,
etc.) propagate unchanged.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ValidationError(ReproError, ValueError):
    """An input array, length, or parameter failed validation.

    Inherits from :class:`ValueError` so code written against plain numpy
    conventions (``except ValueError``) keeps working.
    """


class LengthError(ValidationError):
    """A subsequence length is incompatible with the series it applies to."""


class NotFittedError(ReproError, RuntimeError):
    """A model method requiring a fitted estimator was called before ``fit``."""


class EmptyPoolError(ReproError):
    """A candidate pool was empty where at least one candidate is required."""


class DatasetError(ReproError, KeyError):
    """An unknown dataset name was requested from the registry."""
