"""Exception hierarchy for the :mod:`repro` library.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch library-specific failures with a single ``except`` clause
while letting programming errors (``TypeError`` from bad call signatures,
etc.) propagate unchanged.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ValidationError(ReproError, ValueError):
    """An input array, length, or parameter failed validation.

    Inherits from :class:`ValueError` so code written against plain numpy
    conventions (``except ValueError``) keeps working.
    """


class LengthError(ValidationError):
    """A subsequence length is incompatible with the series it applies to."""


class ConfigError(ValidationError):
    """An :class:`~repro.core.config.IPSConfig` was built from bad input.

    Raised for unknown field names (with a did-you-mean suggestion when a
    close match exists) and for manifest round-trips that reference fields
    this version does not know. Subclasses :class:`ValidationError`, so
    existing ``except ValidationError`` call sites keep working.
    """


class NotFittedError(ReproError, RuntimeError):
    """A model method requiring a fitted estimator was called before ``fit``."""


class EmptyPoolError(ReproError):
    """A candidate pool was empty where at least one candidate is required."""


class DatasetError(ReproError, KeyError):
    """An unknown dataset name was requested from the registry."""


class UnitFailureError(ReproError):
    """A single distributed work unit failed (crash, timeout, bad output).

    Per-unit failures are retryable: the coordinator catches them and
    re-submits the unit rather than aborting the whole discovery run.
    """


class WorkerCrashError(UnitFailureError):
    """A worker raised (or was injected with) an exception mid-unit."""


class UnitTimeoutError(UnitFailureError):
    """A work unit exceeded its wall-clock budget (or hung and never
    returned; hangs are surfaced as this sentinel by the fault harness)."""


class PartialResultError(ReproError):
    """A distributed run completed with some work units permanently lost."""


class QuorumError(PartialResultError):
    """Too few work units of some class succeeded to trust the merged pool.

    Raised when the per-class success fraction falls below
    ``FaultToleranceConfig.quorum`` after all retries are exhausted.
    """


class CheckpointError(ReproError):
    """A checkpoint directory is unusable or belongs to a different run."""


class CacheIntegrityError(ReproError):
    """A cached array's content changed while it was cached.

    Raised only in :class:`repro.kernels.SeriesCache`'s optional
    content-fingerprint debug mode — cached arrays are contractually
    immutable, and a mutation would otherwise silently serve stale
    derived quantities (spectra, rolling statistics).
    """


class SpectraStoreError(ReproError):
    """A persistent spectra-cache directory is unusable (not corrupt
    entries — those are quarantined and recomputed — but an unwritable or
    non-directory path)."""


class CampaignError(ReproError):
    """Base class for failures of the evaluation-campaign orchestrator.

    Raised for unusable campaign directories, fingerprint mismatches on
    resume, and malformed specs — never for a *cell* failure, which is
    recorded in the journal with typed provenance and does not abort the
    campaign.
    """


class JournalError(CampaignError):
    """A campaign journal is unusable beyond tail-recovery.

    Torn trailing lines from a killed process are *not* this error —
    replay quarantines and recovers them. This is reserved for journals
    that cannot be read or rewritten at all.
    """


class ServeError(ReproError):
    """Base class for every failure raised by the online serving layer.

    Every request-path failure in :mod:`repro.serve` is a subclass, so a
    caller can distinguish "my request was bad" from "the service is
    degraded" from "the artifact on disk is unusable" without string
    matching.
    """


class ArtifactError(ServeError):
    """A model artifact on disk could not be used."""


class ArtifactIntegrityError(ArtifactError):
    """An artifact file is corrupt: bad checksum, unreadable payload,
    or a payload that is not a fitted classifier."""


class ArtifactVersionError(ArtifactError):
    """An artifact was written by an incompatible format or package
    version and is refused rather than loaded on faith."""


class RequestError(ServeError):
    """A single serving request failed; other requests are unaffected."""


class InvalidRequestError(RequestError, ValueError):
    """A request payload failed the serving data contracts.

    Inherits :class:`ValueError` for parity with
    :class:`ValidationError` so generic callers keep working.
    """


class DeadlineExceededError(RequestError):
    """A request's deadline expired before a result could be produced
    (enforced at queue admission and at kernel-batch boundaries)."""


class QueueFullError(RequestError):
    """The admission queue is full and the reject-newest policy refused
    the request (backpressure signal to the caller)."""


class RequestSheddedError(RequestError):
    """The request was admitted but later evicted by the shed-oldest
    load-shedding policy to make room under overload."""


class RequestFailedError(RequestError):
    """The request permanently failed after the batched path and the
    serial fallback (including retries) were exhausted."""


class CircuitOpenError(ServeError):
    """The circuit breaker around the worker pool is open and the
    request was refused without attempting computation."""


class ServiceClosedError(ServeError):
    """The service is stopped (or stopping) and accepts no requests."""


class SessionError(ServeError):
    """Base class for streaming-session failures in :mod:`repro.serve`."""


class UnknownSessionError(SessionError, KeyError):
    """A chunk or close was submitted for a session id that does not
    exist (never opened, already closed, or expired past its TTL)."""


class SessionLimitError(SessionError):
    """Opening a new streaming session would exceed the service's
    ``max_sessions`` cap (backpressure signal to the caller)."""
