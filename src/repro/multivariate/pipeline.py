"""Per-dimension IPS discovery + concatenated transform for multivariate TSC."""

from __future__ import annotations

import numpy as np

from repro.classify.scaler import StandardScaler
from repro.classify.svm import OneVsRestSVM
from repro.core.config import IPSConfig
from repro.core.pipeline import IPS
from repro.core.transform import ShapeletTransform
from repro.exceptions import NotFittedError, ValidationError
from repro.multivariate.dataset import MultivariateDataset
from repro.types import Shapelet


class MultivariateIPSClassifier:
    """IPS for multivariate TSC (the paper's stated future work).

    Strategy: run the univariate IPS discovery independently on every
    dimension (each dimension sees the shared labels), then embed an
    instance as the concatenation of its per-dimension shapelet-transform
    features and classify with one linear SVM. Dimensions that fail
    discovery (e.g. constant channels) are skipped with a record in
    :attr:`skipped_dimensions_`.

    Parameters
    ----------
    config:
        Per-dimension IPS configuration; ``k`` shapelets per class are
        discovered in *each* dimension.
    """

    def __init__(self, config: IPSConfig | None = None) -> None:
        self.config = config or IPSConfig()
        self.shapelets_per_dim_: dict[int, list[Shapelet]] | None = None
        self.skipped_dimensions_: list[int] = []
        self._transforms: dict[int, ShapeletTransform] = {}
        self._scaler: StandardScaler | None = None
        self._svm: OneVsRestSVM | None = None
        self._classes: np.ndarray | None = None

    def fit_dataset(self, dataset: MultivariateDataset) -> "MultivariateIPSClassifier":
        """Discover per dimension, then fit the joint SVM."""
        self.shapelets_per_dim_ = {}
        self.skipped_dimensions_ = []
        self._transforms = {}
        feature_blocks: list[np.ndarray] = []
        for dim in range(dataset.n_dimensions):
            uni = dataset.dimension(dim)
            try:
                result = IPS(self.config).discover(uni)
            except Exception:  # noqa: BLE001 - degenerate channel: skip it
                self.skipped_dimensions_.append(dim)
                continue
            self.shapelets_per_dim_[dim] = result.shapelets
            transform = ShapeletTransform(result.shapelets)
            self._transforms[dim] = transform
            feature_blocks.append(transform.transform(uni.X))
        if not feature_blocks:
            raise ValidationError("discovery failed on every dimension")
        features = np.hstack(feature_blocks)
        self._scaler = StandardScaler()
        scaled = self._scaler.fit_transform(features)
        self._svm = OneVsRestSVM(C=self.config.svm_c, seed=self.config.seed)
        self._svm.fit(scaled, dataset.y)
        self._classes = dataset.classes_
        return self

    def fit(self, X: np.ndarray, y: np.ndarray) -> "MultivariateIPSClassifier":
        """Fit on a raw ``(M, D, N)`` array."""
        return self.fit_dataset(MultivariateDataset(X=X, y=y))

    def _features(self, X: np.ndarray) -> np.ndarray:
        blocks = [
            self._transforms[dim].transform(X[:, dim, :])
            for dim in sorted(self._transforms)
        ]
        return np.hstack(blocks)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted labels (original label values) for ``(M, D, N)`` input."""
        if self._svm is None or self._scaler is None or self._classes is None:
            raise NotFittedError("call fit before predict")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 3:
            raise ValidationError(f"expected (M, D, N) input, got shape {X.shape}")
        features = self._scaler.transform(self._features(X))
        internal = self._svm.predict(features)
        return self._classes[internal]

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Accuracy against original-valued labels."""
        from repro.classify.metrics import accuracy_score

        return accuracy_score(np.asarray(y, dtype=np.int64), self.predict(X))

    @property
    def n_shapelets(self) -> int:
        """Total shapelets across all dimensions."""
        if self.shapelets_per_dim_ is None:
            raise NotFittedError("call fit before n_shapelets")
        return sum(len(v) for v in self.shapelets_per_dim_.values())
