"""Container for labelled multivariate (multi-dimensional) time series."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ValidationError
from repro.ts.series import Dataset, validate_labels


@dataclass
class MultivariateDataset:
    """An ``(M, D, N)`` multivariate dataset: M instances, D dimensions.

    Labels follow the same contiguous-remap convention as
    :class:`repro.ts.series.Dataset`; :meth:`dimension` views one variable
    as a univariate dataset sharing the label vector, which is exactly what
    per-dimension discovery needs.
    """

    X: np.ndarray
    y: np.ndarray
    name: str = ""
    classes_: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        arr = np.asarray(self.X, dtype=np.float64)
        if arr.ndim != 3:
            raise ValidationError(
                f"multivariate X must be (M, D, N), got shape {arr.shape}"
            )
        if arr.shape[0] == 0 or arr.shape[1] == 0 or arr.shape[2] == 0:
            raise ValidationError("multivariate X must be non-empty in every axis")
        if not np.all(np.isfinite(arr)):
            raise ValidationError("multivariate X contains NaN or infinite values")
        self.X = arr
        raw = validate_labels(self.y, arr.shape[0])
        self.classes_, inverse = np.unique(raw, return_inverse=True)
        self.y = inverse.astype(np.int64)

    @property
    def n_instances(self) -> int:
        """Number of instances M."""
        return int(self.X.shape[0])

    @property
    def n_dimensions(self) -> int:
        """Number of variables D."""
        return int(self.X.shape[1])

    @property
    def series_length(self) -> int:
        """Per-dimension series length N."""
        return int(self.X.shape[2])

    @property
    def n_classes(self) -> int:
        """Number of distinct classes."""
        return int(self.classes_.size)

    def dimension(self, dim: int) -> Dataset:
        """One variable as a univariate :class:`Dataset` (shared labels)."""
        if not 0 <= dim < self.n_dimensions:
            raise ValidationError(
                f"dimension {dim} out of range for {self.n_dimensions}"
            )
        return Dataset(
            X=self.X[:, dim, :],
            y=self.classes_[self.y],
            name=f"{self.name}[dim={dim}]",
        )

    def __len__(self) -> int:
        return self.n_instances
