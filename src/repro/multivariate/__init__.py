"""Multivariate time-series classification with IPS (paper's future work).

The conclusion of the paper names "apply[ing] IPS for multivariate TSC"
as future work; this subpackage provides the natural extension: per-
dimension shapelet discovery with the univariate pipeline, followed by a
concatenated shapelet transform over all dimensions (the
dimension-independent strategy of ShapeNet-style baselines).
"""

from repro.multivariate.dataset import MultivariateDataset
from repro.multivariate.pipeline import MultivariateIPSClassifier

__all__ = ["MultivariateDataset", "MultivariateIPSClassifier"]
