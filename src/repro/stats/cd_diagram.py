"""Critical-difference diagram computation and ASCII rendering (Fig. 11).

Two grouping modes:

* **Nemenyi** — methods within ``CD = q_alpha * sqrt(k (k+1) / 6n)`` of
  each other are connected (classic Demsar 2006 diagram);
* **Wilcoxon-Holm** — the paper's choice: pairwise Wilcoxon signed-rank
  tests with Holm's correction; methods not significantly different are
  connected (cliques are maximal runs of mutually non-different methods
  in rank order).

The renderer produces a monospace diagram: methods on a rank axis, with
group bars ("thick horizontal lines") beneath.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.stats.ranking import average_ranks
from repro.stats.wilcoxon import holm_correction, wilcoxon_signed_rank

#: Two-tailed Nemenyi q_alpha values at alpha = 0.05 for k = 2..20 methods.
_Q_ALPHA_05: dict[int, float] = {
    2: 1.960, 3: 2.343, 4: 2.569, 5: 2.728, 6: 2.850, 7: 2.949, 8: 3.031,
    9: 3.102, 10: 3.164, 11: 3.219, 12: 3.268, 13: 3.313, 14: 3.354,
    15: 3.391, 16: 3.426, 17: 3.458, 18: 3.489, 19: 3.517, 20: 3.544,
}


def critical_difference(n_methods: int, n_datasets: int) -> float:
    """Nemenyi critical difference at alpha = 0.05."""
    if n_methods not in _Q_ALPHA_05:
        raise ValidationError(
            f"no q_alpha tabulated for k={n_methods} (supported: 2..20)"
        )
    if n_datasets < 2:
        raise ValidationError("need at least 2 datasets")
    q = _Q_ALPHA_05[n_methods]
    return float(q * np.sqrt(n_methods * (n_methods + 1) / (6.0 * n_datasets)))


def _merge_to_maximal(groups: list[tuple[int, int]]) -> list[tuple[int, int]]:
    """Drop groups contained in another group."""
    maximal = []
    for lo, hi in groups:
        if not any(
            (olo <= lo and hi <= ohi) and (olo, ohi) != (lo, hi)
            for olo, ohi in groups
        ):
            maximal.append((lo, hi))
    return sorted(set(maximal))


def cd_groups(
    accuracies: np.ndarray,
    method: str = "wilcoxon-holm",
    alpha: float = 0.05,
) -> tuple[np.ndarray, list[tuple[int, int]]]:
    """Average ranks plus index ranges of non-significantly-different groups.

    Returns ``(mean_ranks, groups)`` where ``groups`` are (lo, hi) index
    pairs *into the rank-sorted order* — ``order = argsort(mean_ranks)``;
    group (lo, hi) connects ``order[lo..hi]`` inclusive.
    """
    arr = np.asarray(accuracies, dtype=np.float64)
    if arr.ndim != 2 or arr.shape[1] < 2:
        raise ValidationError("need a (datasets, methods>=2) matrix")
    mean_ranks = average_ranks(arr)
    k = arr.shape[1]
    order = np.argsort(mean_ranks, kind="stable")

    if method == "nemenyi":
        cd = critical_difference(k, arr.shape[0])
        not_different = np.zeros((k, k), dtype=bool)
        for a in range(k):
            for b in range(k):
                not_different[a, b] = abs(mean_ranks[a] - mean_ranks[b]) < cd
    elif method == "wilcoxon-holm":
        pairs = [(a, b) for a in range(k) for b in range(a + 1, k)]
        p_values = np.empty(len(pairs))
        for idx, (a, b) in enumerate(pairs):
            col_a, col_b = arr[:, a], arr[:, b]
            valid = ~(np.isnan(col_a) | np.isnan(col_b))
            p_values[idx] = wilcoxon_signed_rank(col_a[valid], col_b[valid]).p_value
        rejected = holm_correction(p_values, alpha=alpha)
        not_different = np.eye(k, dtype=bool)
        for idx, (a, b) in enumerate(pairs):
            if not rejected[idx]:
                not_different[a, b] = not_different[b, a] = True
    else:
        raise ValidationError(f"unknown method {method!r}")

    # Maximal runs (in rank order) of mutually non-different methods.
    groups: list[tuple[int, int]] = []
    for lo in range(k):
        hi = lo
        while hi + 1 < k and all(
            not_different[order[i], order[hi + 1]] for i in range(lo, hi + 1)
        ):
            hi += 1
        if hi > lo:
            groups.append((lo, hi))
    return mean_ranks, _merge_to_maximal(groups)


def render_cd(
    names: list[str],
    accuracies: np.ndarray,
    method: str = "wilcoxon-holm",
    alpha: float = 0.05,
    width: int = 72,
) -> str:
    """Monospace critical-difference diagram.

    Methods are listed best-rank first; bars of ``=`` beneath connect
    groups that are not significantly different (the thick lines of the
    paper's Fig. 11).
    """
    arr = np.asarray(accuracies, dtype=np.float64)
    if len(names) != arr.shape[1]:
        raise ValidationError("names must match the number of methods")
    mean_ranks, groups = cd_groups(arr, method=method, alpha=alpha)
    order = np.argsort(mean_ranks, kind="stable")
    header = f"Critical-difference diagram ({method}, alpha={alpha})"
    if method == "nemenyi":
        cd = critical_difference(arr.shape[1], arr.shape[0])
        header += f", CD = {cd:.3f}"
    lines = [header, ""]
    lo_rank, hi_rank = float(mean_ranks.min()), float(mean_ranks.max())
    span = max(hi_rank - lo_rank, 1e-9)

    def column(rank: float) -> int:
        """Axis column of a rank value."""
        return int(round((rank - lo_rank) / span * (width - 1)))

    axis = [" "] * width
    for position in order:
        axis[column(mean_ranks[position])] = "+"
    lines.append("rank axis: " + "".join(axis))
    lines.append(
        "           "
        + f"{lo_rank:.2f}".ljust(width - 6)
        + f"{hi_rank:.2f}"
    )
    lines.append("")
    for sorted_pos, method_idx in enumerate(order):
        lines.append(
            f"{sorted_pos + 1:2d}. {names[method_idx]:<28s} avg rank {mean_ranks[method_idx]:.3f}"
        )
    lines.append("")
    if groups:
        lines.append("groups not significantly different:")
        for lo, hi in groups:
            members = ", ".join(names[order[i]] for i in range(lo, hi + 1))
            lines.append(f"  [{members}]")
    else:
        lines.append("all pairwise differences significant")
    return "\n".join(lines)
