"""The Friedman test (Demsar 2006), implemented from scratch.

Non-parametric omnibus test over a (datasets x methods) accuracy matrix:
methods are ranked per dataset and the chi-square statistic

    chi2_F = 12 n / (k (k + 1)) * [ sum_j Rbar_j^2 - k (k + 1)^2 / 4 ]

is referred to a chi-square distribution with ``k - 1`` degrees of freedom
(with the standard tie correction). The Iman-Davenport F refinement is
also reported. Cross-checked against :func:`scipy.stats.friedmanchisquare`
in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.exceptions import ValidationError
from repro.stats.ranking import rank_rows


@dataclass(frozen=True)
class FriedmanResult:
    """Outcome of a Friedman test."""

    statistic: float
    p_value: float
    iman_davenport: float
    iman_davenport_p: float
    average_ranks: np.ndarray
    n_datasets: int
    n_methods: int

    def reject_at(self, alpha: float = 0.05) -> bool:
        """Whether the null (all methods equivalent) is rejected."""
        return self.p_value < alpha


def friedman_test(accuracies: np.ndarray) -> FriedmanResult:
    """Run the Friedman test on a (datasets x methods) accuracy matrix."""
    arr = np.asarray(accuracies, dtype=np.float64)
    if arr.ndim != 2 or arr.shape[0] < 2 or arr.shape[1] < 3:
        raise ValidationError(
            "Friedman test needs >= 2 datasets and >= 3 methods"
        )
    n, k = arr.shape
    ranks = rank_rows(arr)
    mean_ranks = ranks.mean(axis=0)

    # Tie correction: scale the statistic by the tie factor per row.
    chi2 = 12.0 * n / (k * (k + 1)) * (np.sum(mean_ranks**2) - k * (k + 1) ** 2 / 4.0)
    tie_correction = 0.0
    for i in range(n):
        _values, counts = np.unique(ranks[i], return_counts=True)
        tie_correction += float(np.sum(counts**3 - counts))
    denom = 1.0 - tie_correction / (n * k * (k**2 - 1))
    if denom > 0:
        chi2 = chi2 / denom
    p_value = float(stats.chi2.sf(chi2, df=k - 1))

    # Iman & Davenport's less conservative F statistic.
    if n * (k - 1) - chi2 > 0:
        f_stat = (n - 1) * chi2 / (n * (k - 1) - chi2)
        f_p = float(stats.f.sf(f_stat, k - 1, (k - 1) * (n - 1)))
    else:
        f_stat, f_p = float("inf"), 0.0

    return FriedmanResult(
        statistic=float(chi2),
        p_value=p_value,
        iman_davenport=float(f_stat),
        iman_davenport_p=f_p,
        average_ranks=mean_ranks,
        n_datasets=n,
        n_methods=k,
    )
