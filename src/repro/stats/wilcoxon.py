"""Wilcoxon signed-rank test and Holm's step-down correction.

The paper's post-hoc analysis: pairwise Wilcoxon signed-rank tests between
methods, with Holm's alpha (5%) controlling the family-wise error rate.
The test uses the normal approximation with tie and zero corrections
(Pratt's treatment drops zero differences), matching scipy's default
``wilcoxon(..., zero_method="wilcox", correction=False)`` asymptotics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.exceptions import ValidationError


@dataclass(frozen=True)
class WilcoxonResult:
    """Outcome of one signed-rank test."""

    statistic: float
    p_value: float
    n_effective: int


def _signed_ranks(diff: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Average ranks of |diff| and their signs (zero diffs already removed)."""
    abs_diff = np.abs(diff)
    order = np.argsort(abs_diff, kind="stable")
    ranks = np.empty(diff.size)
    position = 0
    sorted_abs = abs_diff[order]
    while position < diff.size:
        tie_end = position
        while (
            tie_end + 1 < diff.size
            and sorted_abs[tie_end + 1] == sorted_abs[position]
        ):
            tie_end += 1
        mean_rank = (position + tie_end) / 2.0 + 1.0
        ranks[order[position : tie_end + 1]] = mean_rank
        position = tie_end + 1
    return ranks, np.sign(diff)


def wilcoxon_signed_rank(x: np.ndarray, y: np.ndarray) -> WilcoxonResult:
    """Two-sided Wilcoxon signed-rank test for paired samples."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1:
        raise ValidationError("x and y must be equal-length 1-D arrays")
    diff = x - y
    diff = diff[diff != 0.0]
    n = diff.size
    if n < 1:
        return WilcoxonResult(statistic=0.0, p_value=1.0, n_effective=0)
    ranks, signs = _signed_ranks(diff)
    w_plus = float(np.sum(ranks[signs > 0]))
    w_minus = float(np.sum(ranks[signs < 0]))
    statistic = min(w_plus, w_minus)
    mean = n * (n + 1) / 4.0
    # Tie correction on the variance.
    _vals, counts = np.unique(np.abs(diff), return_counts=True)
    tie_term = float(np.sum(counts**3 - counts)) / 48.0
    variance = n * (n + 1) * (2 * n + 1) / 24.0 - tie_term
    if variance <= 0:
        return WilcoxonResult(statistic=statistic, p_value=1.0, n_effective=n)
    z = (statistic - mean) / np.sqrt(variance)
    p_value = float(2.0 * stats.norm.sf(abs(z)))
    return WilcoxonResult(
        statistic=statistic, p_value=min(p_value, 1.0), n_effective=n
    )


def pairwise_wilcoxon_matrix(accuracies: np.ndarray) -> np.ndarray:
    """Symmetric matrix of pairwise signed-rank p-values between methods.

    ``accuracies`` is the (datasets x methods) matrix; entry ``[a, b]`` is
    the two-sided p-value of the test between columns a and b (1.0 on the
    diagonal). NaN rows are skipped per pair, matching how the paper's
    post-hoc analysis treats the one blank Table VI cell.
    """
    arr = np.asarray(accuracies, dtype=np.float64)
    if arr.ndim != 2 or arr.shape[1] < 2:
        raise ValidationError("need a (datasets, methods>=2) matrix")
    k = arr.shape[1]
    out = np.ones((k, k))
    for a in range(k):
        for b in range(a + 1, k):
            col_a, col_b = arr[:, a], arr[:, b]
            valid = ~(np.isnan(col_a) | np.isnan(col_b))
            p = wilcoxon_signed_rank(col_a[valid], col_b[valid]).p_value
            out[a, b] = out[b, a] = p
    return out


def holm_correction(p_values: np.ndarray, alpha: float = 0.05) -> np.ndarray:
    """Holm's step-down procedure: which hypotheses are rejected.

    Sort ascending; the i-th smallest p is compared against
    ``alpha / (m - i)``; the first failure stops all later rejections.
    Returns a boolean array aligned with the input.
    """
    p_values = np.asarray(p_values, dtype=np.float64)
    if p_values.ndim != 1 or p_values.size == 0:
        raise ValidationError("p_values must be a non-empty 1-D array")
    if not 0.0 < alpha < 1.0:
        raise ValidationError(f"alpha must be in (0, 1), got {alpha}")
    m = p_values.size
    order = np.argsort(p_values, kind="stable")
    reject = np.zeros(m, dtype=bool)
    for i, idx in enumerate(order):
        threshold = alpha / (m - i)
        if p_values[idx] <= threshold:
            reject[idx] = True
        else:
            break
    return reject
