"""Statistics behind the paper's evaluation (Section IV-C).

* :func:`average_ranks`, :func:`wins_draws_losses`, :func:`best_counts` —
  the Table VI footer rows;
* :func:`friedman_test` — the omnibus test over 46 datasets x 13 methods;
* :func:`wilcoxon_signed_rank` / :func:`holm_correction` — the post-hoc
  pairwise analysis with Holm's alpha (5%);
* :func:`critical_difference` / :func:`cd_groups` / :func:`render_cd` —
  the Fig. 11 critical-difference diagram (ASCII rendering).

All tests are implemented from scratch (rank computation, statistics,
normal/chi-square approximations) and cross-checked against scipy in the
test suite.
"""

from repro.stats.cd_diagram import cd_groups, critical_difference, render_cd
from repro.stats.friedman import friedman_test
from repro.stats.ranking import average_ranks, best_counts, rank_rows, wins_draws_losses
from repro.stats.wilcoxon import (
    holm_correction,
    pairwise_wilcoxon_matrix,
    wilcoxon_signed_rank,
)

__all__ = [
    "average_ranks",
    "best_counts",
    "cd_groups",
    "critical_difference",
    "friedman_test",
    "holm_correction",
    "pairwise_wilcoxon_matrix",
    "rank_rows",
    "render_cd",
    "wilcoxon_signed_rank",
    "wins_draws_losses",
]
