"""Rank-based summaries of an accuracy matrix (Table VI footer rows)."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError


def _check_matrix(accuracies: np.ndarray) -> np.ndarray:
    arr = np.asarray(accuracies, dtype=np.float64)
    if arr.ndim != 2 or arr.shape[0] == 0 or arr.shape[1] < 2:
        raise ValidationError("need a (datasets, methods>=2) accuracy matrix")
    return arr


def rank_rows(accuracies: np.ndarray) -> np.ndarray:
    """Per-dataset ranks (1 = best accuracy), average ranks for ties.

    NaN entries (methods without a published number on a dataset) receive
    the worst rank of their row, matching the conservative convention used
    when building critical-difference diagrams over incomplete tables.
    """
    arr = _check_matrix(accuracies)
    n_rows, n_cols = arr.shape
    ranks = np.empty_like(arr)
    for i in range(n_rows):
        row = arr[i]
        filled = np.where(np.isnan(row), -np.inf, row)
        # Rank by descending accuracy with average ties.
        order = np.argsort(-filled, kind="stable")
        row_ranks = np.empty(n_cols)
        position = 0
        while position < n_cols:
            tie_end = position
            while (
                tie_end + 1 < n_cols
                and filled[order[tie_end + 1]] == filled[order[position]]
            ):
                tie_end += 1
            mean_rank = (position + tie_end) / 2.0 + 1.0
            for j in range(position, tie_end + 1):
                row_ranks[order[j]] = mean_rank
            position = tie_end + 1
        ranks[i] = row_ranks
    return ranks


def average_ranks(accuracies: np.ndarray) -> np.ndarray:
    """Mean rank per method over all datasets (lower = better)."""
    return rank_rows(accuracies).mean(axis=0)


def best_counts(accuracies: np.ndarray, tol: float = 1e-9) -> np.ndarray:
    """How many datasets each method wins (ties count for all winners).

    This is the "Total best acc" footer row of Table VI.
    """
    arr = _check_matrix(accuracies)
    best = np.nanmax(arr, axis=1, keepdims=True)
    return np.sum(np.abs(arr - best) <= tol, axis=0).astype(np.int64)


def wins_draws_losses(
    accuracies: np.ndarray, reference: int, tol: float = 1e-9
) -> list[tuple[int, int, int]]:
    """1-to-1 (wins, draws, losses) of the reference method vs every other.

    The Table VI footer compares IPS against each column: ``wins[j]`` is
    the number of datasets where the reference beats method j. NaN rows
    are skipped for that pair.
    """
    arr = _check_matrix(accuracies)
    n_methods = arr.shape[1]
    if not 0 <= reference < n_methods:
        raise ValidationError(f"reference {reference} out of range")
    out: list[tuple[int, int, int]] = []
    ref_col = arr[:, reference]
    for j in range(n_methods):
        if j == reference:
            out.append((0, 0, 0))
            continue
        other = arr[:, j]
        valid = ~(np.isnan(ref_col) | np.isnan(other))
        diff = ref_col[valid] - other[valid]
        wins = int(np.sum(diff > tol))
        draws = int(np.sum(np.abs(diff) <= tol))
        losses = int(np.sum(diff < -tol))
        out.append((wins, draws, losses))
    return out
