"""Append-friendly rolling statistics shared by batch and streaming paths.

:class:`RollingStats` is the statistics half of
:class:`~repro.kernels.SeriesCache`, restructured so a series can grow:
it maintains zero-prefixed cumulative sums of values and squares over the
last axis and derives rolling window means/stds/sum-of-squares from them
— the exact formulas (and bits) of the historical per-run computation.

Bit-compatibility contract
--------------------------
``numpy.cumsum`` accumulates *sequentially* (no pairwise regrouping), so
a cumulative sum extended chunk-by-chunk is bit-identical to one computed
over the full array in one shot, provided each extension continues from
the running total with the same sequential accumulation.
:meth:`RollingStats.append` does exactly that: it prepends the running
total to the incoming chunk and takes ``numpy.cumsum`` of the result,
which reproduces ``((total + x_0) + x_1) + ...`` — the same association
order as one big ``cumsum``. Every derived quantity
(:meth:`sliding_mean_std`, :meth:`window_ssq`, :meth:`cumsums`) therefore
matches the batch :class:`~repro.kernels.SeriesCache` computation
bit-for-bit, whether the series arrived whole or one sample at a time.
The chunked-equals-batch property test in
``tests/test_streaming_property.py`` pins this down.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError

#: Initial last-axis capacity of a growable (streaming) instance.
_MIN_CAPACITY = 64


class RollingStats:
    """Cumulative value/square sums over the last axis, append-friendly.

    Accepts 1-D series (the streaming case) and 2-D ``(M, N)`` dataset
    matrices (the batch case — all quantities are computed row-wise in
    one vectorized shot). Appending extends the last axis; buffers grow
    by doubling, so appends are amortized O(chunk).

    Parameters
    ----------
    values:
        Optional initial values. ``RollingStats()`` starts an empty 1-D
        stream; ``RollingStats(arr)`` seeds from an existing array
        (equivalent to appending it in one chunk).
    """

    __slots__ = ("_values", "_csum", "_csum2", "_n", "_lead")

    def __init__(self, values=None) -> None:
        self._n = 0
        self._lead: tuple[int, ...] = ()
        self._values: np.ndarray | None = None
        self._csum: np.ndarray | None = None
        self._csum2: np.ndarray | None = None
        if values is not None:
            self.append(values)

    # -- growth -----------------------------------------------------------

    def _allocate(self, lead: tuple[int, ...], capacity: int) -> None:
        self._lead = lead
        self._values = np.empty(lead + (capacity,), dtype=np.float64)
        self._csum = np.zeros(lead + (capacity + 1,), dtype=np.float64)
        self._csum2 = np.zeros(lead + (capacity + 1,), dtype=np.float64)

    def _reserve(self, extra: int) -> None:
        capacity = self._values.shape[-1]
        needed = self._n + extra
        if needed <= capacity:
            return
        while capacity < needed:
            capacity *= 2
        grown = np.empty(self._lead + (capacity,), dtype=np.float64)
        grown[..., : self._n] = self._values[..., : self._n]
        self._values = grown
        for name in ("_csum", "_csum2"):
            old = getattr(self, name)
            new = np.zeros(self._lead + (capacity + 1,), dtype=np.float64)
            new[..., : self._n + 1] = old[..., : self._n + 1]
            setattr(self, name, new)

    def append(self, chunk) -> None:
        """Extend the series along the last axis with ``chunk``.

        1-D streams accept scalars, 0-D arrays, and 1-D chunks of any
        size (including size 1); 2-D instances accept ``(M, c)`` blocks
        with the same leading shape. Empty chunks are a no-op.
        """
        chunk = np.asarray(chunk, dtype=np.float64)
        if chunk.ndim == 0:
            chunk = chunk.reshape(1)
        if chunk.ndim > 2:
            raise ValidationError(
                f"RollingStats accepts 1-D or 2-D data, got ndim={chunk.ndim}"
            )
        if self._values is None:
            lead = chunk.shape[:-1]
            self._allocate(lead, max(_MIN_CAPACITY, chunk.shape[-1]))
        elif chunk.shape[:-1] != self._lead:
            raise ValidationError(
                f"chunk leading shape {chunk.shape[:-1]} does not match the "
                f"stream's leading shape {self._lead}"
            )
        count = chunk.shape[-1]
        if count == 0:
            return
        self._reserve(count)
        n = self._n
        self._values[..., n : n + count] = chunk
        # Continue each cumulative sum from its running total with one
        # sequential cumsum — the association order (and bits) of a
        # single cumsum over the full series (see module docstring).
        for buffer, block in (
            (self._csum, chunk),
            (self._csum2, chunk * chunk),
        ):
            carried = np.empty(self._lead + (count + 1,), dtype=np.float64)
            carried[..., 0] = buffer[..., n]
            carried[..., 1:] = block
            buffer[..., n + 1 : n + count + 1] = np.cumsum(carried, axis=-1)[
                ..., 1:
            ]
        self._n = n + count

    # -- views ------------------------------------------------------------

    @property
    def n(self) -> int:
        """Samples seen so far (length of the last axis)."""
        return self._n

    @property
    def values(self) -> np.ndarray:
        """The series so far, shape ``(..., n)`` (read-only view)."""
        if self._values is None:
            return np.empty(0, dtype=np.float64)
        return self._values[..., : self._n]

    def cumsums(self) -> tuple[np.ndarray, np.ndarray]:
        """Zero-prefixed ``(csum, csum2)``, each shape ``(..., n + 1)``.

        The exact layout of the historical
        :meth:`~repro.kernels.SeriesCache.cumsums` — one leading zero per
        row — so every consumer's arithmetic (and bits) is unchanged.
        """
        if self._csum is None:
            zero = np.zeros(1, dtype=np.float64)
            return zero, zero.copy()
        stop = self._n + 1
        return self._csum[..., :stop], self._csum2[..., :stop]

    # -- derived rolling quantities ---------------------------------------

    def n_windows(self, window: int) -> int:
        """Number of complete length-``window`` windows seen so far."""
        if window < 1:
            raise ValidationError(f"window must be >= 1, got {window}")
        return max(0, self._n - window + 1)

    def _window_range(self, window: int, start: int, stop: int | None):
        total = self.n_windows(window)
        if stop is None:
            stop = total
        if not 0 <= start <= stop <= total:
            raise ValidationError(
                f"window range [{start}, {stop}) outside [0, {total})"
            )
        return start, stop

    def sliding_mean_std(
        self, window: int, start: int = 0, stop: int | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Rolling mean/std of windows starting at ``[start, stop)``.

        Defaults cover every complete window — identical formula (and
        bits) to the historical batch computation; negative variances
        from cancellation are clipped at zero.
        """
        start, stop = self._window_range(window, start, stop)
        csum, csum2 = self.cumsums()
        sums = csum[..., start + window : stop + window] - csum[..., start:stop]
        sums2 = (
            csum2[..., start + window : stop + window] - csum2[..., start:stop]
        )
        means = sums / window
        variances = np.maximum(sums2 / window - means * means, 0.0)
        return means, np.sqrt(variances)

    def window_ssq(
        self, window: int, start: int = 0, stop: int | None = None
    ) -> np.ndarray:
        """Sum of squares of windows starting at ``[start, stop)``."""
        start, stop = self._window_range(window, start, stop)
        _csum, csum2 = self.cumsums()
        return csum2[..., start + window : stop + window] - csum2[..., start:stop]


__all__ = ["RollingStats"]
