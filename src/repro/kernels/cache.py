"""Per-series memoization of the quantities every distance kernel needs.

Every subsequence-distance computation in the pipeline boils down to three
ingredients per series: cumulative sums (for rolling means/stds and window
sums of squares), and an FFT spectrum (for sliding dot products). Before
this module each call path recomputed them from scratch — the instance
profile recomputed a sample's cumulative sums once per candidate length,
and the shapelet transform re-ran one FFT of every series per shapelet.

:class:`SeriesCache` computes each ingredient exactly once per array and
hands it to every later phase. Derived results are bit-identical to the
historical per-call computations (same formulas, same FFT sizes), so a
cached run produces exactly the same numbers as an uncached one.

Keying and ownership
--------------------
Entries are keyed by the *identity* of the array object passed in; the
cache holds a strong reference, so an entry stays valid for the cache's
lifetime and ``id`` reuse cannot alias entries. Consequences for callers:

* pass the *same array object* to benefit from reuse (``X[i]`` creates a
  fresh view per access — hoist rows, or pass the whole 2-D matrix);
* arrays must be treated as immutable while cached (mutating one silently
  invalidates its derived quantities; ``debug_fingerprint=True`` turns
  that silent staleness into a loud
  :class:`~repro.exceptions.CacheIntegrityError`);
* scope a cache to one discovery run; it is not a process-global store —
  for *cross-run* reuse, attach a persistent
  :class:`~repro.kernels.SpectraStore` via ``store=``.

1-D and 2-D arrays are both accepted; all quantities are computed along
the last axis, so a 2-D ``(M, N)`` dataset matrix gets batched rolling
stats and spectra in one shot.

A cache may also carry the run's kernel :class:`~repro.kernels.BackendSpec`
(``backend=``): the batched kernels consult it when no explicit backend is
passed, which is how ``IPSConfig.kernel_backend`` reaches the hot path.
"""

from __future__ import annotations

import numpy as np
from scipy import fft as sp_fft

from repro.exceptions import CacheIntegrityError
from repro.kernels.backends import BackendSpec, get_backend
from repro.kernels.perf import PerfCounters
from repro.kernels.rolling import RollingStats
from repro.kernels.store import SpectraStore, content_digest, spectrum_key


class _Entry:
    """Cached derived quantities of one array."""

    __slots__ = (
        "original",
        "array",
        "rolling",
        "mean_std",
        "ssq",
        "spectra",
        "digest",
    )

    def __init__(self, original, array: np.ndarray) -> None:
        self.original = original  # strong ref: pins id(), prevents aliasing
        self.array = array
        #: Cumulative statistics, shared with the streaming path — the
        #: batch cache is a :class:`RollingStats` fed one whole-array
        #: chunk, so batch and streaming derive from identical formulas.
        self.rolling: RollingStats | None = None
        self.mean_std: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self.ssq: dict[int, np.ndarray] = {}
        #: Keyed by ``(n_fft, dtype char)`` — float32 and float64 spectra
        #: of the same series coexist without aliasing.
        self.spectra: dict[tuple[int, str], np.ndarray] = {}
        #: Content SHA-256; set lazily (persistent-store keys, debug mode).
        self.digest: str | None = None


class SeriesCache:
    """Compute-once store of per-series FFTs and rolling statistics.

    Parameters
    ----------
    counters:
        Optional :class:`~repro.kernels.PerfCounters`; hit/miss/FFT tallies
        are recorded there. A fresh instance is created when omitted so the
        cache can always report its own statistics.
    backend:
        Optional kernel :class:`~repro.kernels.BackendSpec` (or registry
        name) the batched kernels should run under when no explicit
        backend is given. ``None`` means the reference backend.
    store:
        Optional persistent :class:`~repro.kernels.SpectraStore` (or a
        directory path for one). Spectrum misses consult the store before
        computing, and computed spectra are persisted — repeated runs over
        the same data skip the forward FFTs (``spectra_disk_hits`` in the
        counters).
    debug_fingerprint:
        When True, every entry access re-hashes the array's content and
        raises :class:`~repro.exceptions.CacheIntegrityError` if it
        changed since caching — the "arrays are immutable while cached"
        contract, enforced instead of assumed. O(N) per access; meant for
        tests and debugging, not production runs.
    """

    def __init__(
        self,
        counters: PerfCounters | None = None,
        *,
        backend: BackendSpec | str | None = None,
        store: SpectraStore | str | None = None,
        debug_fingerprint: bool = False,
    ) -> None:
        self.counters = counters if counters is not None else PerfCounters()
        if isinstance(backend, str):
            backend = get_backend(backend)
        self.backend: BackendSpec | None = backend
        if store is not None and not isinstance(store, SpectraStore):
            store = SpectraStore(store)
        self.store: SpectraStore | None = store
        self.debug_fingerprint = debug_fingerprint
        self._entries: dict[int, _Entry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop every entry (and the strong references pinning them)."""
        self._entries.clear()

    def _entry(self, arr) -> _Entry:
        entry = self._entries.get(id(arr))
        if entry is None or entry.original is not arr:
            entry = _Entry(arr, np.asarray(arr, dtype=np.float64))
            self._entries[id(arr)] = entry
            if self.debug_fingerprint:
                entry.digest = content_digest(entry.array)
        elif self.debug_fingerprint:
            digest = content_digest(entry.array)
            if entry.digest is None:
                entry.digest = digest
            elif digest != entry.digest:
                raise CacheIntegrityError(
                    "cached array content changed while cached (id "
                    f"{id(arr)}): arrays are contractually immutable for "
                    "the cache's lifetime — derived spectra and rolling "
                    "statistics would be stale"
                )
        return entry

    def _digest(self, entry: _Entry) -> str:
        if entry.digest is None:
            entry.digest = content_digest(entry.array)
        return entry.digest

    def as_float64(self, arr) -> np.ndarray:
        """The cached float64 view/copy of ``arr``."""
        return self._entry(arr).array

    def _rolling(self, entry: _Entry) -> RollingStats:
        if entry.rolling is None:
            self.counters.cache_misses += 1
            entry.rolling = RollingStats(entry.array)
        else:
            self.counters.cache_hits += 1
        return entry.rolling

    def rolling_stats(self, arr) -> RollingStats:
        """The cached :class:`RollingStats` of ``arr``.

        The same object the cumulative-sum accessors below derive from —
        handing it to a streaming consumer therefore yields quantities
        bit-identical to the batch path.
        """
        return self._rolling(self._entry(arr))

    def cumsums(self, arr) -> tuple[np.ndarray, np.ndarray]:
        """Zero-prefixed cumulative sums of values and squares (last axis).

        Returns ``(csum, csum2)`` with one leading zero per row, matching
        the layout of the historical per-call computation so every
        consumer's arithmetic (and bits) is unchanged.
        """
        return self._rolling(self._entry(arr)).cumsums()

    def sliding_mean_std(self, arr, window: int) -> tuple[np.ndarray, np.ndarray]:
        """Rolling mean/std of every length-``window`` subsequence.

        Identical formula (and bits) to the historical
        ``repro.ts.distance.sliding_mean_std``; negative variances from
        cancellation are clipped at zero.
        """
        entry = self._entry(arr)
        cached = entry.mean_std.get(window)
        if cached is not None:
            self.counters.cache_hits += 1
            return cached
        self.counters.cache_misses += 1
        entry.mean_std[window] = self._rolling(entry).sliding_mean_std(window)
        return entry.mean_std[window]

    def window_ssq(self, arr, window: int) -> np.ndarray:
        """Sum of squares of every length-``window`` subsequence."""
        entry = self._entry(arr)
        cached = entry.ssq.get(window)
        if cached is not None:
            self.counters.cache_hits += 1
            return cached
        self.counters.cache_misses += 1
        entry.ssq[window] = self._rolling(entry).window_ssq(window)
        return entry.ssq[window]

    def spectrum(self, arr, n_fft: int, dtype=np.float64) -> np.ndarray:
        """Real FFT of ``arr`` zero-padded to ``n_fft`` (last axis).

        This is the expensive half of every sliding dot product; caching
        it means each series is transformed once per (FFT size, compute
        dtype) instead of once per query. With a persistent ``store``,
        misses consult the on-disk cache first, so the transform happens
        once per dataset *across* runs, not per run.
        """
        entry = self._entry(arr)
        dtype = np.dtype(dtype)
        key = (n_fft, dtype.char)
        cached = entry.spectra.get(key)
        if cached is not None:
            self.counters.cache_hits += 1
            return cached
        self.counters.cache_misses += 1
        a = entry.array
        if dtype != np.float64:
            a = a.astype(dtype)
        if self.store is not None:
            store_key = spectrum_key(self._digest(entry), n_fft, dtype)
            loaded = self.store.load(store_key)
            if loaded is not None:
                self.counters.spectra_disk_hits += 1
                entry.spectra[key] = loaded
                return loaded
            self.counters.spectra_disk_misses += 1
        self.counters.fft_count += 1 if a.ndim == 1 else int(
            np.prod(a.shape[:-1])
        )
        spectrum = sp_fft.rfft(a, n_fft, axis=-1)
        entry.spectra[key] = spectrum
        if self.store is not None:
            self.store.save(store_key, spectrum)
        return spectrum
