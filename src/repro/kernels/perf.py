"""Lightweight performance counters for the kernel engine.

A :class:`PerfCounters` instance rides along with a
:class:`repro.kernels.SeriesCache` (or is used standalone) and tallies how
much distance-kernel work a discovery run performed: scalar and batched
kernel invocations, forward/inverse FFT transforms, cache hits and misses,
and wall-clock seconds per pipeline phase. ``IPS.discover`` attaches a
:meth:`PerfCounters.snapshot` to ``DiscoveryResult.extra["perf"]`` so
benchmarks (and ``BENCH_kernels.json``) can report regressions without
re-instrumenting call sites.

Counting is deliberately cheap (integer adds); the counters never change
numerical results.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import ClassVar


@dataclass
class PerfCounters:
    """Tallies of kernel-engine work.

    Attributes
    ----------
    kernel_calls:
        Scalar-equivalent query sweeps: a scalar kernel invocation counts
        one, a batched call over ``Q`` queries counts ``Q`` (``M * Q``
        against an ``(M, N)`` series matrix). Totals are therefore
        comparable between a batched run and the scalar loop it replaced,
        on the direct (short-series) branches as well as the FFT ones.
    batch_calls:
        Batched (multi-query / multi-series) kernel invocations.
    fft_count:
        Individual forward/inverse FFT transforms executed (a batched
        transform over ``R`` rows counts ``R``).
    cache_hits, cache_misses:
        Derived-quantity lookups (cumulative sums, rolling stats, window
        sums of squares, spectra) served from / inserted into a
        :class:`~repro.kernels.SeriesCache`.
    spectra_disk_hits, spectra_disk_misses:
        Lookups against a persistent :class:`~repro.kernels.SpectraStore`
        (cross-run reuse); a disk hit skips the forward FFT entirely.
    phase_seconds:
        Wall-clock seconds per named phase, accumulated by :meth:`phase`.
    """

    #: Real counters record; the no-op singleton advertises False so the
    #: pipeline can skip snapshot/attach work in ``observability="off"``.
    enabled: ClassVar[bool] = True

    kernel_calls: int = 0
    batch_calls: int = 0
    fft_count: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    spectra_disk_hits: int = 0
    spectra_disk_misses: int = 0
    phase_seconds: dict[str, float] = field(default_factory=dict)

    @contextmanager
    def phase(self, name: str):
        """Accumulate the wall time of the enclosed block under ``name``."""
        start = time.perf_counter()
        try:
            yield self
        finally:
            elapsed = time.perf_counter() - start
            self.phase_seconds[name] = self.phase_seconds.get(name, 0.0) + elapsed

    @property
    def cache_lookups(self) -> int:
        """Total derived-quantity lookups (hits + misses)."""
        return self.cache_hits + self.cache_misses

    @property
    def hit_rate(self) -> float:
        """Fraction of cache lookups served without recomputation."""
        total = self.cache_lookups
        return self.cache_hits / total if total else 0.0

    @property
    def spectra_disk_lookups(self) -> int:
        """Total persistent-store lookups (hits + misses)."""
        return self.spectra_disk_hits + self.spectra_disk_misses

    @property
    def spectra_disk_hit_rate(self) -> float:
        """Fraction of persistent-store lookups served from disk."""
        total = self.spectra_disk_lookups
        return self.spectra_disk_hits / total if total else 0.0

    def snapshot(self) -> dict:
        """A plain-dict copy, safe to stash in ``DiscoveryResult.extra``."""
        return {
            "kernel_calls": self.kernel_calls,
            "batch_calls": self.batch_calls,
            "fft_count": self.fft_count,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": self.hit_rate,
            "spectra_disk_hits": self.spectra_disk_hits,
            "spectra_disk_misses": self.spectra_disk_misses,
            "spectra_disk_hit_rate": self.spectra_disk_hit_rate,
            "phase_seconds": dict(self.phase_seconds),
        }

    def merge(self, other: "PerfCounters") -> "PerfCounters":
        """Fold another counter set into this one (returns self)."""
        self.kernel_calls += other.kernel_calls
        self.batch_calls += other.batch_calls
        self.fft_count += other.fft_count
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.spectra_disk_hits += other.spectra_disk_hits
        self.spectra_disk_misses += other.spectra_disk_misses
        for name, seconds in other.phase_seconds.items():
            self.phase_seconds[name] = self.phase_seconds.get(name, 0.0) + seconds
        return self


class NullPerfCounters:
    """Discard-everything stand-in for ``observability="off"`` runs.

    Duck-types :class:`PerfCounters` — increments are swallowed by a
    no-op ``__setattr__``, reads always see zeros, and :meth:`phase`
    times nothing — so the kernel hot path (``counters.cache_hits += 1``
    and friends) runs with zero bookkeeping and zero allocations. Use
    the shared :data:`NULL_PERF_COUNTERS` singleton; counting is off by
    construction, so one instance serves every run.
    """

    enabled = False
    kernel_calls = 0
    batch_calls = 0
    fft_count = 0
    cache_hits = 0
    cache_misses = 0
    cache_lookups = 0
    hit_rate = 0.0
    spectra_disk_hits = 0
    spectra_disk_misses = 0
    spectra_disk_lookups = 0
    spectra_disk_hit_rate = 0.0

    def __setattr__(self, name: str, value: object) -> None:
        pass

    @property
    def phase_seconds(self) -> dict[str, float]:
        return {}

    @contextmanager
    def phase(self, name: str):
        """Yield without timing anything."""
        yield self

    def snapshot(self) -> dict:
        """All-zero snapshot (shape-compatible with the real one)."""
        return {
            "kernel_calls": 0,
            "batch_calls": 0,
            "fft_count": 0,
            "cache_hits": 0,
            "cache_misses": 0,
            "cache_hit_rate": 0.0,
            "spectra_disk_hits": 0,
            "spectra_disk_misses": 0,
            "spectra_disk_hit_rate": 0.0,
            "phase_seconds": {},
        }

    def merge(self, other) -> "NullPerfCounters":
        """Discard ``other`` (returns self)."""
        return self


#: The process-wide no-op counter sink.
NULL_PERF_COUNTERS = NullPerfCounters()
