"""Kernel-engine backends: precision, memory layout, and sharding.

The batched FFT kernels in :mod:`repro.kernels.engine` admit several
execution strategies with different speed/memory/precision trade-offs.
Each strategy is described by a :class:`BackendSpec` and registered under
a name:

``reference``
    The float64 whole-batch FFT path — the default, and the correctness
    anchor: bit-identical to the scalar kernels (and therefore to the
    historical implementations), enforced by the equivalence suite.
``float32``
    Same algorithm in single precision: spectra, pointwise products and
    inverse transforms run as ``complex64``/``float32``, halving memory
    traffic. Results carry a *tested* error bound against the reference
    (``atol``/``rtol`` on the spec); opt-in only — the auto-tuner never
    trades precision away silently.
``tiled``
    Float64 with a blocked/tiled loop over (series rows x query chunks),
    each tile sized so the working set fits ``budget_bytes`` (think L2/L3
    budget). Bit-identical to ``reference`` — row FFTs are independent,
    so tiling changes traversal order, never arithmetic.
``sharded``
    Float64 with series rows sharded across a process pool via
    :class:`repro.distributed.RetryingExecutor` (retry/backoff and
    graceful degradation to serial when the pool breaks, the PR-1
    semantics). Bit-identical to ``reference``; worthwhile only when the
    FFT work dwarfs the fork/IPC overhead, which is what the auto-tuner
    checks.

:func:`choose_backend` is the auto-tuner: given a workload shape it picks
``reference`` / ``tiled`` / ``sharded`` (never ``float32``).
``IPSConfig(kernel_backend="auto")`` invokes it at ``SeriesCache`` build
time; the chosen name is recorded in run manifests and
``BENCH_kernels.json``.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError

#: Default tile working-set budget for the ``tiled`` backend (bytes).
DEFAULT_TILE_BUDGET = 32 << 20

#: Default worker count for the ``sharded`` backend.
DEFAULT_SHARD_WORKERS = 2

#: Auto-tuner: below this many (series x query x fft-point) multiply-adds
#: the process-pool overhead of ``sharded`` cannot pay for itself.
SHARD_MIN_WORK = 5e8

#: Error bound of the float32 backend on unit-scale data, asserted by
#: ``tests/test_kernel_backends.py`` and the perfbench gate:
#: ``|x32 - x64| <= atol + rtol * |x64|`` elementwise on distance outputs.
FLOAT32_ATOL = 5e-4
FLOAT32_RTOL = 5e-4


@dataclass(frozen=True)
class BackendSpec:
    """One execution strategy of the batched kernels.

    Attributes
    ----------
    name:
        Registry name (``reference``/``float32``/``tiled``/``sharded``).
    precision:
        Compute dtype of the FFT path: ``"float64"`` or ``"float32"``.
    layout:
        ``"batched"`` (whole series batch per FFT pass) or ``"tiled"``
        (series-row x query-chunk tiles sized to ``budget_bytes``).
    sharded:
        Whether series rows are fanned out across a process pool.
    budget_bytes:
        Working-set ceiling per tile/chunk of the pointwise-product loop.
        Sized against the *worst* intermediate: the complex product
        (16 B/element over the half spectrum) plus the float64 inverse
        transform buffer (8 B/element over the full FFT length).
    max_workers:
        Process count for the sharded path.
    atol, rtol:
        Guaranteed (tested) error bound against the ``reference`` backend
        on unit-scale data; both 0.0 for bit-identical backends.
    description:
        One-line human summary (shown in docs and BENCH records).
    """

    name: str
    precision: str = "float64"
    layout: str = "batched"
    sharded: bool = False
    budget_bytes: int = DEFAULT_TILE_BUDGET
    max_workers: int = DEFAULT_SHARD_WORKERS
    atol: float = 0.0
    rtol: float = 0.0
    description: str = ""

    def __post_init__(self) -> None:
        if self.precision not in ("float64", "float32"):
            raise ValidationError(
                f"unknown backend precision {self.precision!r}"
            )
        if self.layout not in ("batched", "tiled"):
            raise ValidationError(f"unknown backend layout {self.layout!r}")
        if self.budget_bytes < 1 << 16:
            raise ValidationError("budget_bytes must be >= 64 KiB")
        if self.max_workers < 1:
            raise ValidationError("max_workers must be >= 1")

    @property
    def bit_identical(self) -> bool:
        """Whether outputs must equal the reference backend bit-for-bit."""
        return self.precision == "float64"

    @property
    def compute_dtype(self) -> np.dtype:
        """The dtype the FFT path runs in."""
        return np.dtype(np.float32 if self.precision == "float32" else np.float64)


_REGISTRY: dict[str, BackendSpec] = {}


def register_backend(spec: BackendSpec) -> BackendSpec:
    """Add (or replace) a backend in the registry; returns the spec."""
    _REGISTRY[spec.name] = spec
    return spec


def backend_names() -> tuple[str, ...]:
    """Registered backend names, registration order preserved."""
    return tuple(_REGISTRY)


def get_backend(name: str, **overrides) -> BackendSpec:
    """Look up a backend by name, optionally overriding spec fields.

    ``get_backend("tiled", budget_bytes=8 << 20)`` returns a copy of the
    registered spec with the budget replaced; unknown names raise
    :class:`~repro.exceptions.ValidationError` listing the choices.
    """
    spec = _REGISTRY.get(name)
    if spec is None:
        raise ValidationError(
            f"unknown kernel backend {name!r}; choose from "
            f"{backend_names()} (or 'auto')"
        )
    return dataclasses.replace(spec, **overrides) if overrides else spec


REFERENCE = register_backend(
    BackendSpec(
        name="reference",
        description="float64 whole-batch FFT; the bit-exact anchor",
    )
)
FLOAT32 = register_backend(
    BackendSpec(
        name="float32",
        precision="float32",
        atol=FLOAT32_ATOL,
        rtol=FLOAT32_RTOL,
        description="single-precision FFT path with a tested error bound",
    )
)
TILED = register_backend(
    BackendSpec(
        name="tiled",
        layout="tiled",
        description="float64 tiles sized to a cache budget; bit-exact",
    )
)
SHARDED = register_backend(
    BackendSpec(
        name="sharded",
        sharded=True,
        description="series rows sharded over a retrying process pool",
    )
)


def _estimate_n_fft(n_points: int, length: int | None) -> int:
    from scipy import fft as sp_fft

    window = length if length is not None else max(2, n_points // 4)
    return sp_fft.next_fast_len(n_points + window - 1, True)


def choose_backend(
    n_series: int,
    n_points: int,
    *,
    n_queries: int | None = None,
    length: int | None = None,
    budget_bytes: int = DEFAULT_TILE_BUDGET,
    max_workers: int = DEFAULT_SHARD_WORKERS,
    cpu_count: int | None = None,
) -> BackendSpec:
    """Pick a backend for a workload shape (the ``"auto"`` policy).

    Precision is never traded automatically, so the choice is between the
    bit-identical strategies:

    * the whole working set fits the budget → ``reference`` (no tiling
      overhead to pay);
    * enough FFT work to amortize process fan-out on this machine →
      ``sharded`` (capped at the available cores);
    * otherwise → ``tiled`` (bounded memory, single process).

    ``n_queries`` defaults to a nominal batch of 64 when unknown (the
    pipeline tunes at ``SeriesCache`` build time, before candidates
    exist).
    """
    queries = n_queries if n_queries is not None else 64
    n_fft = _estimate_n_fft(n_points, length)
    # Worst-case simultaneous intermediates per query row: the complex
    # product over the half spectrum plus the float64 irfft output.
    bytes_per_query = n_series * (16 * (n_fft // 2 + 1) + 8 * n_fft)
    workset = queries * bytes_per_query
    cores = cpu_count if cpu_count is not None else (os.cpu_count() or 1)
    work = float(n_series) * queries * n_fft
    if workset <= budget_bytes:
        return REFERENCE
    if cores >= 2 and work >= SHARD_MIN_WORK:
        return get_backend(
            "sharded", max_workers=min(max_workers, cores)
        )
    return get_backend("tiled", budget_bytes=budget_bytes)


# ---------------------------------------------------------------------------
# Sharded execution (process-pool fan-out over series rows)
# ---------------------------------------------------------------------------


def _shard_worker(unit) -> np.ndarray:
    """Compute one shard's sliding dots (runs in a worker process).

    ``unit`` is a ``(queries, X_shard)`` tuple. The worker runs the
    reference path — row FFTs are independent, so a shard's rows come out
    bit-identical to the same rows of a whole-batch computation.
    """
    from repro.kernels import engine

    queries, x_shard = unit
    return engine._batch_dots_2d(queries, x_shard, None, spec=REFERENCE)


def sharded_batch_dots_2d(
    queries: np.ndarray, X: np.ndarray, spec: BackendSpec
) -> np.ndarray:
    """Shard ``X``'s rows across a retrying process pool; concatenate.

    Uses :class:`repro.distributed.RetryingExecutor` around a
    :class:`repro.distributed.ProcessExecutor`: per-shard retries, and
    graceful degradation to in-process serial execution if the pool
    itself breaks (``BrokenProcessPool`` and friends) — the run survives
    either way, matching the fault-tolerance semantics of distributed
    discovery.
    """
    from repro.distributed.executor import ProcessExecutor, RetryingExecutor

    n_workers = max(1, min(spec.max_workers, X.shape[0]))
    bounds = np.linspace(0, X.shape[0], n_workers + 1).astype(int)
    shards = [
        (queries, X[start:stop])
        for start, stop in zip(bounds[:-1], bounds[1:])
        if stop > start
    ]
    executor = RetryingExecutor(
        inner=ProcessExecutor(max_workers=n_workers),
        max_retries=1,
        base_delay=0.0,
    )
    results = executor.map(_shard_worker, shards)
    return np.concatenate(results, axis=0)


__all__ = [
    "DEFAULT_SHARD_WORKERS",
    "DEFAULT_TILE_BUDGET",
    "FLOAT32",
    "FLOAT32_ATOL",
    "FLOAT32_RTOL",
    "REFERENCE",
    "SHARDED",
    "SHARD_MIN_WORK",
    "TILED",
    "BackendSpec",
    "backend_names",
    "choose_backend",
    "get_backend",
    "register_backend",
    "sharded_batch_dots_2d",
]
