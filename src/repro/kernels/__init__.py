"""``repro.kernels``: the batched, caching distance-kernel engine.

This package is the single entry point for all subsequence-distance work
in the reproduction. It unifies what used to be five private call paths
(MASS, STOMP, candidate scoring, the shapelet transform, and the BASE/FS
baselines) behind one facade:

* :class:`SeriesCache` — computes each series' FFT spectrum and rolling
  mean/std exactly once per discovery run and shares them across phases
  (matrix-profile computation → candidate evaluation → utility scoring →
  shapelet transform);
* batched kernels — :func:`batch_mass`, :func:`batch_min_distance`,
  :func:`batch_sliding_dot`, :func:`batch_distance_profile` replace
  per-query Python loops with vectorized multi-query FFT convolutions;
* scalar kernels — :func:`mass`, :func:`distance_profile`,
  :func:`sliding_dot_product`, :func:`sliding_mean_std`,
  :func:`subsequence_distance` (keyword-only options), the reference
  implementations the batched paths are verified against;
* :class:`PerfCounters` — cheap counters (kernel calls, cache hits,
  FFT count, per-phase wall time) surfaced at
  ``DiscoveryResult.extra["perf"]``.

All kernels are bit-compatible with the historical implementations; the
old entry points (``repro.ts.distance``, ``repro.matrixprofile.mass``)
remain importable as thin deprecated shims.
"""

from __future__ import annotations

import warnings

from repro.kernels.backends import (
    BackendSpec,
    backend_names,
    choose_backend,
    get_backend,
    register_backend,
)
from repro.kernels.cache import SeriesCache
from repro.kernels.rolling import RollingStats
from repro.kernels.store import SpectraStore
from repro.kernels.engine import (
    batch_distance_profile,
    batch_mass,
    batch_min_distance,
    batch_sliding_dot,
    direct_distance_profile,
    direct_min_distance,
    direct_window_dots,
    distance_profile,
    euclidean_distance,
    mass,
    raw_distance_profile,
    sliding_dot_product,
    sliding_mean_std,
    squared_euclidean,
    subsequence_distance,
)
from repro.kernels.perf import (
    NULL_PERF_COUNTERS,
    NullPerfCounters,
    PerfCounters,
)

__all__ = [
    "NULL_PERF_COUNTERS",
    "BackendSpec",
    "NullPerfCounters",
    "PerfCounters",
    "RollingStats",
    "SeriesCache",
    "SpectraStore",
    "backend_names",
    "batch_distance_profile",
    "batch_mass",
    "batch_min_distance",
    "batch_sliding_dot",
    "choose_backend",
    "direct_distance_profile",
    "direct_min_distance",
    "direct_window_dots",
    "distance_profile",
    "euclidean_distance",
    "get_backend",
    "mass",
    "register_backend",
    "raw_distance_profile",
    "reset_deprecation_warnings",
    "sliding_dot_product",
    "sliding_mean_std",
    "squared_euclidean",
    "subsequence_distance",
    "warn_deprecated_once",
]

#: Shim call sites that have already warned this process.
_WARNED: set[str] = set()


def warn_deprecated_once(old: str, new: str) -> None:
    """Emit one :class:`DeprecationWarning` per process for a legacy path.

    The legacy distance entry points (``repro.ts.distance.*``,
    ``repro.matrixprofile.mass.mass``) call this before delegating to the
    kernel engine. Warning exactly once keeps migration pressure visible
    without flooding tight loops that still go through the old names.
    """
    if old in _WARNED:
        return
    _WARNED.add(old)
    warnings.warn(
        f"{old} is deprecated; use {new} instead",
        DeprecationWarning,
        stacklevel=3,
    )


def reset_deprecation_warnings() -> None:
    """Forget which shims have warned (test hook)."""
    _WARNED.clear()
