"""Persistent, content-addressed on-disk cache of series FFT spectra.

A :class:`SpectraStore` lets *separate processes and separate runs* share
the expensive half of every sliding dot product: the padded real FFT of
each series. The in-memory :class:`~repro.kernels.SeriesCache` already
deduplicates spectra within one run, but its hit rate across runs is 0%
by construction — every process starts cold. Pointing runs at the same
store directory makes repeated discovery over the same dataset skip the
forward FFTs entirely.

Storage format (the ``repro.serve`` artifact discipline):

* one entry = two files, ``<key>.npy`` (the complex spectrum, ``np.save``
  format) and ``<key>.json`` (a sidecar with the payload's SHA-256
  checksum plus the shape/dtype/FFT-size metadata);
* every write is atomic — temp file in the same directory, then
  ``os.replace`` — so a crashed writer can never leave a torn entry
  behind under the final name;
* every read verifies the sidecar checksum before trusting the payload;
  a corrupt or torn entry is quarantined (best-effort unlink) and
  treated as a miss, never served.

Invalidation is content-addressed: the key is a SHA-256 over the series'
raw bytes, its shape, the FFT size, the compute dtype, and the scipy
version (FFT output bits may change across scipy releases). Changing any
of these yields a different key, so stale entries are unreachable rather
than deleted — prune the directory by age or size externally if it
grows (entries are only ever re-created identically).
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import time
from pathlib import Path

import numpy as np
import scipy

from repro.exceptions import SpectraStoreError

#: Bumped whenever the entry layout changes incompatibly; part of the key,
#: so old-format entries simply become unreachable.
STORE_FORMAT_VERSION = 1


def content_digest(array: np.ndarray) -> str:
    """SHA-256 of an array's raw bytes (C-order), its shape and dtype."""
    contiguous = np.ascontiguousarray(array)
    digest = hashlib.sha256()
    digest.update(str(contiguous.shape).encode())
    digest.update(contiguous.dtype.str.encode())
    digest.update(contiguous.tobytes())
    return digest.hexdigest()


def spectrum_key(array_digest: str, n_fft: int, dtype: np.dtype) -> str:
    """The store key of one (series content, FFT size, precision) triple."""
    material = "|".join(
        (
            f"v{STORE_FORMAT_VERSION}",
            array_digest,
            str(n_fft),
            np.dtype(dtype).str,
            scipy.__version__,
        )
    )
    return hashlib.sha256(material.encode()).hexdigest()


def _atomic_write_bytes(path: Path, payload: bytes) -> None:
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    with open(tmp, "wb") as fh:
        fh.write(payload)
    os.replace(tmp, path)


class SpectraStore:
    """Checksummed on-disk spectrum cache, shared across runs.

    Parameters
    ----------
    directory:
        Store location; created (with parents) if missing.

    The store is deliberately dumb: ``load`` returns the spectrum or
    ``None``, ``save`` persists one, and all integrity handling is
    internal. Hit/miss accounting lives in the
    :class:`~repro.kernels.PerfCounters` of the calling
    :class:`~repro.kernels.SeriesCache`, which is the only intended
    caller. Concurrent writers are safe: entries are content-addressed,
    so two processes racing on the same key write identical bytes and
    ``os.replace`` makes whichever lands last a no-op.
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise SpectraStoreError(
                f"cannot create spectra store at {self.directory}: {exc}"
            ) from exc
        if not self.directory.is_dir():
            raise SpectraStoreError(
                f"spectra store path {self.directory} is not a directory"
            )

    def _paths(self, key: str) -> tuple[Path, Path]:
        return self.directory / f"{key}.npy", self.directory / f"{key}.json"

    def __len__(self) -> int:
        """Number of (possibly unverified) entries in the store."""
        return sum(1 for _ in self.directory.glob("*.json"))

    def _quarantine(self, key: str) -> None:
        """Best-effort removal of a corrupt entry so it is recomputed."""
        for path in self._paths(key):
            try:
                path.unlink(missing_ok=True)
            except OSError:
                pass

    def load(self, key: str) -> np.ndarray | None:
        """The stored spectrum for ``key``, or ``None`` on miss/corruption."""
        payload_path, sidecar_path = self._paths(key)
        try:
            sidecar = json.loads(sidecar_path.read_text())
            payload = payload_path.read_bytes()
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None
        expected = sidecar.get("sha256") if isinstance(sidecar, dict) else None
        if expected != hashlib.sha256(payload).hexdigest():
            self._quarantine(key)
            return None
        try:
            spectrum = np.load(io.BytesIO(payload), allow_pickle=False)
        except (OSError, ValueError):
            self._quarantine(key)
            return None
        return spectrum

    def save(self, key: str, spectrum: np.ndarray) -> None:
        """Persist one spectrum atomically (payload first, then sidecar).

        Ordering matters for crash safety: a reader only trusts a payload
        its sidecar vouches for, so the sidecar lands last.
        """
        payload_path, sidecar_path = self._paths(key)
        buffer = io.BytesIO()
        np.save(buffer, spectrum, allow_pickle=False)
        payload = buffer.getvalue()
        _atomic_write_bytes(payload_path, payload)
        sidecar = {
            "sha256": hashlib.sha256(payload).hexdigest(),
            "shape": list(spectrum.shape),
            "dtype": spectrum.dtype.str,
            "scipy": scipy.__version__,
            "created_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        }
        _atomic_write_bytes(
            sidecar_path,
            (json.dumps(sidecar, sort_keys=True) + "\n").encode(),
        )


__all__ = [
    "STORE_FORMAT_VERSION",
    "SpectraStore",
    "content_digest",
    "spectrum_key",
]
