"""The distance kernels: scalar reference paths and batched FFT paths.

Every kernel here is built on one identity — for a query ``q`` and a
series ``t``,

    ||t_j - q||^2 = sum(t_j^2) - 2 (t (x) q)_j + sum(q^2)

with ``(x)`` the sliding correlation, computed as an FFT convolution. The
batched kernels amortize the expensive halves across queries and series:
the series spectrum is computed once (and cached in a
:class:`~repro.kernels.SeriesCache`), all same-length queries are
transformed in one batched FFT, and the pointwise products run as one
vectorized multiply instead of a Python loop per query.

Bit-compatibility contract
--------------------------
The batched kernels produce *bit-identical* outputs to the scalar ones,
and the scalar ones are bit-identical to the historical implementations
in ``repro.ts.distance`` / ``repro.matrixprofile.mass``: the FFT size is
the same ``next_fast_len(N + L - 1)`` that ``scipy.signal.fftconvolve``
picks, the direct-method cutover for tiny outputs is preserved, and every
elementwise formula keeps its operation order. Discovery results are
therefore unchanged whether caching/batching is on or off — the
equivalence suite in ``tests/test_kernels.py`` pins this down.

Backends
--------
The batched FFT paths run under a selectable
:class:`~repro.kernels.BackendSpec` (``backend=`` keyword, or the spec
attached to the :class:`~repro.kernels.SeriesCache`): the ``reference``
float64 path, a ``float32`` path with a tested error bound, a ``tiled``
float64 path with its working set blocked to a byte budget, and a
``sharded`` path fanning series rows across a retrying process pool. All
float64 backends keep the bit-compatibility contract above; only
``float32`` trades precision, and only when asked. Below the direct-method
cutover there is no FFT and the backends are indistinguishable by
construction. See :mod:`repro.kernels.backends`.
"""

from __future__ import annotations

import numpy as np
from scipy import fft as sp_fft

from repro.exceptions import LengthError, ValidationError
from repro.kernels import backends as _backends
from repro.kernels.backends import BackendSpec, get_backend
from repro.kernels.cache import SeriesCache
from repro.ts.preprocessing import FLAT_STD
from repro.ts.windows import num_windows

#: Below this many output windows the direct method beats the FFT
#: (kept identical to the historical ``repro.ts.distance`` cutover).
_FFT_CUTOVER = 8

#: Hard ceiling, in bytes, on the *simultaneous* intermediates of one
#: batched inverse-FFT block: the complex pointwise product (16 B/element
#: over the half spectrum at float64, 8 B at float32) plus the inverse
#: transform's output buffer (8 B/element over the full FFT length, 4 B
#: at float32). Query chunks are sized so their sum stays below it — the
#: predecessor sized chunks by *element count* of the output alone, so
#: actual peak memory ran ~3x the documented ceiling.
_CHUNK_BYTES = 1 << 26


def _resolve_spec(
    cache: SeriesCache | None, backend: BackendSpec | str | None
) -> BackendSpec:
    """The backend to run under: explicit arg > cache's spec > reference."""
    if backend is not None:
        return get_backend(backend) if isinstance(backend, str) else backend
    if cache is not None and cache.backend is not None:
        return cache.backend
    return _backends.REFERENCE


def _intermediate_bytes_per_row(n_fft: int, dtype: np.dtype) -> int:
    """Bytes of simultaneous intermediates per (series, query) FFT row."""
    complex_itemsize = 2 * dtype.itemsize
    n_rfft = n_fft // 2 + 1
    return complex_itemsize * n_rfft + dtype.itemsize * n_fft


def _fft_size(n_series: int, n_query: int) -> int:
    """The padded FFT length ``fftconvolve`` would choose (real inputs)."""
    return sp_fft.next_fast_len(n_series + n_query - 1, True)


# ---------------------------------------------------------------------------
# Scalar kernels (single query, single series)
# ---------------------------------------------------------------------------


def squared_euclidean(a, b) -> float:
    """Plain squared Euclidean distance between two equal-length series."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValidationError(f"shape mismatch: {a.shape} vs {b.shape}")
    diff = a - b
    return float(np.dot(diff, diff))


def euclidean_distance(a, b) -> float:
    """Euclidean distance between two equal-length series."""
    return float(np.sqrt(squared_euclidean(a, b)))


def sliding_mean_std(series, window: int, *, cache: SeriesCache | None = None):
    """Mean and std of every length-``window`` subsequence.

    Returns ``(means, stds)`` each of length ``N - L + 1``. With a
    ``cache``, the cumulative sums behind them are computed once per
    series and shared across windows and phases.
    """
    if cache is not None:
        return cache.sliding_mean_std(series, window)
    arr = np.asarray(series, dtype=np.float64)
    n_out = num_windows(arr.size, window)
    csum = np.concatenate([[0.0], np.cumsum(arr)])
    csum2 = np.concatenate([[0.0], np.cumsum(arr * arr)])
    sums = csum[window:] - csum[:-window]
    sums2 = csum2[window:] - csum2[:-window]
    means = sums / window
    variances = np.maximum(sums2 / window - means * means, 0.0)
    stds = np.sqrt(variances)
    assert means.size == n_out
    return means, stds


def _window_ssq(series: np.ndarray, window: int, cache: SeriesCache | None):
    """Sum of squares of every window (cached when possible)."""
    if cache is not None:
        return cache.window_ssq(series, window)
    csum2 = np.concatenate([[0.0], np.cumsum(series * series)])
    return csum2[window:] - csum2[:-window]


def sliding_dot_product(query, series, *, cache: SeriesCache | None = None):
    """Dot products of ``query`` with every window of ``series``.

    Returns an array of length ``N - L + 1``. FFT convolution for long
    inputs, a direct stride loop for tiny ones; with a ``cache``, the
    series' spectrum is reused across queries of any equal-length batch.
    """
    query = np.asarray(query, dtype=np.float64)
    series = np.asarray(series, dtype=np.float64)
    n_out = num_windows(series.size, query.size)
    if cache is not None:
        cache.counters.kernel_calls += 1
    if n_out <= _FFT_CUTOVER:
        windows = np.lib.stride_tricks.sliding_window_view(series, query.size)
        return windows @ query
    n_fft = _fft_size(series.size, query.size)
    if cache is not None:
        spec_series = cache.spectrum(series, n_fft)
        cache.counters.fft_count += 2  # query transform + inverse
    else:
        spec_series = sp_fft.rfft(series, n_fft)
    spec_query = sp_fft.rfft(query[::-1], n_fft)
    full = sp_fft.irfft(spec_series * spec_query, n_fft)
    return full[query.size - 1 : query.size - 1 + n_out]


def distance_profile(query, series, *, cache: SeriesCache | None = None):
    """Squared Euclidean distance of ``query`` to every window of ``series``.

    Non-normalized (raw values, per Def. 4 of the paper, *before* the 1/L
    factor). Returns an array of length ``N - L + 1``; tiny negative
    values from FFT round-off are clipped at zero.
    """
    query = np.asarray(query, dtype=np.float64)
    series = np.asarray(series, dtype=np.float64)
    if query.ndim != 1 or series.ndim != 1:
        raise ValidationError("distance_profile expects 1-D arrays")
    dots = sliding_dot_product(query, series, cache=cache)
    window_sq = _window_ssq(series, query.size, cache)
    profile = window_sq - 2.0 * dots + float(np.dot(query, query))
    return np.maximum(profile, 0.0)


def raw_distance_profile(query, series, *, cache: SeriesCache | None = None):
    """Non-normalized Euclidean distance profile (not squared)."""
    return np.sqrt(distance_profile(query, series, cache=cache))


def subsequence_distance(query, series, *, cache: SeriesCache | None = None) -> float:
    """The paper's Definition 4 distance ``dist(Tp, Tq)``.

    Length-normalized squared Euclidean distance of the shorter input
    against its best-matching window in the longer one; the arguments may
    be given in either order. With a ``cache``, the longer input's FFT
    spectrum and window statistics are reused across calls — pass the
    *same array objects* each time (the cache is identity-keyed), which
    is what turns the quadratic pair loops in utility scoring and
    pruning from one-FFT-per-pair into one-FFT-per-item.
    """
    a = np.asarray(query, dtype=np.float64)
    b = np.asarray(series, dtype=np.float64)
    if a.size > b.size:
        a, b = b, a
    if a.size == 0:
        raise LengthError("subsequence_distance requires non-empty inputs")
    profile = distance_profile(a, b, cache=cache)
    return float(profile.min() / a.size)


def _check_finite_mass(query: np.ndarray, series: np.ndarray) -> None:
    if not np.all(np.isfinite(query)):
        raise ValidationError(
            "mass query contains NaN or inf; clean or interpolate the "
            "input (e.g. repro.datasets.perturb.add_dropout fills gaps) "
            "before computing distance profiles"
        )
    if not np.all(np.isfinite(series)):
        raise ValidationError(
            "mass series contains NaN or inf; z-normalized distances are "
            "undefined on non-finite windows — clean the input first"
        )


def mass(query, series, *, normalized: bool = True, cache: SeriesCache | None = None):
    """MASS distance profile of ``query`` against every window of ``series``.

    z-normalized Euclidean distances by default (the matrix-profile
    convention, with the flat-window rules documented in
    ``repro.matrixprofile.mass``), raw Euclidean otherwise. Returns an
    array of length ``N - L + 1`` of non-squared distances.
    """
    query = np.asarray(query, dtype=np.float64)
    series = np.asarray(series, dtype=np.float64)
    if query.ndim != 1 or series.ndim != 1:
        raise ValidationError("mass expects 1-D arrays")
    _check_finite_mass(query, series)
    if not normalized:
        return raw_distance_profile(query, series, cache=cache)
    length = query.size
    q_mean = float(query.mean())
    q_std = float(query.std())
    means, stds = sliding_mean_std(series, length, cache=cache)
    dots = sliding_dot_product(query, series, cache=cache)

    q_flat = q_std < FLAT_STD
    t_flat = stds < FLAT_STD
    # Denominators are clamped to FLAT_STD, inputs are validated finite:
    # no divide/invalid can occur, so no errstate suppression is needed.
    corr = (dots - length * q_mean * means) / (
        length * max(q_std, FLAT_STD) * np.maximum(stds, FLAT_STD)
    )
    # Clip correlation into [-1, 1] against FFT round-off.
    corr = np.clip(corr, -1.0, 1.0)
    sq = 2.0 * length * (1.0 - corr)
    if q_flat:
        # Query z-normalizes to zeros: distance L to any non-flat window.
        sq = np.where(t_flat, 0.0, float(length))
    else:
        sq = np.where(t_flat, float(length), sq)
    return np.sqrt(np.maximum(sq, 0.0))


# ---------------------------------------------------------------------------
# Batched kernels (many queries and/or many series)
# ---------------------------------------------------------------------------


def _as_query_matrix(queries) -> np.ndarray:
    """Coerce a query batch into a 2-D ``(Q, L)`` float64 matrix."""
    if isinstance(queries, np.ndarray) and queries.ndim == 2:
        return np.asarray(queries, dtype=np.float64)
    arr = np.asarray(queries, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr[None, :]
    if arr.ndim != 2:
        raise ValidationError(
            "queries must be a 1-D array, a (Q, L) matrix, or a sequence "
            "of equal-length 1-D arrays"
        )
    return arr


def _batch_dots_1d(
    queries: np.ndarray,
    series: np.ndarray,
    cache: SeriesCache | None,
    spec: BackendSpec | None = None,
) -> np.ndarray:
    """Sliding dot products of ``(Q, L)`` queries over one 1-D series."""
    spec = spec if spec is not None else _resolve_spec(cache, None)
    n_queries, length = queries.shape
    n_out = num_windows(series.size, length)
    if cache is not None:
        # Scalar-equivalent accounting: Q query sweeps, on both branches,
        # so batched and scalar runs report comparable totals.
        cache.counters.kernel_calls += n_queries
    if n_out <= _FFT_CUTOVER:
        windows = np.lib.stride_tricks.sliding_window_view(series, length)
        # Per-query matvec keeps bit parity with the scalar direct path.
        return np.stack([windows @ q for q in queries])
    n_fft = _fft_size(series.size, length)
    dtype = spec.compute_dtype
    if cache is not None:
        spec_series = cache.spectrum(series, n_fft, dtype=dtype)
        cache.counters.fft_count += 2 * n_queries
    elif dtype == np.float64:
        spec_series = sp_fft.rfft(series, n_fft)
    else:
        spec_series = sp_fft.rfft(series.astype(dtype), n_fft)
    reversed_queries = queries[:, ::-1]
    if dtype != np.float64:
        reversed_queries = reversed_queries.astype(dtype)
    spec_queries = sp_fft.rfft(reversed_queries, n_fft, axis=-1)
    out = np.empty((n_queries, n_out), dtype=np.float64)
    # A single series rarely needs chunking, but the tiled backend (and
    # the byte ceiling) still bound the intermediates for huge batches.
    budget = spec.budget_bytes if spec.layout == "tiled" else _CHUNK_BYTES
    chunk = max(1, budget // _intermediate_bytes_per_row(n_fft, dtype))
    for start in range(0, n_queries, chunk):
        stop = min(start + chunk, n_queries)
        prod = spec_series[None, :] * spec_queries[start:stop]
        full = sp_fft.irfft(prod, n_fft, axis=-1)
        del prod
        out[start:stop, :] = full[:, length - 1 : length - 1 + n_out]
    return out


def _tile_shape(
    n_series: int, n_queries: int, n_fft: int, dtype: np.dtype, budget: int
) -> tuple[int, int]:
    """(series rows, query columns) per tile under the byte budget.

    Prefers square-ish tiles: both axes benefit from staying resident,
    and a degenerate 1-row tile would serialize the inverse FFTs.
    """
    per_cell = _intermediate_bytes_per_row(n_fft, dtype)
    cells = max(1, budget // per_cell)
    q_tile = int(min(n_queries, max(1, np.sqrt(cells))))
    s_tile = int(min(n_series, max(1, cells // q_tile)))
    return s_tile, q_tile


def _batch_dots_2d(
    queries: np.ndarray,
    X: np.ndarray,
    cache: SeriesCache | None,
    spec: BackendSpec | None = None,
) -> np.ndarray:
    """Sliding dot products of ``(Q, L)`` queries over ``(M, N)`` series.

    Returns ``(M, Q, n_out)``. One batched FFT covers all series (cached
    across calls), one covers all queries; the pointwise products run in
    blocks whose simultaneous intermediates are sized, *in bytes*, to
    stay under the backend's budget (``_CHUNK_BYTES`` for the reference
    backend, ``spec.budget_bytes`` for the tiled one, which additionally
    blocks over series rows). The sharded backend fans series rows out
    across a process pool instead.
    """
    spec = spec if spec is not None else _resolve_spec(cache, None)
    n_queries, length = queries.shape
    n_series, n_points = X.shape
    n_out = num_windows(n_points, length)
    if cache is not None:
        cache.counters.kernel_calls += n_series * n_queries
    if n_out <= _FFT_CUTOVER:
        windows = np.lib.stride_tricks.sliding_window_view(X, length, axis=-1)
        out = np.empty((n_series, n_queries, n_out), dtype=np.float64)
        for qi, q in enumerate(queries):
            for si in range(n_series):
                out[si, qi] = windows[si] @ q
        return out
    n_fft = _fft_size(n_points, length)
    if spec.sharded and n_series > 1:
        if cache is not None:
            # The shards really execute this many transforms: every worker
            # transforms the full query batch, plus one inverse per
            # (series, query) row and one forward per series row.
            n_shards = max(1, min(spec.max_workers, n_series))
            cache.counters.fft_count += (
                n_shards * n_queries + n_series * n_queries + n_series
            )
        return _backends.sharded_batch_dots_2d(queries, X, spec)
    dtype = spec.compute_dtype
    if cache is not None:
        spec_x = cache.spectrum(X, n_fft, dtype=dtype)
        cache.counters.fft_count += n_queries * (1 + n_series)
    elif dtype == np.float64:
        spec_x = sp_fft.rfft(X, n_fft, axis=-1)
    else:
        spec_x = sp_fft.rfft(X.astype(dtype), n_fft, axis=-1)
    reversed_queries = queries[:, ::-1]
    if dtype != np.float64:
        reversed_queries = reversed_queries.astype(dtype)
    spec_queries = sp_fft.rfft(reversed_queries, n_fft, axis=-1)
    out = np.empty((n_series, n_queries, n_out), dtype=np.float64)
    if spec.layout == "tiled":
        s_tile, q_tile = _tile_shape(
            n_series, n_queries, n_fft, dtype, spec.budget_bytes
        )
    else:
        s_tile = n_series
        per_query = n_series * _intermediate_bytes_per_row(n_fft, dtype)
        q_tile = max(1, _CHUNK_BYTES // per_query)
    for s_start in range(0, n_series, s_tile):
        s_stop = min(s_start + s_tile, n_series)
        for q_start in range(0, n_queries, q_tile):
            q_stop = min(q_start + q_tile, n_queries)
            prod = (
                spec_x[s_start:s_stop, None, :]
                * spec_queries[None, q_start:q_stop, :]
            )
            full = sp_fft.irfft(prod, n_fft, axis=-1)
            del prod
            out[s_start:s_stop, q_start:q_stop, :] = full[
                ..., length - 1 : length - 1 + n_out
            ]
    return out


def batch_sliding_dot(
    queries,
    series,
    *,
    cache: SeriesCache | None = None,
    backend: BackendSpec | str | None = None,
):
    """Sliding dot products of a query batch against one or many series.

    Parameters
    ----------
    queries:
        ``(Q, L)`` matrix (or a single 1-D query) of equal-length queries.
    series:
        1-D series of length ``N`` → returns ``(Q, N - L + 1)``; or a
        ``(M, N)`` matrix → returns ``(M, Q, N - L + 1)``.
    cache:
        Optional :class:`~repro.kernels.SeriesCache`; series spectra are
        computed once per FFT size and shared across calls.
    backend:
        Optional :class:`~repro.kernels.BackendSpec` (or registry name)
        selecting the execution strategy; defaults to the spec attached
        to ``cache``, else the bit-exact ``reference`` backend.
    """
    queries = _as_query_matrix(queries)
    series = np.asarray(series, dtype=np.float64)
    spec = _resolve_spec(cache, backend)
    if cache is not None:
        cache.counters.batch_calls += 1
    if series.ndim == 1:
        return _batch_dots_1d(queries, series, cache, spec)
    if series.ndim == 2:
        return _batch_dots_2d(queries, series, cache, spec)
    raise ValidationError("series must be 1-D or a 2-D (M, N) matrix")


def batch_distance_profile(
    queries,
    series,
    *,
    cache: SeriesCache | None = None,
    backend: BackendSpec | str | None = None,
):
    """Raw squared distance profiles of a same-length query batch.

    The batched counterpart of :func:`distance_profile`: ``(Q, n_out)``
    for a 1-D series, ``(M, Q, n_out)`` for a ``(M, N)`` matrix.
    """
    queries = _as_query_matrix(queries)
    series = np.asarray(series, dtype=np.float64)
    dots = batch_sliding_dot(queries, series, cache=cache, backend=backend)
    window_sq = _window_ssq_any(series, queries.shape[1], cache)
    # Per-query np.dot keeps bit parity with the scalar kernel.
    q_sq = np.array([float(np.dot(q, q)) for q in queries])
    if series.ndim == 1:
        profile = window_sq[None, :] - 2.0 * dots + q_sq[:, None]
    else:
        profile = window_sq[:, None, :] - 2.0 * dots + q_sq[None, :, None]
    return np.maximum(profile, 0.0)


def _window_ssq_any(series: np.ndarray, window: int, cache: SeriesCache | None):
    if cache is not None:
        return cache.window_ssq(series, window)
    if series.ndim == 1:
        csum2 = np.concatenate([[0.0], np.cumsum(series * series)])
        return csum2[window:] - csum2[:-window]
    zeros = np.zeros(series.shape[:-1] + (1,), dtype=np.float64)
    csum2 = np.concatenate([zeros, np.cumsum(series * series, axis=-1)], axis=-1)
    return csum2[..., window:] - csum2[..., :-window]


def batch_mass(
    queries,
    series,
    *,
    normalized: bool = True,
    cache: SeriesCache | None = None,
    backend: BackendSpec | str | None = None,
):
    """MASS distance profiles for a batch of same-length queries.

    The batched counterpart of :func:`mass`: z-normalized (default) or raw
    Euclidean distance profiles, ``(Q, n_out)`` against a 1-D series or
    ``(M, Q, n_out)`` against a ``(M, N)`` series set. Row ``q`` is
    bit-identical to ``mass(queries[q], series)`` (under the float64
    backends; ``backend="float32"`` is bounded, not bit-equal).
    """
    queries = _as_query_matrix(queries)
    series = np.asarray(series, dtype=np.float64)
    if series.ndim not in (1, 2):
        raise ValidationError("series must be 1-D or a 2-D (M, N) matrix")
    _check_finite_mass(queries, series)
    if not normalized:
        return np.sqrt(
            batch_distance_profile(
                queries, series, cache=cache, backend=backend
            )
        )
    length = queries.shape[1]
    # Per-query scalar stats keep bit parity with the scalar kernel.
    q_means = np.array([float(q.mean()) for q in queries])
    q_stds = np.array([float(q.std()) for q in queries])
    q_denoms = np.array([length * max(s, FLAT_STD) for s in q_stds])
    means, stds = _mean_std_any(series, length, cache)
    dots = batch_sliding_dot(queries, series, cache=cache, backend=backend)

    t_clamped = np.maximum(stds, FLAT_STD)
    if series.ndim == 1:
        corr = (dots - length * q_means[:, None] * means[None, :]) / (
            q_denoms[:, None] * t_clamped[None, :]
        )
        t_flat = (stds < FLAT_STD)[None, :]
        q_flat = (q_stds < FLAT_STD)[:, None]
    else:
        corr = (dots - length * q_means[None, :, None] * means[:, None, :]) / (
            q_denoms[None, :, None] * t_clamped[:, None, :]
        )
        t_flat = (stds < FLAT_STD)[:, None, :]
        q_flat = (q_stds < FLAT_STD)[None, :, None]
    corr = np.clip(corr, -1.0, 1.0)
    sq = 2.0 * length * (1.0 - corr)
    sq = np.where(
        q_flat,
        np.where(t_flat, 0.0, float(length)),
        np.where(t_flat, float(length), sq),
    )
    return np.sqrt(np.maximum(sq, 0.0))


def _mean_std_any(series: np.ndarray, window: int, cache: SeriesCache | None):
    if cache is not None:
        return cache.sliding_mean_std(series, window)
    if series.ndim == 1:
        return sliding_mean_std(series, window)
    zeros = np.zeros(series.shape[:-1] + (1,), dtype=np.float64)
    csum = np.concatenate([zeros, np.cumsum(series, axis=-1)], axis=-1)
    csum2 = np.concatenate([zeros, np.cumsum(series * series, axis=-1)], axis=-1)
    sums = csum[..., window:] - csum[..., :-window]
    sums2 = csum2[..., window:] - csum2[..., :-window]
    means = sums / window
    variances = np.maximum(sums2 / window - means * means, 0.0)
    return means, np.sqrt(variances)


def batch_min_distance(
    queries,
    X,
    *,
    cache: SeriesCache | None = None,
    backend: BackendSpec | str | None = None,
):
    """Def.-4 distances between every query and every series of ``X``.

    The batched replacement for the historical per-query
    ``pairwise_subsequence_distance`` loop (and the engine behind the
    shapelet transform). Queries may have *mixed lengths*: they are
    grouped by length, each group runs as one batched FFT pass, and the
    series spectra/statistics are shared across groups via the cache.

    Parameters
    ----------
    queries:
        Sequence of 1-D arrays (e.g. shapelet values), or a ``(Q, L)``
        matrix.
    X:
        ``(M, N)`` series matrix.
    cache:
        Optional :class:`~repro.kernels.SeriesCache`.

    Returns
    -------
    ``(M, Q)`` matrix ``d[j, i] = dist(X[j], queries[i])`` — the paper's
    shapelet-transform layout (Def. 7), bit-identical to the scalar loop.
    """
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise ValidationError("X must be a 2-D (M, N) matrix")
    query_arrays = [np.asarray(q, dtype=np.float64) for q in queries]
    for i, q in enumerate(query_arrays):
        if q.ndim != 1:
            raise ValidationError("batch_min_distance queries must be 1-D")
        if q.size > X.shape[1]:
            raise LengthError(
                f"query {i} of length {q.size} exceeds series length {X.shape[1]}"
            )
    if cache is not None:
        cache.counters.batch_calls += 1
    out = np.empty((X.shape[0], len(query_arrays)), dtype=np.float64)
    by_length: dict[int, list[int]] = {}
    for i, q in enumerate(query_arrays):
        by_length.setdefault(q.size, []).append(i)
    for length, idxs in by_length.items():
        group = np.vstack([query_arrays[i] for i in idxs])
        profiles = batch_distance_profile(group, X, cache=cache, backend=backend)
        out[:, idxs] = profiles.min(axis=-1) / length
    return out


# ---------------------------------------------------------------------------
# Direct (streaming-equivalent) kernels
# ---------------------------------------------------------------------------


def direct_window_dots(series, query, start: int = 0, stop: int | None = None):
    """Per-window dot products of ``query`` with ``series``, direct method.

    Computes ``dot_j = series[j:j+L] . query`` for window starts in
    ``[start, stop)`` with one BLAS dot per window — no FFT. This is the
    kernel both the batch ``direct`` engine and the incremental
    :class:`~repro.streaming.StreamingMatcher` call, which is what makes
    the streaming transform *bit-identical* to the batch direct engine:
    each window's dot product is evaluated by the same routine on the
    same contiguous slice, regardless of how much of the series has
    arrived.
    """
    series = np.ascontiguousarray(series, dtype=np.float64)
    query = np.ascontiguousarray(query, dtype=np.float64)
    length = query.size
    n_out = num_windows(series.size, length)
    if stop is None:
        stop = n_out
    if not 0 <= start <= stop <= n_out:
        raise ValidationError(
            f"window range [{start}, {stop}) outside [0, {n_out})"
        )
    out = np.empty(stop - start, dtype=np.float64)
    for j in range(start, stop):
        out[j - start] = np.dot(series[j : j + length], query)
    return out


def direct_distance_profile(series, query, window_sq, q_ssq: float,
                            start: int = 0, stop: int | None = None):
    """Squared-distance profile over a window range, direct method.

    ``window_sq`` must hold the window sums of squares for exactly the
    requested range (from :class:`~repro.kernels.RollingStats` or a
    :class:`~repro.kernels.SeriesCache` slice); ``q_ssq`` is
    ``float(np.dot(query, query))``. Same elementwise formula as
    :func:`distance_profile`, with the sliding dots computed directly.
    """
    dots = direct_window_dots(series, query, start, stop)
    profile = window_sq - 2.0 * dots + q_ssq
    return np.maximum(profile, 0.0)


def direct_min_distance(queries, X, *, cache: SeriesCache | None = None):
    """Def.-4 distances computed by the direct method (no FFT).

    Same ``(M, Q)`` layout and formulas as :func:`batch_min_distance`,
    but every sliding dot product is an explicit per-window BLAS dot
    instead of an FFT convolution. Slower at batch scale — its purpose is
    the *streaming equivalence anchor*: a chunk-fed
    :class:`~repro.streaming.StreamingTransform` is bit-identical to this
    path on the full series, because both call
    :func:`direct_window_dots` / :func:`direct_distance_profile` on the
    same windows. Against the FFT engine it agrees to FFT round-off
    (~1e-9 relative), which the streaming test suite also pins.
    """
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise ValidationError("X must be a 2-D (M, N) matrix")
    query_arrays = [np.ascontiguousarray(q, dtype=np.float64) for q in queries]
    for i, q in enumerate(query_arrays):
        if q.ndim != 1:
            raise ValidationError("direct_min_distance queries must be 1-D")
        if q.size > X.shape[1]:
            raise LengthError(
                f"query {i} of length {q.size} exceeds series length {X.shape[1]}"
            )
    if cache is not None:
        cache.counters.batch_calls += 1
    q_ssqs = [float(np.dot(q, q)) for q in query_arrays]
    out = np.empty((X.shape[0], len(query_arrays)), dtype=np.float64)
    ssq_by_length = {
        length: _window_ssq_any(X, length, cache)
        for length in {q.size for q in query_arrays}
    }
    for j in range(X.shape[0]):
        row = X[j]
        for i, q in enumerate(query_arrays):
            ssq = ssq_by_length[q.size][j]
            profile = direct_distance_profile(row, q, ssq, q_ssqs[i])
            out[j, i] = profile.min() / q.size
    return out
