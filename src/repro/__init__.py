"""repro: a full reproduction of *IPS: Instance Profile for Shapelet
Discovery for Time Series Classification* (Li et al., ICDE 2022).

Quickstart
----------
>>> from repro import IPSClassifier, IPSConfig, load_dataset
>>> data = load_dataset("ItalyPowerDemand", max_train=30, max_test=50)
>>> clf = IPSClassifier(IPSConfig(k=5, q_n=10, seed=0)).fit_dataset(data.train)
>>> accuracy = clf.score(data.test.X, data.test.classes_[data.test.y])

Package map
-----------
* :mod:`repro.core` — the paper's contribution: IPS pipeline (instance
  profile, DABF pruning, utility scoring with DT & CR, top-k selection,
  shapelet transform + linear SVM);
* :mod:`repro.matrixprofile` / :mod:`repro.instanceprofile` — profile
  substrates (MASS, STOMP, bagged instance profiles);
* :mod:`repro.lsh` / :mod:`repro.filters` — LSH families, Bloom filters,
  the distribution-aware bloom filter;
* :mod:`repro.baselines` — BASE, BSPCOVER, FS, LTS, ST, SD + published
  Table VI constants;
* :mod:`repro.classify` — 1NN-ED/DTW, linear SVM, CART, rotation forest;
* :mod:`repro.datasets` — synthetic UCR-archive substitute (46 datasets);
* :mod:`repro.stats` — Friedman / Wilcoxon-Holm / critical-difference;
* :mod:`repro.streaming` — chunked early classification (streaming
  matcher / transform, margin-gated :class:`~repro.streaming.EarlyClassifier`);
* :mod:`repro.serve` — fault-hardened online inference, batch and
  streaming sessions;
* :mod:`repro.campaign` — crash-safe resumable evaluation campaigns.

Every estimator exported here conforms to the
:class:`~repro.types.Predictor` protocol: ``classes_`` plus
``predict`` / ``predict_proba`` / ``decision_function`` with fixed
shapes and dtypes (see ``docs/api.md``).
"""

from repro._version import __version__
from repro.core.budget import Budget
from repro.core.config import IPSConfig
from repro.core.pipeline import IPS, IPSClassifier
from repro.datasets.loader import load_dataset
from repro.datasets.replay import iter_chunks, replay_dataset
from repro.exceptions import ConfigError, ReproError
from repro.streaming import (
    EarlyClassifier,
    StreamingDecision,
    StreamingMatcher,
    StreamingTransform,
)
from repro.ts.series import Dataset
from repro.types import (
    Candidate,
    CandidateKind,
    DiscoveryResult,
    Predictor,
    Shapelet,
    decision_margin,
)
from repro.validation import ValidationReport, validate_dataset, validate_series

__all__ = [
    "IPS",
    "Budget",
    "Candidate",
    "CandidateKind",
    "ConfigError",
    "Dataset",
    "DiscoveryResult",
    "EarlyClassifier",
    "IPSClassifier",
    "IPSConfig",
    "Predictor",
    "ReproError",
    "Shapelet",
    "StreamingDecision",
    "StreamingMatcher",
    "StreamingTransform",
    "ValidationReport",
    "__version__",
    "decision_margin",
    "iter_chunks",
    "load_dataset",
    "replay_dataset",
    "validate_dataset",
    "validate_series",
]
