"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    Show the registered datasets with their (true UCR) metadata.
``run``
    Evaluate one method on one dataset and print accuracy/timing.
``compare``
    Evaluate several methods on one dataset (a mini Table VI row).
``shapelets``
    Discover and print the IPS shapelets of a dataset.
``obs report``
    Render the per-phase time breakdown of a saved JSONL trace
    (written by ``--obs trace+jsonl`` or ``observability="trace+jsonl"``).
``obs top``
    Terminal dashboard over a live :class:`~repro.obs.TelemetryServer`
    (``--url``) or a saved trace file (``--path``).
``obs bench-diff``
    Per-metric deltas of the latest benchmark runs against their
    baselines from ``BENCH_history.jsonl``; exits non-zero on a
    regression beyond ``--threshold``.
``serve save`` / ``serve run`` / ``serve bench``
    Export a fitted classifier as a checksummed model artifact, serve
    predictions from one through the fault-hardened
    :mod:`repro.serve` service, and drive the serving load-generator
    gate (``BENCH_serve.json``).
``stream``
    Replay a dataset's test split as chunked streams through the
    streaming service (:mod:`repro.streaming`) and report the early-
    emission fraction, mean emission time, and streaming-vs-batch
    accuracy.
``campaign run`` / ``campaign resume`` / ``campaign status`` /
``campaign report``
    Run the dataset x method x scenario matrix as a crash-safe,
    resumable campaign (:mod:`repro.campaign`): journal + checksummed
    cell files, per-cell retries/timeouts, graceful SIGINT/SIGTERM,
    and a deterministic results frame + critical-difference report.
"""

from __future__ import annotations

import argparse
import sys

from repro.benchlib.runners import evaluate_method, method_names
from repro.benchlib.tables import format_table
from repro.core.config import IPSConfig
from repro.core.pipeline import IPS
from repro.datasets.loader import load_dataset
from repro.datasets.registry import REGISTRY


def _add_common_dataset_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("dataset", help="registry name, e.g. ArrowHead")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--max-train", type=int, default=24)
    parser.add_argument("--max-test", type=int, default=60)
    parser.add_argument("--max-length", type=int, default=150)
    parser.add_argument("--k", type=int, default=5, help="shapelets per class")


def _load(args: argparse.Namespace):
    return load_dataset(
        args.dataset,
        seed=args.seed,
        max_train=args.max_train,
        max_test=args.max_test,
        max_length=args.max_length,
    )


def cmd_list(_args: argparse.Namespace) -> int:
    """``repro list``"""
    rows = [
        [p.name, p.n_classes, p.n_train, p.n_test, p.length, p.category, p.generator]
        for p in sorted(REGISTRY.values(), key=lambda p: p.name)
    ]
    print(
        format_table(
            ["dataset", "classes", "train", "test", "length", "type", "generator"],
            rows,
            title=f"{len(rows)} registered datasets (true UCR metadata)",
        )
    )
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    """``repro run <dataset> --method IPS``"""
    data = _load(args)
    overrides: dict = {}
    if args.budget_seconds is not None or args.max_candidates is not None:
        from repro.core.budget import Budget

        overrides["budget"] = Budget(
            max_seconds=args.budget_seconds, max_candidates=args.max_candidates
        )
    if args.obs is not None:
        if args.method not in ("IPS", "IPS-DIST"):
            print(
                f"--obs applies to IPS/IPS-DIST only, not {args.method}",
                file=sys.stderr,
            )
            return 2
        overrides["observability"] = args.obs
    result = evaluate_method(
        args.method,
        data,
        k=args.k,
        seed=args.seed,
        validation=args.validation,
        **overrides,
    )
    suffix = "" if result.completed else " (budget truncated; best-so-far)"
    print(
        f"{result.method} on {result.dataset}: "
        f"accuracy {100 * result.accuracy:.2f}%, "
        f"discovery {result.discovery_seconds:.2f}s, "
        f"fit total {result.total_seconds:.2f}s{suffix}"
    )
    if args.obs == "trace+jsonl":
        from repro.obs import DEFAULT_JSONL_PATH

        print(
            f"trace written to {DEFAULT_JSONL_PATH} "
            "(render with `repro obs report`)"
        )
    return 0


def cmd_obs_report(args: argparse.Namespace) -> int:
    """``repro obs report [path]``"""
    from repro.obs import DEFAULT_JSONL_PATH, load_trace, render_report

    path = args.path if args.path is not None else DEFAULT_JSONL_PATH
    try:
        trace = load_trace(path)
    except FileNotFoundError as err:
        print(str(err), file=sys.stderr)
        return 1
    print(render_report(trace))
    return 0


def _render_top_frame(snapshot: dict, health: dict | None) -> str:
    """One ``repro obs top`` dashboard frame from a registry snapshot."""
    lines: list[str] = []
    if health is not None:
        status = health.get("status", "unknown")
        lines.append(f"health: {status}")
        for reason in health.get("reasons", []):
            lines.append(
                f"  [{reason.get('severity')}] {reason.get('code')}: "
                f"{reason.get('detail')}"
            )
    windows = snapshot.get("windows", {})
    if windows:
        rows = [
            [
                name,
                win.get("count", 0),
                _fmt_quantile(win.get("p50")),
                _fmt_quantile(win.get("p90")),
                _fmt_quantile(win.get("p99")),
            ]
            for name, win in sorted(windows.items())
        ]
        lines.append(
            format_table(
                ["window", "count", "p50", "p90", "p99"],
                rows,
                title="latency windows",
            )
        )
    counters = snapshot.get("counters", {})
    if counters:
        rows = [[name, value] for name, value in sorted(counters.items())]
        lines.append(format_table(["counter", "value"], rows, title="counters"))
    gauges = snapshot.get("gauges", {})
    if gauges:
        rows = [[name, value] for name, value in sorted(gauges.items())]
        lines.append(
            format_table(["gauge", "value"], rows, precision=4, title="gauges")
        )
    if not lines:
        lines.append("no metrics recorded yet")
    return "\n".join(lines)


def _fmt_quantile(value) -> str:
    return "-" if value is None else f"{value:.6g}"


def cmd_obs_top(args: argparse.Namespace) -> int:
    """``repro obs top --url URL | --path JSONL``"""
    import json as _json
    import time as _time
    import urllib.error
    import urllib.request

    if (args.url is None) == (args.path is None):
        print(
            "obs top needs exactly one of --url (live server) or "
            "--path (trace JSONL)",
            file=sys.stderr,
        )
        return 1

    def frame() -> tuple[dict, dict | None]:
        if args.url is not None:
            base = args.url.rstrip("/")
            with urllib.request.urlopen(f"{base}/metrics.json", timeout=5) as r:
                snapshot = _json.loads(r.read().decode("utf-8"))
            try:
                with urllib.request.urlopen(f"{base}/healthz", timeout=5) as r:
                    health = _json.loads(r.read().decode("utf-8"))
            except urllib.error.HTTPError as err:
                # /healthz answers 503 when unhealthy — still a report.
                health = _json.loads(err.read().decode("utf-8"))
            return snapshot, health
        from repro.obs import load_trace

        trace = load_trace(args.path)
        return trace.metrics.snapshot(), None

    iteration = 0
    while True:
        try:
            snapshot, health = frame()
        except (OSError, ValueError) as err:
            print(f"obs top: {err}", file=sys.stderr)
            return 1
        print(_render_top_frame(snapshot, health))
        iteration += 1
        if not args.watch and iteration >= args.iterations:
            return 0
        _time.sleep(args.interval)


def cmd_obs_bench_diff(args: argparse.Namespace) -> int:
    """``repro obs bench-diff [--history PATH] [--threshold R]``"""
    from repro.benchlib.history import (
        diff_history,
        load_history,
        render_bench_diff,
    )
    from repro.benchlib.perfbench import machine_key
    from repro.exceptions import ValidationError

    machine = args.machine or machine_key()
    entries = load_history(args.history)
    try:
        rows = diff_history(
            entries,
            machine=machine,
            threshold=args.threshold,
            kinds=tuple(args.kinds.split(",")) if args.kinds else None,
            bench_dir=args.bench_dir,
        )
    except ValidationError as err:
        print(f"bench-diff: {err}", file=sys.stderr)
        return 2
    print(render_bench_diff(rows, args.threshold))
    return 1 if any(row["regression"] for row in rows) else 0


def cmd_compare(args: argparse.Namespace) -> int:
    """``repro compare <dataset> --methods IPS,BASE``"""
    data = _load(args)
    wanted = (
        [m.strip() for m in args.methods.split(",")]
        if args.methods
        else method_names()
    )
    rows = []
    for method in wanted:
        result = evaluate_method(method, data, k=args.k, seed=args.seed)
        rows.append([method, 100 * result.accuracy, result.total_seconds])
    rows.sort(key=lambda row: -row[1])
    print(
        format_table(
            ["method", "accuracy %", "fit (s)"],
            rows,
            title=f"Comparison on {args.dataset}",
        )
    )
    return 0


def cmd_shapelets(args: argparse.Namespace) -> int:
    """``repro shapelets <dataset>``"""
    data = _load(args)
    config = IPSConfig(k=args.k, q_n=10, q_s=3, seed=args.seed)
    result = IPS(config).discover(data.train)
    print(
        f"{args.dataset}: {result.n_candidates_generated} candidates -> "
        f"{result.n_candidates_after_pruning} after pruning; "
        f"{len(result.shapelets)} shapelets in {result.total_time:.2f}s"
    )
    rows = [
        [s.label, s.length, s.source_instance, s.start, s.score]
        for s in result.shapelets
    ]
    print(
        format_table(
            ["class", "length", "instance", "offset", "utility"],
            rows,
            precision=4,
        )
    )
    return 0


def cmd_serve_save(args: argparse.Namespace) -> int:
    """``repro serve save <dataset> --out DIR``"""
    from repro.core.pipeline import IPSClassifier
    from repro.serve import save_artifact

    data = _load(args)
    config = IPSConfig(
        k=args.k, q_n=10, q_s=3, seed=args.seed, validation_mode=args.validation
    )
    classifier = IPSClassifier(config).fit_dataset(data.train)
    accuracy = classifier.score(data.test.X, data.test.classes_[data.test.y])
    path = save_artifact(classifier, args.out)
    print(
        f"saved {args.dataset} artifact to {path} "
        f"({len(classifier.shapelets_)} shapelets, "
        f"holdout accuracy {100 * accuracy:.2f}%)"
    )
    return 0


def _make_telemetry(port: int | None):
    """(registry, slo) for the serve/stream commands, or (None, None)."""
    if port is None:
        return None, None
    from repro.obs import MetricsRegistry, SLOTracker

    return MetricsRegistry(), SLOTracker()


def cmd_serve_run(args: argparse.Namespace) -> int:
    """``repro serve run --artifact DIR``"""
    from repro.exceptions import ServeError
    from repro.serve import InferenceService, ServeConfig, load_artifact

    try:
        classifier = load_artifact(args.artifact)
    except ServeError as err:
        print(f"refusing artifact: {err}", file=sys.stderr)
        return 1
    config = ServeConfig(
        queue_depth=args.queue_depth,
        validation=args.validation,
        default_deadline_s=(
            None if args.deadline_ms is None else args.deadline_ms / 1e3
        ),
    )
    # Self-test traffic: perturbed copies of the frozen training series.
    import numpy as np

    rng = np.random.default_rng(args.seed)
    dataset = classifier._dataset
    rows = rng.integers(0, dataset.n_series, size=args.requests)
    X = dataset.X[rows] + 0.05 * rng.normal(
        size=(args.requests, dataset.series_length)
    )
    registry, slo = _make_telemetry(args.telemetry_port)
    server = None
    with InferenceService(
        classifier, config, metrics=registry, slo=slo
    ) as service:
        if registry is not None:
            from repro.obs import TelemetryServer

            server = TelemetryServer(
                registry, health_fn=service.health, port=args.telemetry_port
            ).start()
            print(
                f"telemetry on {server.url} (/metrics, /metrics.json, /healthz)"
            )
        try:
            results = service.predict_many(X)
        finally:
            if server is not None:
                server.close()
    n_ok = sum(1 for _value, error in results if error is None)
    stats = service.stats()
    print(
        f"served {n_ok}/{len(results)} requests ok "
        f"(shed {stats['shed']}, expired {stats['expired']}, "
        f"failed {stats['failed']}); breaker {stats['breaker']['state']}"
    )
    for _value, error in results:
        if error is not None:
            print(f"  first error: {type(error).__name__}: {error}")
            break
    return 0 if n_ok == len(results) else 1


def cmd_serve_bench(args: argparse.Namespace) -> int:
    """``repro serve bench``"""
    from repro.benchlib.loadgen import main as loadgen_main

    argv = ["--requests", str(args.requests), "--validation", args.validation]
    if args.deadline_ms is not None:
        argv += ["--deadline-ms", str(args.deadline_ms)]
    if args.queue_depth is not None:
        argv += ["--queue-depth", str(args.queue_depth)]
    return loadgen_main(argv)


def cmd_stream(args: argparse.Namespace) -> int:
    """``repro stream <dataset>``"""
    import numpy as np

    from repro.core.pipeline import IPSClassifier
    from repro.serve import StreamConfig, StreamingInferenceService

    data = _load(args)
    config = IPSConfig(
        k=args.k,
        q_n=10,
        q_s=3,
        seed=args.seed,
        streaming_margin_threshold=args.margin_threshold,
        streaming_min_fraction=args.min_fraction,
        streaming_chunk_size=args.chunk_size,
    )
    classifier = IPSClassifier(config).fit_dataset(data.train)
    stream_config = StreamConfig(
        margin_threshold=config.streaming_margin_threshold,
        min_fraction=config.streaming_min_fraction,
    )
    X = data.test.X
    y_true = data.test.classes_[data.test.y]
    batch_labels = classifier.predict(X)
    registry, slo = _make_telemetry(args.telemetry_port)
    server = None
    with StreamingInferenceService(
        classifier, stream_config=stream_config, metrics=registry, slo=slo
    ) as service:
        if registry is not None:
            from repro.obs import TelemetryServer

            server = TelemetryServer(
                registry, health_fn=service.health, port=args.telemetry_port
            ).start()
            print(
                f"telemetry on {server.url} (/metrics, /metrics.json, /healthz)"
            )
        try:
            decisions = [
                service.stream_series(
                    row, chunk_size=config.streaming_chunk_size
                )
                for row in X
            ]
        finally:
            if server is not None:
                server.close()
    length = X.shape[1]
    labels = np.array([d.label for d in decisions])
    early = [d for d in decisions if d.early]
    agreement = float(np.mean(labels == batch_labels))
    accuracy = float(np.mean(labels == y_true))
    batch_accuracy = float(np.mean(batch_labels == y_true))
    print(
        f"streamed {len(decisions)} test series of {args.dataset} "
        f"(chunk size {config.streaming_chunk_size}, margin threshold "
        f"{stream_config.margin_threshold}, min fraction "
        f"{stream_config.min_fraction})"
    )
    print(
        f"  early emissions: {len(early)}/{len(decisions)} "
        f"({100 * len(early) / max(1, len(decisions)):.0f}%)"
    )
    if early:
        mean_t = float(np.mean([d.t_emitted for d in early]))
        print(
            f"  mean early-emission time: {mean_t:.1f}/{length} samples "
            f"({100 * mean_t / length:.0f}% of the series)"
        )
    print(f"  agreement with batch labels: {100 * agreement:.2f}%")
    print(
        f"  accuracy streaming {100 * accuracy:.2f}% "
        f"vs batch {100 * batch_accuracy:.2f}%"
    )
    return 0


def _print_campaign_status(status: dict) -> None:
    print(
        f"campaign {status['campaign']} in {status['dir']}: "
        f"{status['n_ok']} ok, {status['n_failed']} failed, "
        f"{status['n_pending']} pending of {status['n_cells']} cells"
        + (" [interrupted]" if status["interrupted"] else "")
    )
    for cell_id, error_type in status["failed_cells"]:
        print(f"  failed: {cell_id} ({error_type})")


def _campaign_fault_plan(args: argparse.Namespace):
    """Optional chaos plan from --fault-rate (crash/hang/slow split)."""
    if not args.fault_rate:
        return None
    from repro.distributed.faults import FaultPlan

    rate = args.fault_rate
    return FaultPlan(
        crash_rate=0.5 * rate,
        hang_rate=0.25 * rate,
        slow_rate=0.25 * rate,
        slow_seconds=0.05,
        seed=args.fault_seed,
    )


def cmd_campaign_run(args: argparse.Namespace) -> int:
    """``repro campaign run --out DIR --datasets A,B --methods X,Y``"""
    from repro.campaign import CampaignRunner, CampaignSpec
    from repro.exceptions import CampaignError

    spec = CampaignSpec(
        datasets=tuple(d.strip() for d in args.datasets.split(",") if d.strip()),
        methods=tuple(m.strip() for m in args.methods.split(",") if m.strip()),
        scenarios=tuple(
            s.strip() for s in args.scenarios.split(",") if s.strip()
        ),
        seed=args.seed,
        k=args.k,
        max_train=args.max_train,
        max_test=args.max_test,
        max_length=args.max_length,
        validation=args.validation,
        name=args.name,
    )
    try:
        runner = CampaignRunner(
            spec,
            args.out,
            fault_plan=_campaign_fault_plan(args),
            retries=args.retries,
            max_cell_seconds=args.max_cell_seconds,
        )
        status = runner.run(max_cells=args.max_cells)
    except CampaignError as err:
        print(str(err), file=sys.stderr)
        return 1
    _print_campaign_status(status)
    return 0


def cmd_campaign_resume(args: argparse.Namespace) -> int:
    """``repro campaign resume --dir DIR``"""
    from repro.campaign import CampaignRunner
    from repro.exceptions import CampaignError

    try:
        runner = CampaignRunner.from_dir(args.dir)
        status = runner.run(max_cells=args.max_cells)
    except CampaignError as err:
        print(str(err), file=sys.stderr)
        return 1
    _print_campaign_status(status)
    return 0


def cmd_campaign_status(args: argparse.Namespace) -> int:
    """``repro campaign status --dir DIR``"""
    from repro.campaign import CampaignRunner
    from repro.exceptions import CampaignError

    try:
        status = CampaignRunner.from_dir(args.dir).status()
    except CampaignError as err:
        print(str(err), file=sys.stderr)
        return 1
    _print_campaign_status(status)
    retried = {
        cell_id: n for cell_id, n in status["cell_starts"].items() if n > 1
    }
    if retried:
        print(f"  cells started more than once (interrupted runs): {len(retried)}")
    return 0


def cmd_campaign_report(args: argparse.Namespace) -> int:
    """``repro campaign report --dir DIR``"""
    from repro.campaign import write_report
    from repro.exceptions import CampaignError

    try:
        report_dir = write_report(args.dir, cd_method=args.cd_method)
    except CampaignError as err:
        print(str(err), file=sys.stderr)
        return 1
    print((report_dir / "report.txt").read_text())
    print(f"report bundle written to {report_dir}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="IPS shapelet discovery (ICDE 2022) reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered datasets").set_defaults(
        func=cmd_list
    )

    run = sub.add_parser("run", help="evaluate one method on one dataset")
    _add_common_dataset_args(run)
    run.add_argument("--method", default="IPS", choices=method_names())
    run.add_argument(
        "--budget-seconds",
        type=float,
        default=None,
        help="anytime wall-clock budget for discovery (budget-aware "
        "methods: IPS, IPS-DIST, BASE, FS)",
    )
    run.add_argument(
        "--max-candidates",
        type=int,
        default=None,
        help="anytime candidate-count budget for discovery",
    )
    run.add_argument(
        "--validation",
        default="repair",
        choices=["strict", "repair", "off"],
        help="data-contract mode applied to the training split",
    )
    run.add_argument(
        "--obs",
        default=None,
        choices=["off", "counters", "trace", "trace+jsonl"],
        help="observability mode for the run (IPS / IPS-DIST only); "
        "trace+jsonl writes .repro-obs/last-run.jsonl for `repro obs report`",
    )
    run.set_defaults(func=cmd_run)

    compare = sub.add_parser("compare", help="evaluate several methods")
    _add_common_dataset_args(compare)
    compare.add_argument(
        "--methods", default="", help="comma-separated subset (default: all)"
    )
    compare.set_defaults(func=cmd_compare)

    shapelets = sub.add_parser("shapelets", help="discover and print shapelets")
    _add_common_dataset_args(shapelets)
    shapelets.set_defaults(func=cmd_shapelets)

    serve = sub.add_parser(
        "serve", help="model artifacts and the online inference service"
    )
    serve_sub = serve.add_subparsers(dest="serve_command", required=True)

    serve_save = serve_sub.add_parser(
        "save", help="fit a classifier and export a checksummed artifact"
    )
    _add_common_dataset_args(serve_save)
    serve_save.add_argument(
        "--out", required=True, help="artifact directory to write"
    )
    serve_save.add_argument(
        "--validation",
        default="repair",
        choices=["strict", "repair", "off"],
        help="data-contract mode applied to the training split",
    )
    serve_save.set_defaults(func=cmd_serve_save)

    serve_run = serve_sub.add_parser(
        "run", help="start the service on a saved artifact (self-test load)"
    )
    serve_run.add_argument(
        "--artifact", required=True, help="artifact directory to serve"
    )
    serve_run.add_argument("--requests", type=int, default=50)
    serve_run.add_argument("--seed", type=int, default=0)
    serve_run.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="per-request deadline (default: none)",
    )
    serve_run.add_argument(
        "--queue-depth", type=int, default=64, help="admission-queue bound"
    )
    serve_run.add_argument(
        "--validation",
        default="repair",
        choices=["strict", "repair", "off"],
        help="per-request data-contract mode",
    )
    serve_run.add_argument(
        "--telemetry-port",
        type=int,
        default=None,
        help="expose /metrics + /healthz on this port (0 = OS-assigned)",
    )
    serve_run.set_defaults(func=cmd_serve_run)

    serve_bench = serve_sub.add_parser(
        "bench", help="serving load generator + BENCH_serve.json gate"
    )
    serve_bench.add_argument("--requests", type=int, default=200)
    serve_bench.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="per-request deadline for the steady scenario",
    )
    serve_bench.add_argument(
        "--queue-depth",
        type=int,
        default=None,
        help="steady-scenario queue bound (default: request count)",
    )
    serve_bench.add_argument(
        "--validation", default="repair", choices=["strict", "repair", "off"]
    )
    serve_bench.set_defaults(func=cmd_serve_bench)

    stream = sub.add_parser(
        "stream",
        help="replay test series as chunked streams (early classification)",
    )
    _add_common_dataset_args(stream)
    stream.add_argument(
        "--margin-threshold",
        type=float,
        default=IPSConfig.__dataclass_fields__["streaming_margin_threshold"].default,
        help="decision margin required for early emission",
    )
    stream.add_argument(
        "--min-fraction",
        type=float,
        default=IPSConfig.__dataclass_fields__["streaming_min_fraction"].default,
        help="fraction of the series that must arrive before early emission",
    )
    stream.add_argument(
        "--chunk-size",
        type=int,
        default=IPSConfig.__dataclass_fields__["streaming_chunk_size"].default,
        help="replay chunk size in samples",
    )
    stream.add_argument(
        "--telemetry-port",
        type=int,
        default=None,
        help="expose /metrics + /healthz on this port (0 = OS-assigned)",
    )
    stream.set_defaults(func=cmd_stream)

    campaign = sub.add_parser(
        "campaign", help="crash-safe, resumable evaluation campaigns"
    )
    campaign_sub = campaign.add_subparsers(dest="campaign_command", required=True)

    def _add_campaign_resume_args(parser: argparse.ArgumentParser) -> None:
        parser.add_argument(
            "--max-cells",
            type=int,
            default=None,
            help="run at most this many new cells, then stop at the boundary",
        )

    campaign_run = campaign_sub.add_parser(
        "run", help="start (or continue) a campaign in --out"
    )
    campaign_run.add_argument(
        "--out", required=True, help="campaign directory (journal + cells)"
    )
    campaign_run.add_argument(
        "--datasets", required=True, help="comma-separated registry names"
    )
    campaign_run.add_argument(
        "--methods", required=True, help="comma-separated method names"
    )
    campaign_run.add_argument(
        "--scenarios",
        default="clean",
        help="comma-separated scenario names (default: clean)",
    )
    campaign_run.add_argument("--name", default="campaign")
    campaign_run.add_argument("--seed", type=int, default=0)
    campaign_run.add_argument("--k", type=int, default=5)
    campaign_run.add_argument("--max-train", type=int, default=24)
    campaign_run.add_argument("--max-test", type=int, default=60)
    campaign_run.add_argument("--max-length", type=int, default=150)
    campaign_run.add_argument(
        "--validation", default="repair", choices=["strict", "repair", "off"]
    )
    campaign_run.add_argument(
        "--retries",
        type=int,
        default=2,
        help="extra attempts per cell before it is marked failed",
    )
    campaign_run.add_argument(
        "--max-cell-seconds",
        type=float,
        default=None,
        help="per-cell wall-clock budget (overrun = retryable timeout)",
    )
    campaign_run.add_argument(
        "--fault-rate",
        type=float,
        default=0.0,
        help="chaos-engine fault rate per attempt (split crash/hang/slow)",
    )
    campaign_run.add_argument(
        "--fault-seed", type=int, default=0, help="chaos-engine seed"
    )
    _add_campaign_resume_args(campaign_run)
    campaign_run.set_defaults(func=cmd_campaign_run)

    campaign_resume = campaign_sub.add_parser(
        "resume", help="resume a campaign from its directory alone"
    )
    campaign_resume.add_argument("--dir", required=True)
    _add_campaign_resume_args(campaign_resume)
    campaign_resume.set_defaults(func=cmd_campaign_resume)

    campaign_status = campaign_sub.add_parser(
        "status", help="journal-derived progress snapshot"
    )
    campaign_status.add_argument("--dir", required=True)
    campaign_status.set_defaults(func=cmd_campaign_status)

    campaign_report = campaign_sub.add_parser(
        "report", help="results frame + critical-difference report bundle"
    )
    campaign_report.add_argument("--dir", required=True)
    campaign_report.add_argument(
        "--cd-method",
        default="wilcoxon-holm",
        choices=["nemenyi", "wilcoxon-holm"],
        help="pairwise test behind the critical-difference groups",
    )
    campaign_report.set_defaults(func=cmd_campaign_report)

    obs = sub.add_parser("obs", help="observability tools")
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    report = obs_sub.add_parser(
        "report", help="render a saved JSONL trace as a time breakdown"
    )
    report.add_argument(
        "path",
        nargs="?",
        default=None,
        help="trace file (default: .repro-obs/last-run.jsonl)",
    )
    report.set_defaults(func=cmd_obs_report)

    top = obs_sub.add_parser(
        "top", help="terminal dashboard: live /metrics.json or a trace file"
    )
    top.add_argument(
        "--url", default=None, help="base URL of a live TelemetryServer"
    )
    top.add_argument(
        "--path", default=None, help="saved obs JSONL trace to render instead"
    )
    top.add_argument(
        "--watch",
        action="store_true",
        help="refresh forever (default: print --iterations frames and exit)",
    )
    top.add_argument(
        "--iterations",
        type=int,
        default=1,
        help="frames to print without --watch (default: 1)",
    )
    top.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="seconds between frames",
    )
    top.set_defaults(func=cmd_obs_top)

    bench_diff = obs_sub.add_parser(
        "bench-diff",
        help="benchmark trajectory deltas from BENCH_history.jsonl "
        "(exits non-zero on regression)",
    )
    bench_diff.add_argument(
        "--history",
        default="BENCH_history.jsonl",
        help="trajectory ledger (default: ./BENCH_history.jsonl)",
    )
    bench_diff.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="relative bad-direction move that counts as a regression",
    )
    bench_diff.add_argument(
        "--kinds",
        default=None,
        help="comma-separated subset of kernels,serve,streaming",
    )
    bench_diff.add_argument(
        "--machine",
        default=None,
        help="machine key to compare (default: this machine)",
    )
    bench_diff.add_argument(
        "--bench-dir",
        default=".",
        help="directory holding the BENCH_*.json fallback baselines",
    )
    bench_diff.set_defaults(func=cmd_obs_bench_diff)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
