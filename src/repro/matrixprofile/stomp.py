"""STOMP: the O(N^2) incremental matrix-profile computation.

Row ``i`` of the all-pairs dot-product matrix follows from row ``i-1`` in
O(N) via

    QT[i, j] = QT[i-1, j-1] - t[i-1] u[j-1] + t[i+L-1] u[j+L-1]

(Zhu et al., "Matrix Profile II", ICDM 2016). Both the self-join (one series
against itself, with a trivial-match exclusion zone) and the AB-join (every
window of A against all of B) are implemented; a validity mask lets callers
exclude windows that cross instance junctions in concatenated series.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.kernels import SeriesCache, sliding_dot_product, sliding_mean_std
from repro.matrixprofile.profile import MatrixProfile
from repro.ts.preprocessing import FLAT_STD
from repro.ts.windows import num_windows


def default_exclusion(window: int) -> int:
    """Default trivial-match exclusion half-width: ``ceil(L / 4)``.

    The paper's footnote 1 requires excluding neighbours located near the
    query window; L/4 is the standard choice in the MP literature.
    """
    return max(1, int(np.ceil(window / 4)))


def _window_stats(
    series: np.ndarray, window: int, normalized: bool, cache: SeriesCache | None
):
    """Per-window means/stds (normalized) or sums of squares (raw)."""
    if normalized:
        means, stds = sliding_mean_std(series, window, cache=cache)
        return means, stds, None
    if cache is not None:
        return None, None, cache.window_ssq(series, window)
    csum2 = np.concatenate([[0.0], np.cumsum(series * series)])
    ssq = csum2[window:] - csum2[:-window]
    return None, None, ssq


def _row_distances(
    qt_row: np.ndarray,
    i: int,
    window: int,
    normalized: bool,
    means: np.ndarray | None,
    stds: np.ndarray | None,
    ssq_a: np.ndarray | None,
    ssq_b: np.ndarray | None,
    means_a: np.ndarray | None = None,
    stds_a: np.ndarray | None = None,
) -> np.ndarray:
    """Squared distances of window ``i`` (of A) against all windows (of B)."""
    if normalized:
        m_a = means_a[i] if means_a is not None else means[i]
        s_a = stds_a[i] if stds_a is not None else stds[i]
        a_flat = s_a < FLAT_STD
        b_flat = stds < FLAT_STD
        # Denominators are clamped to FLAT_STD and inputs are finite, so
        # no divide/invalid can occur; flat windows are patched below.
        corr = (qt_row - window * m_a * means) / (
            window * max(s_a, FLAT_STD) * np.maximum(stds, FLAT_STD)
        )
        corr = np.clip(corr, -1.0, 1.0)
        sq = 2.0 * window * (1.0 - corr)
        if a_flat:
            sq = np.where(b_flat, 0.0, float(window))
        else:
            sq = np.where(b_flat, float(window), sq)
        return np.maximum(sq, 0.0)
    ssq_i = ssq_a[i] if ssq_a is not None else ssq_b[i]
    return np.maximum(ssq_b - 2.0 * qt_row + ssq_i, 0.0)


def stomp_self_join(
    series: np.ndarray,
    window: int,
    exclusion: int | None = None,
    valid_mask: np.ndarray | None = None,
    normalized: bool = True,
    groups: np.ndarray | None = None,
    cache: SeriesCache | None = None,
) -> MatrixProfile:
    """Matrix profile of ``series`` against itself (the paper's Def. 5).

    Parameters
    ----------
    series:
        1-D array of length N.
    window:
        Subsequence length L.
    exclusion:
        Trivial-match exclusion half-width; defaults to
        :func:`default_exclusion`.
    valid_mask:
        Optional boolean array over the ``N - L + 1`` window starts. Invalid
        windows receive an infinite profile value and are never chosen as
        anyone's nearest neighbour (used for junction windows in
        concatenated series).
    normalized:
        z-normalized Euclidean distances (default) or raw Euclidean.
    groups:
        Optional integer group id per window start. When given, a window's
        nearest neighbour is restricted to windows of a *different* group.
        This implements the paper's Def. 9 constraint ``m' != m`` (the
        instance profile matches only across instances) with the group id
        being the instance index inside a concatenated sample.
    cache:
        Optional :class:`repro.kernels.SeriesCache`. Cumulative sums and
        FFT spectra of ``series`` are then computed once and shared — in
        particular across the candidate-length loop of the instance
        profile, which calls this repeatedly on the same sample.
    """
    series = np.asarray(series, dtype=np.float64)
    if series.ndim != 1:
        raise ValidationError("stomp_self_join expects a 1-D series")
    n_out = num_windows(series.size, window)
    if exclusion is None:
        exclusion = default_exclusion(window)
    if valid_mask is None:
        valid_mask = np.ones(n_out, dtype=bool)
    else:
        valid_mask = np.asarray(valid_mask, dtype=bool)
        if valid_mask.shape != (n_out,):
            raise ValidationError(
                f"valid_mask must have shape ({n_out},), got {valid_mask.shape}"
            )

    if groups is not None:
        groups = np.asarray(groups, dtype=np.int64)
        if groups.shape != (n_out,):
            raise ValidationError(
                f"groups must have shape ({n_out},), got {groups.shape}"
            )

    means, stds, ssq = _window_stats(series, window, normalized, cache)
    invalid_cols = ~valid_mask

    first_row = sliding_dot_product(series[:window], series, cache=cache)
    qt = first_row.copy()
    first_col = first_row.copy()  # self-join symmetry: QT[i, 0] == QT[0, i]

    values = np.full(n_out, np.inf)
    indices = np.full(n_out, -1, dtype=np.int64)
    for i in range(n_out):
        if i > 0:
            qt[1:] = (
                qt[:-1]
                - series[i - 1] * series[: n_out - 1]
                + series[i + window - 1] * series[window : window + n_out - 1]
            )
            qt[0] = first_col[i]
        if not valid_mask[i]:
            continue
        sq = _row_distances(qt, i, window, normalized, means, stds, ssq, ssq)
        lo = max(0, i - exclusion)
        hi = min(n_out, i + exclusion + 1)
        sq[lo:hi] = np.inf
        sq[invalid_cols] = np.inf
        if groups is not None:
            sq[groups == groups[i]] = np.inf
        j = int(np.argmin(sq))
        if np.isfinite(sq[j]):
            values[i] = np.sqrt(sq[j])
            indices[i] = j
    return MatrixProfile(
        values=values,
        indices=indices,
        window=window,
        exclusion=exclusion,
        normalized=normalized,
        valid_mask=valid_mask,
    )


def ab_join(
    series_a: np.ndarray,
    series_b: np.ndarray,
    window: int,
    valid_mask_a: np.ndarray | None = None,
    valid_mask_b: np.ndarray | None = None,
    normalized: bool = True,
    cache: SeriesCache | None = None,
) -> MatrixProfile:
    """AB-join profile: for each window of A, its nearest neighbour in B.

    No exclusion zone applies (the series are distinct); this is the
    ``P_AB`` of the paper's Figures 3-4. A ``cache`` shares both series'
    statistics and spectra across repeated joins (e.g. the BASE
    baseline's per-class, per-length loop).
    """
    series_a = np.asarray(series_a, dtype=np.float64)
    series_b = np.asarray(series_b, dtype=np.float64)
    if series_a.ndim != 1 or series_b.ndim != 1:
        raise ValidationError("ab_join expects 1-D series")
    n_a = num_windows(series_a.size, window)
    n_b = num_windows(series_b.size, window)
    if valid_mask_a is None:
        valid_mask_a = np.ones(n_a, dtype=bool)
    else:
        valid_mask_a = np.asarray(valid_mask_a, dtype=bool)
        if valid_mask_a.shape != (n_a,):
            raise ValidationError("valid_mask_a has wrong shape")
    if valid_mask_b is None:
        valid_mask_b = np.ones(n_b, dtype=bool)
    else:
        valid_mask_b = np.asarray(valid_mask_b, dtype=bool)
        if valid_mask_b.shape != (n_b,):
            raise ValidationError("valid_mask_b has wrong shape")

    means_b, stds_b, ssq_b = _window_stats(series_b, window, normalized, cache)
    if normalized:
        means_a, stds_a = sliding_mean_std(series_a, window, cache=cache)
        ssq_a = None
    else:
        means_a = stds_a = None
        _, _, ssq_a = _window_stats(series_a, window, normalized, cache)

    first_row = sliding_dot_product(series_a[:window], series_b, cache=cache)
    first_col = sliding_dot_product(series_b[:window], series_a, cache=cache)
    qt = first_row.copy()
    invalid_cols = ~valid_mask_b

    values = np.full(n_a, np.inf)
    indices = np.full(n_a, -1, dtype=np.int64)
    for i in range(n_a):
        if i > 0:
            qt[1:] = (
                qt[:-1]
                - series_a[i - 1] * series_b[: n_b - 1]
                + series_a[i + window - 1] * series_b[window : window + n_b - 1]
            )
            qt[0] = first_col[i]
        if not valid_mask_a[i]:
            continue
        sq = _row_distances(
            qt,
            i,
            window,
            normalized,
            means_b,
            stds_b,
            ssq_a,
            ssq_b,
            means_a=means_a,
            stds_a=stds_a,
        )
        sq[invalid_cols] = np.inf
        j = int(np.argmin(sq))
        if np.isfinite(sq[j]):
            values[i] = np.sqrt(sq[j])
            indices[i] = j
    return MatrixProfile(
        values=values,
        indices=indices,
        window=window,
        exclusion=0,
        normalized=normalized,
        valid_mask=valid_mask_a,
    )
