"""Matrix profile substrate (Yeh et al., "Matrix Profile I", ICDM 2016).

Implemented from scratch on numpy FFTs:

* :func:`mass` — z-normalized (or raw) distance profile of one query against
  every window of a series, in O(N log N).
* :func:`stomp_self_join` / :func:`ab_join` — full matrix profile via the
  STOMP incremental dot-product recurrence, with trivial-match exclusion
  zones and optional validity masks (used to skip windows that cross
  instance junctions in concatenated series).
* :class:`MatrixProfile` — result container with motif/discord extraction
  and profile differencing (the paper's ``diff(P_AB, P_AA)``, Fig. 4).
"""

from repro.matrixprofile.discovery import top_k_discords, top_k_motifs
from repro.matrixprofile.mass import mass, raw_distance_profile
from repro.matrixprofile.profile import MatrixProfile, profile_diff
from repro.matrixprofile.stomp import ab_join, default_exclusion, stomp_self_join

__all__ = [
    "MatrixProfile",
    "ab_join",
    "default_exclusion",
    "mass",
    "profile_diff",
    "raw_distance_profile",
    "stomp_self_join",
    "top_k_discords",
    "top_k_motifs",
]
