"""Top-k motif / discord extraction from a computed profile.

Successive picks are separated by the profile's exclusion zone so that the
"top-k" are k genuinely distinct locations rather than k overlapping copies
of the same subsequence — this is exactly the *similar-subsequences-as-
shapelets* failure (issue 2.2) the paper diagnoses in the MP baseline, so
the extraction must enforce separation even though the baseline's indicator
does not.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.matrixprofile.profile import MatrixProfile


def _extract(
    values: np.ndarray, k: int, exclusion: int, largest: bool
) -> list[tuple[int, float]]:
    if k < 1:
        raise ValidationError(f"k must be >= 1, got {k}")
    work = values.copy()
    if largest:
        work = np.where(np.isfinite(work), work, -np.inf)
    else:
        work = np.where(np.isfinite(work), work, np.inf)
    picks: list[tuple[int, float]] = []
    for _ in range(k):
        pos = int(np.argmax(work)) if largest else int(np.argmin(work))
        val = work[pos]
        if not np.isfinite(val):
            break
        picks.append((pos, float(values[pos])))
        lo = max(0, pos - exclusion)
        hi = min(work.size, pos + exclusion + 1)
        work[lo:hi] = -np.inf if largest else np.inf
    return picks


def top_k_motifs(
    profile: MatrixProfile, k: int, exclusion: int | None = None
) -> list[tuple[int, float]]:
    """The k smallest-profile positions, mutually separated by ``exclusion``.

    Returns at most k ``(position, value)`` pairs, best first. ``exclusion``
    defaults to the profile's own exclusion half-width (at least 1).
    """
    if exclusion is None:
        exclusion = max(1, profile.exclusion)
    return _extract(profile.values, k, exclusion, largest=False)


def top_k_discords(
    profile: MatrixProfile, k: int, exclusion: int | None = None
) -> list[tuple[int, float]]:
    """The k largest-profile positions, mutually separated by ``exclusion``."""
    if exclusion is None:
        exclusion = max(1, profile.exclusion)
    return _extract(profile.values, k, exclusion, largest=True)
