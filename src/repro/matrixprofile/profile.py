"""The :class:`MatrixProfile` result type and profile differencing."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ValidationError


@dataclass
class MatrixProfile:
    """A computed matrix (or AB-join) profile.

    Attributes
    ----------
    values:
        Nearest-neighbour distance of each window; ``inf`` for windows that
        were masked out or had no valid neighbour.
    indices:
        Position of each window's nearest neighbour (``-1`` where masked).
    window:
        Subsequence length L.
    exclusion:
        Trivial-match exclusion half-width used (0 for AB-joins).
    normalized:
        Whether distances are z-normalized.
    valid_mask:
        Boolean mask over window starts that were eligible.
    """

    values: np.ndarray
    indices: np.ndarray
    window: int
    exclusion: int
    normalized: bool = True
    valid_mask: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=np.float64)
        self.indices = np.asarray(self.indices, dtype=np.int64)
        if self.values.shape != self.indices.shape:
            raise ValidationError("values and indices must have the same shape")
        if self.valid_mask is None:
            self.valid_mask = np.isfinite(self.values)
        else:
            self.valid_mask = np.asarray(self.valid_mask, dtype=bool)
            if self.valid_mask.shape != self.values.shape:
                raise ValidationError("valid_mask shape mismatch")

    def __len__(self) -> int:
        return int(self.values.size)

    @property
    def finite_positions(self) -> np.ndarray:
        """Window starts with a finite profile value."""
        return np.flatnonzero(np.isfinite(self.values))

    def motif(self) -> tuple[int, float]:
        """Position and value of the global minimum (the top motif)."""
        positions = self.finite_positions
        if positions.size == 0:
            raise ValidationError("profile has no finite values")
        best = positions[np.argmin(self.values[positions])]
        return int(best), float(self.values[best])

    def discord(self) -> tuple[int, float]:
        """Position and value of the global maximum (the top discord)."""
        positions = self.finite_positions
        if positions.size == 0:
            raise ValidationError("profile has no finite values")
        best = positions[np.argmax(self.values[positions])]
        return int(best), float(self.values[best])


def profile_diff(
    p_ab: MatrixProfile, p_aa: MatrixProfile, absolute: bool = True
) -> np.ndarray:
    """``diff(P_AB, P_AA)`` of the paper (Fig. 4 / Formula 4).

    Elementwise difference of two profiles over the same series and window.
    Positions where either profile is masked become ``-inf`` so they can
    never win an argmax.
    """
    if p_ab.window != p_aa.window:
        raise ValidationError(
            f"window mismatch: {p_ab.window} vs {p_aa.window}"
        )
    if p_ab.values.shape != p_aa.values.shape:
        raise ValidationError("profiles cover different numbers of windows")
    bad = ~(np.isfinite(p_ab.values) & np.isfinite(p_aa.values))
    left = np.where(bad, 0.0, p_ab.values)
    right = np.where(bad, 0.0, p_aa.values)
    diff = left - right
    if absolute:
        diff = np.abs(diff)
    return np.where(bad, -np.inf, diff)
