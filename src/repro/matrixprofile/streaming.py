"""STAMPI: incremental matrix profile for streaming time series.

Yeh et al.'s Matrix Profile I paper includes the incremental variant: when
a new point arrives, one new window appears, its distance profile against
all existing windows is computed (one MASS call, O(N log N)), the new
window's profile value is the masked minimum of that row, and existing
windows' values can only *decrease* where the new window is a closer
neighbour.

Used here as the substrate for online shapelet monitoring (a deployment
concern for the paper's method: keep motif/discord structure current as a
sensor appends data) and exercised by the streaming example.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import LengthError, ValidationError
from repro.kernels import mass
from repro.matrixprofile.profile import MatrixProfile
from repro.matrixprofile.stomp import default_exclusion, stomp_self_join


class StreamingMatrixProfile:
    """Incrementally maintained self-join matrix profile.

    Parameters
    ----------
    window:
        Subsequence length L.
    exclusion:
        Trivial-match half-width (default ``ceil(L/4)``).
    normalized:
        z-normalized (default) or raw Euclidean distances.

    Notes
    -----
    Append cost is one MASS call over the current history — O(N log N)
    per point, versus O(N^2) for recomputing from scratch. The maintained
    values are exact: they equal a fresh :func:`stomp_self_join` of the
    full history at all times (asserted by the test suite).
    """

    def __init__(
        self, window: int, exclusion: int | None = None, normalized: bool = True
    ) -> None:
        if window < 2:
            raise ValidationError(f"window must be >= 2, got {window}")
        self.window = window
        self.exclusion = exclusion if exclusion is not None else default_exclusion(window)
        self.normalized = normalized
        self._values = np.empty(0, dtype=np.float64)
        self._history = np.empty(0, dtype=np.float64)
        self._profile = np.empty(0, dtype=np.float64)
        self._indices = np.empty(0, dtype=np.int64)

    @property
    def n_points(self) -> int:
        """Points received so far."""
        return int(self._history.size)

    @property
    def n_windows(self) -> int:
        """Windows currently annotated."""
        return int(self._profile.size)

    def append(self, value: float) -> None:
        """Receive one new point; update the profile exactly."""
        if not np.isfinite(value):
            raise ValidationError("appended values must be finite")
        self._history = np.append(self._history, float(value))
        n = self._history.size
        if n < self.window:
            return
        new_pos = n - self.window  # start index of the newly-completed window
        if new_pos == 0:
            self._profile = np.array([np.inf])
            self._indices = np.array([-1], dtype=np.int64)
            return
        query = self._history[new_pos:]
        row = mass(query, self._history, normalized=self.normalized)
        # Mask the trivial-match zone around the new window itself.
        lo = max(0, new_pos - self.exclusion)
        row = row.copy()
        row[lo : new_pos + 1] = np.inf

        # Grow the stored profile by one slot.
        self._profile = np.append(self._profile, np.inf)
        self._indices = np.append(self._indices, -1)

        finite = np.isfinite(row[:new_pos])
        if np.any(finite):
            best = int(np.argmin(np.where(finite, row[:new_pos], np.inf)))
            self._profile[new_pos] = row[best]
            self._indices[new_pos] = best

        # Existing windows: the new window may be a closer neighbour.
        old = row[:new_pos]
        eligible = np.arange(new_pos) < new_pos - self.exclusion
        improved = eligible & (old < self._profile[:new_pos])
        self._profile[:new_pos][improved] = old[improved]
        self._indices[:new_pos][improved] = new_pos

    def extend(self, values: np.ndarray) -> None:
        """Append many points."""
        for value in np.asarray(values, dtype=np.float64).ravel():
            self.append(float(value))

    def profile(self) -> MatrixProfile:
        """Snapshot of the current profile."""
        if self.n_windows == 0:
            raise LengthError(
                f"need at least {self.window} points, have {self.n_points}"
            )
        return MatrixProfile(
            values=self._profile.copy(),
            indices=self._indices.copy(),
            window=self.window,
            exclusion=self.exclusion,
            normalized=self.normalized,
        )

    def check_against_batch(self) -> bool:
        """True iff the incremental profile matches a fresh STOMP run."""
        if self.n_windows == 0:
            return True
        batch = stomp_self_join(
            self._history,
            self.window,
            exclusion=self.exclusion,
            normalized=self.normalized,
        )
        mine = self._profile
        both_inf = np.isinf(batch.values) & np.isinf(mine)
        close = np.isclose(batch.values, mine, atol=1e-6)
        return bool(np.all(both_inf | close))
