"""MASS: Mueen's Algorithm for Similarity Search.

Computes the distance profile of a query against every window of a series in
O(N log N) using FFT sliding dot products. Two flavours:

* z-normalized Euclidean distance (the matrix-profile convention), via

      d_j^2 = 2 L (1 - (QT_j - L m_q m_j) / (L s_q s_j))

  where ``QT_j`` is the sliding dot product and ``m/s`` are window
  means/stds.
* raw (non-normalized) squared distance, matching the paper's Def. 4
  before the 1/L factor (delegates to :func:`repro.ts.distance.distance_profile`).

Flat-window convention: the z-normalization of a constant window is the zero
vector, so the z-normalized squared distance between a flat and a non-flat
window is exactly ``L`` and between two flat windows is ``0``.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.ts.distance import distance_profile, sliding_dot_product, sliding_mean_std
from repro.ts.preprocessing import FLAT_STD


def raw_distance_profile(query: np.ndarray, series: np.ndarray) -> np.ndarray:
    """Non-normalized Euclidean distance profile (not squared)."""
    return np.sqrt(distance_profile(query, series))


def mass(query: np.ndarray, series: np.ndarray, normalized: bool = True) -> np.ndarray:
    """Distance profile of ``query`` against every window of ``series``.

    Parameters
    ----------
    query:
        1-D array of length L.
    series:
        1-D array of length N >= L.
    normalized:
        If True (default), z-normalized Euclidean distances as in the matrix
        profile literature; otherwise raw Euclidean distances.

    Returns
    -------
    Array of length ``N - L + 1`` of (non-squared) distances.

    Raises
    ------
    ValidationError
        If either input is not 1-D or contains NaN/inf (non-finite data
        would silently propagate NaN distances); constant (zero-variance)
        windows are fine and follow the flat-window convention above.
    """
    query = np.asarray(query, dtype=np.float64)
    series = np.asarray(series, dtype=np.float64)
    if query.ndim != 1 or series.ndim != 1:
        raise ValidationError("mass expects 1-D arrays")
    if not np.all(np.isfinite(query)):
        raise ValidationError(
            "mass query contains NaN or inf; clean or interpolate the "
            "input (e.g. repro.datasets.perturb.add_dropout fills gaps) "
            "before computing distance profiles"
        )
    if not np.all(np.isfinite(series)):
        raise ValidationError(
            "mass series contains NaN or inf; z-normalized distances are "
            "undefined on non-finite windows — clean the input first"
        )
    if not normalized:
        return raw_distance_profile(query, series)
    length = query.size
    q_mean = float(query.mean())
    q_std = float(query.std())
    means, stds = sliding_mean_std(series, length)
    dots = sliding_dot_product(query, series)

    q_flat = q_std < FLAT_STD
    t_flat = stds < FLAT_STD
    # Denominators are clamped to FLAT_STD, inputs are validated finite:
    # no divide/invalid can occur, so no errstate suppression is needed.
    corr = (dots - length * q_mean * means) / (
        length * max(q_std, FLAT_STD) * np.maximum(stds, FLAT_STD)
    )
    # Clip correlation into [-1, 1] against FFT round-off.
    corr = np.clip(corr, -1.0, 1.0)
    sq = 2.0 * length * (1.0 - corr)
    if q_flat:
        # Query z-normalizes to zeros: distance L to any non-flat window.
        sq = np.where(t_flat, 0.0, float(length))
    else:
        sq = np.where(t_flat, float(length), sq)
    return np.sqrt(np.maximum(sq, 0.0))
