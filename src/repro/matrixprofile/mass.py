"""MASS: Mueen's Algorithm for Similarity Search (deprecated shim).

The implementation moved to :mod:`repro.kernels` — the batched, caching
distance-kernel engine — where it gained a ``cache=`` option and a
multi-query batched counterpart (:func:`repro.kernels.batch_mass`). The
semantics are unchanged: z-normalized Euclidean distance profiles via

      d_j^2 = 2 L (1 - (QT_j - L m_q m_j) / (L s_q s_j))

with the flat-window convention (a constant window z-normalizes to the
zero vector, so flat-vs-non-flat distance is exactly ``sqrt(L)`` and
flat-vs-flat is ``0``), or raw Euclidean distances per the paper's Def. 4.

``mass`` stays importable from here but emits one
:class:`DeprecationWarning` per process; new code should call
:func:`repro.kernels.mass` / :func:`repro.kernels.batch_mass`.
"""

from __future__ import annotations

import numpy as np

from repro.kernels import (
    mass as _kernel_mass,
    raw_distance_profile as _kernel_raw_profile,
    warn_deprecated_once,
)


def raw_distance_profile(query: np.ndarray, series: np.ndarray) -> np.ndarray:
    """Non-normalized Euclidean distance profile (not squared)."""
    return _kernel_raw_profile(query, series)


def mass(query: np.ndarray, series: np.ndarray, normalized: bool = True) -> np.ndarray:
    """Deprecated shim for :func:`repro.kernels.mass`.

    Distance profile of ``query`` against every window of ``series``:
    z-normalized Euclidean distances by default, raw Euclidean otherwise.
    Returns an array of length ``N - L + 1`` of (non-squared) distances;
    non-finite or non-1-D inputs raise
    :class:`repro.exceptions.ValidationError`.
    """
    warn_deprecated_once("repro.matrixprofile.mass.mass", "repro.kernels.mass")
    return _kernel_mass(query, series, normalized=normalized)
