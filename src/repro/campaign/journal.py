"""Append-only JSONL journal: the campaign's crash-safe source of truth.

Every state transition of a campaign — start, resume, cell start, cell
finish, interrupt, finish — is one JSON object on one line, appended and
fsync'd before the orchestrator moves on. Because appends are the *only*
write mode during a run, a SIGKILL can damage at most the trailing
line: replay therefore

* parses every complete line into a record,
* moves any unparseable bytes (a torn tail from a killed process, or
  garbage from disk trouble) to a ``<journal>.quarantine`` sidecar,
* atomically rewrites the journal to the surviving records, and
* emits a single :class:`RuntimeWarning` naming what was quarantined —

so a resumed campaign starts from a clean, fully-parseable journal and
nothing is silently dropped. Only a journal that cannot be read or
rewritten at all raises :class:`repro.exceptions.JournalError`.
"""

from __future__ import annotations

import json
import os
import warnings
from pathlib import Path

from repro.exceptions import JournalError


class Journal:
    """One append-only JSONL event log under a campaign directory."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    @property
    def quarantine_path(self) -> Path:
        """Sidecar receiving unparseable journal bytes on replay."""
        return self.path.with_name(self.path.name + ".quarantine")

    def append(self, record: dict) -> None:
        """Durably append one event (sorted keys, flushed, fsync'd)."""
        if not isinstance(record, dict) or "type" not in record:
            raise JournalError("journal records must be dicts with a 'type'")
        line = json.dumps(record, sort_keys=True) + "\n"
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "a", encoding="utf-8") as fh:
                fh.write(line)
                fh.flush()
                os.fsync(fh.fileno())
        except OSError as exc:
            raise JournalError(
                f"cannot append to journal {self.path}: {exc}"
            ) from exc

    def replay(self) -> list[dict]:
        """Parse the journal, recovering from torn/corrupt lines.

        Returns the parseable records in append order. Unparseable lines
        are quarantined (appended to :attr:`quarantine_path`), the
        journal is atomically rewritten without them, and one warning is
        emitted. A missing journal is an empty campaign, not an error.
        """
        if not self.path.exists():
            return []
        try:
            raw = self.path.read_bytes()
        except OSError as exc:
            raise JournalError(
                f"cannot read journal {self.path}: {exc}"
            ) from exc
        records: list[dict] = []
        good_lines: list[bytes] = []
        bad_lines: list[bytes] = []
        for line in raw.split(b"\n"):
            if not line.strip():
                continue
            try:
                record = json.loads(line.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                record = None
            if isinstance(record, dict) and "type" in record:
                records.append(record)
                good_lines.append(line)
            else:
                bad_lines.append(line)
        if bad_lines:
            self._quarantine(good_lines, bad_lines)
        return records

    def _quarantine(
        self, good_lines: list[bytes], bad_lines: list[bytes]
    ) -> None:
        """Move bad bytes aside and rewrite the journal to the good prefix."""
        try:
            with open(self.quarantine_path, "ab") as fh:
                for line in bad_lines:
                    fh.write(line + b"\n")
                fh.flush()
                os.fsync(fh.fileno())
            tmp = self.path.with_name(self.path.name + ".tmp")
            with open(tmp, "wb") as fh:
                for line in good_lines:
                    fh.write(line + b"\n")
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.path)
        except OSError as exc:
            raise JournalError(
                f"cannot quarantine corrupt journal lines at {self.path}: {exc}"
            ) from exc
        warnings.warn(
            f"journal {self.path} held {len(bad_lines)} unparseable line(s) "
            f"(torn tail from a killed run, or disk corruption); moved to "
            f"{self.quarantine_path.name} and recovered "
            f"{len(good_lines)} record(s)",
            RuntimeWarning,
            stacklevel=3,
        )


__all__ = ["Journal"]
