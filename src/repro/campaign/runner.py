"""Crash-safe campaign orchestrator.

``CampaignRunner.run`` walks the spec's cell list in deterministic
order, skipping every cell the journal already records as finished (and
whose checksummed result file verifies), and executes the rest through
the fault-tolerance stack the distributed layer already proved out:

* each cell runs under :class:`repro.distributed.executor.RetryingExecutor`
  — bounded retries with seeded backoff, a per-cell wall-clock budget,
  and payload validation (a dropped or non-finite result is a failure,
  not a silent row);
* a cell that exhausts its retries is marked ``failed`` with typed error
  provenance (exception class + message) and the campaign *continues* —
  the skip-and-report rung of the degradation ladder;
* a :class:`~repro.distributed.faults.FaultPlan` can wrap the worker
  with the deterministic chaos engine (crash / hang / slow / drop keyed
  by the cell seed and attempt), which is how the chaos suite proves a
  SIGKILL'd-and-resumed campaign is bit-identical to an uninterrupted
  one;
* the first SIGINT/SIGTERM finishes the in-flight cell, flushes the
  journal, and stops; the second force-exits
  (:class:`~repro.distributed.interrupt.GracefulInterrupt`).

Because every cell's payload depends only on the cell's own fields (the
derived seed included), re-running a campaign — whole or resumed, any
executor — reproduces the same deterministic results frame.
"""

from __future__ import annotations

import dataclasses
import time
from pathlib import Path

import numpy as np

from repro.campaign.journal import Journal
from repro.campaign.spec import CampaignCell, CampaignSpec
from repro.campaign.store import CAMPAIGN_FORMAT_VERSION, CellStore
from repro.distributed.executor import (
    Executor,
    RetryingExecutor,
    SerialExecutor,
    UnitOutcome,
)
from repro.distributed.faults import DroppedResult, FaultInjector, FaultPlan
from repro.distributed.interrupt import GracefulInterrupt
from repro.exceptions import CampaignError


def run_cell(cell: CampaignCell) -> dict:
    """Worker function: evaluate one (dataset, method, scenario) cell.

    Module-level (picklable) so cells run unchanged under thread and
    process executors. Everything is seeded from the cell, so the same
    cell always returns the same accuracy.
    """
    from repro.benchlib.runners import evaluate_method
    from repro.campaign.scenarios import apply_scenario
    from repro.datasets.loader import load_dataset

    data = load_dataset(
        cell.dataset,
        seed=cell.eval_seed,
        max_train=cell.max_train,
        max_test=cell.max_test,
        max_length=cell.max_length,
        validation=cell.validation,
    )
    data = apply_scenario(data, cell.scenario, cell.seed)
    result = evaluate_method(
        cell.method, data, k=cell.k, seed=cell.eval_seed,
        validation=cell.validation,
    )
    return {
        "accuracy": float(result.accuracy),
        "completed": bool(result.completed),
        "discovery_seconds": float(result.discovery_seconds),
        "fit_seconds": float(result.total_seconds),
    }


def validate_cell_result(value: object) -> str | None:
    """Payload check for the retry ladder (mirrors the distributed one).

    Returns a typed failure description — making the attempt retryable —
    for dropped results, wrong payload shapes, and non-finite or
    out-of-range accuracies; ``None`` for a healthy payload.
    """
    if isinstance(value, DroppedResult):
        return "CellResultError: result dropped in transit"
    if not isinstance(value, dict):
        return (
            f"CellResultError: worker returned {type(value).__name__}, "
            "expected a result dict"
        )
    accuracy = value.get("accuracy")
    if not isinstance(accuracy, (int, float)) or not np.isfinite(accuracy):
        return "CellResultError: non-finite accuracy"
    if not 0.0 <= float(accuracy) <= 1.0:
        return f"CellResultError: accuracy {accuracy!r} outside [0, 1]"
    return None


def _error_provenance(error: str | None) -> tuple[str, str]:
    """Split a captured ``"TypeName: message"`` failure into its parts."""
    if not error:
        return "UnknownError", ""
    head, sep, rest = error.partition(": ")
    if sep and head.replace(".", "").isidentifier():
        return head, rest
    return "UnknownError", error


def _finite_or_none(value: float | None) -> float | None:
    """NaN/inf timing fields become ``None`` so cell files stay strict JSON."""
    if value is None or not np.isfinite(value):
        return None
    return float(value)


class CampaignRunner:
    """Run, resume, and inspect one evaluation campaign.

    Parameters
    ----------
    spec:
        The dataset x method x scenario matrix and its settings.
    campaign_dir:
        Directory owning the manifest, journal, and cell files. Reusing
        a directory resumes the campaign (fingerprint permitting).
    executor:
        Fan-out backend for cell execution (default: serial in-process).
    fault_plan:
        Optional deterministic chaos plan applied to every cell attempt.
    retries:
        Extra attempts per cell after the first (the retry rung of the
        degradation ladder).
    base_delay, max_delay:
        Seeded exponential backoff between retry rounds (0 = no sleep,
        the default: campaigns measure work, not waiting).
    max_cell_seconds:
        Per-cell wall-clock budget; an overrun marks the attempt as a
        retryable timeout failure.
    worker_fn:
        Override of :func:`run_cell` (tests substitute fast fakes).
    metrics:
        Optional shared :class:`~repro.obs.metrics.MetricsRegistry`;
        when set, :meth:`run` publishes live ``campaign.*`` counters
        (cells done / failed / retried) plus a per-cell wall-clock
        sliding window. ``None`` (the default) adds no work.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        campaign_dir: str | Path,
        executor: Executor | None = None,
        fault_plan: FaultPlan | None = None,
        retries: int = 2,
        base_delay: float = 0.0,
        max_delay: float = 2.0,
        max_cell_seconds: float | None = None,
        worker_fn=None,
        metrics=None,
    ) -> None:
        if retries < 0:
            raise CampaignError("retries must be >= 0")
        if max_cell_seconds is not None and max_cell_seconds <= 0:
            raise CampaignError("max_cell_seconds must be > 0 when set")
        self.spec = spec
        self.campaign_dir = Path(campaign_dir)
        self.executor: Executor = (
            executor if executor is not None else SerialExecutor()
        )
        self.fault_plan = fault_plan
        self.retries = retries
        self.base_delay = base_delay
        self.max_delay = max_delay
        self.max_cell_seconds = max_cell_seconds
        self._worker = worker_fn if worker_fn is not None else run_cell
        self.metrics = metrics
        self.store = CellStore(self.campaign_dir)
        self.journal = Journal(self.campaign_dir / "journal.jsonl")

    # -- identity ---------------------------------------------------------

    def fingerprint(self) -> dict:
        """What must match for a directory to be resumable by this runner."""
        return {
            "format_version": CAMPAIGN_FORMAT_VERSION,
            "spec": self.spec.fingerprint_fields(),
            "policy": {
                "retries": self.retries,
                "max_cell_seconds": self.max_cell_seconds,
            },
            "fault": (
                dataclasses.asdict(self.fault_plan)
                if self.fault_plan is not None
                else None
            ),
        }

    @classmethod
    def from_dir(
        cls,
        campaign_dir: str | Path,
        executor: Executor | None = None,
        worker_fn=None,
    ) -> "CampaignRunner":
        """Reconstruct a runner from a campaign directory's manifest.

        This is what ``repro campaign resume|status|report`` use: the
        manifest pins the spec, retry policy, and fault plan, so resuming
        needs nothing but the directory.
        """
        manifest = CellStore(campaign_dir).read_manifest()
        try:
            spec = CampaignSpec.from_dict(
                {**manifest["spec"], "name": Path(campaign_dir).name}
            )
            policy = manifest.get("policy", {})
            fault = manifest.get("fault")
            plan = FaultPlan(**fault) if fault else None
        except (KeyError, TypeError) as exc:
            raise CampaignError(
                f"malformed campaign manifest in {campaign_dir}: {exc}"
            ) from exc
        return cls(
            spec,
            campaign_dir,
            executor=executor,
            fault_plan=plan,
            retries=int(policy.get("retries", 2)),
            max_cell_seconds=policy.get("max_cell_seconds"),
            worker_fn=worker_fn,
        )

    # -- resume bookkeeping ----------------------------------------------

    def _completed_records(self, records: list[dict]) -> dict[str, dict]:
        """Cell records that are finished *and* verify on disk.

        A ``cell_finished`` journal event names the cell file's SHA-256;
        a file that is missing, corrupt, or mismatched is quarantined by
        the store and the cell is treated as pending again.
        """
        finished: dict[str, dict] = {}
        for record in records:
            if record.get("type") == "cell_finished" and "cell_id" in record:
                finished[record["cell_id"]] = record
        done: dict[str, dict] = {}
        for cell_id, event in finished.items():
            cell_record = self.store.load_cell(
                cell_id, expected_sha=event.get("sha256")
            )
            if cell_record is not None:
                done[cell_id] = cell_record
        return done

    def _record(self, cell: CampaignCell, outcome: UnitOutcome) -> dict:
        """Build the persistent cell record from a retry-ladder outcome."""
        if outcome.ok:
            value = outcome.value
            payload = {
                "status": "ok",
                "accuracy": float(value["accuracy"]),
                "completed": bool(value.get("completed", True)),
                "error_type": None,
                "error": None,
                "attempts": outcome.attempts,
            }
            timing = {
                "elapsed": _finite_or_none(outcome.elapsed),
                "fit_seconds": _finite_or_none(value.get("fit_seconds")),
                "discovery_seconds": _finite_or_none(
                    value.get("discovery_seconds")
                ),
            }
        else:
            error_type, message = _error_provenance(outcome.error)
            payload = {
                "status": "failed",
                "accuracy": None,
                "completed": None,
                "error_type": error_type,
                "error": message,
                "attempts": outcome.attempts,
            }
            timing = {
                "elapsed": None,
                "fit_seconds": None,
                "discovery_seconds": None,
            }
        return {
            "format_version": CAMPAIGN_FORMAT_VERSION,
            "cell": {
                "cell_id": cell.cell_id,
                "dataset": cell.dataset,
                "method": cell.method,
                "scenario": cell.scenario,
                "seed": cell.seed,
            },
            "payload": payload,
            "timing": timing,
        }

    # -- execution --------------------------------------------------------

    def run(self, max_cells: int | None = None) -> dict:
        """Execute (or resume) the campaign; returns :meth:`status`.

        ``max_cells`` bounds how many *new* cells this invocation runs —
        useful for incremental campaigns, and exactly what the chaos
        suite uses to stop at a cell boundary the way a SIGKILL would.
        """
        self.spec.validate_names()
        self.store.check_manifest(self.fingerprint())
        records = self.journal.replay()
        done = self._completed_records(records)
        cells = self.spec.cells()
        pending = [cell for cell in cells if cell.cell_id not in done]
        self.journal.append(
            {
                "type": "campaign_started",
                "n_cells": len(cells),
                "n_done": len(done),
                "resumed": bool(records),
                "ts": time.time(),
            }
        )
        worker = self._worker
        if self.fault_plan is not None:
            worker = FaultInjector(worker, self.fault_plan)
        retrying = RetryingExecutor(
            inner=self.executor,
            max_retries=self.retries,
            base_delay=self.base_delay,
            max_delay=max(self.base_delay, self.max_delay),
            unit_timeout=self.max_cell_seconds,
            validate=validate_cell_result,
            seed=self.spec.seed,
        )
        n_run = 0
        interrupted = False
        with GracefulInterrupt() as interrupt:
            for cell in pending:
                if max_cells is not None and n_run >= max_cells:
                    break
                if interrupt.triggered:
                    break
                self.journal.append(
                    {
                        "type": "cell_started",
                        "cell_id": cell.cell_id,
                        "ts": time.time(),
                    }
                )
                outcome = retrying.map_with_outcomes(worker, [cell])[0]
                record = self._record(cell, outcome)
                sha = self.store.save_cell(cell.cell_id, record)
                self.journal.append(
                    {
                        "type": "cell_finished",
                        "cell_id": cell.cell_id,
                        "status": record["payload"]["status"],
                        "error_type": record["payload"]["error_type"],
                        "attempts": record["payload"]["attempts"],
                        "sha256": sha,
                        "ts": time.time(),
                    }
                )
                done[cell.cell_id] = record
                n_run += 1
                if self.metrics is not None:
                    self._note_cell(record)
            interrupted = interrupt.triggered
        if interrupted:
            self.journal.append(
                {
                    "type": "campaign_interrupted",
                    "signal": interrupt.signal_name,
                    "n_done": len(done),
                    "ts": time.time(),
                }
            )
        elif len(done) == len(cells):
            n_ok = sum(
                1 for rec in done.values() if rec["payload"]["status"] == "ok"
            )
            self.journal.append(
                {
                    "type": "campaign_finished",
                    "n_ok": n_ok,
                    "n_failed": len(done) - n_ok,
                    "ts": time.time(),
                }
            )
        return self.status()

    def _note_cell(self, record: dict) -> None:
        """Publish one finished cell's telemetry (registry is set)."""
        payload = record["payload"]
        ok = payload["status"] == "ok"
        self.metrics.counter("campaign.cells_done" if ok else "campaign.cells_failed")
        # attempts counts every try; anything past the first is a retry.
        retries = max(0, int(payload.get("attempts", 1)) - 1)
        if retries:
            self.metrics.counter("campaign.cells_retried")
            self.metrics.counter("campaign.retries", retries)
        elapsed = record["timing"].get("elapsed")
        if elapsed is not None:
            self.metrics.observe_window("campaign.cell_seconds", elapsed)

    # -- inspection -------------------------------------------------------

    def status(self) -> dict:
        """Progress snapshot derived from the journal and cell files."""
        records = self.journal.replay()
        done = self._completed_records(records)
        cells = self.spec.cells()
        starts: dict[str, int] = {}
        for record in records:
            if record.get("type") == "cell_started":
                cell_id = record.get("cell_id", "?")
                starts[cell_id] = starts.get(cell_id, 0) + 1
        n_ok = sum(1 for rec in done.values() if rec["payload"]["status"] == "ok")
        n_failed = len(done) - n_ok
        last_event = records[-1]["type"] if records else None
        return {
            "campaign": self.spec.name,
            "dir": str(self.campaign_dir),
            "n_cells": len(cells),
            "n_ok": n_ok,
            "n_failed": n_failed,
            "n_pending": len(cells) - len(done),
            "complete": len(done) == len(cells),
            "interrupted": last_event == "campaign_interrupted",
            "cell_starts": starts,
            "failed_cells": sorted(
                (
                    cell_id,
                    rec["payload"]["error_type"],
                )
                for cell_id, rec in done.items()
                if rec["payload"]["status"] == "failed"
            ),
        }


__all__ = ["CampaignRunner", "run_cell", "validate_cell_result"]
