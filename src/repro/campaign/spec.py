"""Campaign specification: the dataset x method x scenario matrix.

A :class:`CampaignSpec` names everything that determines a campaign's
*results*: which datasets, methods, and scenarios to cross, the master
seed, the per-method ``k``, the dataset size caps, and the validation
mode. From it the runner derives the flat list of
:class:`CampaignCell` work items in a deterministic order, each carrying
its own derived seed — the same construction the distributed layer uses
for work units, and for the same reason: a cell's result depends only on
its own fields, so a resumed campaign recomputes exactly the missing
cells and nothing else.

The spec round-trips through :meth:`CampaignSpec.to_dict` /
:meth:`CampaignSpec.from_dict` (the campaign manifest persists it, which
is how ``repro campaign resume`` needs only the directory), and
:meth:`CampaignSpec.fingerprint_fields` feeds the manifest fingerprint
that refuses to resume a directory belonging to a different campaign.
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict, dataclass, field, fields

from repro.exceptions import CampaignError


def derive_cell_seed(master_seed: int, dataset: str, method: str, scenario: str) -> int:
    """Stable per-cell seed from the campaign seed and cell coordinates.

    Hash-derived (not positional), so adding a dataset or method to the
    spec never changes the seed — and therefore the result — of any
    pre-existing cell.
    """
    key = f"{master_seed}|{dataset}|{method}|{scenario}".encode()
    digest = hashlib.sha256(key).digest()
    return int.from_bytes(digest[:8], "big") & 0x7FFFFFFFFFFFFFFF


@dataclass(frozen=True)
class CampaignCell:
    """One (dataset, method, scenario) evaluation task.

    Self-contained and picklable — the worker needs nothing but the cell
    (plus the module-level registries it names), so cells run unchanged
    under the thread and process executors. ``seed`` is the derived cell
    seed (fault injection and scenario perturbations key off it);
    ``eval_seed`` is the campaign master seed handed to the method, so a
    cell's accuracy matches a standalone ``repro run`` with that seed.
    """

    dataset: str
    method: str
    scenario: str
    seed: int
    eval_seed: int
    k: int = 5
    max_train: int | None = 24
    max_test: int | None = 60
    max_length: int | None = 150
    validation: str = "repair"

    @property
    def cell_id(self) -> str:
        """Filesystem- and journal-safe identifier of the cell."""
        return f"{self.dataset}__{self.method}__{self.scenario}"


@dataclass(frozen=True)
class CampaignSpec:
    """Everything that determines a campaign's deterministic results."""

    datasets: tuple[str, ...]
    methods: tuple[str, ...]
    scenarios: tuple[str, ...] = ("clean",)
    seed: int = 0
    k: int = 5
    max_train: int | None = 24
    max_test: int | None = 60
    max_length: int | None = 150
    validation: str = "repair"
    name: str = field(default="campaign", compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "datasets", tuple(self.datasets))
        object.__setattr__(self, "methods", tuple(self.methods))
        object.__setattr__(self, "scenarios", tuple(self.scenarios))
        for label, values in (
            ("datasets", self.datasets),
            ("methods", self.methods),
            ("scenarios", self.scenarios),
        ):
            if not values:
                raise CampaignError(f"spec needs at least one entry in {label}")
            if len(set(values)) != len(values):
                raise CampaignError(f"spec {label} contain duplicates: {values}")
        if self.validation not in ("strict", "repair", "off"):
            raise CampaignError(
                f"validation must be strict/repair/off, got {self.validation!r}"
            )

    def validate_names(self) -> None:
        """Check methods/scenarios/datasets against their registries.

        Separate from construction so a spec can be built (and a
        manifest parsed) without importing the full method zoo; the
        runner calls this before executing anything.
        """
        from repro.benchlib.runners import method_names
        from repro.campaign.scenarios import scenario_names
        from repro.datasets.registry import get_profile

        known_methods = set(method_names())
        for method in self.methods:
            if method not in known_methods:
                raise CampaignError(
                    f"unknown method {method!r}; choose from {sorted(known_methods)}"
                )
        known_scenarios = set(scenario_names())
        for scenario in self.scenarios:
            if scenario not in known_scenarios:
                raise CampaignError(
                    f"unknown scenario {scenario!r}; "
                    f"choose from {sorted(known_scenarios)}"
                )
        for dataset in self.datasets:
            get_profile(dataset)  # raises DatasetError on unknown names

    def cells(self) -> list[CampaignCell]:
        """The flat cell list, dataset-major then method then scenario."""
        return [
            CampaignCell(
                dataset=dataset,
                method=method,
                scenario=scenario,
                seed=derive_cell_seed(self.seed, dataset, method, scenario),
                eval_seed=self.seed,
                k=self.k,
                max_train=self.max_train,
                max_test=self.max_test,
                max_length=self.max_length,
                validation=self.validation,
            )
            for dataset in self.datasets
            for method in self.methods
            for scenario in self.scenarios
        ]

    def to_dict(self) -> dict:
        """JSON-native representation (manifest persistence)."""
        out = asdict(self)
        for key in ("datasets", "methods", "scenarios"):
            out[key] = list(out[key])
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignSpec":
        """Inverse of :meth:`to_dict`; unknown keys are rejected."""
        known = {f.name for f in fields(cls)}
        extra = set(data) - known
        if extra:
            raise CampaignError(
                f"campaign spec has unknown fields {sorted(extra)}"
            )
        try:
            return cls(**data)
        except TypeError as exc:
            raise CampaignError(f"malformed campaign spec: {exc}") from exc

    def fingerprint_fields(self) -> dict:
        """The spec as it enters the campaign-manifest fingerprint.

        ``name`` is excluded — renaming a campaign must not orphan its
        completed cells.
        """
        out = self.to_dict()
        out.pop("name")
        return out


__all__ = ["CampaignCell", "CampaignSpec", "derive_cell_seed"]
